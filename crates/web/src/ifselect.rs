//! Interpretable 4G/5G interface selection for web browsing (§6.2).
//!
//! For each operating point `(α, β)` the ground-truth label of a site is
//! the radio minimizing the utility `QoE = α·EC + β·PLT` (both min–max
//! normalized over the corpus). A post-pruned Gini decision tree over the
//! Table 5 factors then *predicts* that label — cheap to train, and its
//! splits explain themselves (Fig 22): performance-oriented models split
//! on total page size and dynamic-object share; energy-oriented models
//! send almost everything to 4G except extremely dynamic pages.

use crate::loader::{LoadResult, PageLoader, WebRadio};
use crate::site::{Website, WebsiteCorpus};
use fiveg_mlkit::dataset::Dataset;
use fiveg_mlkit::tree::{DecisionTreeClassifier, SplitDescription, TreeConfig};
use fiveg_simcore::RngStream;

/// One (α, β) operating point — a row of Table 6.
#[derive(Debug, Clone, Copy)]
pub struct ModelSpec {
    /// Model id, "M1" … "M5".
    pub id: &'static str,
    /// Desired-QoE description.
    pub desired: &'static str,
    /// Energy weight α.
    pub alpha: f64,
    /// PLT weight β.
    pub beta: f64,
}

impl ModelSpec {
    /// The five Table 6 operating points.
    pub fn table6() -> [ModelSpec; 5] {
        [
            ModelSpec {
                id: "M1",
                desired: "High Performance",
                alpha: 0.2,
                beta: 0.8,
            },
            ModelSpec {
                id: "M2",
                desired: "Performance Oriented",
                alpha: 0.4,
                beta: 0.6,
            },
            ModelSpec {
                id: "M3",
                desired: "Balanced",
                alpha: 0.5,
                beta: 0.5,
            },
            ModelSpec {
                id: "M4",
                desired: "Better Energy Saving",
                alpha: 0.6,
                beta: 0.4,
            },
            ModelSpec {
                id: "M5",
                desired: "High Energy Saving",
                alpha: 0.8,
                beta: 0.2,
            },
        ]
    }
}

/// Per-site measurements over both radios.
#[derive(Debug, Clone)]
pub struct SiteMeasurement {
    /// The site's Table 5 features.
    pub features: Vec<f64>,
    /// 4G outcome.
    pub lte: LoadResult,
    /// 5G outcome.
    pub mmwave: LoadResult,
}

/// Measures the whole corpus over both radios.
pub fn measure_corpus(
    corpus: &WebsiteCorpus,
    loader: &PageLoader,
    reps: usize,
) -> Vec<SiteMeasurement> {
    corpus
        .sites
        .iter()
        .map(|site| SiteMeasurement {
            features: site.features(),
            lte: loader.load_mean(site, WebRadio::Lte, reps),
            mmwave: loader.load_mean(site, WebRadio::MmWave5g, reps),
        })
        .collect()
}

/// Min–max normalization bounds over the measurement set.
fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, (hi - lo).max(1e-12))
}

/// Labels each measurement with the utility-minimizing radio under `spec`:
/// class 0 = 4G, class 1 = 5G.
pub fn label(measurements: &[SiteMeasurement], spec: &ModelSpec) -> Vec<usize> {
    let (e_lo, e_span) = bounds(
        measurements
            .iter()
            .flat_map(|m| [m.lte.energy_j, m.mmwave.energy_j]),
    );
    let (p_lo, p_span) = bounds(
        measurements
            .iter()
            .flat_map(|m| [m.lte.plt_s, m.mmwave.plt_s]),
    );
    measurements
        .iter()
        .map(|m| {
            let u = |r: &LoadResult| {
                spec.alpha * (r.energy_j - e_lo) / e_span + spec.beta * (r.plt_s - p_lo) / p_span
            };
            usize::from(u(&m.mmwave) < u(&m.lte))
        })
        .collect()
}

/// A trained selection model.
pub struct SelectionModel {
    /// The operating point.
    pub spec: ModelSpec,
    /// The post-pruned tree.
    pub tree: DecisionTreeClassifier,
}

/// Table 6 evaluation counts on a test set.
#[derive(Debug, Clone, Copy)]
pub struct SelectionCounts {
    /// Sites routed to 4G.
    pub use_4g: usize,
    /// Sites routed to 5G.
    pub use_5g: usize,
    /// Agreement with the ground-truth labels.
    pub accuracy: f64,
}

impl SelectionModel {
    /// Trains (70% train incl. pruning validation, per the paper's 7:3
    /// split handled by the caller) a post-pruned tree for `spec`.
    pub fn train(measurements: &[SiteMeasurement], spec: ModelSpec, seed: u64) -> SelectionModel {
        let labels = label(measurements, &spec);
        let mut data = Dataset::new(Website::feature_names(), vec![], vec![]);
        for (m, &l) in measurements.iter().zip(&labels) {
            data.push(m.features.clone(), l as f64);
        }
        let mut rng = RngStream::new(seed, "web-dt");
        let (train, val) = data.split(0.8, &mut rng);
        let mut tree = DecisionTreeClassifier::fit(
            &train,
            &TreeConfig {
                max_depth: 6,
                min_samples_leaf: 8,
                ..TreeConfig::default()
            },
        );
        tree.prune(&val);
        SelectionModel { spec, tree }
    }

    /// Routes a site.
    pub fn select(&self, site_features: &[f64]) -> WebRadio {
        if self.tree.predict(site_features) == 1 {
            WebRadio::MmWave5g
        } else {
            WebRadio::Lte
        }
    }

    /// Evaluates on a test set: Table 6's Use-4G/Use-5G counts.
    pub fn evaluate(&self, test: &[SiteMeasurement]) -> SelectionCounts {
        let truth = label(test, &self.spec);
        let mut use_4g = 0;
        let mut use_5g = 0;
        let mut correct = 0;
        for (m, &t) in test.iter().zip(&truth) {
            let pred = self.tree.predict(&m.features);
            if pred == 1 {
                use_5g += 1;
            } else {
                use_4g += 1;
            }
            if pred == t {
                correct += 1;
            }
        }
        SelectionCounts {
            use_4g,
            use_5g,
            accuracy: correct as f64 / test.len().max(1) as f64,
        }
    }

    /// Mean energy saved by following the model instead of always-5G, as a
    /// fraction, and the mean PLT penalty incurred, as a fraction.
    pub fn savings_vs_5g(&self, test: &[SiteMeasurement]) -> (f64, f64) {
        let mut e_model = 0.0;
        let mut e_5g = 0.0;
        let mut plt_model = 0.0;
        let mut plt_5g = 0.0;
        for m in test {
            let r = match self.select(&m.features) {
                WebRadio::Lte => &m.lte,
                WebRadio::MmWave5g => &m.mmwave,
            };
            e_model += r.energy_j;
            e_5g += m.mmwave.energy_j;
            plt_model += r.plt_s;
            plt_5g += m.mmwave.plt_s;
        }
        (1.0 - e_model / e_5g, plt_model / plt_5g - 1.0)
    }

    /// The tree's split structure (Fig 22).
    pub fn splits(&self) -> Vec<SplitDescription> {
        self.tree.splits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_radio::ue::UeModel;

    fn measured(n: usize) -> Vec<SiteMeasurement> {
        let corpus = WebsiteCorpus::generate(n, 3);
        let loader = PageLoader::new(UeModel::Pixel5, 42);
        measure_corpus(&corpus, &loader, 4)
    }

    fn split_data(ms: Vec<SiteMeasurement>) -> (Vec<SiteMeasurement>, Vec<SiteMeasurement>) {
        // 70/30 like the paper (30% of 1400 = 420 test sites).
        let cut = ms.len() * 7 / 10;
        let mut ms = ms;
        let test = ms.split_off(cut);
        (ms, test)
    }

    #[test]
    fn selection_shifts_toward_4g_as_alpha_grows() {
        let (train, test) = split_data(measured(700));
        let mut last_4g = 0usize;
        for spec in ModelSpec::table6() {
            let model = SelectionModel::train(&train, spec, 1);
            let counts = model.evaluate(&test);
            assert!(
                counts.use_4g + 3 >= last_4g,
                "{}: 4G count must not shrink much: {} -> {}",
                spec.id,
                last_4g,
                counts.use_4g
            );
            last_4g = counts.use_4g.max(last_4g);
        }
    }

    #[test]
    fn extreme_models_match_table6_poles() {
        let (train, test) = split_data(measured(700));
        let specs = ModelSpec::table6();
        // M1 (high performance): overwhelmingly 5G.
        let m1 = SelectionModel::train(&train, specs[0], 1).evaluate(&test);
        assert!(
            m1.use_5g > 3 * m1.use_4g,
            "M1 mostly 5G: {}/{}",
            m1.use_4g,
            m1.use_5g
        );
        // M5 (high energy saving): (nearly) everything to 4G.
        let m5 = SelectionModel::train(&train, specs[4], 1).evaluate(&test);
        assert!(
            m5.use_4g > 20 * m5.use_5g.max(1),
            "M5 mostly 4G: {}/{}",
            m5.use_4g,
            m5.use_5g
        );
    }

    #[test]
    fn models_are_accurate() {
        let (train, test) = split_data(measured(700));
        for spec in ModelSpec::table6() {
            let model = SelectionModel::train(&train, spec, 1);
            let counts = model.evaluate(&test);
            assert!(
                counts.accuracy > 0.80,
                "{} accuracy {}",
                spec.id,
                counts.accuracy
            );
        }
    }

    #[test]
    fn interface_selection_saves_energy_with_bounded_penalty() {
        // §6.2: "interface selection helps save 15–66% energy."
        let (train, test) = split_data(measured(700));
        let balanced = SelectionModel::train(&train, ModelSpec::table6()[2], 1);
        let (saving, penalty) = balanced.savings_vs_5g(&test);
        assert!((0.15..0.85).contains(&saving), "energy saving {saving}");
        assert!(penalty < 1.0, "PLT penalty {penalty}");
    }

    #[test]
    fn trees_split_on_meaningful_factors() {
        // Fig 22: the non-degenerate models split on size/object-count/
        // dynamic-share factors. (M4/M5 may legitimately prune to a
        // majority stump when almost every label is 4G.)
        let (train, _) = split_data(measured(1400));
        let mut meaningful = 0;
        for spec in &ModelSpec::table6()[..3] {
            let model = SelectionModel::train(&train, *spec, 1);
            let names: Vec<String> = model.splits().iter().map(|s| s.feature.clone()).collect();
            if names
                .iter()
                .any(|n| ["PS_MB", "NO", "DNO", "DSO", "AOS_KB"].contains(&n.as_str()))
            {
                meaningful += 1;
            }
        }
        assert!(meaningful >= 2, "only {meaningful} interpretable models");
    }
}
