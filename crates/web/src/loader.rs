//! The page-load simulator: PLT and radio energy per `<site, radio>`.
//!
//! A wave-based browser model (6 parallel connections, as Chrome uses per
//! host group): connection setup, HTML fetch, then object waves; dynamic
//! objects add server think time, and client-side parse/render adds
//! per-object CPU time. Radio energy integrates the ground-truth power
//! model over the load window (the paper feeds captured packet traces into
//! its §4 model the same way).
//!
//! Two calibration facts drive the 4G/5G contrast (§6.1):
//!
//! * a single page load never saturates mmWave — web servers/CDNs cap
//!   per-page bandwidth well below the radio's 2+ Gbps,
//! * mmWave's power floor (~3 W in CONNECTED) towers over LTE's (~0.6 W),
//!   so 5G pays an energy premium on *every* page, big or small.

use crate::site::Website;
use fiveg_power::datamodel::{DataPowerModel, NetworkKind};
use fiveg_radio::band::{BandClass, Direction};
use fiveg_radio::ue::UeModel;
use fiveg_simcore::faults::{self, FaultKind};
use fiveg_simcore::{guard, recovery, telemetry, RngStream};

/// The radio a page is loaded over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WebRadio {
    /// 4G/LTE.
    Lte,
    /// Verizon mmWave 5G.
    MmWave5g,
}

impl WebRadio {
    /// Page-level effective bandwidth in Mbps (server/CDN bound, not radio
    /// bound) and base RTT in ms to the web server.
    fn medians(self) -> (f64, f64) {
        match self {
            // 4G: radio is the bottleneck for big pages.
            WebRadio::Lte => (60.0, 55.0),
            // mmWave: CDN-side limits dominate; still ~8× faster pipes and
            // ~14 ms less RTT (Fig 2's radio gap).
            WebRadio::MmWave5g => (480.0, 41.0),
        }
    }

    /// The power model network for energy accounting.
    fn network(self) -> NetworkKind {
        match self {
            WebRadio::Lte => NetworkKind::Lte,
            WebRadio::MmWave5g => NetworkKind::MmWave,
        }
    }

    /// Band class (for tail power lookups by callers).
    pub fn band_class(self) -> BandClass {
        match self {
            WebRadio::Lte => BandClass::Lte,
            WebRadio::MmWave5g => BandClass::MmWave,
        }
    }
}

/// One page-load outcome (a HAR-record summary).
#[derive(Debug, Clone, Copy)]
pub struct LoadResult {
    /// Page load time, seconds.
    pub plt_s: f64,
    /// Radio energy over the load window, joules.
    pub energy_j: f64,
    /// Mean goodput over the load, Mbps.
    pub mean_tput_mbps: f64,
    /// Objects abandoned under partial-page degradation (fault plane only;
    /// a count per load, a mean across repetitions in [`PageLoader::load_mean`]).
    pub objects_dropped: f64,
}

/// The page loader bound to a UE (the paper roots a PX5 for this study).
#[derive(Debug, Clone)]
pub struct PageLoader {
    /// Device under test.
    pub ue: UeModel,
    /// Parallel connections per page.
    pub parallel_conns: usize,
    /// Per-object client parse/render CPU time, seconds.
    pub render_per_object_s: f64,
    /// Server think time per dynamic object, seconds.
    pub dynamic_think_s: f64,
    /// Per-wave request timeout (fault plane only): a wave that gets no
    /// bytes for this long is retried once, then its objects are dropped.
    pub object_timeout_s: f64,
    seed: u64,
}

impl PageLoader {
    /// Creates a loader with Chrome-like defaults.
    pub fn new(ue: UeModel, seed: u64) -> Self {
        PageLoader {
            ue,
            parallel_conns: 6,
            render_per_object_s: 0.004,
            dynamic_think_s: 0.08,
            object_timeout_s: 3.0,
            seed,
        }
    }

    /// Loads `site` over `radio`, repetition `rep` (the paper repeats ≥8×
    /// per radio and site; network conditions vary per repetition).
    pub fn load(&self, site: &Website, radio: WebRadio, rep: u64) -> LoadResult {
        let mut rng = RngStream::new(self.seed, &format!("load/{}/{radio:?}/{rep}", site.id));
        let (bw_median, rtt_median) = radio.medians();
        // Per-load network draw: CDN variance.
        let bw = bw_median * rng.log_normal(0.0, 0.15).clamp(0.6, 1.7);
        let rtt_s = rtt_median * rng.log_normal(0.0, 0.10).clamp(0.7, 1.5) / 1e3;

        // Connection setup (DNS + TCP + TLS ≈ 2 RTT) + HTML fetch (1 RTT +
        // transfer).
        let html_bytes = 60e3;
        let mut t = 2.0 * rtt_s + rtt_s + html_bytes * 8.0 / (bw * 1e6);

        // Object waves over the parallel connections: each wave pays one
        // request RTT, then transfers its objects sharing the pipe.
        let conns = self.parallel_conns.max(1);
        let n_waves = site.n_objects.div_ceil(conns);
        let per_wave_bytes = site.total_bytes() / n_waves.max(1) as f64;
        // Fault plane only: page loads are seconds long but fault windows
        // span the campaign hour, so anchor this load at a deterministic
        // offset derived from (site, rep) — no randomness drawn, so the
        // disabled path stays bit-identical.
        let faulty = faults::enabled();
        let t0 = if faulty {
            ((site.id as u64)
                .wrapping_mul(797)
                .wrapping_add(rep.wrapping_mul(131))
                % 3600) as f64
        } else {
            0.0
        };
        let mut objects_dropped = 0usize;
        let mut dropped_bytes = 0.0f64;
        telemetry::clock(0.0);
        for w in 0..n_waves {
            let wave_t0 = t;
            // A wave issued into a stall window gets no bytes: time the
            // request out and retry once; if the window still covers the
            // retry, abandon the wave's objects (partial-page degradation).
            if faulty && faults::is_active(FaultKind::StallWindow, t0 + t) {
                t += self.object_timeout_s;
                recovery::record(
                    recovery::RecoveryKind::ObjectRetry,
                    t0 + t,
                    self.object_timeout_s,
                    self.object_timeout_s,
                    || format!("wave {w} timed out, retrying"),
                );
                if faults::is_active(FaultKind::StallWindow, t0 + t) {
                    let in_wave = site.n_objects.saturating_sub(w * conns).min(conns);
                    objects_dropped += in_wave;
                    dropped_bytes += per_wave_bytes;
                    recovery::record(
                        recovery::RecoveryKind::PartialPage,
                        t0 + t,
                        0.0,
                        0.0,
                        || format!("wave {w}: dropped {in_wave} objects"),
                    );
                    continue;
                }
            }
            t += rtt_s + per_wave_bytes * 8.0 / (bw * 1e6);
            // Wave windows are ordered: a wave closes at or after it
            // opened, and never before the previous wave's close (time
            // only advances inside the loop).
            guard::check(
                "web",
                "wave-order",
                t.is_finite() && t >= wave_t0,
                t,
                || format!("wave {w} closed at {t} before it opened at {wave_t0}"),
            );
            telemetry::clock(t);
            telemetry::span_closed("web/object_wave", wave_t0, t);
        }
        // Dynamic objects: server think time plus two extra round trips
        // each (redirect/XHR chains), amortized across connections — this
        // is where 5G's lower radio RTT compounds (and why Fig 22b routes
        // extremely dynamic pages to 5G even in energy-saving mode).
        t += site.n_dynamic as f64 * (self.dynamic_think_s + 2.0 * rtt_s) / conns as f64;
        // Client-side parse/render (dropped objects are never rendered).
        t += 0.15 + (site.n_objects - objects_dropped) as f64 * self.render_per_object_s;

        guard::check("web", "plt-positive", t.is_finite() && t > 0.0, t, || {
            format!("page load time {t}s is not a positive duration")
        });
        telemetry::clock(t);
        telemetry::span_closed("web/page", 0.0, t);
        telemetry::count("web/object", (site.n_objects - objects_dropped) as u64);
        telemetry::observe("web/plt_s", t);
        let mean_tput = (site.total_bytes() + html_bytes - dropped_bytes) * 8.0 / 1e6 / t;
        let model = DataPowerModel::lookup(self.ue, radio.network());
        let power_mw = model.power_mw(Direction::Downlink, mean_tput);
        LoadResult {
            plt_s: t,
            energy_j: power_mw * t / 1e3,
            mean_tput_mbps: mean_tput,
            objects_dropped: objects_dropped as f64,
        }
    }

    /// Mean of `reps` repeated loads (the per-site figure the paper uses).
    pub fn load_mean(&self, site: &Website, radio: WebRadio, reps: usize) -> LoadResult {
        assert!(reps > 0, "need at least one repetition");
        let mut plt = 0.0;
        let mut energy = 0.0;
        let mut tput = 0.0;
        let mut dropped = 0.0;
        for rep in 0..reps {
            let r = self.load(site, radio, rep as u64);
            plt += r.plt_s;
            energy += r.energy_j;
            tput += r.mean_tput_mbps;
            dropped += r.objects_dropped;
        }
        let n = reps as f64;
        LoadResult {
            plt_s: plt / n,
            energy_j: energy / n,
            mean_tput_mbps: tput / n,
            objects_dropped: dropped / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::WebsiteCorpus;

    fn loader() -> PageLoader {
        PageLoader::new(UeModel::Pixel5, 42)
    }

    #[test]
    fn five_g_plt_is_always_better() {
        // §6.1: "PLT performance in 5G is always better than 4G."
        let corpus = WebsiteCorpus::generate(120, 3);
        let l = loader();
        for site in &corpus.sites {
            let g5 = l.load_mean(site, WebRadio::MmWave5g, 8);
            let g4 = l.load_mean(site, WebRadio::Lte, 8);
            assert!(
                g5.plt_s < g4.plt_s,
                "site {}: 5G {} vs 4G {}",
                site.id,
                g5.plt_s,
                g4.plt_s
            );
        }
    }

    #[test]
    fn four_g_energy_is_always_lower() {
        let corpus = WebsiteCorpus::generate(120, 3);
        let l = loader();
        for site in &corpus.sites {
            let g5 = l.load_mean(site, WebRadio::MmWave5g, 8);
            let g4 = l.load_mean(site, WebRadio::Lte, 8);
            assert!(
                g4.energy_j < g5.energy_j,
                "site {}: 4G {} vs 5G {}",
                site.id,
                g4.energy_j,
                g5.energy_j
            );
        }
    }

    #[test]
    fn plt_magnitudes_match_fig20() {
        // Fig 20: PLT CDF spans ~1–30 s; typical values a few seconds.
        let corpus = WebsiteCorpus::generate(300, 5);
        let l = loader();
        let plts: Vec<f64> = corpus
            .sites
            .iter()
            .map(|s| l.load_mean(s, WebRadio::Lte, 4).plt_s)
            .collect();
        let med = fiveg_simcore::stats::median(&plts);
        assert!((1.0..8.0).contains(&med), "median 4G PLT {med}");
        let p99 = fiveg_simcore::stats::percentile(&plts, 99.0);
        assert!(p99 < 40.0, "p99 {p99}");
    }

    #[test]
    fn energy_magnitudes_match_fig19() {
        // Fig 19: binned mean energies of a few joules.
        let corpus = WebsiteCorpus::generate(300, 5);
        let l = loader();
        let e5: Vec<f64> = corpus
            .sites
            .iter()
            .map(|s| l.load_mean(s, WebRadio::MmWave5g, 4).energy_j)
            .collect();
        let med = fiveg_simcore::stats::median(&e5);
        assert!((2.0..10.0).contains(&med), "median 5G energy {med} J");
    }

    #[test]
    fn plt_gap_widens_with_object_count() {
        // Fig 19a: the 4G–5G PLT gap grows with the number of objects.
        let corpus = WebsiteCorpus::generate(600, 7);
        let l = loader();
        let mut small_gap = Vec::new();
        let mut large_gap = Vec::new();
        for site in &corpus.sites {
            let gap = l.load_mean(site, WebRadio::Lte, 4).plt_s
                - l.load_mean(site, WebRadio::MmWave5g, 4).plt_s;
            if site.n_objects <= 10 {
                small_gap.push(gap);
            } else if site.n_objects > 100 {
                large_gap.push(gap);
            }
        }
        let s = fiveg_simcore::stats::mean(&small_gap);
        let g = fiveg_simcore::stats::mean(&large_gap);
        assert!(g > 2.0 * s, "gap grows: {s} -> {g}");
    }

    #[test]
    fn loads_are_deterministic_per_rep() {
        let corpus = WebsiteCorpus::generate(3, 11);
        let l = loader();
        let a = l.load(&corpus.sites[0], WebRadio::MmWave5g, 0);
        let b = l.load(&corpus.sites[0], WebRadio::MmWave5g, 0);
        assert_eq!(a.plt_s, b.plt_s);
        let c = l.load(&corpus.sites[0], WebRadio::MmWave5g, 1);
        assert_ne!(a.plt_s, c.plt_s, "repetitions vary");
    }
}
