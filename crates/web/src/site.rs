//! The synthetic website corpus (Table 5 factors).
//!
//! The paper instruments Alexa's top 1500 websites; we generate a corpus
//! whose factor distributions match what HTTP-Archive-scale studies report:
//! log-normal object counts (tens to hundreds), Pareto object sizes,
//! a beta-like dynamic-object fraction, and a handful of images/videos.

use fiveg_simcore::RngStream;

/// One website's load-relevant factors (Table 5).
#[derive(Debug, Clone)]
pub struct Website {
    /// Site index in the corpus (rank stand-in).
    pub id: usize,
    /// Number of objects (NO).
    pub n_objects: usize,
    /// Number of dynamic objects (DNO numerator).
    pub n_dynamic: usize,
    /// Number of images (NI).
    pub n_images: usize,
    /// Number of videos (NV).
    pub n_videos: usize,
    /// Per-object sizes in bytes, `sizes[i]`; dynamic objects are the first
    /// `n_dynamic` entries.
    pub object_sizes: Vec<f64>,
}

impl Website {
    /// Total page size in bytes (PS).
    pub fn total_bytes(&self) -> f64 {
        self.object_sizes.iter().sum()
    }

    /// Average object size in bytes (AOS).
    pub fn avg_object_size(&self) -> f64 {
        if self.object_sizes.is_empty() {
            return 0.0;
        }
        self.total_bytes() / self.object_sizes.len() as f64
    }

    /// Fraction of objects that are dynamic (DNO).
    pub fn dynamic_fraction(&self) -> f64 {
        if self.n_objects == 0 {
            return 0.0;
        }
        self.n_dynamic as f64 / self.n_objects as f64
    }

    /// Bytes in dynamic objects over total bytes (DSO).
    pub fn dynamic_size_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0.0 {
            return 0.0;
        }
        self.object_sizes[..self.n_dynamic].iter().sum::<f64>() / total
    }

    /// The Table 5 feature vector, in a fixed order.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.dynamic_fraction(),
            self.dynamic_size_fraction(),
            self.n_objects as f64,
            self.n_images as f64,
            self.n_videos as f64,
            self.total_bytes() / 1e6,
            self.avg_object_size() / 1e3,
        ]
    }

    /// Names for [`Website::features`], matching Table 5 abbreviations.
    pub fn feature_names() -> Vec<String> {
        ["DNO", "DSO", "NO", "NI", "NV", "PS_MB", "AOS_KB"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }
}

/// A generated corpus of websites.
#[derive(Debug, Clone)]
pub struct WebsiteCorpus {
    /// The sites.
    pub sites: Vec<Website>,
}

impl WebsiteCorpus {
    /// Generates `n` sites deterministically from `seed` (the paper's
    /// corpus has 1500).
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = RngStream::new(seed, "web-corpus");
        let sites = (0..n)
            .map(|id| {
                // Object count: log-normal, median ≈ 55, long tail to ~1000.
                let n_objects = rng.log_normal(4.0, 0.9).clamp(3.0, 1000.0).round() as usize;
                // Dynamic fraction: mostly 10–50%, some ad-heavy outliers.
                let dyn_frac = rng.gen_range(0.02..0.95f64).powf(1.4);
                let n_dynamic = ((n_objects as f64) * dyn_frac).round() as usize;
                // Sizes: Pareto with 12 KB scale (median web object).
                let object_sizes: Vec<f64> = (0..n_objects)
                    .map(|_| rng.pareto(6_000.0, 1.2).min(8e6))
                    .collect();
                let n_images = ((n_objects as f64) * rng.gen_range(0.2..0.5)).round() as usize;
                let n_videos = if rng.chance(0.15) {
                    rng.gen_range(1..4)
                } else {
                    0
                };
                Website {
                    id,
                    n_objects,
                    n_dynamic: n_dynamic.min(n_objects),
                    n_images,
                    n_videos,
                    object_sizes,
                }
            })
            .collect();
        WebsiteCorpus { sites }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_simcore::stats::{median, percentile};

    #[test]
    fn corpus_has_realistic_object_counts() {
        let corpus = WebsiteCorpus::generate(1500, 1);
        let counts: Vec<f64> = corpus.sites.iter().map(|s| s.n_objects as f64).collect();
        let med = median(&counts);
        assert!((30.0..90.0).contains(&med), "median object count {med}");
        assert!(percentile(&counts, 99.0) > 200.0, "long tail exists");
    }

    #[test]
    fn page_sizes_span_the_fig19_buckets() {
        // Fig 19b buckets: <1 MB, 1–10 MB, >10 MB — all must be populated.
        let corpus = WebsiteCorpus::generate(1500, 1);
        let small = corpus
            .sites
            .iter()
            .filter(|s| s.total_bytes() < 1e6)
            .count();
        let mid = corpus
            .sites
            .iter()
            .filter(|s| (1e6..10e6).contains(&s.total_bytes()))
            .count();
        let large = corpus
            .sites
            .iter()
            .filter(|s| s.total_bytes() >= 10e6)
            .count();
        assert!(small > 50, "small {small}");
        assert!(mid > 300, "mid {mid}");
        assert!(large > 25, "large {large}");
    }

    #[test]
    fn factor_accessors_are_consistent() {
        let corpus = WebsiteCorpus::generate(100, 2);
        for s in &corpus.sites {
            assert!(s.n_dynamic <= s.n_objects);
            assert!((0.0..=1.0).contains(&s.dynamic_fraction()));
            assert!((0.0..=1.0).contains(&s.dynamic_size_fraction()));
            assert_eq!(s.object_sizes.len(), s.n_objects);
            assert_eq!(s.features().len(), Website::feature_names().len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WebsiteCorpus::generate(50, 9);
        let b = WebsiteCorpus::generate(50, 9);
        assert_eq!(a.sites[17].object_sizes, b.sites[17].object_sizes);
    }

    #[test]
    fn dynamic_fractions_cover_the_m4_split_range() {
        // Fig 22b: M4 sends sites with DNO > ~0.76 to 5G — such sites must
        // exist but be a minority.
        let corpus = WebsiteCorpus::generate(1500, 1);
        let heavy = corpus
            .sites
            .iter()
            .filter(|s| s.dynamic_fraction() > 0.76)
            .count();
        assert!(heavy > 15, "ad-heavy sites exist: {heavy}");
        assert!(heavy < 300, "but are a minority: {heavy}");
    }
}
