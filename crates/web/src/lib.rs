//! Web browsing over 4G and mmWave 5G (§6 of the paper).
//!
//! * [`site`] — a synthetic stand-in for the Alexa-top-1500 corpus, with
//!   the Table 5 factor distributions (object counts, sizes, dynamic
//!   fraction, images/videos),
//! * [`loader`] — a wave-based page-load simulator producing HAR-like
//!   records: PLT and radio energy per `<site, radio>` pair,
//! * [`ifselect`] — §6.2's interpretable 4G/5G selection: label each site
//!   by the utility `QoE = α·EC + β·PLT`, train a post-pruned Gini
//!   decision tree per (α, β) operating point (models M1–M5), and read the
//!   chosen split factors off the tree (Fig 22).

pub mod ifselect;
pub mod loader;
pub mod site;

pub use ifselect::{ModelSpec, SelectionModel};
pub use loader::{LoadResult, PageLoader, WebRadio};
pub use site::{Website, WebsiteCorpus};
