//! Benchmark for the page-load simulator (Fig 19/20 kernel).

use fiveg_bench::timing::bench;
use fiveg_radio::ue::UeModel;
use fiveg_web::loader::{PageLoader, WebRadio};
use fiveg_web::site::WebsiteCorpus;

fn main() {
    let corpus = WebsiteCorpus::generate(200, 42);
    let loader = PageLoader::new(UeModel::Pixel5, 42);
    bench("page_load_200_sites_both_radios", || {
        corpus
            .sites
            .iter()
            .map(|s| {
                loader.load(s, WebRadio::Lte, 0).plt_s + loader.load(s, WebRadio::MmWave5g, 0).plt_s
            })
            .sum::<f64>()
    });
}
