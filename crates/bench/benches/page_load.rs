//! Criterion benchmark for the page-load simulator (Fig 19/20 kernel).

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_radio::ue::UeModel;
use fiveg_web::loader::{PageLoader, WebRadio};
use fiveg_web::site::WebsiteCorpus;

fn bench(c: &mut Criterion) {
    let corpus = WebsiteCorpus::generate(200, 42);
    let loader = PageLoader::new(UeModel::Pixel5, 42);
    c.bench_function("page_load_200_sites_both_radios", |b| {
        b.iter(|| {
            corpus
                .sites
                .iter()
                .map(|s| {
                    loader.load(s, WebRadio::Lte, 0).plt_s
                        + loader.load(s, WebRadio::MmWave5g, 0).plt_s
                })
                .sum::<f64>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
