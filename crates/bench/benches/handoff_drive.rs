//! Criterion benchmark for the Fig 9 drive simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_geo::mobility::MobilityModel;
use fiveg_radio::cell::NetworkLayout;
use fiveg_radio::handoff::{simulate_drive, BandSetting, HandoffConfig};

fn bench(c: &mut Criterion) {
    let layout = NetworkLayout::tmobile_drive_corridor(42);
    let mobility = MobilityModel::driving_10km();
    let cfg = HandoffConfig::default();
    c.bench_function("drive_nsa_10km", |b| {
        b.iter(|| simulate_drive(&layout, &mobility, BandSetting::NsaPlusLte, &cfg, 42))
    });
    c.bench_function("drive_sa_10km", |b| {
        b.iter(|| simulate_drive(&layout, &mobility, BandSetting::SaOnly, &cfg, 42))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
