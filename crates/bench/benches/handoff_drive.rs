//! Benchmark for the Fig 9 drive simulation.

use fiveg_bench::timing::bench;
use fiveg_geo::mobility::MobilityModel;
use fiveg_radio::cell::NetworkLayout;
use fiveg_radio::handoff::{simulate_drive, BandSetting, HandoffConfig};

fn main() {
    let layout = NetworkLayout::tmobile_drive_corridor(42);
    let mobility = MobilityModel::driving_10km();
    let cfg = HandoffConfig::default();
    bench("drive_nsa_10km", || {
        simulate_drive(&layout, &mobility, BandSetting::NsaPlusLte, &cfg, 42)
    });
    bench("drive_sa_10km", || {
        simulate_drive(&layout, &mobility, BandSetting::SaOnly, &cfg, 42)
    });
}
