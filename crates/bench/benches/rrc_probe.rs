//! Criterion benchmark for RRC-Probe inference (Table 7 kernel).

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_probes::rrcprobe::RrcProbe;
use fiveg_rrc::profile::{RrcConfigId, RrcProfile};

fn bench(c: &mut Criterion) {
    let profile = RrcProfile::for_config(RrcConfigId::VzNsaMmWave);
    c.bench_function("rrcprobe_infer_nsa_mmwave", |b| {
        b.iter(|| RrcProbe::new(profile, 3.0, 7).infer())
    });
    c.bench_function("rrcprobe_staircase_16pts", |b| {
        let probe = RrcProbe::new(profile, 3.0, 7);
        let grid: Vec<f64> = (1..=16).map(|i| i as f64).collect();
        b.iter(|| probe.staircase(&grid))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
