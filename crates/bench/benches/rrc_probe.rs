//! Benchmark for RRC-Probe inference (Table 7 kernel).

use fiveg_bench::timing::bench;
use fiveg_probes::rrcprobe::RrcProbe;
use fiveg_rrc::profile::{RrcConfigId, RrcProfile};

fn main() {
    let profile = RrcProfile::for_config(RrcConfigId::VzNsaMmWave);
    bench("rrcprobe_infer_nsa_mmwave", || {
        RrcProbe::new(profile, 3.0, 7).infer()
    });
    let probe = RrcProbe::new(profile, 3.0, 7);
    let grid: Vec<f64> = (1..=16).map(|i| i as f64).collect();
    bench("rrcprobe_staircase_16pts", || probe.staircase(&grid));
}
