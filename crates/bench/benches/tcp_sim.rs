//! Benchmarks for the fluid TCP simulation (Fig 3/8 kernels).

use fiveg_bench::timing::bench;
use fiveg_transport::path::PathModel;
use fiveg_transport::tcp::{measure_throughput, TcpSimConfig};

fn path(rtt_ms: f64, capacity: f64) -> PathModel {
    PathModel {
        rtt_ms,
        loss_per_pkt: 1e-6,
        capacity_mbps: capacity,
        mss_bytes: 1460.0,
        queue_bdp: fiveg_transport::path::DEFAULT_QUEUE_BDP,
    }
}

fn main() {
    bench("tcp_single_15s", || {
        measure_throughput(path(20.0, 2200.0), TcpSimConfig::single_tuned(), 42)
    });
    bench("tcp_multi20_15s", || {
        measure_throughput(path(20.0, 3400.0), TcpSimConfig::multi(20), 42)
    });
}
