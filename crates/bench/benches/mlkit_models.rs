//! Benchmarks for the from-scratch ML models (§4.5/§5.3/§6.2).

use fiveg_bench::timing::bench;
use fiveg_mlkit::dataset::Dataset;
use fiveg_mlkit::gbdt::{GbdtConfig, GbdtRegressor};
use fiveg_mlkit::tree::{DecisionTreeRegressor, TreeConfig};
use fiveg_simcore::RngStream;

fn dataset(n: usize) -> Dataset {
    let mut rng = RngStream::new(1, "bench");
    let mut d = Dataset::new(vec!["a".into(), "b".into()], vec![], vec![]);
    for _ in 0..n {
        let a = rng.uniform();
        let b = rng.uniform();
        d.push(vec![a, b], (a * 6.0).sin() + b);
    }
    d
}

fn main() {
    let data = dataset(4000);
    bench("dtr_fit_4k", || {
        DecisionTreeRegressor::fit(&data, &TreeConfig::default())
    });
    let small = dataset(1000);
    bench("gbdt_fit_1k_x40", || {
        GbdtRegressor::fit(
            &small,
            &GbdtConfig {
                n_estimators: 40,
                ..GbdtConfig::default()
            },
        )
    });
}
