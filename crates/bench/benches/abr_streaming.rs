//! Criterion benchmarks for DASH sessions (Fig 17 kernel).

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_traces::lumos::TraceGenerator;
use fiveg_video::abr::{Bba, Mpc};
use fiveg_video::asset::VideoAsset;
use fiveg_video::player::{stream, PlayerConfig};

fn bench(c: &mut Criterion) {
    let trace = TraceGenerator::new(42).lumos5g_trace(0);
    let asset = VideoAsset::five_g_default();
    let cfg = PlayerConfig::default();
    c.bench_function("stream_bba_240s", |b| {
        b.iter(|| stream(&asset, &trace, &mut Bba::default(), &cfg, 0.0))
    });
    c.bench_function("stream_fastmpc_240s", |b| {
        b.iter(|| stream(&asset, &trace, &mut Mpc::fast(), &cfg, 0.0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
