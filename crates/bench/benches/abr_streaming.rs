//! Benchmarks for DASH sessions (Fig 17 kernel).

use fiveg_bench::timing::bench;
use fiveg_traces::lumos::TraceGenerator;
use fiveg_video::abr::{Bba, Mpc};
use fiveg_video::asset::VideoAsset;
use fiveg_video::player::{stream, PlayerConfig};

fn main() {
    let trace = TraceGenerator::new(42).lumos5g_trace(0);
    let asset = VideoAsset::five_g_default();
    let cfg = PlayerConfig::default();
    bench("stream_bba_240s", || {
        stream(&asset, &trace, &mut Bba::default(), &cfg, 0.0)
    });
    bench("stream_fastmpc_240s", || {
        stream(&asset, &trace, &mut Mpc::fast(), &cfg, 0.0)
    });
}
