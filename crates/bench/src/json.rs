//! A minimal JSON writer and parser for campaign manifests.
//!
//! The workspace builds with zero external dependencies, so instead of
//! `serde_json` the supervised runner serializes its manifest through this
//! small value tree. The parser exists for crash recovery: `figures
//! --resume` and `--check-manifest` read a prior run's manifest back.
//! Numbers round-trip byte-identically (Rust's `{}` float formatting is
//! shortest-round-trip), so re-rendering a parsed manifest reproduces the
//! original bytes.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document. Strict where it matters for round-tripping
    /// (no trailing garbage, no unbalanced structures), permissive about
    /// whitespace.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a fraction, like serde_json.
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let start = *pos;
        // Fast path: run of plain bytes.
        while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
            *pos += 1;
        }
        out.push_str(
            std::str::from_utf8(&b[start..*pos]).map_err(|e| format!("invalid utf-8: {e}"))?,
        );
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Manifests only emit control-character escapes, so
                        // plain BMP decoding (no surrogate pairs) suffices;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => unreachable!("loop stops only at quote or backslash"),
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.5).render(), "3.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structures_render() {
        let v = Json::obj(vec![
            ("id", Json::str("fig3")),
            ("ok", Json::Bool(false)),
            ("tries", Json::Num(2.0)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
        ]);
        assert_eq!(
            v.render(),
            "{\"id\":\"fig3\",\"ok\":false,\"tries\":2,\"tags\":[\"a\",\"b\"]}"
        );
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::obj(vec![("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn parse_round_trips_render() {
        let v = Json::obj(vec![
            ("id", Json::str("fig3")),
            ("ok", Json::Bool(false)),
            ("x", Json::Num(2.5)),
            ("pi", Json::Num(0.1 + 0.2)),
            ("neg", Json::Num(-17.0)),
            ("none", Json::Null),
            (
                "tags",
                Json::Arr(vec![Json::str("a\"b\\c\nd"), Json::Num(1e-9)]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, v);
        // Byte-identical re-render: floats use shortest-round-trip
        // formatting, so resume-written manifests hash identically.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_accepts_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] ,\n \"b\" : null } ").expect("parses");
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        // The truncated-JSON case a killed writer without atomic renames
        // would leave behind.
        let full = Json::obj(vec![("xs", Json::Arr(vec![Json::Num(1.0); 50]))]).render();
        assert!(Json::parse(&full[..full.len() / 2]).is_err());
    }

    #[test]
    fn accessors_select_fields() {
        let v = Json::parse("{\"s\":\"x\",\"n\":4.25,\"a\":[true]}").expect("parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(4.25));
        assert_eq!(
            v.get("a").and_then(Json::as_arr),
            Some(&[Json::Bool(true)][..])
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse("\"a\\u0041\\u00e9\"").expect("parses"),
            Json::str("aAé")
        );
    }
}
