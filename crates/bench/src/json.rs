//! A minimal JSON writer for campaign manifests.
//!
//! The workspace builds with zero external dependencies, so instead of
//! `serde_json` the supervised runner serializes its manifest through this
//! small value tree. Writing is all we need — nothing in the workspace
//! parses JSON back.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a fraction, like serde_json.
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.5).render(), "3.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structures_render() {
        let v = Json::obj(vec![
            ("id", Json::str("fig3")),
            ("ok", Json::Bool(false)),
            ("tries", Json::Num(2.0)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
        ]);
        assert_eq!(
            v.render(),
            "{\"id\":\"fig3\",\"ok\":false,\"tries\":2,\"tags\":[\"a\",\"b\"]}"
        );
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::obj(vec![("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":2}");
    }
}
