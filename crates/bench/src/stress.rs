//! The deterministic stress/shrink harness: randomized scenario ×
//! fault-schedule × parameter cases, an automatic shrinker, and replayable
//! reproducers.
//!
//! `figures --stress N` draws `N` cases from a seeded generator (each case
//! = one experiment run under one fault scenario with a perturbed seed and
//! event budget), runs them on the campaign worker pool
//! ([`crate::runner::pool_map`]), and classifies every failure: a panic, a
//! blown event budget, a non-finite number in the rendered artifact, or a
//! guard-plane violation ([`fiveg_simcore::guard`]). Each failing case is
//! then minimized — fault events delta-debugged away, the schedule horizon
//! bisected, the event budget halved — while the failure *key* (verdict +
//! violated invariant) is preserved, and the minimal case is written as a
//! reproducer JSON that `figures --repro <file>` replays exactly.
//!
//! Everything here is deterministic by construction: cases are pure
//! functions of `(stress seed, case index)`, execution installs the same
//! ambient planes the supervised runner does
//! ([`fiveg_simcore::ambient::install_schedule`] — so a shrunk, hand-edited
//! schedule installs exactly like a generated one), and the summary table
//! carries sim-side facts only (no wall-clock), so two runs of the same
//! seed produce byte-identical `stress.txt` files.

use crate::experiments::{self, Experiment};
use crate::json::Json;
use crate::report::Table;
use fiveg_simcore::ambient;
use fiveg_simcore::budget::EXHAUSTED_MSG;
use fiveg_simcore::cancel::{self, CancelToken};
use fiveg_simcore::faults::{FaultScenario, FaultSchedule};
use fiveg_simcore::guard::{self, GuardPolicy, VIOLATION_MSG};
use fiveg_simcore::RngStream;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Reproducer file format version.
pub const REPRO_VERSION: f64 = 1.0;

/// Smallest event budget the generator draws. Far above what any registry
/// experiment legitimately charges is *not* wanted here — stress cases are
/// allowed to trip the budget supervisor; the classifier records those as
/// [`Verdict::BudgetExhausted`] rather than failures of the simulators.
pub const MIN_CASE_BUDGET: u64 = 200_000_000;

/// Largest event budget the generator draws (the campaign default).
pub const MAX_CASE_BUDGET: u64 = 2_000_000_000;

/// Configuration of one stress campaign.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Number of generated cases.
    pub cases: usize,
    /// Master seed; every case derives from `(seed, index)` only.
    pub seed: u64,
    /// Pin every case to this fault scenario (`None` = draw per case).
    pub scenario: Option<String>,
    /// Inject the canary violation into every case (test hook: a
    /// deliberately broken invariant the harness must find and shrink).
    pub canary: bool,
    /// Worker threads for the case sweep.
    pub jobs: usize,
    /// Wall-clock deadline per case run (safety net only — a triggered
    /// deadline is nondeterministic, so it must be generous enough to
    /// never fire on healthy experiments). A cooperative cancellation
    /// token armed with this deadline lets a case that blows it unwind
    /// instead of leaking its thread.
    pub deadline: Duration,
    /// Upper bound on the event budgets the generator draws (the
    /// campaign's `--event-budget` threads through here, so a lowered
    /// campaign budget also lowers the stress sweep's — and with it the
    /// starting point of the shrinker's budget-halving phase). At the
    /// default [`MAX_CASE_BUDGET`] the draw is unchanged.
    pub max_budget: u64,
    /// Restrict generation to these experiment ids (`None` = whole
    /// registry). Test hook for cheap, targeted sweeps.
    pub experiments: Option<Vec<String>>,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            cases: 16,
            seed: crate::CAMPAIGN_SEED,
            scenario: None,
            canary: false,
            jobs: 1,
            deadline: Duration::from_secs(120),
            max_budget: MAX_CASE_BUDGET,
            experiments: None,
        }
    }
}

/// One generated (or shrunk, or replayed) stress case.
#[derive(Debug, Clone, PartialEq)]
pub struct StressCase {
    /// Index within the stress campaign (part of the reproducer name).
    pub id: usize,
    /// Registry experiment id.
    pub experiment: String,
    /// Fault scenario name (`None` = no fault plane installed).
    pub scenario: Option<String>,
    /// Seed handed to the experiment and the schedule generator.
    pub seed: u64,
    /// Event budget armed for the run.
    pub event_budget: u64,
    /// Shrinker state: keep only these (time-sorted) event indices of the
    /// generated schedule (`None` = all).
    pub keep: Option<Vec<usize>>,
    /// Shrinker state: truncate the schedule to events starting before
    /// this horizon (`None` = full horizon).
    pub horizon_s: Option<f64>,
    /// Inject the canary violation (test hook).
    pub canary: bool,
}

impl StressCase {
    /// The effective fault schedule: generated from `(seed, scenario)`,
    /// then restricted/truncated by the shrinker state. `Err` on an
    /// unknown scenario name (a hand-edited reproducer).
    pub fn schedule(&self) -> Result<Option<FaultSchedule>, String> {
        let Some(name) = &self.scenario else {
            return Ok(None);
        };
        let scenario = FaultScenario::by_name(name)
            .ok_or_else(|| format!("unknown fault scenario {name:?}"))?;
        let mut schedule = FaultSchedule::generate(self.seed, &scenario);
        if let Some(keep) = &self.keep {
            schedule = schedule.restricted(keep);
        }
        if let Some(h) = self.horizon_s {
            schedule = schedule.truncated(h);
        }
        Ok(Some(schedule))
    }

    /// Case size for shrink accounting: the number of fault events the
    /// case installs (0 for a plane-free case).
    pub fn size(&self) -> usize {
        self.schedule()
            .ok()
            .flatten()
            .map_or(0, |s| s.events().len())
    }

    /// Serializes the case for a reproducer file.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Num(self.id as f64)),
            ("experiment", Json::str(self.experiment.clone())),
            (
                "scenario",
                match &self.scenario {
                    Some(s) => Json::str(s.clone()),
                    None => Json::Null,
                },
            ),
            // Full-range u64 — a JSON number (f64) would round above 2^53
            // and replay a *different* seed, so seeds travel as strings.
            ("seed", Json::str(self.seed.to_string())),
            ("event_budget", Json::Num(self.event_budget as f64)),
            (
                "keep",
                match &self.keep {
                    Some(k) => Json::Arr(k.iter().map(|&i| Json::Num(i as f64)).collect()),
                    None => Json::Null,
                },
            ),
            (
                "horizon_s",
                match self.horizon_s {
                    Some(h) => Json::Num(h),
                    None => Json::Null,
                },
            ),
            ("canary", Json::Bool(self.canary)),
        ])
    }

    /// Parses a case back from a reproducer file.
    pub fn from_json(v: &Json) -> Result<StressCase, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("case: missing number {key:?}"))
        };
        let experiment = v
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or("case: missing experiment")?
            .to_string();
        let scenario = match v.get("scenario") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let seed = v
            .get("seed")
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or("case: missing or non-decimal seed")?;
        let keep = match v.get("keep") {
            Some(Json::Arr(items)) => Some(
                items
                    .iter()
                    .map(|i| i.as_f64().map(|x| x as usize).ok_or("case: bad keep index"))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            _ => None,
        };
        let horizon_s = v.get("horizon_s").and_then(Json::as_f64);
        let canary = matches!(v.get("canary"), Some(Json::Bool(true)));
        Ok(StressCase {
            id: num("id")? as usize,
            experiment,
            scenario,
            seed,
            event_budget: num("event_budget")? as u64,
            keep,
            horizon_s,
            canary,
        })
    }
}

/// How a stress case ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Ran to completion, clean guards, finite artifact.
    Pass,
    /// The guard plane recorded at least one invariant violation.
    GuardViolation,
    /// The experiment panicked (other than a budget trip).
    Panic,
    /// The event budget supervisor killed the run.
    BudgetExhausted,
    /// The rendered artifact contains a non-finite number.
    NonFinite,
    /// The wall-clock safety deadline fired (nondeterministic — treated
    /// as a failure but never shrunk, since it cannot replay reliably).
    Deadline,
}

impl Verdict {
    /// Stable name, used in tables and reproducer files.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::GuardViolation => "guard-violation",
            Verdict::Panic => "panic",
            Verdict::BudgetExhausted => "budget-exhausted",
            Verdict::NonFinite => "non-finite",
            Verdict::Deadline => "deadline",
        }
    }

    /// Parses a verdict name.
    pub fn parse(s: &str) -> Option<Verdict> {
        [
            Verdict::Pass,
            Verdict::GuardViolation,
            Verdict::Panic,
            Verdict::BudgetExhausted,
            Verdict::NonFinite,
            Verdict::Deadline,
        ]
        .into_iter()
        .find(|v| v.as_str() == s)
    }

    /// True for any non-pass outcome.
    pub fn failed(self) -> bool {
        self != Verdict::Pass
    }
}

/// The classified outcome of one case run.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOutcome {
    /// Classification.
    pub verdict: Verdict,
    /// Deterministic failure signature: the first guard violation's
    /// rendering, the panic note, or a short classifier tag. Empty on a
    /// pass.
    pub signature: String,
    /// Total guard violations the run recorded.
    pub violations: u64,
}

impl CaseOutcome {
    /// The shrink-stable failure key: verdict plus the violated invariant
    /// (the signature up to its sim-time, which legitimately moves as
    /// events are dropped).
    pub fn failure_key(&self) -> String {
        let prefix = self
            .signature
            .split(" @ ")
            .next()
            .unwrap_or(&self.signature);
        format!("{}:{}", self.verdict.as_str(), prefix)
    }
}

/// Extracts a readable note from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "panic with non-string payload".to_string())
}

/// True when `text` contains a standalone `NaN` token (word-boundary
/// checked, so "NaNometers" doesn't trip).
///
/// Only `NaN` counts as non-finite here: the repo's artifact formatter
/// (`bench::expect::fmt_num`, and e.g. fig17's stall-increase column)
/// deliberately renders an undefined ratio as the token `inf`, so `inf`
/// in an artifact is a documented sentinel, not a numeric escape. A NaN,
/// by contrast, is always an arithmetic bug.
pub fn contains_non_finite(text: &str) -> bool {
    let bytes = text.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let token = "NaN";
    let mut from = 0;
    while let Some(pos) = text[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let ok_before = start == 0 || !is_word(bytes[start - 1]);
        let ok_after = end == bytes.len() || !is_word(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Runs one case on a fresh supervised thread and classifies the result.
/// `Err` only on a malformed case (unknown experiment or scenario).
pub fn run_case(case: &StressCase, deadline: Duration) -> Result<CaseOutcome, String> {
    let f: Experiment = experiments::registry()
        .into_iter()
        .find(|(id, _)| *id == case.experiment)
        .map(|(_, f)| f)
        .ok_or_else(|| format!("unknown experiment {:?}", case.experiment))?;
    let schedule = case.schedule()?;
    let seed = case.seed;
    let event_budget = case.event_budget;
    let canary = case.canary;
    // The case thread arms a deadline-bearing cancellation token: a case
    // that blows the wall-clock safety net unwinds at its next budget poll
    // and exits, instead of leaking a spinning thread for the rest of the
    // stress sweep.
    let token = Arc::new(CancelToken::with_deadline(Instant::now() + deadline));
    let case_token = Arc::clone(&token);
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name(format!("stress-{}", case.id))
        .spawn(move || {
            // Same ambient world as a supervised campaign attempt, except
            // the schedule may be a shrunk reproducer's.
            let _ambient = ambient::install_schedule(
                schedule,
                event_budget,
                false,
                Some(GuardPolicy::Record),
                Some(case_token),
            );
            if canary {
                guard::check("stress", "canary", false, 0.0, || {
                    "deliberately broken invariant (canary)".to_string()
                });
            }
            let result = std::panic::catch_unwind(|| f(seed));
            let guards = guard::drain();
            let _ = tx.send(match result {
                Ok(report) => Ok((report.render(), guards)),
                Err(payload) => Err((panic_message(payload.as_ref()), guards)),
            });
        });
    if let Err(e) = spawned {
        return Err(format!("spawn failed: {e}"));
    }
    let outcome = match rx.recv_timeout(deadline) {
        Ok(Ok((rendered, guards))) => {
            if !guards.is_clean() {
                CaseOutcome {
                    verdict: Verdict::GuardViolation,
                    signature: guards.violations[0].signature(),
                    violations: guards.violation_count(),
                }
            } else if contains_non_finite(&rendered) {
                CaseOutcome {
                    verdict: Verdict::NonFinite,
                    signature: "NaN in rendered artifact".to_string(),
                    violations: 0,
                }
            } else {
                CaseOutcome {
                    verdict: Verdict::Pass,
                    signature: String::new(),
                    violations: 0,
                }
            }
        }
        Ok(Err((msg, guards))) => {
            // A panic outranks recorded violations, except that a budget
            // trip, a fail-fast guard panic, and a deadline cancellation
            // each classify as themselves.
            if cancel::is_cancel_panic(&msg) {
                // The token's deadline fired and the case unwound
                // cooperatively: same verdict and signature as the
                // abandon path below, so `stress.txt` never depends on
                // which side of the race the kill landed.
                CaseOutcome {
                    verdict: Verdict::Deadline,
                    signature: format!("deadline exceeded ({:.1}s)", deadline.as_secs_f64()),
                    violations: 0,
                }
            } else if msg.starts_with(EXHAUSTED_MSG) {
                CaseOutcome {
                    verdict: Verdict::BudgetExhausted,
                    signature: EXHAUSTED_MSG.to_string(),
                    violations: guards.violation_count(),
                }
            } else if msg.starts_with(VIOLATION_MSG) {
                CaseOutcome {
                    verdict: Verdict::GuardViolation,
                    signature: msg
                        .strip_prefix(VIOLATION_MSG)
                        .unwrap_or(&msg)
                        .trim_start_matches(": ")
                        .to_string(),
                    violations: guards.violation_count().max(1),
                }
            } else {
                CaseOutcome {
                    verdict: Verdict::Panic,
                    signature: msg,
                    violations: guards.violation_count(),
                }
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // The armed token self-cancels at the case's next budget poll;
            // give the thread a short grace to unwind before abandoning it
            // (a case that never polls — e.g. wedged outside the budgeted
            // loops — still leaks, as before, but now only those do).
            let _ = rx.recv_timeout(Duration::from_secs(2));
            CaseOutcome {
                verdict: Verdict::Deadline,
                signature: format!("deadline exceeded ({:.1}s)", deadline.as_secs_f64()),
                violations: 0,
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => CaseOutcome {
            verdict: Verdict::Deadline,
            signature: format!("deadline exceeded ({:.1}s)", deadline.as_secs_f64()),
            violations: 0,
        },
    };
    Ok(outcome)
}

/// Generates the campaign's cases: pure function of the config (and
/// through it the stress seed), independent of execution order.
pub fn generate_cases(cfg: &StressConfig) -> Vec<StressCase> {
    let registry = experiments::registry();
    let ids: Vec<&str> = match &cfg.experiments {
        Some(list) => registry
            .iter()
            .map(|(id, _)| *id)
            .filter(|id| list.iter().any(|x| x == id))
            .collect(),
        None => registry.iter().map(|(id, _)| *id).collect(),
    };
    assert!(!ids.is_empty(), "no experiments to stress");
    let scenarios = FaultScenario::names();
    (0..cfg.cases)
        .map(|i| {
            let mut rng = RngStream::new(cfg.seed, &format!("stress/case/{i}"));
            let experiment = rng.choose(&ids).to_string();
            let scenario = match &cfg.scenario {
                Some(pinned) => Some(pinned.clone()),
                None => Some(rng.choose(&scenarios).to_string()),
            };
            let seed = rng.next_u64();
            // Draw in [lo, max_budget): at the default cap this is exactly
            // the historical `MIN + r % (MAX - MIN)` draw (byte-identical
            // cases); a lowered campaign `--event-budget` pulls the whole
            // band down with it.
            let lo = MIN_CASE_BUDGET.min(cfg.max_budget);
            let span = cfg.max_budget.saturating_sub(lo).max(1);
            let event_budget = lo + rng.next_u64() % span;
            StressCase {
                id: i,
                experiment,
                scenario,
                seed,
                event_budget,
                keep: None,
                horizon_s: None,
                canary: cfg.canary,
            }
        })
        .collect()
}

/// Hard cap on shrinker candidate runs per failing case.
const MAX_SHRINK_RUNS: usize = 160;

/// Minimizes a failing case while preserving its
/// [`CaseOutcome::failure_key`]. Returns the minimal case, its outcome,
/// and the number of candidate runs spent. Deadline verdicts are returned
/// unshrunk (they do not replay deterministically).
pub fn shrink(
    case: &StressCase,
    outcome: &CaseOutcome,
    deadline: Duration,
) -> (StressCase, CaseOutcome, usize) {
    if outcome.verdict == Verdict::Deadline {
        return (case.clone(), outcome.clone(), 0);
    }
    let key = outcome.failure_key();
    let mut best = case.clone();
    let mut best_outcome = outcome.clone();
    let mut runs = 0usize;
    let try_candidate = |candidate: &StressCase, runs: &mut usize| -> Option<CaseOutcome> {
        if *runs >= MAX_SHRINK_RUNS {
            return None;
        }
        *runs += 1;
        match run_case(candidate, deadline) {
            Ok(o) if o.verdict.failed() && o.failure_key() == key => Some(o),
            _ => None,
        }
    };

    // Phase 1: delta-debug the fault events (classic ddmin chunk halving
    // over the kept time-sorted indices).
    let total_events = best.size();
    if best.scenario.is_some() && total_events > 0 {
        let mut kept: Vec<usize> = match &best.keep {
            Some(k) => k.clone(),
            None => (0..total_events).collect(),
        };
        let mut chunk = kept.len().div_ceil(2).max(1);
        while chunk >= 1 && !kept.is_empty() && runs < MAX_SHRINK_RUNS {
            let mut i = 0;
            let mut reduced = false;
            while i < kept.len() {
                let mut candidate_keep = kept.clone();
                let hi = (i + chunk).min(candidate_keep.len());
                candidate_keep.drain(i..hi);
                let candidate = StressCase {
                    keep: Some(candidate_keep.clone()),
                    ..best.clone()
                };
                if let Some(o) = try_candidate(&candidate, &mut runs) {
                    kept = candidate_keep;
                    best = candidate;
                    best_outcome = o;
                    reduced = true;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 && !reduced {
                break;
            }
            if !reduced {
                chunk = (chunk / 2).max(1);
            }
        }
    }

    // Phase 2: drop the scenario entirely when no events are left to
    // matter (the failure is schedule-independent).
    if best.scenario.is_some() {
        let candidate = StressCase {
            scenario: None,
            keep: None,
            horizon_s: None,
            ..best.clone()
        };
        if let Some(o) = try_candidate(&candidate, &mut runs) {
            best = candidate;
            best_outcome = o;
        }
    }

    // Phase 3: bisect the schedule horizon (only meaningful with events
    // still installed).
    if best.scenario.is_some() && best.size() > 0 {
        let mut lo = 0.0f64;
        let mut hi = best.horizon_s.unwrap_or_else(|| {
            best.schedule()
                .ok()
                .flatten()
                .and_then(|s| s.events().last().map(|e| e.start_s + 1.0))
                .unwrap_or(3_600.0)
        });
        for _ in 0..12 {
            if runs >= MAX_SHRINK_RUNS {
                break;
            }
            let mid = (lo + hi) / 2.0;
            let candidate = StressCase {
                horizon_s: Some(mid),
                ..best.clone()
            };
            match try_candidate(&candidate, &mut runs) {
                Some(o) => {
                    hi = mid;
                    best = candidate;
                    best_outcome = o;
                }
                None => lo = mid,
            }
        }
    }

    // Phase 4: halve the event budget while the same failure reproduces.
    for _ in 0..20 {
        if runs >= MAX_SHRINK_RUNS || best.event_budget <= 1_000 {
            break;
        }
        let candidate = StressCase {
            event_budget: (best.event_budget / 2).max(1_000),
            ..best.clone()
        };
        match try_candidate(&candidate, &mut runs) {
            Some(o) => {
                best = candidate;
                best_outcome = o;
            }
            None => break,
        }
    }

    (best, best_outcome, runs)
}

/// One case's full stress record.
#[derive(Debug, Clone)]
pub struct StressResult {
    /// The generated case.
    pub case: StressCase,
    /// Its classified outcome.
    pub outcome: CaseOutcome,
    /// For failures: the shrunk case, its outcome, and shrink runs spent.
    pub shrunk: Option<(StressCase, CaseOutcome, usize)>,
}

/// The whole campaign's records, in case order.
#[derive(Debug, Clone)]
pub struct StressReport {
    /// Per-case records, index = case id.
    pub results: Vec<StressResult>,
    /// The stress seed (for reproducer files).
    pub seed: u64,
}

impl StressReport {
    /// Number of failed cases.
    pub fn failures(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome.verdict.failed())
            .count()
    }
}

/// Runs the full stress campaign: generate, sweep on the worker pool,
/// shrink every failure in place (still inside the pool, so a campaign
/// with several failures shrinks them concurrently).
pub fn run_stress(cfg: &StressConfig) -> StressReport {
    let cases = generate_cases(cfg);
    let deadline = cfg.deadline;
    let (results, _busy) = crate::runner::pool_map(cases.len(), cfg.jobs, |i| {
        let case = &cases[i];
        match run_case(case, deadline) {
            Ok(outcome) => {
                let shrunk = outcome
                    .verdict
                    .failed()
                    .then(|| shrink(case, &outcome, deadline));
                StressResult {
                    case: case.clone(),
                    outcome,
                    shrunk,
                }
            }
            Err(e) => StressResult {
                case: case.clone(),
                outcome: CaseOutcome {
                    verdict: Verdict::Panic,
                    signature: format!("malformed case: {e}"),
                    violations: 0,
                },
                shrunk: None,
            },
        }
    });
    StressReport {
        results,
        seed: cfg.seed,
    }
}

/// Renders the deterministic campaign summary (`stress.txt`): sim-side
/// facts only — case identity, verdict, sizes — never wall-clock.
pub fn stress_table(report: &StressReport) -> String {
    let mut t = Table::new(vec![
        "case",
        "experiment",
        "scenario",
        "verdict",
        "size",
        "shrunk",
        "signature",
    ]);
    for r in &report.results {
        let scenario = r.case.scenario.as_deref().unwrap_or("-").to_string();
        let (shrunk_size, signature) = match &r.shrunk {
            Some((c, o, _)) => (format!("{}", c.size()), o.signature.clone()),
            None => (
                "-".to_string(),
                if r.outcome.verdict.failed() {
                    r.outcome.signature.clone()
                } else {
                    String::new()
                },
            ),
        };
        t.row(vec![
            format!("{}", r.case.id),
            r.case.experiment.clone(),
            scenario,
            r.outcome.verdict.as_str().to_string(),
            format!("{}", r.case.size()),
            shrunk_size,
            signature,
        ]);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "stress campaign: seed {} — {} cases, {} failed\n\n",
        report.seed,
        report.results.len(),
        report.failures()
    ));
    out.push_str(&t.render());
    out
}

/// Builds a reproducer document for a (shrunk) failing case.
pub fn repro_json(stress_seed: u64, case: &StressCase, expected: &CaseOutcome) -> Json {
    Json::obj(vec![
        ("version", Json::Num(REPRO_VERSION)),
        ("stress_seed", Json::str(stress_seed.to_string())),
        ("case", case.to_json()),
        (
            "expected",
            Json::obj(vec![
                ("verdict", Json::str(expected.verdict.as_str())),
                ("signature", Json::str(expected.signature.clone())),
                ("violations", Json::Num(expected.violations as f64)),
            ]),
        ),
    ])
}

/// Parses a reproducer document into its case and expected outcome.
pub fn parse_repro(s: &str) -> Result<(StressCase, CaseOutcome), String> {
    let v = Json::parse(s)?;
    let case = StressCase::from_json(v.get("case").ok_or("repro: missing case")?)?;
    let expected = v.get("expected").ok_or("repro: missing expected")?;
    let verdict = expected
        .get("verdict")
        .and_then(Json::as_str)
        .and_then(Verdict::parse)
        .ok_or("repro: bad expected.verdict")?;
    let signature = expected
        .get("signature")
        .and_then(Json::as_str)
        .ok_or("repro: missing expected.signature")?
        .to_string();
    let violations = expected
        .get("violations")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    Ok((
        case,
        CaseOutcome {
            verdict,
            signature,
            violations,
        },
    ))
}

/// Replays a reproducer document: runs its case and reports whether the
/// observed outcome matches the expected one exactly (verdict and
/// signature).
pub fn replay_repro(
    doc: &str,
    deadline: Duration,
) -> Result<(StressCase, CaseOutcome, CaseOutcome, bool), String> {
    let (case, expected) = parse_repro(doc)?;
    let observed = run_case(&case, deadline)?;
    let matches = observed.verdict == expected.verdict && observed.signature == expected.signature;
    Ok((case, expected, observed, matches))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> StressConfig {
        StressConfig {
            cases: 3,
            seed: 7,
            scenario: Some("quiet".to_string()),
            experiments: Some(vec!["fig10".to_string()]),
            ..StressConfig::default()
        }
    }

    #[test]
    fn case_generation_is_deterministic() {
        let cfg = StressConfig {
            cases: 5,
            seed: 11,
            ..StressConfig::default()
        };
        let a = generate_cases(&cfg);
        let b = generate_cases(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let c = generate_cases(&StressConfig { seed: 12, ..cfg });
        assert_ne!(a, c, "a different seed draws different cases");
    }

    #[test]
    fn lowered_max_budget_bounds_the_draws_without_reshuffling() {
        let cfg = StressConfig {
            cases: 8,
            seed: 11,
            ..StressConfig::default()
        };
        let default_cases = generate_cases(&cfg);
        let lowered_cfg = StressConfig {
            max_budget: 300_000_000,
            ..cfg
        };
        let lowered = generate_cases(&lowered_cfg);
        for (a, b) in default_cases.iter().zip(&lowered) {
            // Only the budget band moves: the cap changes the modulus of
            // the last draw, never the experiment/scenario/seed stream.
            assert_eq!(a.experiment, b.experiment);
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.seed, b.seed);
            assert!(b.event_budget < 300_000_000, "got {}", b.event_budget);
            assert!(b.event_budget >= MIN_CASE_BUDGET.min(300_000_000));
        }
    }

    #[test]
    fn case_json_round_trips() {
        let case = StressCase {
            id: 3,
            experiment: "fig9".to_string(),
            scenario: Some("chaos".to_string()),
            // Above 2^53: pins that seeds round-trip losslessly (a JSON
            // f64 number would silently round this).
            seed: u64::MAX - 12_345,
            event_budget: 500_000_000,
            keep: Some(vec![0, 2, 5]),
            horizon_s: Some(1234.5),
            canary: true,
        };
        let parsed = StressCase::from_json(&case.to_json()).expect("round trip");
        assert_eq!(parsed, case);
        // And with the optional fields absent.
        let bare = StressCase {
            scenario: None,
            keep: None,
            horizon_s: None,
            canary: false,
            ..case
        };
        assert_eq!(StressCase::from_json(&bare.to_json()).expect("bare"), bare);
    }

    #[test]
    fn verdict_names_round_trip() {
        for v in [
            Verdict::Pass,
            Verdict::GuardViolation,
            Verdict::Panic,
            Verdict::BudgetExhausted,
            Verdict::NonFinite,
            Verdict::Deadline,
        ] {
            assert_eq!(Verdict::parse(v.as_str()), Some(v));
        }
        assert_eq!(Verdict::parse("nope"), None);
    }

    #[test]
    fn non_finite_scan_respects_word_boundaries() {
        assert!(contains_non_finite("value NaN here"));
        assert!(contains_non_finite("NaN"));
        assert!(!contains_non_finite("NaNometers")); // word continues
        assert!(!contains_non_finite("banana")); // case-sensitive
        assert!(!contains_non_finite("all finite: 3.25"));
        // `inf` is the repo's documented undefined-ratio sentinel
        // (fig17's stall-increase column at the default seed), never a
        // stress failure.
        assert!(!contains_non_finite("stall increase: inf"));
    }

    #[test]
    fn quiet_case_passes() {
        let cases = generate_cases(&quick_cfg());
        let out = run_case(&cases[0], Duration::from_secs(120)).expect("valid case");
        assert_eq!(out.verdict, Verdict::Pass, "{}", out.signature);
        assert_eq!(out.violations, 0);
    }

    #[test]
    fn canary_is_caught_and_shrinks_to_nothing() {
        let cfg = StressConfig {
            canary: true,
            scenario: Some("rrc-flaky".to_string()),
            ..quick_cfg()
        };
        let cases = generate_cases(&cfg);
        let out = run_case(&cases[0], Duration::from_secs(120)).expect("valid case");
        assert_eq!(out.verdict, Verdict::GuardViolation);
        assert!(
            out.signature.starts_with("stress/canary"),
            "{}",
            out.signature
        );
        let (small, small_out, runs) = shrink(&cases[0], &out, Duration::from_secs(120));
        assert!(runs > 0);
        assert_eq!(small_out.failure_key(), out.failure_key());
        assert_eq!(small.size(), 0, "canary does not need any fault events");
        assert!(small.scenario.is_none(), "scenario dropped entirely");
        assert!(small.event_budget < cases[0].event_budget, "budget shrunk");
    }

    #[test]
    fn tiny_budget_classifies_as_exhausted() {
        let mut cases = generate_cases(&quick_cfg());
        // fig9 drives the handoff loop, which charges the event budget.
        cases[0].experiment = "fig9".to_string();
        cases[0].event_budget = 10;
        let out = run_case(&cases[0], Duration::from_secs(120)).expect("valid case");
        assert_eq!(out.verdict, Verdict::BudgetExhausted, "{}", out.signature);
    }

    #[test]
    fn repro_round_trips_and_replays() {
        let case = StressCase {
            id: 0,
            experiment: "fig10".to_string(),
            scenario: None,
            seed: 99,
            event_budget: 1_000_000,
            keep: None,
            horizon_s: None,
            canary: true,
        };
        let out = run_case(&case, Duration::from_secs(120)).expect("valid");
        assert_eq!(out.verdict, Verdict::GuardViolation);
        let doc = repro_json(7, &case, &out).render();
        let (replayed_case, expected, observed, matches) =
            replay_repro(&doc, Duration::from_secs(120)).expect("replay");
        assert_eq!(replayed_case, case);
        assert_eq!(expected, out);
        assert!(matches, "expected {expected:?}, observed {observed:?}");
    }

    #[test]
    fn malformed_cases_are_rejected() {
        let mut case = generate_cases(&quick_cfg())[0].clone();
        case.experiment = "not-an-experiment".to_string();
        assert!(run_case(&case, Duration::from_secs(5)).is_err());
        let mut case = generate_cases(&quick_cfg())[0].clone();
        case.scenario = Some("not-a-scenario".to_string());
        assert!(run_case(&case, Duration::from_secs(5)).is_err());
    }
}
