//! The intra-experiment sharding layer: long experiments declare their
//! independent units here, and the supervised runner fans those units out
//! to the *same* work-stealing pool it already uses for whole experiments
//! (nested work units on one shared pool — no second thread layer).
//!
//! The contract that keeps every artifact byte-identical to the unsharded
//! path:
//!
//! * a shard body is a **pure function of `(seed, shard_index)`** — it
//!   re-derives whatever inputs it needs (trace corpora, campaign
//!   settings) from the seed instead of sharing state with its siblings;
//! * a shard returns **raw `f64` values**, never formatted text; the
//!   experiment's [`ShardableExperiment::merge`] reducer runs the exact
//!   formatting code of the original monolithic experiment over the parts
//!   in fixed shard order, so the rendered report is bit-equal no matter
//!   how the shards were scheduled;
//! * the registry function of every sharded experiment (`fig15(seed)`,
//!   …) is itself implemented as "run every shard in order, then merge" —
//!   the unsharded serial path and the pooled path execute the *same*
//!   decomposition, so their equality is by construction, and
//!   `figures --validate` pins the decomposition itself against the
//!   committed goldens;
//! * ambient planes (faults/recovery/telemetry/guards/budget/cancel) are
//!   installed **per shard attempt** by the runner, keyed by the pure
//!   [`shard_plane_seed`] derivation — so a shard's fault world depends
//!   only on `(attempt seed, experiment, shard)`, never on scheduling.

use crate::experiments::{ablations, bonded, modeling, video};
use crate::report::Report;
use fiveg_simcore::RngStream;

/// One experiment's shard declaration: how many independent units it
/// splits into, how to run one, and how to reduce the parts back into the
/// rendered report.
#[derive(Clone, Copy)]
pub struct ShardableExperiment {
    /// Registry experiment id.
    pub id: &'static str,
    /// Number of shards; `run` accepts `0..shards`.
    pub shards: usize,
    /// Runs one shard: pure in `(seed, shard_index)`, returns raw values.
    pub run: fn(u64, usize) -> Vec<f64>,
    /// Order-fixed deterministic reducer: parts are indexed by shard.
    pub merge: fn(u64, &[Vec<f64>]) -> Report,
}

/// Every experiment that declares shards, in registry order.
pub fn shardable() -> Vec<ShardableExperiment> {
    vec![
        ShardableExperiment {
            id: "fig15",
            shards: modeling::FIG15_SHARDS,
            run: modeling::fig15_shard,
            merge: modeling::fig15_merge,
        },
        ShardableExperiment {
            id: "fig16",
            shards: modeling::FIG16_SHARDS,
            run: modeling::fig16_shard,
            merge: modeling::fig16_merge,
        },
        ShardableExperiment {
            id: "fig17",
            shards: video::FIG17_SHARDS,
            run: video::fig17_shard,
            merge: video::fig17_merge,
        },
        ShardableExperiment {
            id: "fig18a",
            shards: video::FIG18A_SHARDS,
            run: video::fig18a_shard,
            merge: video::fig18a_merge,
        },
        ShardableExperiment {
            id: "fig18b",
            shards: video::FIG18B_SHARDS,
            run: video::fig18b_shard,
            merge: video::fig18b_merge,
        },
        ShardableExperiment {
            id: "fig18c",
            shards: video::FIG18C_SHARDS,
            run: video::fig18c_shard,
            merge: video::fig18c_merge,
        },
        ShardableExperiment {
            id: "ablation-pensieve",
            shards: ablations::ABLATION_PENSIEVE_SHARDS,
            run: ablations::ablation_pensieve_shard,
            merge: ablations::ablation_pensieve_merge,
        },
        ShardableExperiment {
            id: "bonded-uplink",
            shards: bonded::BONDED_UPLINK_SHARDS,
            run: bonded::bonded_uplink_shard,
            merge: bonded::bonded_uplink_merge,
        },
    ]
}

/// Looks up an experiment's shard declaration by registry id.
pub fn find(id: &str) -> Option<ShardableExperiment> {
    shardable().into_iter().find(|s| s.id == id)
}

/// The pure plane-seed derivation for one shard attempt: the fault plane
/// (and nothing else — shard *data* seeds are the attempt seed verbatim,
/// or the artifact bytes would change) is generated from this stream, so
/// two shards of one attempt live in distinct, deterministic fault worlds
/// regardless of which worker runs them or in what order.
pub fn shard_plane_seed(attempt_seed: u64, id: &str, shard: usize) -> u64 {
    RngStream::new(attempt_seed, &format!("runner/shard/{id}/{shard}")).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sharded_experiment_is_in_the_registry() {
        let registry = crate::experiments::registry();
        for spec in shardable() {
            assert!(
                registry.iter().any(|(id, _)| *id == spec.id),
                "{} is not a registry experiment",
                spec.id
            );
            assert!(spec.shards >= 2, "{}: sharding needs >= 2 units", spec.id);
        }
    }

    #[test]
    fn find_hits_and_misses() {
        assert_eq!(find("fig15").map(|s| s.shards), Some(6));
        assert!(find("table1").is_none());
    }

    #[test]
    fn plane_seed_derivation_is_pure_and_distinct() {
        let a = shard_plane_seed(2021, "fig15", 0);
        assert_eq!(a, shard_plane_seed(2021, "fig15", 0), "pure");
        assert_ne!(a, shard_plane_seed(2021, "fig15", 1), "shard-distinct");
        assert_ne!(a, shard_plane_seed(2021, "fig16", 0), "id-distinct");
        assert_ne!(a, shard_plane_seed(2022, "fig15", 0), "seed-distinct");
    }
}
