//! The supervised experiment runner: chaos-tolerant campaign execution.
//!
//! `figures all` regenerates ~40 experiments in sequence; one panicking,
//! wedged, or runaway experiment must not take the campaign down. The
//! [`Supervisor`] runs each experiment on its own thread with:
//!
//! * an optional ambient [`FaultScenario`] installed for the thread (the
//!   deterministic fault plane of `fiveg_simcore::faults`),
//! * an armed event budget (`fiveg_simcore::budget`) so runaway loops die
//!   by panic instead of spinning forever,
//! * a cooperative cancellation token (`fiveg_simcore::cancel`) observed
//!   from the budget hot path, so a deadline, a progress-watchdog stall,
//!   or a campaign interrupt unwinds the attempt instead of abandoning
//!   its thread,
//! * `catch_unwind` around the experiment body,
//! * a wall-clock deadline and a no-progress watchdog enforced by a
//!   supervising poll loop, escalating cancel → grace period →
//!   abandon-with-leak-report,
//! * one retry with a deterministically perturbed seed.
//!
//! An experiment that still fails yields a synthesized [`Report`] marked
//! `DEGRADED`, so every other experiment's output is written regardless.
//! A campaign interrupt (SIGINT/SIGTERM via [`Supervisor::interrupt`])
//! instead yields `INTERRUPTED` rows that `--resume` re-runs.

use crate::experiments::Experiment;
use crate::json::Json;
use crate::report::Report;
use crate::shard::{self, ShardableExperiment};
use fiveg_simcore::cancel::{self, CancelToken};
use fiveg_simcore::faults::FaultScenario;
use fiveg_simcore::guard::{self, AttemptGuards, GuardPolicy};
use fiveg_simcore::recovery::{self, RecoveryEvent, RecoverySummary};
use fiveg_simcore::telemetry::{self, AttemptTelemetry};
use fiveg_simcore::{ambient, budget, RngStream};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Attempt threads abandoned because they never answered a cancellation
/// request within the grace period (process lifetime total). A healthy
/// campaign keeps this at zero; the `figures` CLI reports a non-zero
/// count on stderr at campaign end.
static LEAKED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Attempt threads abandoned (leaked) so far in this process.
pub fn leaked_threads() -> usize {
    LEAKED_THREADS.load(Ordering::Relaxed)
}

/// How one supervised run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The experiment produced its report (possibly on the retry).
    Ok,
    /// Every attempt failed; the report is a synthesized placeholder.
    Degraded,
    /// A campaign interrupt (SIGINT/SIGTERM) cancelled the run before it
    /// could finish; `--resume` re-runs it. Not a failure of the
    /// experiment itself.
    Interrupted,
}

impl RunStatus {
    /// Manifest string for this status.
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Degraded => "degraded",
            RunStatus::Interrupted => "interrupted",
        }
    }

    /// Parses a manifest status string.
    pub fn parse(s: &str) -> Option<RunStatus> {
        match s {
            "ok" => Some(RunStatus::Ok),
            "degraded" => Some(RunStatus::Degraded),
            "interrupted" => Some(RunStatus::Interrupted),
            _ => None,
        }
    }
}

/// The outcome of one supervised experiment.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Experiment id.
    pub id: &'static str,
    /// Final status.
    pub status: RunStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Failure note from the last failed attempt, if any attempt failed.
    pub note: Option<String>,
    /// The experiment's report, or a `DEGRADED` placeholder.
    pub report: Report,
    /// Recovery events emitted by the stack's self-healing hooks during the
    /// successful attempt (empty without a fault scenario, and for degraded
    /// runs).
    pub recovery: Vec<RecoveryEvent>,
    /// Wall-clock spent on this experiment across all attempts, in seconds.
    /// Feeds the campaign perf baseline (`BENCH_campaign.json`); never
    /// persisted into `manifest.json`, which must stay byte-identical
    /// across serial, parallel, and resumed runs.
    pub wall_s: f64,
    /// Simulation events charged against the budget by the successful
    /// attempt (0 for degraded runs and for experiments whose hot loops
    /// don't charge the budget).
    pub events: u64,
    /// Telemetry drained from the successful attempt, when the supervisor
    /// ran with [`Supervisor::telemetry`] on (`None` otherwise, and for
    /// degraded runs). Like `wall_s`/`events`, this never reaches
    /// `manifest.json` — the `figures` CLI renders it into its own files.
    pub telemetry: Option<AttemptTelemetry>,
    /// Invariant-guard records drained from the successful attempt (empty
    /// for degraded runs, when the supervisor runs with
    /// [`Supervisor::guards`] `None`, or when the `guards` feature is
    /// compiled out). In-memory only — violations are surfaced on stderr
    /// and by the stress harness, never persisted into `manifest.json`,
    /// which must stay byte-identical with the plane on or off.
    pub guards: AttemptGuards,
}

impl RunOutcome {
    /// True iff the run is degraded.
    pub fn degraded(&self) -> bool {
        self.status == RunStatus::Degraded
    }

    /// True iff the run was cut short by a campaign interrupt.
    pub fn interrupted(&self) -> bool {
        self.status == RunStatus::Interrupted
    }
}

/// Supervision policy for a campaign.
#[derive(Debug, Clone)]
pub struct Supervisor {
    /// Fault scenario installed on each experiment thread (`None` = the
    /// plane stays uninstalled and the default path is untouched).
    pub scenario: Option<FaultScenario>,
    /// Event budget armed per attempt.
    pub event_budget: u64,
    /// Wall-clock deadline per attempt.
    pub deadline: Duration,
    /// Retries after the first failed attempt, each with a perturbed seed.
    pub retries: u32,
    /// Install the telemetry collector on each attempt thread and carry
    /// the drained [`AttemptTelemetry`] in the outcome. Off by default:
    /// with it off the plane is never installed and campaign output is
    /// byte-identical to an uninstrumented build.
    pub telemetry: bool,
    /// Guard-plane policy installed on each attempt thread; `None` leaves
    /// the invariant collector uninstalled. Defaults to
    /// [`GuardPolicy::Record`]: checks run and violations are drained into
    /// the outcome, but (since hooks never mutate simulation state) every
    /// artifact stays byte-identical to a run with the plane off.
    pub guards: Option<GuardPolicy>,
    /// Arm a cooperative cancellation token on each attempt thread (on by
    /// default). With it off, a blown deadline abandons the thread the
    /// old way — it leaks and keeps running — and interrupts cannot stop
    /// an in-flight attempt; the observable artifacts are bit-identical
    /// either way, since the token never mutates simulation state.
    pub cancel: bool,
    /// How long a cancelled attempt gets to unwind and report before the
    /// supervisor gives up and abandons its thread (leak of last resort).
    pub grace: Duration,
    /// Progress-watchdog window: an attempt that has charged budget
    /// events before but charges none for this long is classified
    /// *wedged* and cancelled early, before the full deadline. Attempts
    /// that never charge events are exempt (some experiments legitimately
    /// run long without touching the budget) — the deadline covers them.
    pub stall: Duration,
    /// Campaign interrupt flag (typically the SIGINT/SIGTERM handler's
    /// static). When it flips, in-flight attempts are cancelled, retries
    /// are skipped, and runs report [`RunStatus::Interrupted`];
    /// [`Supervisor::run_registry_jobs_partial`] also stops claiming new
    /// entries.
    pub interrupt: Option<&'static AtomicBool>,
    /// Fan the shards of [`crate::shard::shardable`] experiments out to the
    /// pool as independent work units (on by default). Off, each sharded
    /// experiment runs its shards sequentially inside its own registry
    /// slot. Either way the *decomposition* is identical — same per-shard
    /// plane installs, same order-fixed merge — so every artifact is
    /// byte-identical between the two; the flag only changes scheduling
    /// granularity.
    pub shard: bool,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            scenario: None,
            // Generous: the heaviest experiment charges tens of millions of
            // events; only a runaway loop reaches billions.
            event_budget: 2_000_000_000,
            deadline: Duration::from_secs(120),
            retries: 1,
            telemetry: false,
            guards: Some(GuardPolicy::Record),
            cancel: true,
            grace: Duration::from_secs(2),
            stall: Duration::from_secs(30),
            interrupt: None,
            shard: true,
        }
    }
}

impl Supervisor {
    /// A supervisor injecting `scenario` into every experiment.
    pub fn with_scenario(scenario: FaultScenario) -> Self {
        Supervisor {
            scenario: Some(scenario),
            ..Self::default()
        }
    }

    /// The seed used for attempt `attempt` (0-based) of experiment `id`:
    /// attempt 0 uses the campaign seed verbatim, retries perturb it through
    /// a named stream so the retry world is different but reproducible.
    pub fn attempt_seed(&self, id: &str, seed: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            seed
        } else {
            RngStream::new(seed, &format!("runner/retry/{id}/{attempt}")).next_u64()
        }
    }

    /// True iff the campaign interrupt flag has flipped.
    pub fn interrupted(&self) -> bool {
        self.interrupt.is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// Runs one experiment under supervision. Experiments with a shard
    /// declaration run shard-by-shard (sequentially here; the pool
    /// scheduler fans the same shards out as independent units) and their
    /// outcome is the order-fixed merge of the shard runs.
    pub fn run_one(&self, id: &'static str, f: Experiment, seed: u64) -> RunOutcome {
        if let Some(spec) = shard::find(id) {
            return self.run_sharded(&spec, seed);
        }
        self.run_monolithic(id, f, seed)
    }

    /// The classic whole-experiment supervised retry loop.
    fn run_monolithic(&self, id: &'static str, f: Experiment, seed: u64) -> RunOutcome {
        let t0 = Instant::now();
        let mut last_note = String::new();
        for attempt in 0..=self.retries {
            if self.interrupted() {
                // Interrupt between attempts (or before the first): don't
                // start more work the user asked us to stop.
                let note = if attempt == 0 {
                    "interrupted before start".to_string()
                } else {
                    last_note.clone()
                };
                return self.interrupted_outcome(id, attempt, note, t0);
            }
            let attempt_seed = self.attempt_seed(id, seed, attempt);
            match self.attempt(id, f, attempt_seed) {
                Ok(done) => {
                    return RunOutcome {
                        id,
                        status: RunStatus::Ok,
                        attempts: attempt + 1,
                        note: (attempt > 0).then(|| last_note.clone()),
                        report: done.value,
                        recovery: done.recovery,
                        wall_s: t0.elapsed().as_secs_f64(),
                        events: done.events,
                        telemetry: done.telemetry,
                        guards: done.guards,
                    }
                }
                Err(note) => {
                    last_note = note;
                    if self.interrupted() {
                        // The attempt died because (or while) the campaign
                        // was interrupted — not the experiment's fault, so
                        // no retry and no DEGRADED verdict.
                        return self.interrupted_outcome(id, attempt + 1, last_note, t0);
                    }
                }
            }
        }
        RunOutcome {
            id,
            status: RunStatus::Degraded,
            attempts: self.retries + 1,
            note: Some(last_note.clone()),
            report: degraded_report(id, &last_note),
            recovery: Vec::new(),
            wall_s: t0.elapsed().as_secs_f64(),
            events: 0,
            telemetry: None,
            guards: AttemptGuards::default(),
        }
    }

    /// The outcome for a run cut short by a campaign interrupt.
    fn interrupted_outcome(
        &self,
        id: &'static str,
        attempts: u32,
        note: String,
        t0: Instant,
    ) -> RunOutcome {
        self.interrupted_outcome_wall(id, attempts, note, t0.elapsed().as_secs_f64())
    }

    /// [`Supervisor::interrupted_outcome`] with an explicit wall-clock
    /// (shard merges sum per-shard walls instead of re-reading a clock).
    fn interrupted_outcome_wall(
        &self,
        id: &'static str,
        attempts: u32,
        note: String,
        wall_s: f64,
    ) -> RunOutcome {
        RunOutcome {
            id,
            status: RunStatus::Interrupted,
            attempts,
            note: Some(note.clone()),
            report: interrupted_report(id, &note),
            recovery: Vec::new(),
            wall_s,
            events: 0,
            telemetry: None,
            guards: AttemptGuards::default(),
        }
    }

    /// Runs every shard of a sharded experiment sequentially, then merges.
    /// The pooled scheduler instead claims each shard as its own work unit
    /// and performs the identical merge — the two paths share
    /// [`Supervisor::run_shard`] and [`Supervisor::merge_shard_runs`], so
    /// their artifacts are byte-equal by construction.
    pub fn run_sharded(&self, spec: &ShardableExperiment, seed: u64) -> RunOutcome {
        let shards: Vec<ShardRun> = (0..spec.shards)
            .map(|s| self.run_shard(spec, seed, s))
            .collect();
        self.merge_shard_runs(spec, seed, shards)
    }

    /// One shard's supervised retry loop — the shard-granular mirror of
    /// [`Supervisor::run_monolithic`]. The shard *data* seed is the attempt
    /// seed verbatim (so shard bodies compute exactly what the monolithic
    /// experiment computed); only the ambient planes are keyed by
    /// [`crate::shard::shard_plane_seed`], giving each shard a distinct,
    /// scheduling-independent fault world.
    pub fn run_shard(&self, spec: &ShardableExperiment, seed: u64, shard_idx: usize) -> ShardRun {
        let t0 = Instant::now();
        let id = spec.id;
        let mut last_note = String::new();
        for attempt in 0..=self.retries {
            if self.interrupted() {
                let note = if attempt == 0 {
                    "interrupted before start".to_string()
                } else {
                    last_note.clone()
                };
                return ShardRun::interrupted(shard_idx, attempt, note, t0);
            }
            let attempt_seed = self.attempt_seed(id, seed, attempt);
            let plane_seed = shard::shard_plane_seed(attempt_seed, id, shard_idx);
            let run = spec.run;
            match self.attempt_payload(format!("exp-{id}-s{shard_idx}"), plane_seed, move || {
                run(attempt_seed, shard_idx)
            }) {
                Ok(done) => {
                    return ShardRun {
                        shard: shard_idx,
                        status: RunStatus::Ok,
                        attempts: attempt + 1,
                        note: (attempt > 0).then(|| last_note.clone()),
                        values: done.value,
                        recovery: done.recovery,
                        wall_s: t0.elapsed().as_secs_f64(),
                        events: done.events,
                        telemetry: done.telemetry,
                        guards: done.guards,
                    }
                }
                Err(note) => {
                    last_note = note;
                    if self.interrupted() {
                        return ShardRun::interrupted(shard_idx, attempt + 1, last_note, t0);
                    }
                }
            }
        }
        ShardRun {
            shard: shard_idx,
            status: RunStatus::Degraded,
            attempts: self.retries + 1,
            note: Some(last_note),
            values: Vec::new(),
            recovery: Vec::new(),
            wall_s: t0.elapsed().as_secs_f64(),
            events: 0,
            telemetry: None,
            guards: AttemptGuards::default(),
        }
    }

    /// Reduces one experiment's shard runs (indexed by shard) into a single
    /// [`RunOutcome`], deterministically: the report comes from the
    /// experiment's order-fixed `merge` reducer over the raw shard values;
    /// recovery events and telemetry concatenate in shard order (span ids
    /// re-based so the merged stream keeps unique ids); events sum;
    /// attempts take the max. Any interrupted shard makes the whole run
    /// interrupted; otherwise any degraded shard degrades it (first failing
    /// shard's note wins, prefixed with its index).
    pub fn merge_shard_runs(
        &self,
        spec: &ShardableExperiment,
        seed: u64,
        shards: Vec<ShardRun>,
    ) -> RunOutcome {
        let id = spec.id;
        let n = spec.shards;
        let wall_s: f64 = shards.iter().map(|s| s.wall_s).sum();
        let attempts = shards.iter().map(|s| s.attempts).max().unwrap_or(1);
        let shard_note = |status: RunStatus| {
            shards
                .iter()
                .find(|s| s.status == status && s.note.is_some())
                .map(|s| {
                    format!(
                        "shard {}/{n}: {}",
                        s.shard,
                        s.note.as_deref().unwrap_or_default()
                    )
                })
        };
        if shards.iter().any(|s| s.status == RunStatus::Interrupted) {
            let note = shard_note(RunStatus::Interrupted)
                .unwrap_or_else(|| "interrupted before start".to_string());
            return self.interrupted_outcome_wall(id, attempts, note, wall_s);
        }
        if shards.iter().any(|s| s.status == RunStatus::Degraded) {
            let note = shard_note(RunStatus::Degraded).unwrap_or_default();
            return RunOutcome {
                id,
                status: RunStatus::Degraded,
                attempts,
                note: Some(note.clone()),
                report: degraded_report(id, &note),
                recovery: Vec::new(),
                wall_s,
                events: 0,
                telemetry: None,
                guards: AttemptGuards::default(),
            };
        }
        let parts: Vec<Vec<f64>> = shards.iter().map(|s| s.values.clone()).collect();
        let report = (spec.merge)(seed, &parts);
        let recovery: Vec<RecoveryEvent> = shards
            .iter()
            .flat_map(|s| s.recovery.iter().cloned())
            .collect();
        let events: u64 = shards.iter().map(|s| s.events).sum();
        let telemetry = self
            .telemetry
            .then(|| merge_shard_telemetry(shards.iter().filter_map(|s| s.telemetry.as_ref())));
        let mut guards = AttemptGuards::default();
        for s in &shards {
            guards
                .violations
                .extend(s.guards.violations.iter().cloned());
            guards.dropped += s.guards.dropped;
            guards.checks += s.guards.checks;
        }
        let note = shards.iter().find(|s| s.note.is_some()).map(|s| {
            format!(
                "shard {}/{n}: {}",
                s.shard,
                s.note.as_deref().unwrap_or_default()
            )
        });
        RunOutcome {
            id,
            status: RunStatus::Ok,
            attempts,
            note,
            report,
            recovery,
            wall_s,
            events,
            telemetry,
            guards,
        }
    }

    /// Runs every `(id, experiment)` entry serially, collecting one outcome
    /// per entry. A panic, deadline blow-out, or budget exhaustion in any
    /// one experiment cannot prevent the others from running.
    pub fn run_registry(
        &self,
        entries: &[(&'static str, Experiment)],
        seed: u64,
    ) -> Vec<RunOutcome> {
        self.run_registry_jobs(entries, seed, 1, |_, _| {})
    }

    /// Runs every `(id, experiment)` entry on a pool of `jobs` worker
    /// threads pulling from a shared queue, collecting outcomes **in entry
    /// order** regardless of completion order.
    ///
    /// Determinism contract: each experiment's world is a pure function of
    /// `(id, campaign seed, attempt)` — [`Supervisor::attempt_seed`] draws
    /// from no shared RNG, and every attempt installs its own thread-local
    /// fault/recovery/budget planes on a fresh attempt thread
    /// ([`fiveg_simcore::ambient::install_attempt`]). Workers therefore
    /// cannot observe each other, and the returned vector — and any
    /// manifest rendered from it — is byte-identical to a serial run.
    ///
    /// `on_done(i, outcome)` fires as each entry finishes (completion
    /// order, possibly concurrently with other workers finishing — the
    /// callback must serialize its own side effects); the campaign driver
    /// uses it for progress output and crash-consistent manifest rewrites.
    pub fn run_registry_jobs<F>(
        &self,
        entries: &[(&'static str, Experiment)],
        seed: u64,
        jobs: usize,
        on_done: F,
    ) -> Vec<RunOutcome>
    where
        F: Fn(usize, &RunOutcome) + Sync,
    {
        self.run_registry_jobs_timed(entries, seed, jobs, on_done).0
    }

    /// Like [`Supervisor::run_registry_jobs`], but also returns per-worker
    /// busy time (seconds each worker spent inside `run_one`, index =
    /// worker). The telemetry exporter folds these into the campaign
    /// summary's worker-occupancy table; they are wall-clock measurements
    /// and never reach any deterministic artifact.
    pub fn run_registry_jobs_timed<F>(
        &self,
        entries: &[(&'static str, Experiment)],
        seed: u64,
        jobs: usize,
        on_done: F,
    ) -> (Vec<RunOutcome>, Vec<f64>)
    where
        F: Fn(usize, &RunOutcome) + Sync,
    {
        let (slots, busy) = self.run_units(entries, seed, jobs, None, on_done);
        let outcomes = slots
            .into_iter()
            .map(|slot| slot.expect("every unit was claimed (no stop flag)"))
            .collect();
        (outcomes, busy)
    }

    /// Like [`Supervisor::run_registry_jobs_timed`], but interrupt-aware:
    /// when [`Supervisor::interrupt`] flips, workers stop claiming new
    /// registry entries and the unclaimed tail comes back as `None` (an
    /// uninterrupted run returns all `Some`, identical to the non-partial
    /// variant). In-flight entries still finish — cancelled, they land as
    /// [`RunStatus::Interrupted`] outcomes via `on_done` like any other.
    pub fn run_registry_jobs_partial<F>(
        &self,
        entries: &[(&'static str, Experiment)],
        seed: u64,
        jobs: usize,
        on_done: F,
    ) -> (Vec<Option<RunOutcome>>, Vec<f64>)
    where
        F: Fn(usize, &RunOutcome) + Sync,
    {
        let stop = self.interrupt.map(|f| f as &AtomicBool);
        self.run_units(entries, seed, jobs, stop, on_done)
    }

    /// The shared pool core behind the registry runners: expands each entry
    /// into its work units — one `Whole` unit for unsharded experiments,
    /// one `Shard` unit per shard for sharded ones (when
    /// [`Supervisor::shard`] is on) — and schedules the flattened unit list
    /// on one work-stealing pool. Shards of a long experiment therefore
    /// interleave with other experiments on the same workers: no second
    /// thread layer, no per-experiment barrier.
    ///
    /// Outcome slots stay in entry order. A sharded experiment's slot fills
    /// (and its `on_done` fires) when its *last* shard completes, merged by
    /// [`Supervisor::merge_shard_runs`]. On interrupt, an experiment whose
    /// shards were only partly claimed never merges — its slot stays `None`
    /// and `--resume` re-runs it whole, exactly like an unclaimed entry.
    fn run_units<F>(
        &self,
        entries: &[(&'static str, Experiment)],
        seed: u64,
        jobs: usize,
        stop: Option<&AtomicBool>,
        on_done: F,
    ) -> (Vec<Option<RunOutcome>>, Vec<f64>)
    where
        F: Fn(usize, &RunOutcome) + Sync,
    {
        enum Unit {
            Whole(usize),
            Shard { exp: usize, shard: usize },
        }
        struct Acc {
            spec: ShardableExperiment,
            pieces: Vec<Mutex<Option<ShardRun>>>,
            remaining: AtomicUsize,
        }
        let accs: Vec<Option<Acc>> = entries
            .iter()
            .map(|(id, _)| {
                if !self.shard {
                    return None;
                }
                shard::find(id).map(|spec| Acc {
                    spec,
                    pieces: (0..spec.shards).map(|_| Mutex::new(None)).collect(),
                    remaining: AtomicUsize::new(spec.shards),
                })
            })
            .collect();
        let mut units = Vec::new();
        for (i, acc) in accs.iter().enumerate() {
            match acc {
                Some(acc) => {
                    units.extend((0..acc.spec.shards).map(|s| Unit::Shard { exp: i, shard: s }))
                }
                None => units.push(Unit::Whole(i)),
            }
        }
        let outcomes: Vec<Mutex<Option<RunOutcome>>> =
            entries.iter().map(|_| Mutex::new(None)).collect();
        let finish = |i: usize, outcome: RunOutcome| {
            on_done(i, &outcome);
            *outcomes[i].lock().expect("outcome lock") = Some(outcome);
        };
        let (_, busy) = pool_map_partial(units.len(), jobs, stop, |u| match units[u] {
            Unit::Whole(i) => {
                let (id, f) = entries[i];
                finish(i, self.run_one(id, f, seed));
            }
            Unit::Shard { exp, shard } => {
                let acc = accs[exp].as_ref().expect("shard unit has an accumulator");
                let piece = self.run_shard(&acc.spec, seed, shard);
                *acc.pieces[shard].lock().expect("piece lock") = Some(piece);
                if acc.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last shard in: this worker performs the merge. The
                    // mutexes synchronize the sibling pieces written by
                    // other workers.
                    let shards: Vec<ShardRun> = acc
                        .pieces
                        .iter()
                        .map(|m| {
                            m.lock()
                                .expect("piece lock")
                                .take()
                                .expect("all pieces present at merge")
                        })
                        .collect();
                    finish(exp, self.merge_shard_runs(&acc.spec, seed, shards));
                }
            }
        });
        let slots = outcomes
            .into_iter()
            .map(|slot| slot.into_inner().expect("outcome lock"))
            .collect();
        (slots, busy)
    }

    /// One supervised attempt of a whole experiment (plane seed = data
    /// seed).
    fn attempt(&self, id: &str, f: Experiment, seed: u64) -> Result<AttemptOutput<Report>, String> {
        self.attempt_payload(format!("exp-{id}"), seed, move || f(seed))
    }

    /// One supervised attempt of an arbitrary payload: spawn, install the
    /// ambient planes keyed by `plane_seed`, arm, catch, supervise. Whole
    /// experiments pass their data seed as the plane seed; shards pass the
    /// derived [`crate::shard::shard_plane_seed`] so sibling shards get
    /// distinct fault worlds while their data stays seed-pure.
    fn attempt_payload<T, F>(
        &self,
        thread_name: String,
        plane_seed: u64,
        body: F,
    ) -> Result<AttemptOutput<T>, String>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + std::panic::UnwindSafe + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let token = self
            .cancel
            .then(|| Arc::new(CancelToken::with_deadline(Instant::now() + self.deadline)));
        let scenario = self.scenario.clone();
        let events = self.event_budget;
        let telemetry_on = self.telemetry;
        let guards = self.guards;
        let attempt_token = token.clone();
        let spawned = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                // Thread-locals start clean on a fresh thread; install the
                // fault plane, the recovery collector (only alongside a
                // scenario, so fault-free campaigns report zero recovery
                // events by construction), the telemetry collector (only
                // when the supervisor asks), the invariant guard collector
                // (under the supervisor's policy), arm the budget, and arm
                // the cancellation token — all for this attempt only.
                let _ambient = ambient::install_attempt(
                    scenario.as_ref(),
                    plane_seed,
                    events,
                    telemetry_on,
                    guards,
                    attempt_token,
                );
                let result = std::panic::catch_unwind(body);
                let consumed = budget::consumed().unwrap_or(0);
                let telem = telemetry_on.then(telemetry::drain);
                let guard_records = guard::drain();
                let send = match result {
                    Ok(value) => Ok(AttemptOutput {
                        value,
                        recovery: recovery::drain(),
                        events: consumed,
                        telemetry: telem,
                        guards: guard_records,
                    }),
                    Err(payload) => {
                        // Attempt-state hygiene: a panicked experiment may
                        // have half-filled its collectors. They uninstall
                        // when `_ambient` drops (and the retry runs on a
                        // fresh thread with freshly-installed planes), but
                        // drain them explicitly too so no poisoned state
                        // can outlive this scope even if the attempt
                        // threading model ever changes.
                        let _ = recovery::drain();
                        Err(panic_note(payload.as_ref()))
                    }
                };
                let _ = tx.send(send);
            });
        let handle = match spawned {
            Ok(h) => h,
            Err(e) => return Err(format!("spawn failed: {e}")),
        };
        match token {
            Some(token) => self.supervise(handle, &rx, &token),
            None => {
                // Cancellation plane disarmed: the legacy single-wait path.
                // A blown deadline abandons the thread, which keeps running
                // (and keeps its core) until it finishes on its own.
                match rx.recv_timeout(self.deadline) {
                    Ok(result) => {
                        let _ = handle.join();
                        result
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        LEAKED_THREADS.fetch_add(1, Ordering::Relaxed);
                        Err(format!(
                            "deadline exceeded ({:.1} s); thread abandoned (cancellation plane disarmed)",
                            self.deadline.as_secs_f64()
                        ))
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(disconnect_note(handle)),
                }
            }
        }
    }

    /// The supervising poll loop for one attempt: waits for the result in
    /// short ticks, sampling the token's published progress, and escalates
    /// on the first of interrupt / deadline / watchdog stall.
    fn supervise<T>(
        &self,
        handle: JoinHandle<()>,
        rx: &mpsc::Receiver<Result<AttemptOutput<T>, String>>,
        token: &CancelToken,
    ) -> Result<AttemptOutput<T>, String> {
        let started = Instant::now();
        let deadline_at = started + self.deadline;
        // Tick fast enough that short test deadlines stay accurate, slow
        // enough that a 120 s campaign deadline costs ~10 wakeups/s.
        let tick = (self.deadline / 4).clamp(Duration::from_millis(5), Duration::from_millis(100));
        let mut last_events: u64 = 0;
        let mut last_change = started;
        loop {
            let wait = tick
                .min(deadline_at.saturating_duration_since(Instant::now()))
                .max(Duration::from_millis(1));
            match rx.recv_timeout(wait) {
                Ok(result) => {
                    let _ = handle.join();
                    return match result {
                        // The token's own deadline fired inside the attempt
                        // (its `poll` self-kills) before this loop ticked —
                        // the same cooperative kill the escalation ladder
                        // performs, so report it in the same shape.
                        Err(note) if cancel::is_cancel_panic(&note) => {
                            let class = self.classify(last_events, last_change);
                            let events = token.progress().max(last_events);
                            Err(format!(
                                "deadline exceeded ({:.1} s); cancelled cooperatively \
                                 ({class}; {events} events charged at kill)",
                                self.deadline.as_secs_f64()
                            ))
                        }
                        other => other,
                    };
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(disconnect_note(handle)),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
            }
            let now = Instant::now();
            let progress = token.progress();
            if progress != last_events {
                last_events = progress;
                last_change = now;
            }
            let reason = if self.interrupted() {
                Some("interrupted".to_string())
            } else if now >= deadline_at {
                Some(format!(
                    "deadline exceeded ({:.1} s)",
                    self.deadline.as_secs_f64()
                ))
            } else if last_events > 0 && now.duration_since(last_change) >= self.stall {
                // Only experiments that have charged events can be declared
                // wedged early: some legitimately run long without touching
                // the budget, and the deadline still covers those.
                Some(format!(
                    "stalled: no progress for {:.1} s",
                    self.stall.as_secs_f64()
                ))
            } else {
                None
            };
            if let Some(reason) = reason {
                return self.escalate(&reason, handle, rx, token, last_events, last_change);
            }
        }
    }

    /// Classification for the degraded report: an attempt that charged
    /// events within the stall window is *slow* (still progressing, just
    /// not fast enough); one that stopped charging — or never charged —
    /// is *wedged*.
    fn classify(&self, last_events: u64, last_change: Instant) -> &'static str {
        if last_events > 0 && last_change.elapsed() < self.stall {
            "slow"
        } else {
            "wedged"
        }
    }

    /// The escalation ladder once a kill is warranted: cancel the token,
    /// give the attempt a grace period to unwind and report, and only then
    /// abandon the thread (counting the leak).
    fn escalate<T>(
        &self,
        reason: &str,
        handle: JoinHandle<()>,
        rx: &mpsc::Receiver<Result<AttemptOutput<T>, String>>,
        token: &CancelToken,
        last_events: u64,
        last_change: Instant,
    ) -> Result<AttemptOutput<T>, String> {
        let class = self.classify(last_events, last_change);
        token.kill(reason);
        match rx.recv_timeout(self.grace) {
            Ok(Ok(output)) => {
                // The attempt crossed the finish line before observing the
                // kill — its report is complete and deterministic, so keep
                // it rather than discarding finished work.
                let _ = handle.join();
                Ok(output)
            }
            Ok(Err(note)) => {
                let _ = handle.join();
                let events = token.progress().max(last_events);
                if cancel::is_cancel_panic(&note) {
                    Err(format!(
                        "{reason}; cancelled cooperatively ({class}; {events} events charged at kill)"
                    ))
                } else {
                    // It died of its own panic just as we killed it; the
                    // real note is the more useful one.
                    Err(note)
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                LEAKED_THREADS.fetch_add(1, Ordering::Relaxed);
                drop(handle);
                Err(format!(
                    "{reason}; cancel unanswered after {:.1} s grace ({class}; {} events charged at kill); thread abandoned — leaked",
                    self.grace.as_secs_f64(),
                    token.progress().max(last_events),
                ))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(disconnect_note(handle)),
        }
    }
}

/// The note for a result channel that disconnected without a report: the
/// attempt thread is gone (its sender dropped), so join it and attach how
/// it died — a send-side panic *after* `catch_unwind` (draining planes,
/// serializing the output) carries its payload here, distinguishing it
/// from a genuine silent drop.
fn disconnect_note(handle: JoinHandle<()>) -> String {
    match handle.join() {
        Ok(()) => {
            "experiment thread died without reporting (thread exited cleanly but never sent; \
             result channel dropped)"
                .to_string()
        }
        Err(payload) => format!(
            "experiment thread died without reporting (send-side {})",
            panic_note(payload.as_ref())
        ),
    }
}

/// Runs `n` independent tasks on a pool of `jobs` worker threads pulling
/// indices from a shared cursor (work-stealing: a worker that lands a long
/// task simply claims fewer indices), collecting results **in index
/// order** regardless of completion order. Also returns per-worker busy
/// time in seconds (wall-clock telemetry only — it must never reach a
/// deterministic artifact). The campaign scheduler and the stress harness
/// both run on this pool; determinism is the caller's contract (each
/// task's result must be a pure function of its index).
pub fn pool_map<T, F>(n: usize, jobs: usize, run: F) -> (Vec<T>, Vec<f64>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (slots, busy) = pool_map_partial(n, jobs, None, run);
    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every queue index was claimed by a worker"))
        .collect();
    (results, busy)
}

/// Like [`pool_map`], but workers stop claiming new indices once `stop`
/// flips, so the result vector may end with unclaimed `None` slots (every
/// claimed index still completes and lands in order). The campaign driver
/// passes the SIGINT/SIGTERM flag here: an interrupt drains the pool
/// without starting new experiments.
pub fn pool_map_partial<T, F>(
    n: usize,
    jobs: usize,
    stop: Option<&AtomicBool>,
    run: F,
) -> (Vec<Option<T>>, Vec<f64>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let busy: Vec<Mutex<f64>> = (0..workers).map(|_| Mutex::new(0.0)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let next = &next;
            let slots = &slots;
            let busy = &busy;
            let run = &run;
            scope.spawn(move || loop {
                if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let t0 = Instant::now();
                let out = run(i);
                *busy[w].lock().expect("busy lock") += t0.elapsed().as_secs_f64();
                *slots[i].lock().expect("slot lock") = Some(out);
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock"))
        .collect();
    let busy = busy
        .into_iter()
        .map(|m| m.into_inner().expect("busy lock"))
        .collect();
    (results, busy)
}

/// What one successful supervised attempt hands back to the retry loop:
/// the payload (a rendered [`Report`] for whole experiments, raw shard
/// values for shard attempts) plus everything drained from the attempt
/// thread's ambient planes.
struct AttemptOutput<T> {
    value: T,
    recovery: Vec<RecoveryEvent>,
    events: u64,
    telemetry: Option<AttemptTelemetry>,
    guards: AttemptGuards,
}

/// One shard's supervised run: the shard-granular [`RunOutcome`], carrying
/// raw values instead of a rendered report (the report exists only after
/// [`Supervisor::merge_shard_runs`]).
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shard index within the experiment.
    pub shard: usize,
    /// How this shard's run ended.
    pub status: RunStatus,
    /// Attempts consumed.
    pub attempts: u32,
    /// Failure note from the last failed attempt, if any attempt failed.
    pub note: Option<String>,
    /// The shard body's raw values (empty unless `status` is `Ok`).
    pub values: Vec<f64>,
    /// Recovery events of the successful attempt.
    pub recovery: Vec<RecoveryEvent>,
    /// Wall-clock across this shard's attempts, seconds.
    pub wall_s: f64,
    /// Budget events charged by the successful attempt.
    pub events: u64,
    /// Telemetry drained from the successful attempt.
    pub telemetry: Option<AttemptTelemetry>,
    /// Guard records drained from the successful attempt.
    pub guards: AttemptGuards,
}

impl ShardRun {
    /// The shard run for an attempt cut short by a campaign interrupt.
    fn interrupted(shard: usize, attempts: u32, note: String, t0: Instant) -> ShardRun {
        ShardRun {
            shard,
            status: RunStatus::Interrupted,
            attempts,
            note: Some(note),
            values: Vec::new(),
            recovery: Vec::new(),
            wall_s: t0.elapsed().as_secs_f64(),
            events: 0,
            telemetry: None,
            guards: AttemptGuards::default(),
        }
    }
}

/// Concatenates per-shard telemetry in shard order into one attempt-shaped
/// stream: span events append with their ids re-based past the previous
/// shards' ids (each shard numbers spans from 0, so a plain concat would
/// collide), dropped counts sum, and the sorted aggregates merge through
/// [`AttemptTelemetry::merge_aggregates`].
fn merge_shard_telemetry<'a, I>(parts: I) -> AttemptTelemetry
where
    I: Iterator<Item = &'a AttemptTelemetry>,
{
    let mut merged = AttemptTelemetry::default();
    let mut id_base = 0u64;
    for part in parts {
        let mut max_id = None;
        for ev in &part.events {
            let mut ev = *ev;
            max_id = Some(max_id.map_or(ev.id, |m: u64| m.max(ev.id)));
            ev.id += id_base;
            merged.events.push(ev);
        }
        if let Some(m) = max_id {
            id_base += m + 1;
        }
        merged.dropped_events += part.dropped_events;
        merged.merge_aggregates(&AttemptTelemetry {
            events: Vec::new(),
            dropped_events: 0,
            ..part.clone()
        });
    }
    merged
}

/// Extracts a readable note from a panic payload.
fn panic_note(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "panic with non-string payload".to_string());
    format!("panicked: {msg}")
}

/// The placeholder report for an experiment whose every attempt failed.
fn degraded_report(id: &'static str, note: &str) -> Report {
    Report {
        id,
        title: "DEGRADED — experiment failed under supervision".to_string(),
        body: format!(
            "This experiment did not complete; the rest of the campaign ran on.\nlast failure: {note}\n"
        ),
    }
}

/// The placeholder report for a run cut short by a campaign interrupt.
/// Never written to disk as the experiment's artifact — the campaign
/// driver skips report files for interrupted rows so `--resume` re-runs
/// them from scratch.
fn interrupted_report(id: &'static str, note: &str) -> Report {
    Report {
        id,
        title: "INTERRUPTED — campaign stopped before this experiment completed".to_string(),
        body: format!(
            "This experiment was cancelled by a campaign interrupt; rerun with --resume.\ninterrupt: {note}\n"
        ),
    }
}

/// One experiment's row in the campaign manifest: the persisted form of a
/// [`RunOutcome`] (the report text lives in its own file; the recovery
/// event stream is persisted as its summary). Round-trips through JSON so
/// `--resume` can rebuild completed rows from a prior manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Experiment id.
    pub id: String,
    /// Final status.
    pub status: RunStatus,
    /// Attempts consumed.
    pub attempts: u32,
    /// Failure note, if any attempt failed.
    pub note: Option<String>,
    /// Aggregated recovery actions of the successful attempt.
    pub recovery: RecoverySummary,
    /// Wall-clock for this experiment, seconds. **In-memory only**: timing
    /// varies run to run, and `manifest.json` must stay byte-identical
    /// across serial/parallel/resumed runs, so this is persisted to
    /// `BENCH_campaign.json` (see [`bench_report`]) instead. Zero for rows
    /// rebuilt from a prior manifest.
    pub wall_s: f64,
    /// Budget events charged by this experiment. In-memory only, like
    /// `wall_s`.
    pub events: u64,
    /// True for rows carried over from a prior manifest by `--resume`
    /// (their timing is unknown, not zero-cost). In-memory only.
    pub resumed: bool,
}

impl ManifestEntry {
    /// The manifest row for a finished outcome.
    pub fn from_outcome(o: &RunOutcome) -> ManifestEntry {
        ManifestEntry {
            id: o.id.to_string(),
            status: o.status,
            attempts: o.attempts,
            note: o.note.clone(),
            recovery: recovery::summarize(&o.recovery),
            wall_s: o.wall_s,
            events: o.events,
            resumed: false,
        }
    }

    /// Serializes this row.
    pub fn to_json(&self) -> Json {
        let r = &self.recovery;
        Json::obj(vec![
            ("id", Json::str(self.id.as_str())),
            ("status", Json::str(self.status.as_str())),
            ("attempts", Json::Num(f64::from(self.attempts))),
            ("note", self.note.as_deref().map_or(Json::Null, Json::str)),
            (
                "recovery",
                Json::obj(vec![
                    ("events", Json::Num(r.events as f64)),
                    ("outage_s", Json::Num(r.outage_s)),
                    ("mean_detect_s", Json::Num(r.mean_detect_s)),
                    ("rebuffer_s", Json::Num(r.rebuffer_s)),
                    ("failovers", Json::Num(r.failovers as f64)),
                    (
                        "by_kind",
                        Json::Obj(
                            r.by_kind
                                .iter()
                                .map(|(k, n)| (k.clone(), Json::Num(*n as f64)))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Deserializes one manifest row.
    pub fn from_json(v: &Json) -> Result<ManifestEntry, String> {
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or("result missing `id`")?
            .to_string();
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .and_then(RunStatus::parse)
            .ok_or_else(|| format!("result `{id}` has a bad `status`"))?;
        let attempts =
            v.get("attempts")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("result `{id}` missing `attempts`"))? as u32;
        let note = match v.get("note") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(format!("result `{id}` has a bad `note`")),
        };
        let r = v
            .get("recovery")
            .ok_or_else(|| format!("result `{id}` missing `recovery`"))?;
        let num = |field: &str| {
            r.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("result `{id}` recovery missing `{field}`"))
        };
        let by_kind = match r.get("by_kind") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|n| (k.clone(), n as usize))
                        .ok_or_else(|| format!("result `{id}` has a bad by_kind count"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(format!("result `{id}` recovery missing `by_kind`")),
        };
        let recovery = RecoverySummary {
            events: num("events")? as usize,
            outage_s: num("outage_s")?,
            mean_detect_s: num("mean_detect_s")?,
            rebuffer_s: num("rebuffer_s")?,
            failovers: num("failovers")? as usize,
            by_kind,
        };
        Ok(ManifestEntry {
            id,
            status,
            attempts,
            note,
            recovery,
            wall_s: 0.0,
            events: 0,
            resumed: true,
        })
    }
}

/// Serializes the campaign perf baseline as `BENCH_campaign.json`: per
/// experiment wall-clock and event throughput plus campaign-level totals.
/// `campaign_wall_s` is the end-to-end wall-clock of the whole campaign
/// (with `jobs > 1` it is smaller than the sum of per-experiment times —
/// `speedup_est` is exactly that ratio, the scheduler's parallel yield).
/// Resumed rows are flagged and excluded from the totals, since their cost
/// was paid by a previous run.
pub fn bench_report(
    entries: &[ManifestEntry],
    seed: u64,
    scenario: Option<&str>,
    jobs: usize,
    campaign_wall_s: f64,
) -> Json {
    let ran: Vec<&ManifestEntry> = entries.iter().filter(|e| !e.resumed).collect();
    let serial_wall_s: f64 = ran.iter().map(|e| e.wall_s).sum();
    let events: u64 = ran.iter().map(|e| e.events).sum();
    let rate = |ev: u64, wall: f64| {
        if wall > 0.0 {
            ev as f64 / wall
        } else {
            0.0
        }
    };
    // Largest-remainder apportionment: per-row rounding of raw shares can
    // make the wall_pct column sum to 99.8 or 100.2; apportioning keeps it
    // exactly 100.0. Resumed rows weigh zero (their cost was paid by a
    // previous run).
    let weights: Vec<f64> = entries
        .iter()
        .map(|e| if e.resumed { 0.0 } else { e.wall_s })
        .collect();
    let wall_pcts = crate::observe::apportion_pct(&weights);
    Json::obj(vec![
        ("seed", Json::Num(seed as f64)),
        ("scenario", scenario.map_or(Json::Null, Json::str)),
        ("jobs", Json::Num(jobs as f64)),
        ("experiments", Json::Num(entries.len() as f64)),
        ("resumed", Json::Num((entries.len() - ran.len()) as f64)),
        ("campaign_wall_s", Json::Num(campaign_wall_s)),
        ("serial_wall_s", Json::Num(serial_wall_s)),
        (
            "speedup_est",
            Json::Num(if campaign_wall_s > 0.0 {
                serial_wall_s / campaign_wall_s
            } else {
                0.0
            }),
        ),
        ("events", Json::Num(events as f64)),
        ("events_per_s", Json::Num(rate(events, campaign_wall_s))),
        (
            "results",
            Json::Arr(
                entries
                    .iter()
                    .zip(&wall_pcts)
                    .map(|(e, &wall_pct)| {
                        // An experiment that never charges the budget has
                        // no meaningful throughput — report null, not a
                        // misleading 0 (which reads as "infinitely slow").
                        let eps = if e.events == 0 {
                            Json::Null
                        } else {
                            Json::Num(rate(e.events, e.wall_s))
                        };
                        Json::obj(vec![
                            ("id", Json::str(e.id.as_str())),
                            ("status", Json::str(e.status.as_str())),
                            ("resumed", Json::Bool(e.resumed)),
                            ("wall_s", Json::Num(e.wall_s)),
                            ("wall_pct", Json::Num(wall_pct)),
                            ("events", Json::Num(e.events as f64)),
                            ("events_per_s", eps),
                            // Deterministic row: `--check-strict` grades the
                            // manifest's recovery-event count against this.
                            ("recovery_events", Json::Num(e.recovery.events as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serializes campaign rows as a manifest (written as `manifest.json` next
/// to the per-experiment reports).
pub fn manifest_from_entries(entries: &[ManifestEntry], seed: u64, scenario: Option<&str>) -> Json {
    let degraded = entries
        .iter()
        .filter(|e| e.status == RunStatus::Degraded)
        .count();
    Json::obj(vec![
        ("seed", Json::Num(seed as f64)),
        ("scenario", scenario.map_or(Json::Null, Json::str)),
        ("experiments", Json::Num(entries.len() as f64)),
        ("degraded", Json::Num(degraded as f64)),
        (
            "results",
            Json::Arr(entries.iter().map(ManifestEntry::to_json).collect()),
        ),
    ])
}

/// Serializes campaign outcomes as a manifest.
pub fn manifest(outcomes: &[RunOutcome], seed: u64, scenario: Option<&str>) -> Json {
    let entries: Vec<ManifestEntry> = outcomes.iter().map(ManifestEntry::from_outcome).collect();
    manifest_from_entries(&entries, seed, scenario)
}

/// Parses a manifest document back into `(seed, scenario, entries)`.
pub fn parse_manifest(s: &str) -> Result<(u64, Option<String>, Vec<ManifestEntry>), String> {
    let v = Json::parse(s)?;
    let seed = v
        .get("seed")
        .and_then(Json::as_f64)
        .ok_or("manifest missing `seed`")? as u64;
    let scenario = match v.get("scenario") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err("manifest has a bad `scenario`".to_string()),
    };
    let results = v
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("manifest missing `results`")?;
    let entries = results
        .iter()
        .map(ManifestEntry::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((seed, scenario, entries))
}

/// Writes `contents` to `path` atomically: write to a sibling temp file,
/// flush, rename over the target, then sync the parent directory so the
/// rename itself survives a crash. A kill at any point leaves either the
/// old file or the new one — never a truncated hybrid.
///
/// The temp name is the *full* file name plus a `.tmp` suffix
/// (`a.json` → `a.json.tmp`), never `with_extension` — swapping the
/// extension collides for artifacts sharing a stem (`a.json` / `a.txt`
/// both mapped to `a.tmp`), which corrupts concurrent `--jobs N` writes.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("write_atomic: no file name in {}", path.display()),
        )
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // fsync the directory entry: rename durability is a property of the
    // parent directory, not the file (the crash-consistency contract of
    // `--resume` depends on the renamed manifest actually being there).
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_simcore::faults;

    fn ok_exp(seed: u64) -> Report {
        Report {
            id: "ok",
            title: "fine".into(),
            body: format!("seed={seed}"),
        }
    }

    fn panicky_exp(_seed: u64) -> Report {
        panic!("kaboom");
    }

    fn seed_sensitive_exp(seed: u64) -> Report {
        if seed == 123 {
            panic!("bad seed");
        }
        Report {
            id: "flaky",
            title: "recovered".into(),
            body: format!("seed={seed}"),
        }
    }

    fn runaway_exp(_seed: u64) -> Report {
        let mut q = fiveg_simcore::EventQueue::new();
        let mut i = 0u64;
        loop {
            q.schedule(fiveg_simcore::SimTime::from_millis(i), i);
            q.pop();
            i += 1;
        }
    }

    fn sleepy_exp(_seed: u64) -> Report {
        std::thread::sleep(Duration::from_secs(30));
        ok_exp(0)
    }

    #[test]
    fn success_passes_report_through() {
        let sup = Supervisor::default();
        let out = sup.run_one("ok", ok_exp, 7);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.report.body, "seed=7");
        assert!(out.note.is_none());
    }

    #[test]
    fn panic_degrades_after_retry() {
        let sup = Supervisor::default();
        let out = sup.run_one("boom", panicky_exp, 1);
        assert_eq!(out.status, RunStatus::Degraded);
        assert_eq!(out.attempts, 2, "one retry consumed");
        assert!(out.note.as_deref().unwrap().contains("kaboom"));
        assert!(out.report.title.contains("DEGRADED"));
    }

    #[test]
    fn retry_with_perturbed_seed_can_recover() {
        let sup = Supervisor::default();
        let out = sup.run_one("flaky", seed_sensitive_exp, 123);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.attempts, 2);
        assert!(out.note.as_deref().unwrap().contains("bad seed"));
        assert_ne!(sup.attempt_seed("flaky", 123, 1), 123);
    }

    #[test]
    fn budget_kills_runaway_loops() {
        let sup = Supervisor {
            event_budget: 10_000,
            ..Supervisor::default()
        };
        let out = sup.run_one("runaway", runaway_exp, 1);
        assert_eq!(out.status, RunStatus::Degraded);
        assert!(
            out.note.as_deref().unwrap().contains(budget::EXHAUSTED_MSG),
            "note: {:?}",
            out.note
        );
    }

    #[test]
    fn deadline_abandons_wedged_threads() {
        // A sleeper never charges the budget, so it cannot observe the
        // cancel — the escalation ladder runs to its end: kill, grace,
        // abandon (the leak of last resort, now at least counted).
        let leaked_before = leaked_threads();
        let sup = Supervisor {
            deadline: Duration::from_millis(50),
            grace: Duration::from_millis(50),
            retries: 0,
            ..Supervisor::default()
        };
        let out = sup.run_one("sleepy", sleepy_exp, 1);
        assert_eq!(out.status, RunStatus::Degraded);
        let note = out.note.as_deref().unwrap();
        assert!(note.contains("deadline"), "note: {note}");
        assert!(note.contains("wedged"), "note: {note}");
        assert!(note.contains("abandoned"), "note: {note}");
        assert!(leaked_threads() > leaked_before, "the leak is counted");
    }

    #[test]
    fn cancelled_attempt_thread_terminates_cooperatively() {
        // Regression for the abandoned-thread leak: a deadline kill on an
        // experiment that charges the budget must unwind the attempt
        // thread — observed by a canary whose destructor only runs if the
        // thread actually exits (the supervisor joins it on the
        // cooperative path, so the flag is settled by the time run_one
        // returns).
        static CANARY_DROPPED: AtomicBool = AtomicBool::new(false);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                CANARY_DROPPED.store(true, Ordering::SeqCst);
            }
        }
        fn charging_forever_exp(_seed: u64) -> Report {
            let _canary = Canary;
            loop {
                fiveg_simcore::budget::charge(64);
            }
        }
        let leaked_before = leaked_threads();
        let sup = Supervisor {
            deadline: Duration::from_millis(100),
            // Huge but not the u64::MAX disarm sentinel: only the cancel
            // plane may kill this loop, never budget exhaustion.
            event_budget: 1 << 60,
            grace: Duration::from_secs(10),
            retries: 0,
            ..Supervisor::default()
        };
        let out = sup.run_one("charger", charging_forever_exp, 1);
        assert_eq!(out.status, RunStatus::Degraded);
        let note = out.note.as_deref().unwrap();
        assert!(note.contains("deadline"), "note: {note}");
        assert!(note.contains("cancelled cooperatively"), "note: {note}");
        assert!(note.contains("events charged at kill"), "note: {note}");
        assert!(
            CANARY_DROPPED.load(Ordering::SeqCst),
            "the attempt thread unwound and exited"
        );
        assert_eq!(leaked_threads(), leaked_before, "no thread leaked");
    }

    #[test]
    fn stall_watchdog_kills_silent_experiments_early() {
        // Charges events, then goes silent for far longer than the stall
        // window while the deadline is still an hour away: the watchdog
        // must cancel it, and the resumed charge loop must observe the
        // kill and unwind.
        fn stall_then_charge_exp(_seed: u64) -> Report {
            fiveg_simcore::budget::charge(3 * fiveg_simcore::cancel::POLL_INTERVAL);
            std::thread::sleep(Duration::from_secs(1));
            loop {
                fiveg_simcore::budget::charge(64);
            }
        }
        let sup = Supervisor {
            deadline: Duration::from_secs(3600),
            event_budget: 1 << 60,
            stall: Duration::from_millis(100),
            grace: Duration::from_secs(10),
            retries: 0,
            ..Supervisor::default()
        };
        let out = sup.run_one("staller", stall_then_charge_exp, 1);
        assert_eq!(out.status, RunStatus::Degraded);
        let note = out.note.as_deref().unwrap();
        assert!(note.contains("stalled"), "note: {note}");
        assert!(note.contains("cancelled cooperatively"), "note: {note}");
    }

    #[test]
    fn zero_charge_experiments_are_exempt_from_the_stall_watchdog() {
        // Some experiments legitimately run long without ever touching the
        // budget (pure-compute reports); the watchdog must not kill them.
        fn quiet_compute_exp(_seed: u64) -> Report {
            std::thread::sleep(Duration::from_millis(300));
            ok_exp(0)
        }
        let sup = Supervisor {
            deadline: Duration::from_secs(3600),
            stall: Duration::from_millis(50),
            retries: 0,
            ..Supervisor::default()
        };
        let out = sup.run_one("quiet", quiet_compute_exp, 1);
        assert_eq!(out.status, RunStatus::Ok, "note: {:?}", out.note);
    }

    #[test]
    fn interrupt_before_start_skips_the_run() {
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(true)));
        let sup = Supervisor {
            interrupt: Some(flag),
            ..Supervisor::default()
        };
        let out = sup.run_one("never", ok_exp, 1);
        assert_eq!(out.status, RunStatus::Interrupted);
        assert_eq!(out.attempts, 0);
        assert!(out
            .note
            .as_deref()
            .unwrap()
            .contains("interrupted before start"));
        assert!(out.report.title.contains("INTERRUPTED"));
    }

    #[test]
    fn interrupt_mid_run_cancels_in_flight_attempts() {
        fn charging_exp_2(_seed: u64) -> Report {
            loop {
                fiveg_simcore::budget::charge(64);
            }
        }
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let sup = Supervisor {
            deadline: Duration::from_secs(3600),
            event_budget: 1 << 60,
            grace: Duration::from_secs(10),
            interrupt: Some(flag),
            ..Supervisor::default()
        };
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            flag.store(true, Ordering::SeqCst);
        });
        let out = sup.run_one("interruptee", charging_exp_2, 1);
        setter.join().unwrap();
        assert_eq!(out.status, RunStatus::Interrupted, "note: {:?}", out.note);
        assert_eq!(out.attempts, 1, "no retry after an interrupt");
        let note = out.note.as_deref().unwrap();
        assert!(note.contains("interrupted"), "note: {note}");
        assert!(note.contains("cancelled cooperatively"), "note: {note}");
    }

    #[test]
    fn pool_map_partial_stops_claiming_after_the_flag() {
        let stop = AtomicBool::new(false);
        let (slots, busy) = pool_map_partial(4, 1, Some(&stop), |i| {
            if i == 1 {
                stop.store(true, Ordering::SeqCst);
            }
            i
        });
        assert_eq!(slots, vec![Some(0), Some(1), None, None]);
        assert_eq!(busy.len(), 1);
    }

    #[test]
    fn interrupted_status_round_trips_through_the_manifest() {
        assert_eq!(
            RunStatus::parse("interrupted"),
            Some(RunStatus::Interrupted)
        );
        assert_eq!(RunStatus::Interrupted.as_str(), "interrupted");
        let entry = ManifestEntry {
            id: "x".to_string(),
            status: RunStatus::Interrupted,
            attempts: 1,
            note: Some("interrupted".to_string()),
            recovery: RecoverySummary::empty(),
            wall_s: 0.0,
            events: 0,
            resumed: false,
        };
        let parsed = ManifestEntry::from_json(&entry.to_json()).expect("parses");
        assert_eq!(parsed.status, RunStatus::Interrupted);
    }

    #[test]
    fn one_failure_does_not_stop_the_campaign() {
        let sup = Supervisor::default();
        let entries: [(&'static str, Experiment); 3] =
            [("ok", ok_exp), ("boom", panicky_exp), ("ok2", ok_exp)];
        let outs = sup.run_registry(&entries, 9);
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].status, RunStatus::Ok);
        assert_eq!(outs[1].status, RunStatus::Degraded);
        assert_eq!(outs[2].status, RunStatus::Ok);
        // Every entry rendered a report.
        for o in &outs {
            assert!(!o.report.render().is_empty());
        }
    }

    #[test]
    fn manifest_counts_degraded() {
        let sup = Supervisor::default();
        let entries: [(&'static str, Experiment); 2] = [("ok", ok_exp), ("boom", panicky_exp)];
        let outs = sup.run_registry(&entries, 5);
        let m = manifest(&outs, 5, Some("chaos")).render();
        assert!(m.contains("\"seed\":5"));
        assert!(m.contains("\"scenario\":\"chaos\""));
        assert!(m.contains("\"degraded\":1"));
        assert!(m.contains("\"id\":\"boom\""));
    }

    #[test]
    fn manifest_round_trips_through_parse() {
        let sup = Supervisor::with_scenario(FaultScenario::chaos());
        fn recovering_exp(_seed: u64) -> Report {
            recovery::record(
                fiveg_simcore::recovery::RecoveryKind::TcpRto,
                3.0,
                1.0,
                4.0,
                || "test".into(),
            );
            Report {
                id: "rec",
                title: "t".into(),
                body: "b".into(),
            }
        }
        let entries: [(&'static str, Experiment); 2] =
            [("rec", recovering_exp), ("boom", panicky_exp)];
        let outs = sup.run_registry(&entries, 5);
        assert_eq!(outs[0].recovery.len(), 1, "collector captured the event");
        let text = manifest(&outs, 5, Some("chaos")).render();
        let (seed, scenario, parsed) = parse_manifest(&text).expect("parses");
        assert_eq!(seed, 5);
        assert_eq!(scenario.as_deref(), Some("chaos"));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].recovery.events, 1);
        assert_eq!(parsed[0].recovery.by_kind, vec![("tcp-rto".to_string(), 1)]);
        assert_eq!(parsed[1].status, RunStatus::Degraded);
        // Re-rendering parsed entries is byte-identical — resume-written
        // manifests hash the same as fresh ones.
        assert_eq!(
            manifest_from_entries(&parsed, seed, scenario.as_deref()).render(),
            text
        );
    }

    #[test]
    fn parallel_run_matches_serial_byte_for_byte() {
        fn exp_a(seed: u64) -> Report {
            Report {
                id: "a",
                title: "a".into(),
                body: format!("seed={seed}"),
            }
        }
        fn exp_b(seed: u64) -> Report {
            // Consume some budget so events flow through the outcome.
            fiveg_simcore::budget::charge(17);
            Report {
                id: "b",
                title: "b".into(),
                body: format!("seed={}", seed.wrapping_mul(3)),
            }
        }
        fn exp_slow(seed: u64) -> Report {
            // Finishes *after* later queue entries, exercising ordered
            // collection under out-of-order completion.
            std::thread::sleep(Duration::from_millis(60));
            Report {
                id: "slow",
                title: "slow".into(),
                body: format!("seed={seed}"),
            }
        }
        let entries: [(&'static str, Experiment); 4] = [
            ("slow", exp_slow),
            ("a", exp_a),
            ("boom", panicky_exp),
            ("b", exp_b),
        ];
        for scenario in [None, Some(FaultScenario::chaos())] {
            let sup = Supervisor {
                scenario,
                ..Supervisor::default()
            };
            let serial = manifest(&sup.run_registry(&entries, 2021), 2021, Some("x")).render();
            let parallel = manifest(
                &sup.run_registry_jobs(&entries, 2021, 4, |_, _| {}),
                2021,
                Some("x"),
            )
            .render();
            assert_eq!(serial, parallel, "jobs=4 must not perturb the manifest");
        }
    }

    #[test]
    fn on_done_fires_once_per_entry_with_matching_ids() {
        let entries: [(&'static str, Experiment); 3] =
            [("ok", ok_exp), ("boom", panicky_exp), ("ok2", ok_exp)];
        let sup = Supervisor::default();
        let seen: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let outs = sup.run_registry_jobs(&entries, 5, 3, |i, o| {
            seen.lock().unwrap().push((i, o.id.to_string()));
        });
        assert_eq!(outs.len(), 3);
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        assert_eq!(
            seen,
            vec![
                (0, "ok".to_string()),
                (1, "boom".to_string()),
                (2, "ok2".to_string())
            ]
        );
        // Collection order is entry order even if completion was not.
        assert_eq!(outs[0].id, "ok");
        assert_eq!(outs[1].id, "boom");
        assert_eq!(outs[2].id, "ok2");
    }

    #[test]
    fn outcomes_carry_wall_clock_and_event_counts() {
        fn charging_exp(_seed: u64) -> Report {
            fiveg_simcore::budget::charge(123);
            Report {
                id: "charge",
                title: "t".into(),
                body: "b".into(),
            }
        }
        let out = Supervisor::default().run_one("charge", charging_exp, 1);
        assert_eq!(out.events, 123);
        assert!(out.wall_s > 0.0);
        let entry = ManifestEntry::from_outcome(&out);
        assert_eq!(entry.events, 123);
        assert!(!entry.resumed);
        // The perf fields never leak into the persisted manifest row.
        let rendered = entry.to_json().render();
        assert!(!rendered.contains("wall_s"), "manifest row: {rendered}");
        assert!(
            !rendered.contains("events_per_s"),
            "manifest row: {rendered}"
        );
    }

    #[test]
    fn bench_report_totals_exclude_resumed_rows() {
        let mk = |id: &str, wall_s: f64, events: u64, resumed: bool| ManifestEntry {
            id: id.to_string(),
            status: RunStatus::Ok,
            attempts: 1,
            note: None,
            recovery: RecoverySummary::empty(),
            wall_s,
            events,
            resumed,
        };
        let rows = vec![
            mk("a", 2.0, 100, false),
            mk("b", 0.0, 0, true),
            mk("c", 3.0, 200, false),
        ];
        let j = bench_report(&rows, 7, Some("chaos"), 4, 2.5);
        assert_eq!(j.get("serial_wall_s").and_then(Json::as_f64), Some(5.0));
        assert_eq!(j.get("events").and_then(Json::as_f64), Some(300.0));
        assert_eq!(j.get("speedup_est").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("resumed").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("jobs").and_then(Json::as_f64), Some(4.0));
        let results = j.get("results").and_then(Json::as_arr).expect("results");
        assert_eq!(results.len(), 3);
        assert_eq!(results[1].get("resumed"), Some(&Json::Bool(true)));
        // events/sec for row c: 200 / 3.0.
        let eps = results[2]
            .get("events_per_s")
            .and_then(Json::as_f64)
            .unwrap();
        assert!((eps - 200.0 / 3.0).abs() < 1e-12);
        // A zero-event row reports null throughput, not a misleading 0.
        assert_eq!(results[1].get("events_per_s"), Some(&Json::Null));
        // wall_pct is the row's share of the serial wall (resumed row: 0).
        let pct = results[2].get("wall_pct").and_then(Json::as_f64).unwrap();
        assert!((pct - 60.0).abs() < 1e-12, "pct {pct}");
        assert_eq!(results[1].get("wall_pct").and_then(Json::as_f64), Some(0.0));
        // The recovery-event count rides along for --check-strict.
        assert_eq!(
            results[0].get("recovery_events").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn bench_report_wall_pct_column_sums_to_exactly_one_hundred() {
        let mk = |id: &str, wall_s: f64| ManifestEntry {
            id: id.to_string(),
            status: RunStatus::Ok,
            attempts: 1,
            note: None,
            recovery: RecoverySummary::empty(),
            wall_s,
            events: 1,
            resumed: false,
        };
        // Three equal thirds: naive per-row rounding gives 33.3 × 3 = 99.9.
        let rows = vec![mk("a", 1.0), mk("b", 1.0), mk("c", 1.0)];
        let j = bench_report(&rows, 7, None, 1, 3.0);
        let results = j.get("results").and_then(Json::as_arr).expect("results");
        let pcts: Vec<f64> = results
            .iter()
            .map(|r| r.get("wall_pct").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(pcts, vec![33.4, 33.3, 33.3]);
        let sum: f64 = pcts.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn no_scenario_collects_no_recovery_events() {
        let sup = Supervisor::default();
        let out = sup.run_one("ok", ok_exp, 7);
        assert!(out.recovery.is_empty());
        let entry = ManifestEntry::from_outcome(&out);
        assert_eq!(entry.recovery, RecoverySummary::empty());
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("fiveg-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("manifest.json");
        write_atomic(&path, "first").expect("write");
        write_atomic(&path, "second").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "second");
        assert!(!path.with_extension("tmp").exists(), "old tmp name unused");
        assert!(
            !dir.join("manifest.json.tmp").exists(),
            "suffixed tmp cleaned up"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_same_stem_concurrent_writes_do_not_collide() {
        // Regression: `path.with_extension("tmp")` mapped `exp.json` and
        // `exp.txt` to the SAME temp file, so two workers writing the two
        // artifacts concurrently could rename each other's half-written
        // bytes into place (or fail the rename outright). The suffixed
        // temp name keeps the pair disjoint; hammer it to be sure.
        let dir = std::env::temp_dir().join(format!(
            "fiveg-atomic-stem-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let json = dir.join("exp.json");
        let txt = dir.join("exp.txt");
        std::thread::scope(|scope| {
            let j = scope.spawn(|| {
                for _ in 0..200 {
                    write_atomic(&json, "json-contents").expect("json write");
                }
            });
            let t = scope.spawn(|| {
                for _ in 0..200 {
                    write_atomic(&txt, "txt-contents").expect("txt write");
                }
            });
            j.join().expect("json thread");
            t.join().expect("txt thread");
        });
        assert_eq!(
            std::fs::read_to_string(&json).expect("json"),
            "json-contents"
        );
        assert_eq!(std::fs::read_to_string(&txt).expect("txt"), "txt-contents");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_rejects_pathless_targets() {
        assert!(write_atomic(Path::new("/"), "x").is_err());
    }

    #[test]
    fn guard_violations_flow_into_the_outcome_not_the_manifest() {
        fn violating_exp(_seed: u64) -> Report {
            guard::check("test", "deliberately-broken", false, 2.5, || {
                "canary".into()
            });
            Report {
                id: "viol",
                title: "t".into(),
                body: "b".into(),
            }
        }
        let out = Supervisor::default().run_one("viol", violating_exp, 1);
        assert_eq!(out.status, RunStatus::Ok, "Record policy never degrades");
        if guard::compiled() {
            assert_eq!(out.guards.violations.len(), 1);
            assert_eq!(out.guards.violations[0].invariant, "deliberately-broken");
        } else {
            assert!(out.guards.is_clean());
        }
        // The manifest row never carries guard state — bit-identity with
        // the plane off depends on it.
        let rendered = ManifestEntry::from_outcome(&out).to_json().render();
        assert!(!rendered.contains("guard"), "manifest row: {rendered}");

        let off = Supervisor {
            guards: None,
            ..Supervisor::default()
        }
        .run_one("viol", violating_exp, 1);
        assert!(off.guards.is_clean());
        assert_eq!(off.guards.checks, 0, "no collector, no checks counted");
    }

    #[test]
    fn fail_fast_policy_degrades_on_violation() {
        fn violating_exp(_seed: u64) -> Report {
            guard::check("test", "broken", false, 0.0, || "x".into());
            Report {
                id: "ff",
                title: "t".into(),
                body: "b".into(),
            }
        }
        let sup = Supervisor {
            guards: Some(GuardPolicy::FailFast),
            ..Supervisor::default()
        };
        let out = sup.run_one("ff", violating_exp, 1);
        if guard::compiled() {
            assert_eq!(out.status, RunStatus::Degraded);
            assert!(
                out.note.as_deref().unwrap().contains(guard::VIOLATION_MSG),
                "note: {:?}",
                out.note
            );
        } else {
            assert_eq!(out.status, RunStatus::Ok);
        }
    }

    #[test]
    fn retry_after_panic_starts_with_clean_planes() {
        use std::sync::atomic::AtomicBool;
        static POISONED_ONCE: AtomicBool = AtomicBool::new(false);
        fn poisoning_exp(_seed: u64) -> Report {
            if !POISONED_ONCE.swap(true, Ordering::SeqCst) {
                // First attempt: dirty every per-attempt plane, then die
                // mid-experiment with the collectors still half-full.
                recovery::record(
                    fiveg_simcore::recovery::RecoveryKind::TcpRto,
                    1.0,
                    0.5,
                    2.0,
                    || "poison".into(),
                );
                telemetry::count("test/poison", 1);
                guard::check("test", "poison", false, 1.0, || "poison".into());
                fiveg_simcore::budget::charge(1_000);
                panic!("first attempt dies with dirty planes");
            }
            // The retry must see freshly-installed, empty planes: nothing
            // recorded by the panicked attempt may leak across.
            let rec = recovery::drain();
            assert!(rec.is_empty(), "retry inherited recovery events: {rec:?}");
            let telem = telemetry::drain();
            assert!(
                telem.counters.iter().all(|(n, _)| *n != "test/poison"),
                "retry inherited telemetry: {:?}",
                telem.counters
            );
            let guards = guard::drain();
            assert!(guards.is_clean(), "retry inherited guard state: {guards:?}");
            assert!(
                fiveg_simcore::budget::consumed() == Some(0),
                "retry inherited budget consumption"
            );
            Report {
                id: "poison",
                title: "clean".into(),
                body: "retry saw empty planes".into(),
            }
        }
        let sup = Supervisor {
            scenario: Some(FaultScenario::chaos()),
            telemetry: true,
            ..Supervisor::default()
        };
        let out = sup.run_one("poison", poisoning_exp, 7);
        assert_eq!(out.status, RunStatus::Ok, "note: {:?}", out.note);
        assert_eq!(out.attempts, 2);
    }

    #[test]
    fn pool_map_collects_in_index_order() {
        let (results, busy) = pool_map(16, 4, |i| {
            if i % 3 == 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            i * i
        });
        assert_eq!(results, (0..16).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(busy.len(), 4);
    }

    #[test]
    fn scenario_installs_plane_only_inside_the_experiment() {
        fn plane_probe(_seed: u64) -> Report {
            Report {
                id: "probe",
                title: "plane".into(),
                body: format!("enabled={}", faults::enabled()),
            }
        }
        let sup = Supervisor::with_scenario(FaultScenario::chaos());
        let out = sup.run_one("probe", plane_probe, 1);
        assert_eq!(out.report.body, "enabled=true");
        assert!(!faults::enabled(), "plane never leaks to the caller thread");

        let plain = Supervisor::default().run_one("probe", plane_probe, 1);
        assert_eq!(plain.report.body, "enabled=false");
    }
}
