//! The supervised experiment runner: chaos-tolerant campaign execution.
//!
//! `figures all` regenerates ~40 experiments in sequence; one panicking,
//! wedged, or runaway experiment must not take the campaign down. The
//! [`Supervisor`] runs each experiment on its own thread with:
//!
//! * an optional ambient [`FaultScenario`] installed for the thread (the
//!   deterministic fault plane of `fiveg_simcore::faults`),
//! * an armed event budget (`fiveg_simcore::budget`) so runaway loops die
//!   by panic instead of spinning forever,
//! * `catch_unwind` around the experiment body,
//! * a wall-clock deadline enforced via a result channel,
//! * one retry with a deterministically perturbed seed.
//!
//! An experiment that still fails yields a synthesized [`Report`] marked
//! `DEGRADED`, so every other experiment's output is written regardless.

use crate::experiments::Experiment;
use crate::json::Json;
use crate::report::Report;
use fiveg_simcore::faults::{self, FaultScenario, FaultSchedule};
use fiveg_simcore::recovery::{self, RecoveryEvent, RecoverySummary};
use fiveg_simcore::{budget, RngStream};
use std::io::Write;
use std::path::Path;
use std::sync::mpsc;
use std::time::Duration;

/// How one supervised run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The experiment produced its report (possibly on the retry).
    Ok,
    /// Every attempt failed; the report is a synthesized placeholder.
    Degraded,
}

impl RunStatus {
    /// Manifest string for this status.
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Degraded => "degraded",
        }
    }

    /// Parses a manifest status string.
    pub fn parse(s: &str) -> Option<RunStatus> {
        match s {
            "ok" => Some(RunStatus::Ok),
            "degraded" => Some(RunStatus::Degraded),
            _ => None,
        }
    }
}

/// The outcome of one supervised experiment.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Experiment id.
    pub id: &'static str,
    /// Final status.
    pub status: RunStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Failure note from the last failed attempt, if any attempt failed.
    pub note: Option<String>,
    /// The experiment's report, or a `DEGRADED` placeholder.
    pub report: Report,
    /// Recovery events emitted by the stack's self-healing hooks during the
    /// successful attempt (empty without a fault scenario, and for degraded
    /// runs).
    pub recovery: Vec<RecoveryEvent>,
}

impl RunOutcome {
    /// True iff the run is degraded.
    pub fn degraded(&self) -> bool {
        self.status == RunStatus::Degraded
    }
}

/// Supervision policy for a campaign.
#[derive(Debug, Clone)]
pub struct Supervisor {
    /// Fault scenario installed on each experiment thread (`None` = the
    /// plane stays uninstalled and the default path is untouched).
    pub scenario: Option<FaultScenario>,
    /// Event budget armed per attempt.
    pub event_budget: u64,
    /// Wall-clock deadline per attempt.
    pub deadline: Duration,
    /// Retries after the first failed attempt, each with a perturbed seed.
    pub retries: u32,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            scenario: None,
            // Generous: the heaviest experiment charges tens of millions of
            // events; only a runaway loop reaches billions.
            event_budget: 2_000_000_000,
            deadline: Duration::from_secs(120),
            retries: 1,
        }
    }
}

impl Supervisor {
    /// A supervisor injecting `scenario` into every experiment.
    pub fn with_scenario(scenario: FaultScenario) -> Self {
        Supervisor {
            scenario: Some(scenario),
            ..Self::default()
        }
    }

    /// The seed used for attempt `attempt` (0-based) of experiment `id`:
    /// attempt 0 uses the campaign seed verbatim, retries perturb it through
    /// a named stream so the retry world is different but reproducible.
    pub fn attempt_seed(&self, id: &str, seed: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            seed
        } else {
            RngStream::new(seed, &format!("runner/retry/{id}/{attempt}")).next_u64()
        }
    }

    /// Runs one experiment under supervision.
    pub fn run_one(&self, id: &'static str, f: Experiment, seed: u64) -> RunOutcome {
        let mut last_note = String::new();
        for attempt in 0..=self.retries {
            let attempt_seed = self.attempt_seed(id, seed, attempt);
            match self.attempt(id, f, attempt_seed) {
                Ok((report, recovery)) => {
                    return RunOutcome {
                        id,
                        status: RunStatus::Ok,
                        attempts: attempt + 1,
                        note: (attempt > 0).then(|| last_note.clone()),
                        report,
                        recovery,
                    }
                }
                Err(note) => last_note = note,
            }
        }
        RunOutcome {
            id,
            status: RunStatus::Degraded,
            attempts: self.retries + 1,
            note: Some(last_note.clone()),
            report: degraded_report(id, &last_note),
            recovery: Vec::new(),
        }
    }

    /// Runs every `(id, experiment)` entry, collecting one outcome per
    /// entry. A panic, deadline blow-out, or budget exhaustion in any one
    /// experiment cannot prevent the others from running.
    pub fn run_registry(
        &self,
        entries: &[(&'static str, Experiment)],
        seed: u64,
    ) -> Vec<RunOutcome> {
        entries
            .iter()
            .map(|&(id, f)| self.run_one(id, f, seed))
            .collect()
    }

    /// One supervised attempt: spawn, install, arm, catch, wait.
    fn attempt(
        &self,
        id: &str,
        f: Experiment,
        seed: u64,
    ) -> Result<(Report, Vec<RecoveryEvent>), String> {
        let (tx, rx) = mpsc::channel();
        let scenario = self.scenario.clone();
        let events = self.event_budget;
        let spawned = std::thread::Builder::new()
            .name(format!("exp-{id}"))
            .spawn(move || {
                // Thread-locals start clean on a fresh thread; install the
                // fault plane, the recovery collector (only alongside a
                // scenario, so fault-free campaigns report zero recovery
                // events by construction), and arm the budget — all for
                // this attempt only.
                let _plane = scenario
                    .as_ref()
                    .map(|sc| faults::install(FaultSchedule::generate(seed, sc)));
                let _collector = scenario.as_ref().map(|_| recovery::collect());
                let _budget = budget::arm(events);
                let result = std::panic::catch_unwind(|| f(seed));
                let _ = tx.send(
                    result
                        .map(|report| (report, recovery::drain()))
                        .map_err(|payload| panic_note(payload.as_ref())),
                );
            });
        if let Err(e) = spawned {
            return Err(format!("spawn failed: {e}"));
        }
        match rx.recv_timeout(self.deadline) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(format!(
                "deadline exceeded ({:.1} s); thread abandoned",
                self.deadline.as_secs_f64()
            )),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err("experiment thread died without reporting".to_string())
            }
        }
    }
}

/// Extracts a readable note from a panic payload.
fn panic_note(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "panic with non-string payload".to_string());
    format!("panicked: {msg}")
}

/// The placeholder report for an experiment whose every attempt failed.
fn degraded_report(id: &'static str, note: &str) -> Report {
    Report {
        id,
        title: "DEGRADED — experiment failed under supervision".to_string(),
        body: format!(
            "This experiment did not complete; the rest of the campaign ran on.\nlast failure: {note}\n"
        ),
    }
}

/// One experiment's row in the campaign manifest: the persisted form of a
/// [`RunOutcome`] (the report text lives in its own file; the recovery
/// event stream is persisted as its summary). Round-trips through JSON so
/// `--resume` can rebuild completed rows from a prior manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Experiment id.
    pub id: String,
    /// Final status.
    pub status: RunStatus,
    /// Attempts consumed.
    pub attempts: u32,
    /// Failure note, if any attempt failed.
    pub note: Option<String>,
    /// Aggregated recovery actions of the successful attempt.
    pub recovery: RecoverySummary,
}

impl ManifestEntry {
    /// The manifest row for a finished outcome.
    pub fn from_outcome(o: &RunOutcome) -> ManifestEntry {
        ManifestEntry {
            id: o.id.to_string(),
            status: o.status,
            attempts: o.attempts,
            note: o.note.clone(),
            recovery: recovery::summarize(&o.recovery),
        }
    }

    /// Serializes this row.
    pub fn to_json(&self) -> Json {
        let r = &self.recovery;
        Json::obj(vec![
            ("id", Json::str(self.id.as_str())),
            ("status", Json::str(self.status.as_str())),
            ("attempts", Json::Num(f64::from(self.attempts))),
            ("note", self.note.as_deref().map_or(Json::Null, Json::str)),
            (
                "recovery",
                Json::obj(vec![
                    ("events", Json::Num(r.events as f64)),
                    ("outage_s", Json::Num(r.outage_s)),
                    ("mean_detect_s", Json::Num(r.mean_detect_s)),
                    ("rebuffer_s", Json::Num(r.rebuffer_s)),
                    ("failovers", Json::Num(r.failovers as f64)),
                    (
                        "by_kind",
                        Json::Obj(
                            r.by_kind
                                .iter()
                                .map(|(k, n)| (k.clone(), Json::Num(*n as f64)))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Deserializes one manifest row.
    pub fn from_json(v: &Json) -> Result<ManifestEntry, String> {
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or("result missing `id`")?
            .to_string();
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .and_then(RunStatus::parse)
            .ok_or_else(|| format!("result `{id}` has a bad `status`"))?;
        let attempts = v
            .get("attempts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("result `{id}` missing `attempts`"))? as u32;
        let note = match v.get("note") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(format!("result `{id}` has a bad `note`")),
        };
        let r = v
            .get("recovery")
            .ok_or_else(|| format!("result `{id}` missing `recovery`"))?;
        let num = |field: &str| {
            r.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("result `{id}` recovery missing `{field}`"))
        };
        let by_kind = match r.get("by_kind") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|n| (k.clone(), n as usize))
                        .ok_or_else(|| format!("result `{id}` has a bad by_kind count"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(format!("result `{id}` recovery missing `by_kind`")),
        };
        let recovery = RecoverySummary {
            events: num("events")? as usize,
            outage_s: num("outage_s")?,
            mean_detect_s: num("mean_detect_s")?,
            rebuffer_s: num("rebuffer_s")?,
            failovers: num("failovers")? as usize,
            by_kind,
        };
        Ok(ManifestEntry {
            id,
            status,
            attempts,
            note,
            recovery,
        })
    }
}

/// Serializes campaign rows as a manifest (written as `manifest.json` next
/// to the per-experiment reports).
pub fn manifest_from_entries(entries: &[ManifestEntry], seed: u64, scenario: Option<&str>) -> Json {
    let degraded = entries
        .iter()
        .filter(|e| e.status == RunStatus::Degraded)
        .count();
    Json::obj(vec![
        ("seed", Json::Num(seed as f64)),
        ("scenario", scenario.map_or(Json::Null, Json::str)),
        ("experiments", Json::Num(entries.len() as f64)),
        ("degraded", Json::Num(degraded as f64)),
        (
            "results",
            Json::Arr(entries.iter().map(ManifestEntry::to_json).collect()),
        ),
    ])
}

/// Serializes campaign outcomes as a manifest.
pub fn manifest(outcomes: &[RunOutcome], seed: u64, scenario: Option<&str>) -> Json {
    let entries: Vec<ManifestEntry> = outcomes.iter().map(ManifestEntry::from_outcome).collect();
    manifest_from_entries(&entries, seed, scenario)
}

/// Parses a manifest document back into `(seed, scenario, entries)`.
pub fn parse_manifest(s: &str) -> Result<(u64, Option<String>, Vec<ManifestEntry>), String> {
    let v = Json::parse(s)?;
    let seed = v
        .get("seed")
        .and_then(Json::as_f64)
        .ok_or("manifest missing `seed`")? as u64;
    let scenario = match v.get("scenario") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err("manifest has a bad `scenario`".to_string()),
    };
    let results = v
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("manifest missing `results`")?;
    let entries = results
        .iter()
        .map(ManifestEntry::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((seed, scenario, entries))
}

/// Writes `contents` to `path` atomically: write to a sibling temp file,
/// flush, then rename over the target. A kill at any point leaves either
/// the old file or the new one — never a truncated hybrid.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_exp(seed: u64) -> Report {
        Report {
            id: "ok",
            title: "fine".into(),
            body: format!("seed={seed}"),
        }
    }

    fn panicky_exp(_seed: u64) -> Report {
        panic!("kaboom");
    }

    fn seed_sensitive_exp(seed: u64) -> Report {
        if seed == 123 {
            panic!("bad seed");
        }
        Report {
            id: "flaky",
            title: "recovered".into(),
            body: format!("seed={seed}"),
        }
    }

    fn runaway_exp(_seed: u64) -> Report {
        let mut q = fiveg_simcore::EventQueue::new();
        let mut i = 0u64;
        loop {
            q.schedule(fiveg_simcore::SimTime::from_millis(i), i);
            q.pop();
            i += 1;
        }
    }

    fn sleepy_exp(_seed: u64) -> Report {
        std::thread::sleep(Duration::from_secs(30));
        ok_exp(0)
    }

    #[test]
    fn success_passes_report_through() {
        let sup = Supervisor::default();
        let out = sup.run_one("ok", ok_exp, 7);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.report.body, "seed=7");
        assert!(out.note.is_none());
    }

    #[test]
    fn panic_degrades_after_retry() {
        let sup = Supervisor::default();
        let out = sup.run_one("boom", panicky_exp, 1);
        assert_eq!(out.status, RunStatus::Degraded);
        assert_eq!(out.attempts, 2, "one retry consumed");
        assert!(out.note.as_deref().unwrap().contains("kaboom"));
        assert!(out.report.title.contains("DEGRADED"));
    }

    #[test]
    fn retry_with_perturbed_seed_can_recover() {
        let sup = Supervisor::default();
        let out = sup.run_one("flaky", seed_sensitive_exp, 123);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.attempts, 2);
        assert!(out.note.as_deref().unwrap().contains("bad seed"));
        assert_ne!(sup.attempt_seed("flaky", 123, 1), 123);
    }

    #[test]
    fn budget_kills_runaway_loops() {
        let sup = Supervisor {
            event_budget: 10_000,
            ..Supervisor::default()
        };
        let out = sup.run_one("runaway", runaway_exp, 1);
        assert_eq!(out.status, RunStatus::Degraded);
        assert!(
            out.note.as_deref().unwrap().contains(budget::EXHAUSTED_MSG),
            "note: {:?}",
            out.note
        );
    }

    #[test]
    fn deadline_abandons_wedged_threads() {
        let sup = Supervisor {
            deadline: Duration::from_millis(50),
            retries: 0,
            ..Supervisor::default()
        };
        let out = sup.run_one("sleepy", sleepy_exp, 1);
        assert_eq!(out.status, RunStatus::Degraded);
        assert!(out.note.as_deref().unwrap().contains("deadline"));
    }

    #[test]
    fn one_failure_does_not_stop_the_campaign() {
        let sup = Supervisor::default();
        let entries: [(&'static str, Experiment); 3] =
            [("ok", ok_exp), ("boom", panicky_exp), ("ok2", ok_exp)];
        let outs = sup.run_registry(&entries, 9);
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].status, RunStatus::Ok);
        assert_eq!(outs[1].status, RunStatus::Degraded);
        assert_eq!(outs[2].status, RunStatus::Ok);
        // Every entry rendered a report.
        for o in &outs {
            assert!(!o.report.render().is_empty());
        }
    }

    #[test]
    fn manifest_counts_degraded() {
        let sup = Supervisor::default();
        let entries: [(&'static str, Experiment); 2] = [("ok", ok_exp), ("boom", panicky_exp)];
        let outs = sup.run_registry(&entries, 5);
        let m = manifest(&outs, 5, Some("chaos")).render();
        assert!(m.contains("\"seed\":5"));
        assert!(m.contains("\"scenario\":\"chaos\""));
        assert!(m.contains("\"degraded\":1"));
        assert!(m.contains("\"id\":\"boom\""));
    }

    #[test]
    fn manifest_round_trips_through_parse() {
        let sup = Supervisor::with_scenario(FaultScenario::chaos());
        fn recovering_exp(_seed: u64) -> Report {
            recovery::record(
                fiveg_simcore::recovery::RecoveryKind::TcpRto,
                3.0,
                1.0,
                4.0,
                || "test".into(),
            );
            Report {
                id: "rec",
                title: "t".into(),
                body: "b".into(),
            }
        }
        let entries: [(&'static str, Experiment); 2] =
            [("rec", recovering_exp), ("boom", panicky_exp)];
        let outs = sup.run_registry(&entries, 5);
        assert_eq!(outs[0].recovery.len(), 1, "collector captured the event");
        let text = manifest(&outs, 5, Some("chaos")).render();
        let (seed, scenario, parsed) = parse_manifest(&text).expect("parses");
        assert_eq!(seed, 5);
        assert_eq!(scenario.as_deref(), Some("chaos"));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].recovery.events, 1);
        assert_eq!(parsed[0].recovery.by_kind, vec![("tcp-rto".to_string(), 1)]);
        assert_eq!(parsed[1].status, RunStatus::Degraded);
        // Re-rendering parsed entries is byte-identical — resume-written
        // manifests hash the same as fresh ones.
        assert_eq!(
            manifest_from_entries(&parsed, seed, scenario.as_deref()).render(),
            text
        );
    }

    #[test]
    fn no_scenario_collects_no_recovery_events() {
        let sup = Supervisor::default();
        let out = sup.run_one("ok", ok_exp, 7);
        assert!(out.recovery.is_empty());
        let entry = ManifestEntry::from_outcome(&out);
        assert_eq!(entry.recovery, RecoverySummary::empty());
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("fiveg-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("manifest.json");
        write_atomic(&path, "first").expect("write");
        write_atomic(&path, "second").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "second");
        assert!(!path.with_extension("tmp").exists(), "tmp cleaned up");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scenario_installs_plane_only_inside_the_experiment() {
        fn plane_probe(_seed: u64) -> Report {
            Report {
                id: "probe",
                title: "plane".into(),
                body: format!("enabled={}", faults::enabled()),
            }
        }
        let sup = Supervisor::with_scenario(FaultScenario::chaos());
        let out = sup.run_one("probe", plane_probe, 1);
        assert_eq!(out.report.body, "enabled=true");
        assert!(!faults::enabled(), "plane never leaks to the caller thread");

        let plain = Supervisor::default().run_one("probe", plane_probe, 1);
        assert_eq!(plain.report.body, "enabled=false");
    }
}
