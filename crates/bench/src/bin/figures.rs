//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures                  # list available experiments
//! figures all              # run everything, in paper order
//! figures fig3 fig9        # run specific experiments
//! figures --seed 7 all     # re-roll the simulated world
//! figures --out results/ all   # also write one .txt per experiment
//! figures --chaos chaos all    # inject a named fault scenario
//! ```
//!
//! Every experiment runs under the supervised runner: a panic, runaway
//! loop, or deadline blow-out in one experiment yields a `DEGRADED` report
//! for that experiment and the campaign continues. With `--chaos <name>`,
//! the named fault scenario (see `fiveg_simcore::faults::FaultScenario`)
//! is installed on each experiment's thread; without it the fault plane
//! stays uninstalled and the output is bit-identical to an unsupervised
//! run. With `--out`, a `manifest.json` summarizing per-experiment status
//! is written next to the reports.

use fiveg_bench::runner::{self, Supervisor};
use fiveg_bench::{experiments, CAMPAIGN_SEED};
use fiveg_simcore::faults::FaultScenario;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = CAMPAIGN_SEED;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        args.remove(pos);
        seed = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--seed needs an integer");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let mut out_dir: Option<std::path::PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        args.remove(pos);
        let dir = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--out needs a directory");
            std::process::exit(2);
        });
        args.remove(pos);
        let path = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&path) {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(2);
        }
        out_dir = Some(path);
    }
    let mut scenario: Option<FaultScenario> = None;
    if let Some(pos) = args.iter().position(|a| a == "--chaos") {
        args.remove(pos);
        let name = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!(
                "--chaos needs a scenario name (one of: {})",
                FaultScenario::names().join(", ")
            );
            std::process::exit(2);
        });
        args.remove(pos);
        scenario = Some(FaultScenario::by_name(&name).unwrap_or_else(|| {
            eprintln!(
                "unknown scenario: {name} (one of: {})",
                FaultScenario::names().join(", ")
            );
            std::process::exit(2);
        }));
    }

    let registry = experiments::registry();
    if args.is_empty() {
        println!("available experiments (run `figures all` or name them):");
        for (id, _) in &registry {
            println!("  {id}");
        }
        println!("fault scenarios for --chaos:");
        for name in FaultScenario::names() {
            println!("  {name}");
        }
        return;
    }

    let entries: Vec<(&'static str, experiments::Experiment)> = if args.iter().any(|a| a == "all")
    {
        registry
    } else {
        args.iter()
            .map(|a| {
                registry
                    .iter()
                    .find(|(id, _)| id == a)
                    .copied()
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment: {a}");
                        std::process::exit(2);
                    })
            })
            .collect()
    };

    let scenario_name = scenario.as_ref().map(|s| s.name.clone());
    let supervisor = match scenario {
        Some(sc) => Supervisor::with_scenario(sc),
        None => Supervisor::default(),
    };

    let mut outcomes = Vec::new();
    for &(id, f) in &entries {
        let outcome = supervisor.run_one(id, f, seed);
        println!("{}", outcome.report.render());
        if outcome.degraded() {
            eprintln!(
                "warning: {id} degraded after {} attempt(s): {}",
                outcome.attempts,
                outcome.note.as_deref().unwrap_or("unknown failure")
            );
        }
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&path, outcome.report.render()) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        outcomes.push(outcome);
    }

    if let Some(dir) = &out_dir {
        let manifest = runner::manifest(&outcomes, seed, scenario_name.as_deref());
        let path = dir.join("manifest.json");
        if let Err(e) = std::fs::write(&path, manifest.render()) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }

    let degraded = outcomes.iter().filter(|o| o.degraded()).count();
    if degraded > 0 {
        eprintln!("{degraded}/{} experiments degraded", outcomes.len());
    }
}
