//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures                  # list available experiments
//! figures all              # run everything, in paper order
//! figures fig3 fig9        # run specific experiments
//! figures --seed 7 all     # re-roll the simulated world
//! figures --out results/ all   # also write one .txt per experiment
//! ```

use fiveg_bench::experiments;
use fiveg_bench::CAMPAIGN_SEED;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = CAMPAIGN_SEED;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        args.remove(pos);
        seed = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--seed needs an integer");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let mut out_dir: Option<std::path::PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        args.remove(pos);
        let dir = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--out needs a directory");
            std::process::exit(2);
        });
        args.remove(pos);
        let path = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&path) {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(2);
        }
        out_dir = Some(path);
    }

    let registry = experiments::registry();
    if args.is_empty() {
        println!("available experiments (run `figures all` or name them):");
        for (id, _) in &registry {
            println!("  {id}");
        }
        return;
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        registry.iter().map(|(id, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in ids {
        match experiments::run(id, seed) {
            Some(report) => {
                println!("{}", report.render());
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.txt"));
                    if let Err(e) = std::fs::write(&path, report.render()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        std::process::exit(2);
                    }
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                std::process::exit(2);
            }
        }
    }
}
