//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures                      # list available experiments
//! figures all                  # run everything, in paper order
//! figures fig3 fig9            # run specific experiments
//! figures --seed 7 all         # re-roll the simulated world
//! figures --cc bbr bonded-uplink   # bonded-family controller override
//! figures --out results/ all   # also write one .txt per experiment
//! figures --chaos chaos all    # inject a named fault scenario
//! figures --resume --out results/ all   # continue a killed campaign
//! figures --jobs 4 all         # run the campaign on 4 worker threads
//! figures --no-shard all       # schedule experiments whole (no shard fan-out)
//! figures --profile all        # wall-sorted profile with hottest spans
//! figures --deadline-s 30 all  # per-attempt wall-clock deadline
//! figures --event-budget 5000000 all    # per-attempt event budget
//! figures --no-cancel all      # disarm the cooperative cancel plane
//! figures --bench-out results/BENCH_campaign.json all   # record perf
//! figures --bench-baseline results/BENCH_campaign.json all  # drift check
//! figures --bench-strict ...   # exit non-zero on perf regression
//! figures --telemetry tel/ table2 fig9   # export spans/counters/hists
//! figures --obs obs/ all       # campaign metrics observatory
//! figures --obs-diff results/OBS_baseline.json obs/   # telemetry drift
//! figures --obs-strict --obs-diff <base> <cur>   # gate FAIL-grade drift
//! figures --list-scenarios     # print fault scenarios, one per line
//! figures --check-manifest results/manifest.json   # CI gate
//! figures --check-strict --check-manifest <m>  # also gate baseline drift
//! figures --validate [dir]     # paper-fidelity gate (default: results)
//! figures --strict all         # exit non-zero if any experiment degraded
//! figures --stress 32          # randomized stress sweep + shrinker
//! figures --stress 32 --stress-seed 7 --stress-scenario chaos
//! figures --repro results/stress/repro-c3-fig9.json   # replay a repro
//! ```
//!
//! Every experiment runs under the supervised runner: a panic, runaway
//! loop, or deadline blow-out in one experiment yields a `DEGRADED` report
//! for that experiment and the campaign continues. With `--chaos <name>`,
//! the named fault scenario (see `fiveg_simcore::faults::FaultScenario`)
//! is installed on each experiment's thread and a resilience table
//! (recovery actions, outage and rebuffer time, failovers) is appended to
//! the campaign output; without it the fault plane stays uninstalled and
//! the output is bit-identical to an unsupervised run.
//!
//! Campaigns are crash-consistent: with `--out`, every report and the
//! `manifest.json` are written atomically (temp file + rename), and the
//! manifest is rewritten after *each* experiment, so a kill at any point
//! leaves a parseable manifest describing exactly the work that finished.
//! `--resume` reads that manifest back and skips experiments that already
//! completed `ok` (their rows are re-emitted verbatim; a resumed campaign's
//! final manifest is byte-identical to an uninterrupted one).
//!
//! With `--jobs N` (default: the machine's available parallelism) the
//! campaign runs on a pool of worker threads pulling experiments from a
//! shared queue. Each experiment still gets its own fresh attempt thread
//! with its own fault plane / recovery collector / event budget, and rows
//! are collected in registry order, so the manifest, reports, and
//! resilience table are byte-identical to a serial run. Resumed rows are
//! skipped *before* the queue is built — workers never see them.
//! `--bench-out <path>` additionally writes `BENCH_campaign.json` with
//! per-experiment wall-clock and events/sec plus the campaign speedup
//! estimate (timings live only in this file, never in manifest.json).
//!
//! `--telemetry <dir>` installs the `fiveg_simcore::telemetry` collector
//! on every attempt thread and writes, per experiment, a JSONL event
//! stream (`<id>.jsonl`) and a Chrome `trace_event` file
//! (`<id>.trace.json`) — both pure sim-time data, byte-identical across
//! reruns and `--jobs N` — plus one campaign-wide `telemetry.txt` summary
//! (the only artifact carrying wall-clock numbers). Without the flag the
//! plane is never installed and every output byte matches an
//! uninstrumented build.
//!
//! `--obs <dir>` feeds the same per-attempt telemetry into the campaign
//! metrics observatory (`fiveg_bench::observe`): `metrics.json` — the
//! catalog-annotated campaign rollup (per-layer span/counter totals,
//! histogram quantiles, fixed-bin sim-time series) — plus the
//! `observatory.txt` dashboard and collapsed-stack flamegraphs
//! (`<id>.folded` per experiment, `campaign.folded` campaign-wide),
//! all byte-identical across reruns, `--jobs N`, and `--no-shard`.
//! `--obs-diff <baseline> <current>` compares two such stores under the
//! shared tolerance bands and prints a deterministic drift report;
//! `--obs-strict` exits non-zero on FAIL-grade drift (CI gates against
//! the committed `results/OBS_baseline.json`). `--check-strict` applies
//! the same bands to `--check-manifest`'s baseline drift report.
//!
//! `--stress N` switches the binary into the stress harness
//! (`fiveg_bench::stress`): `N` seeded cases of experiment × fault
//! scenario × perturbed seed/budget run on the worker pool; every panic,
//! budget blow-out, guard-plane violation, or non-finite artifact number
//! is shrunk to a minimal case and written as a replayable reproducer
//! under `<out>/stress/`, next to a deterministic `stress.txt` summary
//! (byte-identical across reruns of the same `--stress-seed`).
//! `--repro <file>` replays one reproducer and exits 0 iff the recorded
//! failure reproduces exactly. `--strict` makes a campaign exit non-zero
//! when any experiment finished degraded.
//!
//! Shardable experiments (see `fiveg_bench::shard`) are decomposed into
//! independent units that feed the same worker pool as whole experiments,
//! so `--jobs N` parallelism applies *inside* the longest experiments too.
//! The decomposition itself runs in every mode — `--no-shard` only turns
//! off the pool fan-out (each shardable experiment runs its shards
//! in-line on one worker), so artifacts are byte-identical either way.
//! `--profile` forces span collection on every attempt and prints a
//! wall-clock-sorted experiment profile with each experiment's hottest
//! telemetry spans — the map for deciding what to shard or optimize next.
//! `--bench-baseline <path>` compares the finished campaign's
//! per-experiment wall clock against a recorded `BENCH_campaign.json` and
//! warns about regressions (generous 2× + 0.25 s tolerance, wall noise is
//! real); `--bench-strict` turns those warnings into a non-zero exit.
//!
//! Campaigns are interrupt-safe: SIGINT (^C) or SIGTERM stops the worker
//! pool from claiming new experiments, cancels in-flight attempts
//! cooperatively (their threads observe the kill at the next budget
//! charge, unwind, and exit — no leaked threads), flushes the manifest
//! atomically with the in-flight rows marked `interrupted`, and exits
//! with code 130. `--resume` then re-runs only the interrupted and
//! never-started experiments; the completed prefix is re-emitted
//! verbatim, so the resumed campaign's artifacts are byte-identical to
//! an uninterrupted run. `--deadline-s <secs>` and `--event-budget <n>`
//! tighten the per-attempt wall-clock deadline and event budget (they
//! also bound stress-mode cases and `--repro` replays); `--no-cancel`
//! disarms the cooperative cancellation plane, restoring the legacy
//! abandon-on-deadline behavior (deadline-blown threads leak) — campaign
//! artifacts are bit-identical either way.

use fiveg_bench::json::Json;
use fiveg_bench::report::{f, Table};
use fiveg_bench::runner::{self, ManifestEntry, RunStatus, Supervisor};
use fiveg_bench::{experiments, observe, stress, telemetry as telexport, CAMPAIGN_SEED};
use fiveg_simcore::faults::FaultScenario;
use fiveg_simcore::recovery::RecoveryKind;
use fiveg_simcore::stats::Grade;
use fiveg_simcore::telemetry::AttemptTelemetry;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

fn print_scenarios() {
    for name in FaultScenario::names() {
        println!("{name}");
    }
}

/// `--check-manifest <path>`: exit 0 iff the manifest parses, no
/// experiment degraded, and no row was left `interrupted` (an interrupted
/// campaign is incomplete until `--resume` finishes it). The CI gate for
/// chaos campaigns. With `--check-strict`, the baseline drift report
/// (warn-only by default) also gates: any drift past the shared
/// [`observe::OBS_TOLERANCE`] fail band exits non-zero.
fn check_manifest(path: &str, strict: bool) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let (seed, scenario, entries) = match runner::parse_manifest(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{path}: malformed manifest: {e}");
            std::process::exit(1);
        }
    };
    let interrupted: Vec<&ManifestEntry> = entries
        .iter()
        .filter(|e| e.status == RunStatus::Interrupted)
        .collect();
    if !interrupted.is_empty() {
        for e in &interrupted {
            eprintln!(
                "{path}: `{}` interrupted: {}",
                e.id,
                e.note.as_deref().unwrap_or("campaign stopped mid-run")
            );
        }
        eprintln!(
            "{path}: campaign incomplete ({} interrupted row(s)) — finish it with --resume",
            interrupted.len()
        );
        std::process::exit(1);
    }
    let degraded: Vec<&ManifestEntry> = entries
        .iter()
        .filter(|e| e.status == RunStatus::Degraded)
        .collect();
    if !degraded.is_empty() {
        for e in &degraded {
            eprintln!(
                "{path}: `{}` degraded: {}",
                e.id,
                e.note.as_deref().unwrap_or("unknown failure")
            );
        }
        std::process::exit(1);
    }
    let recoveries: usize = entries.iter().map(|e| e.recovery.events).sum();
    println!(
        "{path}: ok — seed {seed}, scenario {}, {} experiments, {recoveries} recovery events",
        scenario.as_deref().unwrap_or("none"),
        entries.len()
    );
    let breaches = report_baseline_drift(seed, scenario.as_deref(), &entries, strict);
    if strict && breaches > 0 {
        eprintln!(
            "--check-strict: {breaches} baseline drift breach(es) beyond the \
             {}%/{}% tolerance bands",
            observe::OBS_TOLERANCE.warn_pct,
            observe::OBS_TOLERANCE.fail_pct
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Companion to `--check-manifest`: when the tracked perf baseline
/// (`results/BENCH_campaign.json`) is present, report each manifest
/// experiment's baseline wall-clock and event count and flag drift the
/// manifest itself cannot show (the manifest carries no timings by
/// design). Deterministic drift — seed/scenario mismatch, status changes,
/// missing rows, and recovery-event counts outside
/// [`observe::OBS_TOLERANCE`] — counts toward the returned breach tally,
/// which `--check-strict` turns into a non-zero exit; without it the
/// report stays warn-only.
fn report_baseline_drift(
    seed: u64,
    scenario: Option<&str>,
    entries: &[ManifestEntry],
    strict: bool,
) -> usize {
    let base_path = Path::new("results/BENCH_campaign.json");
    let Ok(text) = std::fs::read_to_string(base_path) else {
        if strict {
            eprintln!(
                "--check-strict: no tracked baseline at {} — nothing to gate against",
                base_path.display()
            );
            return 1;
        }
        return 0; // no baseline tracked — nothing to compare
    };
    let base = match Json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("warning: {} unparseable: {e}", base_path.display());
            return 1;
        }
    };
    let mut breaches = 0usize;
    println!("-- baseline comparison ({}) --", base_path.display());
    let base_seed = base.get("seed").and_then(Json::as_f64);
    if base_seed != Some(seed as f64) {
        eprintln!(
            "warning: baseline seed {:?} != manifest seed {seed} — timings may not be comparable",
            base_seed
        );
        breaches += 1;
    }
    let base_scenario = base.get("scenario").and_then(Json::as_str);
    if base_scenario != scenario {
        eprintln!(
            "warning: baseline scenario {} != manifest scenario {}",
            base_scenario.unwrap_or("none"),
            scenario.unwrap_or("none")
        );
        breaches += 1;
    }
    let rows = base.get("results").and_then(Json::as_arr).unwrap_or(&[]);
    for e in entries {
        let row = rows
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some(e.id.as_str()));
        let Some(row) = row else {
            eprintln!("warning: `{}` has no row in the perf baseline", e.id);
            breaches += 1;
            continue;
        };
        let wall = row.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0);
        let events = row.get("events").and_then(Json::as_f64).unwrap_or(0.0);
        println!(
            "  {:<10} baseline wall {:.4} s, {} events",
            e.id, wall, events as u64
        );
        let base_status = row.get("status").and_then(Json::as_str).unwrap_or("ok");
        if base_status != e.status.as_str() {
            eprintln!(
                "warning: `{}` status drifted: baseline {base_status}, manifest {}",
                e.id,
                e.status.as_str()
            );
            breaches += 1;
        }
        // Recovery-event counts are deterministic, so they grade under the
        // same tolerance bands as --obs-diff (older baselines without the
        // field are simply not graded).
        if let Some(base_re) = row.get("recovery_events").and_then(Json::as_f64) {
            let actual = e.recovery.events as f64;
            match observe::OBS_TOLERANCE.grade(base_re, actual) {
                Grade::Pass => {}
                Grade::Warn => eprintln!(
                    "warning: `{}` recovery events drifted: baseline {}, manifest {}",
                    e.id, base_re as u64, actual as u64
                ),
                Grade::Fail => {
                    eprintln!(
                        "warning: `{}` recovery events drifted past the fail band: \
                         baseline {}, manifest {}",
                        e.id, base_re as u64, actual as u64
                    );
                    breaches += 1;
                }
            }
        }
    }
    breaches
}

/// `--obs-diff <baseline> <current>`: compare two `metrics.json` documents
/// (a directory argument means `<dir>/metrics.json`) under the shared
/// tolerance bands and print the deterministic drift report. Exits
/// non-zero on FAIL-grade drift only with `--obs-strict`.
fn obs_diff(baseline: &str, current: &str, strict: bool) -> ! {
    let read = |arg: &str| -> Json {
        let mut path = PathBuf::from(arg);
        if path.is_dir() {
            path = path.join("metrics.json");
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("--obs-diff: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        match Json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("--obs-diff: {} unparseable: {e}", path.display());
                std::process::exit(2);
            }
        }
    };
    let d = observe::diff_metrics(&read(baseline), &read(current));
    print!("{}", d.report);
    if d.fails > 0 {
        eprintln!("--obs-diff: {} FAIL-grade drift row(s)", d.fails);
        if strict {
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

/// `--validate [dir]`: grade every artifact in `dir` against the
/// expected-value table (`bench::expect`), write `<dir>/validation.txt`
/// atomically, and exit non-zero on any FAIL. The paper-fidelity gate.
fn validate(dir: &str) -> ! {
    let dir = Path::new(dir);
    let v = fiveg_bench::expect::validate_dir(dir);
    print!("{}", v.report);
    if let Err(e) = runner::write_atomic(&dir.join("validation.txt"), &v.report) {
        eprintln!("cannot write {}: {e}", dir.join("validation.txt").display());
        std::process::exit(2);
    }
    std::process::exit(if v.ok() { 0 } else { 1 });
}

/// `--repro <file>`: replay a stress reproducer and exit 0 iff the
/// recorded failure reproduces exactly (same verdict, same signature).
fn replay_repro(path: &str, deadline: std::time::Duration) -> ! {
    let doc = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match stress::replay_repro(&doc, deadline) {
        Ok((case, expected, observed, matches)) => {
            println!(
                "case {}: experiment {}, scenario {}, seed {}, budget {}, {} fault event(s)",
                case.id,
                case.experiment,
                case.scenario.as_deref().unwrap_or("none"),
                case.seed,
                case.event_budget,
                case.size()
            );
            println!(
                "expected: {} — {}",
                expected.verdict.as_str(),
                expected.signature
            );
            println!(
                "observed: {} — {}",
                observed.verdict.as_str(),
                observed.signature
            );
            if matches {
                println!("{path}: reproduced");
                std::process::exit(0);
            }
            eprintln!("{path}: did NOT reproduce");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    }
}

/// `--stress N`: run the randomized stress sweep, shrink every failure,
/// and write `stress.txt` plus one reproducer per failing case under
/// `<out>/stress/`. Exits non-zero iff any case failed.
fn run_stress_mode(cfg: &stress::StressConfig, out_dir: &Path) -> ! {
    let dir = out_dir.join("stress");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    if !fiveg_simcore::guard::compiled() {
        eprintln!(
            "warning: built without the `guards` feature — invariant \
             violations cannot be detected, only panics and budget trips"
        );
    }
    println!(
        "stress: {} case(s), seed {}, scenario {}, {} worker(s)",
        cfg.cases,
        cfg.seed,
        cfg.scenario.as_deref().unwrap_or("randomized"),
        cfg.jobs
    );
    let report = stress::run_stress(cfg);
    let table = stress::stress_table(&report);
    print!("{table}");
    write_or_die(&dir.join("stress.txt"), &table);
    let mut repros = 0usize;
    for r in &report.results {
        if let Some((case, outcome, runs)) = &r.shrunk {
            let name = format!("repro-c{}-{}.json", case.id, case.experiment);
            write_or_die(
                &dir.join(&name),
                &stress::repro_json(report.seed, case, outcome).render(),
            );
            println!(
                "case {}: shrunk to {} fault event(s) in {runs} run(s) — wrote {}",
                case.id,
                case.size(),
                dir.join(&name).display()
            );
            repros += 1;
        }
    }
    let failures = report.failures();
    println!(
        "stress: {}/{} case(s) failed, {repros} reproducer(s) written to {}",
        failures,
        report.results.len(),
        dir.display()
    );
    std::process::exit(if failures == 0 { 0 } else { 1 });
}

/// Renders the campaign resilience table from finished manifest rows.
fn resilience_table(entries: &[ManifestEntry], scenario: &str, seed: u64) -> String {
    let mut t = Table::new(vec![
        "experiment",
        "events",
        "outage(s)",
        "detect(s)",
        "rebuffer(s)",
        "failovers",
    ]);
    let (mut ev, mut out, mut reb, mut fo) = (0usize, 0.0f64, 0.0f64, 0usize);
    let mut detect_weighted = 0.0f64;
    let mut by_kind: HashMap<&str, usize> = HashMap::new();
    for e in entries {
        let r = &e.recovery;
        t.row(vec![
            e.id.clone(),
            r.events.to_string(),
            f(r.outage_s, 2),
            f(r.mean_detect_s, 2),
            f(r.rebuffer_s, 2),
            r.failovers.to_string(),
        ]);
        ev += r.events;
        out += r.outage_s;
        reb += r.rebuffer_s;
        fo += r.failovers;
        detect_weighted += r.mean_detect_s * r.events as f64;
        for (k, n) in &r.by_kind {
            for kind in RecoveryKind::ALL {
                if kind.name() == k {
                    *by_kind.entry(kind.name()).or_insert(0) += n;
                }
            }
        }
    }
    let mean_detect = if ev > 0 {
        detect_weighted / ev as f64
    } else {
        0.0
    };
    t.row(vec![
        "TOTAL".to_string(),
        ev.to_string(),
        f(out, 2),
        f(mean_detect, 2),
        f(reb, 2),
        fo.to_string(),
    ]);
    let mut body = format!(
        "==== RESILIENCE — scenario `{scenario}`, seed {seed} ====\n{}",
        t.render()
    );
    body.push_str("recovery actions by kind:\n");
    for kind in RecoveryKind::ALL {
        if let Some(n) = by_kind.get(kind.name()) {
            body.push_str(&format!("  {:<20} {n}\n", kind.name()));
        }
    }
    // Non-ok rows carry their supervisor note (why the run degraded, how
    // far it got — e.g. "deadline exceeded (30.0 s); cancelled
    // cooperatively (wedged; 84211 events charged at kill)"). Healthy
    // campaigns have none, so this section never perturbs their bytes.
    let flagged: Vec<&ManifestEntry> = entries
        .iter()
        .filter(|e| e.status != RunStatus::Ok)
        .collect();
    if !flagged.is_empty() {
        body.push_str("degraded rows:\n");
        for e in flagged {
            body.push_str(&format!(
                "  {:<10} {:<11} {}\n",
                e.id,
                e.status.as_str(),
                e.note.as_deref().unwrap_or("no note recorded")
            ));
        }
    }
    body
}

/// Loads the prior manifest for `--resume`, returning rows safe to skip:
/// status `ok` *and* the report file still on disk. A missing, malformed,
/// or mismatched (different seed/scenario) manifest resumes nothing.
fn resumable_entries(
    dir: &Path,
    seed: u64,
    scenario: Option<&str>,
) -> HashMap<String, ManifestEntry> {
    let path = dir.join("manifest.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => {
            eprintln!("--resume: no prior {} — starting fresh", path.display());
            return HashMap::new();
        }
    };
    let (prev_seed, prev_scenario, entries) = match runner::parse_manifest(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("--resume: ignoring malformed {}: {e}", path.display());
            return HashMap::new();
        }
    };
    if prev_seed != seed || prev_scenario.as_deref() != scenario {
        eprintln!(
            "--resume: prior manifest is for seed {prev_seed} / scenario {} \
             (this run: seed {seed} / scenario {}) — starting fresh",
            prev_scenario.as_deref().unwrap_or("none"),
            scenario.unwrap_or("none"),
        );
        return HashMap::new();
    }
    entries
        .into_iter()
        .filter(|e| e.status == RunStatus::Ok && dir.join(format!("{}.txt", e.id)).exists())
        .map(|e| (e.id.clone(), e))
        .collect()
}

/// `--profile`: experiments sorted by wall clock, each with its three
/// hottest telemetry spans (by cumulative simulated time). This is the
/// entry point of the profile → shard → verify loop: the top rows are the
/// sharding/optimization candidates, the spans say which inner phase to
/// attack. Wall numbers are host-dependent and go to stdout only — never
/// into an artifact.
fn profile_summary(outcomes: &[runner::RunOutcome], campaign_wall_s: f64) -> String {
    let serial_s: f64 = outcomes.iter().map(|o| o.wall_s).sum();
    let mut by_wall: Vec<&runner::RunOutcome> = outcomes.iter().collect();
    by_wall.sort_by(|a, b| b.wall_s.total_cmp(&a.wall_s));
    let mut body = format!(
        "==== PROFILE — campaign wall {campaign_wall_s:.2} s, \
         serial experiment time {serial_s:.2} s ====\n"
    );
    for o in by_wall {
        let pct = if serial_s > 0.0 {
            100.0 * o.wall_s / serial_s
        } else {
            0.0
        };
        body.push_str(&format!(
            "{:<20} {:>8.3} s  {:>5.1}%  {:>12} events\n",
            o.id, o.wall_s, pct, o.events
        ));
        let Some(telem) = &o.telemetry else { continue };
        let mut spans: Vec<_> = telem.spans.iter().collect();
        spans.sort_by(|a, b| b.1.total_s.total_cmp(&a.1.total_s));
        for (name, stat) in spans.into_iter().take(3) {
            body.push_str(&format!(
                "    {:<26} {:>10} span(s) {:>12.2} sim-s\n",
                name, stat.count, stat.total_s
            ));
        }
    }
    body
}

/// `--bench-baseline`: compare the finished campaign's per-experiment wall
/// clock against a recorded bench report. Returns the number of
/// regressions found (always also warned on stderr). The tolerance is
/// deliberately generous — wall-clock noise on shared runners is real —
/// so anything flagged is a genuine slowdown, not jitter.
fn compare_bench_baseline(
    rows: &[ManifestEntry],
    wall_by_id: &HashMap<String, f64>,
    path: &Path,
) -> usize {
    /// Flag only slowdowns beyond both a ratio and an absolute floor.
    const TOL_RATIO: f64 = 2.0;
    const TOL_FLOOR_S: f64 = 0.25;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("--bench-baseline: cannot read {}: {e}", path.display());
            return 1;
        }
    };
    let base = match Json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("--bench-baseline: {} unparseable: {e}", path.display());
            return 1;
        }
    };
    let base_rows = base.get("results").and_then(Json::as_arr).unwrap_or(&[]);
    let mut regressions = 0usize;
    for row in rows {
        let Some(&wall) = wall_by_id.get(&row.id) else {
            continue;
        };
        let base_wall = base_rows
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some(row.id.as_str()))
            .and_then(|r| r.get("wall_s"))
            .and_then(Json::as_f64);
        let Some(base_wall) = base_wall else {
            eprintln!(
                "--bench-baseline: `{}` has no row in {} — new experiment?",
                row.id,
                path.display()
            );
            continue;
        };
        if wall > base_wall * TOL_RATIO && wall - base_wall > TOL_FLOOR_S {
            eprintln!(
                "--bench-baseline: `{}` regressed: {:.3} s vs baseline {:.3} s \
                 (>{TOL_RATIO}x and >{TOL_FLOOR_S} s slower)",
                row.id, wall, base_wall
            );
            regressions += 1;
        }
    }
    if regressions == 0 {
        println!(
            "bench baseline {}: no wall-clock regression in {} experiment(s)",
            path.display(),
            rows.len()
        );
    }
    regressions
}

fn write_or_die(path: &Path, contents: &str) {
    if let Err(e) = runner::write_atomic(path, contents) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-scenarios") {
        print_scenarios();
        return;
    }
    // The strict toggles are parsed before their dispatching flags so
    // `--check-strict --check-manifest <m>` and `--obs-strict --obs-diff
    // <a> <b>` work in any argument order.
    let mut check_strict = false;
    if let Some(pos) = args.iter().position(|a| a == "--check-strict") {
        args.remove(pos);
        check_strict = true;
    }
    let mut obs_strict = false;
    if let Some(pos) = args.iter().position(|a| a == "--obs-strict") {
        args.remove(pos);
        obs_strict = true;
    }
    if let Some(pos) = args.iter().position(|a| a == "--check-manifest") {
        let path = args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--check-manifest needs a manifest path");
            std::process::exit(2);
        });
        check_manifest(&path, check_strict);
    }
    if let Some(pos) = args.iter().position(|a| a == "--obs-diff") {
        let baseline = args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--obs-diff needs <baseline> <current> metrics.json paths");
            std::process::exit(2);
        });
        let current = args.get(pos + 2).cloned().unwrap_or_else(|| {
            eprintln!("--obs-diff needs <baseline> <current> metrics.json paths");
            std::process::exit(2);
        });
        obs_diff(&baseline, &current, obs_strict);
    }
    if let Some(pos) = args.iter().position(|a| a == "--validate") {
        let dir = args
            .get(pos + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "results".to_string());
        validate(&dir);
    }
    // `--deadline-s` / `--event-budget` / `--no-cancel` are parsed before
    // the `--repro` dispatch so a replay inherits a tightened deadline.
    // Both track "was the flag given" (`None` = flag absent) because the
    // campaign supervisor and the stress harness have *different* built-in
    // defaults that must not clobber each other.
    let mut deadline_s: Option<f64> = None;
    if let Some(pos) = args.iter().position(|a| a == "--deadline-s") {
        args.remove(pos);
        let secs: f64 = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .filter(|&s: &f64| s > 0.0 && s.is_finite())
            .unwrap_or_else(|| {
                eprintln!("--deadline-s needs a positive number of seconds");
                std::process::exit(2);
            });
        args.remove(pos);
        deadline_s = Some(secs);
    }
    let mut event_budget: Option<u64> = None;
    if let Some(pos) = args.iter().position(|a| a == "--event-budget") {
        args.remove(pos);
        let n: u64 = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            // u64::MAX is the budget plane's "disarmed" sentinel; a real
            // budget must stay below it.
            .filter(|n| (1..u64::MAX).contains(n))
            .unwrap_or_else(|| {
                eprintln!("--event-budget needs a positive event count");
                std::process::exit(2);
            });
        args.remove(pos);
        event_budget = Some(n);
    }
    let mut cancel = true;
    if let Some(pos) = args.iter().position(|a| a == "--no-cancel") {
        args.remove(pos);
        cancel = false;
    }
    if let Some(pos) = args.iter().position(|a| a == "--repro") {
        let path = args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--repro needs a reproducer file path");
            std::process::exit(2);
        });
        let deadline = std::time::Duration::from_secs_f64(deadline_s.unwrap_or(120.0));
        replay_repro(&path, deadline);
    }
    let mut strict = false;
    if let Some(pos) = args.iter().position(|a| a == "--strict") {
        args.remove(pos);
        strict = true;
    }
    let mut seed = CAMPAIGN_SEED;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        args.remove(pos);
        seed = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--seed needs an integer");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    if let Some(pos) = args.iter().position(|a| a == "--cc") {
        args.remove(pos);
        let name = args
            .get(pos)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| {
                eprintln!("--cc needs a controller name (bbr or nada)");
                std::process::exit(2);
            });
        args.remove(pos);
        let algo = fiveg_transport::tcp::CcAlgo::parse(&name)
            .filter(|a| a.is_rate_based())
            .unwrap_or_else(|| {
                eprintln!("--cc: unknown or non-rate-based controller `{name}` (want bbr or nada)");
                std::process::exit(2);
            });
        experiments::bonded::set_cc(algo);
        if algo != fiveg_transport::tcp::CcAlgo::Nada {
            eprintln!(
                "--cc {name}: bonded-uplink will diverge from the committed golden \
                 (the default controller is nada)"
            );
        }
    }
    let mut out_dir: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        args.remove(pos);
        let dir = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--out needs a directory");
            std::process::exit(2);
        });
        args.remove(pos);
        let path = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&path) {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(2);
        }
        out_dir = Some(path);
    }
    let mut scenario: Option<FaultScenario> = None;
    if let Some(pos) = args.iter().position(|a| a == "--chaos") {
        args.remove(pos);
        let name = args
            .get(pos)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| {
                eprintln!("--chaos needs a scenario name; available scenarios:");
                print_scenarios();
                std::process::exit(2);
            });
        args.remove(pos);
        scenario = Some(FaultScenario::by_name(&name).unwrap_or_else(|| {
            eprintln!("unknown scenario: {name}; available scenarios:");
            print_scenarios();
            std::process::exit(2);
        }));
    }
    let mut resume = false;
    if let Some(pos) = args.iter().position(|a| a == "--resume") {
        args.remove(pos);
        resume = true;
        if out_dir.is_none() {
            eprintln!("--resume needs --out (the manifest lives there)");
            std::process::exit(2);
        }
    }
    let mut jobs = std::thread::available_parallelism().map_or(1, usize::from);
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        args.remove(pos);
        jobs = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let mut no_shard = false;
    if let Some(pos) = args.iter().position(|a| a == "--no-shard") {
        args.remove(pos);
        no_shard = true;
    }
    let mut profile = false;
    if let Some(pos) = args.iter().position(|a| a == "--profile") {
        args.remove(pos);
        profile = true;
        if !fiveg_simcore::telemetry::compiled() {
            eprintln!(
                "warning: built without the `telemetry` feature — \
                 --profile will show no spans"
            );
        }
    }
    let mut bench_baseline: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--bench-baseline") {
        args.remove(pos);
        let path = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--bench-baseline needs a BENCH_campaign.json path");
            std::process::exit(2);
        });
        args.remove(pos);
        bench_baseline = Some(PathBuf::from(path));
    }
    let mut bench_strict = false;
    if let Some(pos) = args.iter().position(|a| a == "--bench-strict") {
        args.remove(pos);
        bench_strict = true;
        if bench_baseline.is_none() {
            eprintln!("--bench-strict needs --bench-baseline <path> to compare against");
            std::process::exit(2);
        }
    }
    let mut bench_out: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--bench-out") {
        args.remove(pos);
        let path = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--bench-out needs a file path");
            std::process::exit(2);
        });
        args.remove(pos);
        let path = PathBuf::from(path);
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                std::process::exit(2);
            }
        }
        bench_out = Some(path);
    }
    let mut telemetry_dir: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--telemetry") {
        args.remove(pos);
        let dir = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--telemetry needs a directory");
            std::process::exit(2);
        });
        args.remove(pos);
        let path = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&path) {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(2);
        }
        if !fiveg_simcore::telemetry::compiled() {
            eprintln!(
                "warning: built without the `telemetry` feature — \
                 telemetry files will be empty"
            );
        }
        telemetry_dir = Some(path);
    }
    let mut obs_dir: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--obs") {
        args.remove(pos);
        let dir = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--obs needs a directory");
            std::process::exit(2);
        });
        args.remove(pos);
        let path = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&path) {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(2);
        }
        if !fiveg_simcore::telemetry::compiled() {
            eprintln!(
                "warning: built without the `telemetry` feature — \
                 observatory files will be empty"
            );
        }
        obs_dir = Some(path);
    }

    // Stress flags: parsed after the shared flags (`--out`, `--jobs`) so
    // the harness inherits them, dispatched before the campaign path.
    let mut stress_cases: Option<usize> = None;
    if let Some(pos) = args.iter().position(|a| a == "--stress") {
        args.remove(pos);
        stress_cases = Some(
            args.get(pos)
                .and_then(|s| s.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("--stress needs a positive case count");
                    std::process::exit(2);
                }),
        );
        args.remove(pos);
    }
    let mut stress_seed = CAMPAIGN_SEED;
    if let Some(pos) = args.iter().position(|a| a == "--stress-seed") {
        args.remove(pos);
        stress_seed = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--stress-seed needs an integer");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let mut stress_scenario: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--stress-scenario") {
        args.remove(pos);
        let name = args
            .get(pos)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| {
                eprintln!("--stress-scenario needs a scenario name; available scenarios:");
                print_scenarios();
                std::process::exit(2);
            });
        args.remove(pos);
        if FaultScenario::by_name(&name).is_none() {
            eprintln!("unknown scenario: {name}; available scenarios:");
            print_scenarios();
            std::process::exit(2);
        }
        stress_scenario = Some(name);
    }
    let mut stress_canary = false;
    if let Some(pos) = args.iter().position(|a| a == "--stress-canary") {
        args.remove(pos);
        stress_canary = true;
    }
    if let Some(cases) = stress_cases {
        let mut cfg = stress::StressConfig {
            cases,
            seed: stress_seed,
            scenario: stress_scenario,
            canary: stress_canary,
            jobs,
            ..stress::StressConfig::default()
        };
        if let Some(secs) = deadline_s {
            cfg.deadline = std::time::Duration::from_secs_f64(secs);
        }
        if let Some(budget) = event_budget {
            cfg.max_budget = budget;
        }
        let out = out_dir.unwrap_or_else(|| PathBuf::from("results"));
        run_stress_mode(&cfg, &out);
    }

    let registry = experiments::registry();
    if args.is_empty() {
        println!("available experiments (run `figures all` or name them):");
        for (id, _) in &registry {
            println!("  {id}");
        }
        println!("fault scenarios for --chaos:");
        for name in FaultScenario::names() {
            println!("  {name}");
        }
        return;
    }

    let entries: Vec<(&'static str, experiments::Experiment)> = if args.iter().any(|a| a == "all") {
        registry
    } else {
        args.iter()
            .map(|a| {
                registry
                    .iter()
                    .find(|(id, _)| id == a)
                    .copied()
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment: {a}");
                        std::process::exit(2);
                    })
            })
            .collect()
    };

    let scenario_name = scenario.as_ref().map(|s| s.name.clone());
    let mut supervisor = match scenario {
        Some(sc) => Supervisor::with_scenario(sc),
        None => Supervisor::default(),
    };
    supervisor.telemetry = telemetry_dir.is_some() || obs_dir.is_some() || profile;
    supervisor.shard = !no_shard;
    if let Some(secs) = deadline_s {
        supervisor.deadline = std::time::Duration::from_secs_f64(secs);
    }
    if let Some(budget) = event_budget {
        supervisor.event_budget = budget;
    }
    supervisor.cancel = cancel;
    // Graceful interrupt: the first SIGINT/SIGTERM stops the pool from
    // claiming new experiments and cancels in-flight attempts; the
    // manifest flush below then records them as `interrupted` rows for
    // `--resume` to pick up.
    supervisor.interrupt = Some(fiveg_bench::signal::install());

    let prior: HashMap<String, ManifestEntry> = match (&out_dir, resume) {
        (Some(dir), true) => resumable_entries(dir, seed, scenario_name.as_deref()),
        _ => HashMap::new(),
    };

    // Resumed rows are settled *before* the work queue exists: they are
    // pre-filled into their registry-order slots and the workers only ever
    // see the experiments that still need to run.
    let mut slots: Vec<Option<ManifestEntry>> = vec![None; entries.len()];
    let mut work: Vec<(&'static str, experiments::Experiment)> = Vec::new();
    let mut work_to_slot: Vec<usize> = Vec::new();
    for (i, &(id, exp)) in entries.iter().enumerate() {
        match prior.get(id) {
            Some(done) => {
                println!("{id}: resumed — completed ok in a previous run");
                slots[i] = Some(done.clone());
            }
            None => {
                work.push((id, exp));
                work_to_slot.push(i);
            }
        }
    }

    let rewrite_manifest = |slots: &[Option<ManifestEntry>], dir: &Path| {
        let done: Vec<ManifestEntry> = slots.iter().flatten().cloned().collect();
        let manifest = runner::manifest_from_entries(&done, seed, scenario_name.as_deref());
        write_or_die(&dir.join("manifest.json"), &manifest.render());
    };
    if let Some(dir) = &out_dir {
        if !slots.iter().all(Option::is_none) {
            rewrite_manifest(&slots, dir);
        }
    }

    let campaign_t0 = Instant::now();
    let slots = Mutex::new(slots);
    let (outcome_slots, worker_busy_s) =
        supervisor.run_registry_jobs_partial(&work, seed, jobs, |wi, outcome| {
            // The lock also serializes stdout/stderr and the manifest rewrite,
            // so interleaved workers cannot tear a report or a manifest write.
            let mut slots = slots.lock().expect("slots lock");
            if outcome.interrupted() {
                // No report file for an interrupted row: `--resume` re-runs
                // it, and a half-baked `<id>.txt` must never shadow the
                // re-run's real one.
                eprintln!(
                    "{}: interrupted — {}",
                    outcome.id,
                    outcome.note.as_deref().unwrap_or("campaign stopped")
                );
            } else {
                println!("{}", outcome.report.render());
                if outcome.degraded() {
                    eprintln!(
                        "warning: {} degraded after {} attempt(s): {}",
                        outcome.id,
                        outcome.attempts,
                        outcome.note.as_deref().unwrap_or("unknown failure")
                    );
                }
                if let Some(dir) = &out_dir {
                    write_or_die(
                        &dir.join(format!("{}.txt", outcome.id)),
                        &outcome.report.render(),
                    );
                }
            }
            slots[work_to_slot[wi]] = Some(ManifestEntry::from_outcome(outcome));
            // Rewrite the manifest after every experiment: a kill mid-campaign
            // leaves a parseable record of exactly the work that finished, which
            // is what `--resume` picks up.
            if let Some(dir) = &out_dir {
                rewrite_manifest(&slots, dir);
            }
        });
    let campaign_wall_s = campaign_t0.elapsed().as_secs_f64();
    let was_interrupted = supervisor.interrupted();
    // An uninterrupted partial run returns all-`Some` (same as the
    // non-partial variant); an interrupted one leaves the unclaimed tail
    // as `None` — those experiments never started and have no outcome.
    let outcomes: Vec<runner::RunOutcome> = outcome_slots.into_iter().flatten().collect();

    // Telemetry export: per-experiment sim-time artifacts (deterministic),
    // then the campaign summary (the only file with wall-clock numbers).
    if let Some(dir) = &telemetry_dir {
        let mut total = AttemptTelemetry::default();
        let mut stats = telexport::RunnerStats {
            experiments: Vec::new(),
            worker_busy_s,
            campaign_wall_s,
        };
        for outcome in &outcomes {
            let telem = outcome.telemetry.clone().unwrap_or_default();
            write_or_die(
                &dir.join(format!("{}.jsonl", outcome.id)),
                &telexport::jsonl(&telem),
            );
            write_or_die(
                &dir.join(format!("{}.trace.json", outcome.id)),
                &telexport::chrome_trace(outcome.id, &telem),
            );
            total.merge_aggregates(&telem);
            stats
                .experiments
                .push((outcome.id.to_string(), outcome.wall_s));
        }
        write_or_die(
            &dir.join("telemetry.txt"),
            &telexport::summary(&total, &stats),
        );
        println!(
            "wrote telemetry for {} experiments to {}",
            outcomes.len(),
            dir.display()
        );
    }

    let final_slots = slots.into_inner().expect("slots lock");
    let rows: Vec<ManifestEntry> = if was_interrupted {
        // Unclaimed slots are empty by design; the manifest on disk already
        // records exactly the rows that exist (ok / degraded / interrupted).
        final_slots.into_iter().flatten().collect()
    } else {
        final_slots
            .into_iter()
            .map(|s| s.expect("every registry entry ran or resumed"))
            .collect()
    };
    let degraded = rows
        .iter()
        .filter(|r| r.status == RunStatus::Degraded)
        .count();

    if was_interrupted {
        let cancelled = rows
            .iter()
            .filter(|r| r.status == RunStatus::Interrupted)
            .count();
        let finished = rows.len() - cancelled;
        let never_started = entries.len() - rows.len();
        eprintln!(
            "interrupted: {finished} experiment(s) finished, {cancelled} cancelled in flight, \
             {never_started} never started{}",
            match &out_dir {
                Some(dir) => format!(
                    " — resume with `figures --resume --out {} ...`",
                    dir.display()
                ),
                None => String::new(),
            }
        );
        let leaked = runner::leaked_threads();
        if leaked > 0 {
            eprintln!(
                "warning: {leaked} attempt thread(s) ignored cancellation and were \
                 abandoned (leaked)"
            );
        }
        // Skip the bench report and resilience table: both summarize a
        // *complete* campaign, and the resumed run rewrites them from the
        // full row set anyway.
        std::process::exit(fiveg_bench::signal::INTERRUPT_EXIT_CODE);
    }

    // Observatory export: the campaign metrics store, human dashboard, and
    // collapsed-stack flamegraphs — all pure sim-time data, byte-identical
    // across reruns, `--jobs N`, and `--no-shard`. Placed after the
    // interrupt exit above: a partial campaign must never write a partial
    // (yet plausible-looking) metrics baseline.
    if let Some(dir) = &obs_dir {
        let per: Vec<(String, AttemptTelemetry)> = outcomes
            .iter()
            .map(|o| (o.id.to_string(), o.telemetry.clone().unwrap_or_default()))
            .collect();
        if per.len() != entries.len() {
            eprintln!(
                "warning: --obs: {} of {} experiments were resumed without telemetry — \
                 the observatory covers only the rows that ran this campaign",
                entries.len() - per.len(),
                entries.len()
            );
        }
        let metrics = observe::campaign_metrics(seed, scenario_name.as_deref(), &per);
        write_or_die(&dir.join("metrics.json"), &metrics.render());
        write_or_die(
            &dir.join("observatory.txt"),
            &observe::observatory_txt(seed, scenario_name.as_deref(), &per),
        );
        let mut campaign: BTreeMap<String, u64> = BTreeMap::new();
        for (id, telem) in &per {
            let map = observe::folded_map(telem);
            write_or_die(
                &dir.join(format!("{id}.folded")),
                &observe::render_folded(&map),
            );
            observe::merge_folded(&mut campaign, &map);
        }
        write_or_die(
            &dir.join("campaign.folded"),
            &observe::render_folded(&campaign),
        );
        println!(
            "wrote campaign observatory ({} experiments) to {}",
            per.len(),
            dir.display()
        );
    }

    if let Some(path) = &bench_out {
        let report =
            runner::bench_report(&rows, seed, scenario_name.as_deref(), jobs, campaign_wall_s);
        write_or_die(path, &report.render());
        println!("wrote campaign bench report to {}", path.display());
    }

    if profile {
        print!("{}", profile_summary(&outcomes, campaign_wall_s));
    }

    if let Some(path) = &bench_baseline {
        let wall_by_id: HashMap<String, f64> = outcomes
            .iter()
            .map(|o| (o.id.to_string(), o.wall_s))
            .collect();
        let regressions = compare_bench_baseline(&rows, &wall_by_id, path);
        if regressions > 0 {
            eprintln!(
                "--bench-baseline: {regressions} wall-clock regression(s) vs {}",
                path.display()
            );
            if bench_strict {
                std::process::exit(1);
            }
        }
    }

    if let Some(name) = scenario_name.as_deref() {
        let table = resilience_table(&rows, name, seed);
        println!("{table}");
        if let Some(dir) = &out_dir {
            write_or_die(&dir.join("resilience.txt"), &table);
        }
    }

    // Guard-plane findings go to stderr only — never into any artifact,
    // which must stay byte-identical with the plane on or off.
    let total_violations: u64 = outcomes.iter().map(|o| o.guards.violation_count()).sum();
    if total_violations > 0 {
        eprintln!("warning: guard plane recorded {total_violations} invariant violation(s):");
        for o in &outcomes {
            if let Some(v) = o.guards.violations.first() {
                eprintln!(
                    "  {}: {} violation(s), first: {}",
                    o.id,
                    o.guards.violation_count(),
                    v.signature()
                );
            }
        }
    }

    let leaked = runner::leaked_threads();
    if leaked > 0 {
        eprintln!(
            "warning: {leaked} attempt thread(s) ignored cancellation and were \
             abandoned (leaked) this campaign"
        );
    }

    if degraded > 0 {
        eprintln!("{degraded}/{} experiments degraded", rows.len());
        if strict {
            std::process::exit(1);
        }
    }
}
