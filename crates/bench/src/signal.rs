//! Minimal graceful-shutdown signal shim for the `figures` CLI.
//!
//! The campaign driver wants exactly one bit from the operating system:
//! "the user asked us to stop" (SIGINT from ^C, SIGTERM from a supervisor
//! or CI timeout). The workspace is deliberately dependency-free, so
//! instead of a signal-handling crate this module declares the one libc
//! symbol it needs (`signal(2)`) and installs a handler that flips a
//! static [`AtomicBool`] — the only thing that is async-signal-safe to do
//! from a handler anyway. Everything downstream is ordinary Rust: the
//! campaign driver hands the flag to [`crate::runner::Supervisor`] as its
//! interrupt flag, workers stop claiming experiments, in-flight attempts
//! are cancelled cooperatively, and the manifest is flushed atomically
//! with in-flight rows marked `interrupted`.
//!
//! Off unix the shim compiles to a no-op install (the flag still exists
//! and tests can flip it by hand), so the crate builds everywhere without
//! a `libc` dependency or a platform gate in the callers.

use std::sync::atomic::{AtomicBool, Ordering};

/// Flipped by the first SIGINT/SIGTERM after [`install`]. Static for the
/// process lifetime so it can serve as [`crate::runner::Supervisor::interrupt`]
/// (which wants a `&'static AtomicBool`).
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// The exit code of a gracefully interrupted campaign: `128 + SIGINT(2)`,
/// the shell convention for "terminated by signal", distinct from the
/// CLI's usage-error (2) and strict-gate (1) exits.
pub const INTERRUPT_EXIT_CODE: i32 = 130;

#[cfg(unix)]
mod imp {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // `signal(2)` from the platform libc, which every unix Rust program
    // already links. The handler type is a plain C function pointer; we
    // never need the previous disposition, so the return value is unused.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // A signal handler may only touch async-signal-safe state; a
        // relaxed atomic store is exactly that. The second ^C after this
        // one finds the flag already set and the process still draining —
        // deliberate: the flush path is what keeps the manifest
        // crash-consistent.
        INTERRUPTED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {
        // No signal plumbing off unix: campaigns are still interruptible
        // by tests flipping the flag directly, just not by ^C.
    }
}

/// Installs the SIGINT/SIGTERM handler (no-op off unix) and returns the
/// interrupt flag to hand to the supervisor. Idempotent.
pub fn install() -> &'static AtomicBool {
    imp::install();
    &INTERRUPTED
}

/// The interrupt flag without installing any handler (tests flip it by
/// hand; the campaign driver uses [`install`]).
pub fn flag() -> &'static AtomicBool {
    &INTERRUPTED
}

/// True once an interrupt has been requested.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_is_static() {
        // Don't flip the flag here: it is process-global, and other tests
        // in this binary run real campaigns that must not see a phantom
        // interrupt. Just pin the wiring.
        let a = flag();
        let b = install();
        assert!(std::ptr::eq(a, b), "install returns the same static flag");
        assert_eq!(INTERRUPT_EXIT_CODE, 130);
    }
}
