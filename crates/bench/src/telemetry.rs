//! Rendering the telemetry plane's output into files.
//!
//! [`fiveg_simcore::telemetry`] drains one [`AttemptTelemetry`] per
//! instrumented experiment; this module turns it into the three artifacts
//! `figures --telemetry <dir>` writes:
//!
//! * `<id>.jsonl` — one JSON object per line: the span enter/exit stream in
//!   emission order, then the name-sorted aggregates. Pure sim-time data,
//!   so two runs of the same campaign (serial or `--jobs N`) produce
//!   byte-identical files.
//! * `<id>.trace.json` — the same span stream as Chrome `trace_event` JSON
//!   (async `b`/`e` events), loadable in `about:tracing` / Perfetto.
//!   Async events are used deliberately: components restart their local
//!   sim clocks, so strictly-nested `B`/`E` duration events would be
//!   malformed; async pairs keyed by span id are order-insensitive.
//! * `telemetry.txt` — the per-campaign summary: top spans by cumulative
//!   sim time, counter totals, gauge ranges, histogram quantiles, and the
//!   runner's wall-clock occupancy. The wall-clock rows live **only**
//!   here — the per-experiment files must stay deterministic.

use crate::json::Json;
use crate::report::{f, sparkline, Table};
use fiveg_simcore::telemetry::{AttemptTelemetry, SpanPhase, SERIES_BIN_S};

/// Renders one attempt's telemetry as a JSONL event stream.
///
/// Line order: span events (emission order), then `span_stat`, `counter`,
/// `gauge`, and `hist` lines (each name-sorted), then one `dropped_events`
/// line when the event buffer overflowed. Every line is a complete JSON
/// object, so the file is greppable and streamable.
pub fn jsonl(t: &AttemptTelemetry) -> String {
    let mut out = String::new();
    for e in &t.events {
        let ph = match e.phase {
            SpanPhase::Enter => "B",
            SpanPhase::Exit => "E",
        };
        out.push_str(
            &Json::obj(vec![
                ("type", Json::str("span")),
                ("ph", Json::str(ph)),
                ("id", Json::Num(e.id as f64)),
                ("name", Json::str(e.name)),
                ("t_s", Json::Num(e.t_s)),
            ])
            .render(),
        );
        out.push('\n');
    }
    for (name, s) in &t.spans {
        out.push_str(
            &Json::obj(vec![
                ("type", Json::str("span_stat")),
                ("name", Json::str(*name)),
                ("count", Json::Num(s.count as f64)),
                ("total_s", Json::Num(s.total_s)),
            ])
            .render(),
        );
        out.push('\n');
    }
    for (name, n) in &t.counters {
        out.push_str(
            &Json::obj(vec![
                ("type", Json::str("counter")),
                ("name", Json::str(*name)),
                ("total", Json::Num(*n as f64)),
            ])
            .render(),
        );
        out.push('\n');
    }
    for (name, g) in &t.gauges {
        out.push_str(
            &Json::obj(vec![
                ("type", Json::str("gauge")),
                ("name", Json::str(*name)),
                ("last", Json::Num(g.last)),
                ("min", Json::Num(g.min)),
                ("max", Json::Num(g.max)),
                ("samples", Json::Num(g.samples as f64)),
            ])
            .render(),
        );
        out.push('\n');
    }
    for (name, h) in &t.hists {
        out.push_str(
            &Json::obj(vec![
                ("type", Json::str("hist")),
                ("name", Json::str(*name)),
                ("count", Json::Num(h.count as f64)),
                ("mean", Json::Num(h.mean())),
                ("min", Json::Num(if h.count == 0 { 0.0 } else { h.min })),
                ("p50", Json::Num(h.quantile(0.50))),
                ("p90", Json::Num(h.quantile(0.90))),
                ("p99", Json::Num(h.quantile(0.99))),
                ("max", Json::Num(if h.count == 0 { 0.0 } else { h.max })),
            ])
            .render(),
        );
        out.push('\n');
    }
    for (name, s) in &t.series {
        out.push_str(
            &Json::obj(vec![
                ("type", Json::str("series")),
                ("name", Json::str(*name)),
                ("bin_s", Json::Num(SERIES_BIN_S)),
                ("samples", Json::Num(s.samples() as f64)),
                (
                    "sums",
                    Json::Arr(s.sums.iter().map(|&v| Json::Num(v)).collect()),
                ),
                (
                    "counts",
                    Json::Arr(s.counts.iter().map(|&n| Json::Num(n as f64)).collect()),
                ),
            ])
            .render(),
        );
        out.push('\n');
    }
    if t.dropped_events > 0 {
        out.push_str(
            &Json::obj(vec![
                ("type", Json::str("dropped_events")),
                ("count", Json::Num(t.dropped_events as f64)),
            ])
            .render(),
        );
        out.push('\n');
    }
    out
}

/// Renders one attempt's span stream as a Chrome `trace_event` document.
///
/// One async begin/end pair (`ph: "b"` / `"e"`) per span, keyed by the
/// span's per-attempt id, timestamps in microseconds of sim time. Load the
/// file in `about:tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(experiment_id: &str, t: &AttemptTelemetry) -> String {
    let events: Vec<Json> = t
        .events
        .iter()
        .map(|e| {
            let ph = match e.phase {
                SpanPhase::Enter => "b",
                SpanPhase::Exit => "e",
            };
            Json::obj(vec![
                ("name", Json::str(e.name)),
                ("cat", Json::str("sim")),
                ("ph", Json::str(ph)),
                ("id", Json::Num(e.id as f64)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(1.0)),
                // trace_event timestamps are microseconds.
                ("ts", Json::Num(e.t_s * 1e6)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
        (
            "otherData",
            Json::obj(vec![
                ("experiment", Json::str(experiment_id)),
                ("clock", Json::str("simulated seconds × 1e6")),
            ]),
        ),
    ])
    .render()
}

/// Wall-clock occupancy of the campaign run, folded into the summary (and
/// nothing else — wall time is nondeterministic by nature).
#[derive(Debug, Clone, Default)]
pub struct RunnerStats {
    /// `(experiment id, wall seconds across attempts)` in completion-report
    /// order.
    pub experiments: Vec<(String, f64)>,
    /// Busy seconds per worker thread (index = worker).
    pub worker_busy_s: Vec<f64>,
    /// Campaign wall-clock, seconds.
    pub campaign_wall_s: f64,
}

/// Renders the per-campaign `telemetry.txt` summary: top spans by
/// cumulative sim time, counter totals, gauge ranges, histogram quantiles
/// (from the campaign-wide aggregate roll-up), then the runner's
/// wall-clock section from `runner`.
pub fn summary(total: &AttemptTelemetry, runner: &RunnerStats) -> String {
    let mut out = String::new();
    out.push_str("==== CAMPAIGN TELEMETRY ====\n\n");

    out.push_str("-- Top spans by cumulative simulated time --\n");
    let mut spans: Vec<_> = total.spans.clone();
    spans.sort_by(|a, b| {
        b.1.total_s
            .partial_cmp(&a.1.total_s)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(b.0))
    });
    let mut t = Table::new(vec!["span", "count", "total sim s", "mean sim s"]);
    for (name, s) in &spans {
        let mean = if s.count == 0 {
            0.0
        } else {
            s.total_s / s.count as f64
        };
        t.row(vec![
            (*name).to_string(),
            s.count.to_string(),
            f(s.total_s, 3),
            f(mean, 6),
        ]);
    }
    out.push_str(&t.render());

    if !total.counters.is_empty() {
        out.push_str("\n-- Counters --\n");
        let mut t = Table::new(vec!["counter", "total"]);
        for (name, n) in &total.counters {
            t.row(vec![(*name).to_string(), n.to_string()]);
        }
        out.push_str(&t.render());
    }

    if !total.gauges.is_empty() {
        out.push_str("\n-- Gauges --\n");
        let mut t = Table::new(vec!["gauge", "last", "min", "max", "samples"]);
        for (name, g) in &total.gauges {
            t.row(vec![
                (*name).to_string(),
                f(g.last, 3),
                f(g.min, 3),
                f(g.max, 3),
                g.samples.to_string(),
            ]);
        }
        out.push_str(&t.render());
    }

    if !total.hists.is_empty() {
        out.push_str("\n-- Histograms (bucket-estimated quantiles) --\n");
        let mut t = Table::new(vec![
            "histogram",
            "count",
            "mean",
            "p50",
            "p90",
            "p99",
            "min",
            "max",
        ]);
        for (name, h) in &total.hists {
            t.row(vec![
                (*name).to_string(),
                h.count.to_string(),
                f(h.mean(), 3),
                f(h.quantile(0.50), 3),
                f(h.quantile(0.90), 3),
                f(h.quantile(0.99), 3),
                f(if h.count == 0 { 0.0 } else { h.min }, 3),
                f(if h.count == 0 { 0.0 } else { h.max }, 3),
            ]);
        }
        out.push_str(&t.render());
    }

    if !total.series.is_empty() {
        out.push_str("\n-- Series (bin means over sim time) --\n");
        let mut t = Table::new(vec!["series", "bin s", "samples", "shape"]);
        for (name, s) in &total.series {
            let means: Vec<f64> = (0..s.counts.len())
                .map(|i| s.mean(i).unwrap_or(0.0))
                .collect();
            t.row(vec![
                (*name).to_string(),
                f(SERIES_BIN_S, 0),
                s.samples().to_string(),
                sparkline(&means),
            ]);
        }
        out.push_str(&t.render());
    }

    if total.dropped_events > 0 {
        out.push_str(&format!(
            "\nspan events dropped past the per-attempt buffer cap: {}\n",
            total.dropped_events
        ));
    }

    out.push_str("\n-- Runner (wall clock; this section is nondeterministic) --\n");
    let mut t = Table::new(vec!["span", "wall s"]);
    let mut exps: Vec<_> = runner.experiments.clone();
    exps.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    for (id, wall) in &exps {
        t.row(vec![format!("runner/experiment/{id}"), f(*wall, 3)]);
    }
    for (w, busy) in runner.worker_busy_s.iter().enumerate() {
        t.row(vec![format!("runner/worker/{w}"), f(*busy, 3)]);
    }
    t.row(vec![
        "runner/campaign".to_string(),
        f(runner.campaign_wall_s, 3),
    ]);
    out.push_str(&t.render());
    if !runner.worker_busy_s.is_empty() && runner.campaign_wall_s > 0.0 {
        let busy: f64 = runner.worker_busy_s.iter().sum();
        let cap = runner.campaign_wall_s * runner.worker_busy_s.len() as f64;
        out.push_str(&format!(
            "worker occupancy: {:.1}% ({} workers)\n",
            100.0 * busy / cap,
            runner.worker_busy_s.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_simcore::telemetry::{self, GaugeStat, Histogram, SpanEvent, SpanStat};

    fn sample() -> AttemptTelemetry {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.observe(v);
        }
        AttemptTelemetry {
            events: vec![
                SpanEvent {
                    id: 1,
                    name: "radio/drive",
                    phase: SpanPhase::Enter,
                    t_s: 0.0,
                },
                SpanEvent {
                    id: 1,
                    name: "radio/drive",
                    phase: SpanPhase::Exit,
                    t_s: 2.5,
                },
            ],
            dropped_events: 0,
            spans: vec![(
                "radio/drive",
                SpanStat {
                    count: 1,
                    total_s: 2.5,
                },
            )],
            counters: vec![("radio/handoff/vertical", 3)],
            gauges: vec![(
                "transport/mean_mbps",
                GaugeStat {
                    last: 80.0,
                    min: 60.0,
                    max: 95.0,
                    samples: 4,
                },
            )],
            hists: vec![("rrc/delay_ms", h)],
            series: Vec::new(),
        }
    }

    #[test]
    fn jsonl_emits_one_object_per_line_in_stable_order() {
        let s = jsonl(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6, "2 events + 4 aggregate lines");
        for line in &lines {
            Json::parse(line).expect("every line is standalone JSON");
        }
        assert!(lines[0].contains("\"ph\":\"B\""));
        assert!(lines[1].contains("\"ph\":\"E\""));
        assert!(lines[2].contains("span_stat"));
        assert!(lines[3].contains("counter"));
        assert!(lines[4].contains("gauge"));
        assert!(lines[5].contains("hist"));
    }

    #[test]
    fn jsonl_is_byte_deterministic() {
        let t = sample();
        assert_eq!(jsonl(&t), jsonl(&t));
    }

    #[test]
    fn jsonl_reports_dropped_events() {
        let mut t = sample();
        t.dropped_events = 7;
        let s = jsonl(&t);
        assert!(s.lines().last().unwrap().contains("dropped_events"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_async_pairs() {
        let s = chrome_trace("fig9", &sample());
        let v = Json::parse(&s).expect("valid JSON document");
        let events = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("b"));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("e"));
        assert_eq!(events[1].get("ts").and_then(Json::as_f64), Some(2.5e6));
        assert_eq!(
            v.get("otherData")
                .and_then(|o| o.get("experiment"))
                .and_then(Json::as_str),
            Some("fig9")
        );
    }

    #[test]
    fn summary_lists_spans_counters_and_runner_sections() {
        let mut total = AttemptTelemetry::default();
        total.merge_aggregates(&sample());
        let runner = RunnerStats {
            experiments: vec![("fig9".to_string(), 0.05), ("table2".to_string(), 0.09)],
            worker_busy_s: vec![0.08, 0.06],
            campaign_wall_s: 0.1,
        };
        let s = summary(&total, &runner);
        assert!(s.contains("radio/drive"));
        assert!(s.contains("radio/handoff/vertical"));
        assert!(s.contains("rrc/delay_ms"));
        assert!(s.contains("runner/experiment/table2"));
        assert!(s.contains("runner/worker/1"));
        assert!(s.contains("worker occupancy"));
    }

    #[test]
    fn rendering_an_actual_drained_attempt_round_trips() {
        // Exercise the real collector end to end: install, record, drain,
        // render twice — byte-identical both times.
        if !telemetry::compiled() {
            return;
        }
        let render = || {
            let _g = telemetry::collect();
            telemetry::clock(0.0);
            {
                let _s = telemetry::span("test/outer");
                telemetry::clock(1.0);
                telemetry::count("test/n", 2);
                telemetry::observe("test/v", 3.5);
            }
            let t = telemetry::drain();
            (jsonl(&t), chrome_trace("x", &t))
        };
        let (a_jsonl, a_trace) = render();
        let (b_jsonl, b_trace) = render();
        assert_eq!(a_jsonl, b_jsonl);
        assert_eq!(a_trace, b_trace);
        assert!(!a_jsonl.is_empty());
    }
}
