//! The paper-fidelity validation plane.
//!
//! A machine-readable table of expected values — headline throughputs,
//! RRC timer inferences, power-model MAPE bounds, ABR QoE orderings,
//! interface-selection win rates — each with an id, a tolerance band, and
//! a pointer to the paper figure/table it pins, plus in-tree parsers for
//! every `results/*.txt` artifact format (key-value tables, fixed-width
//! tables with sections, CDF series, prose notes, the resilience table).
//!
//! `figures --validate [dir]` evaluates every expectation against the
//! artifacts in `dir`, prints per-check PASS / WARN(drift) / FAIL rows,
//! writes an atomically-replaced `validation.txt`, and exits non-zero on
//! any FAIL. Expectations whose artifact file is absent are *skipped*
//! (subset campaign dirs validate cleanly); an artifact present on disk
//! but covered by no expectation is a FAIL (the table must keep up with
//! the registry). `resilience.txt` carries scenario-dependent values, so
//! it is validated structurally: the TOTAL row must equal its column
//! sums.

use crate::report::Table;
use fiveg_simcore::stats::{first_number, numbers_in, Grade, Tolerance};
use std::path::Path;

/// One parsed `results/*.txt` artifact.
#[derive(Debug)]
pub struct Artifact {
    /// Upper-case id from the `==== ID — title ====` banner.
    pub id: String,
    /// Human title from the banner.
    pub title: String,
    /// Sections in file order; content before any `-- name --` marker
    /// lands in an unnamed section.
    pub sections: Vec<Section>,
}

/// A section: at most one fixed-width table plus any prose notes.
#[derive(Debug, Default)]
pub struct Section {
    /// Name from the `-- name --` marker; empty for the preamble section.
    pub name: String,
    /// Table column headers (empty if the section has no table).
    pub header: Vec<String>,
    /// Table rows, one `Vec<String>` of cells per row.
    pub rows: Vec<Vec<String>>,
    /// Non-table, non-blank lines (prose notes, crossover lines...).
    pub notes: Vec<String>,
}

/// Splits a fixed-width table line into cells. The `report::Table`
/// renderer right-aligns cells with a 2-space column gap, so cells are
/// separated by runs of ≥ 2 spaces while cell-internal single spaces
/// ("5G NSA mmWave") survive.
fn split_cells(line: &str) -> Vec<String> {
    line.trim()
        .split("  ")
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn is_rule(line: &str) -> bool {
    let t = line.trim();
    t.len() >= 3 && t.bytes().all(|b| b == b'-')
}

fn is_section_marker(line: &str) -> bool {
    let t = line.trim();
    t.len() > 6 && t.starts_with("-- ") && t.ends_with(" --") && !is_rule(line)
}

/// Parses one artifact. Errors carry enough context to show in a FAIL row.
pub fn parse_artifact(text: &str) -> Result<Artifact, String> {
    let mut lines = text.lines().peekable();
    let banner = loop {
        match lines.next() {
            Some(l) if l.trim().is_empty() => continue,
            Some(l) => break l.trim().to_string(),
            None => return Err("empty artifact".into()),
        }
    };
    if !banner.starts_with("====") || !banner.ends_with("====") {
        return Err(format!("missing `==== id — title ====` banner: {banner}"));
    }
    let inner = banner.trim_matches('=').trim();
    let (id, title) = match inner.split_once(" — ") {
        Some((id, title)) => (id.trim().to_string(), title.trim().to_string()),
        None => (inner.to_string(), String::new()),
    };
    let mut sections = vec![Section::default()];
    let mut in_rows = false;
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            in_rows = false;
            continue;
        }
        if is_section_marker(line) {
            let name = line.trim();
            sections.push(Section {
                name: name[3..name.len() - 3].trim().to_string(),
                ..Section::default()
            });
            in_rows = false;
            continue;
        }
        let cur = sections.last_mut().expect("at least one section");
        // A header line is recognised by the dashes rule under it.
        if cur.header.is_empty() && matches!(lines.peek(), Some(l) if is_rule(l)) {
            cur.header = split_cells(line);
            lines.next(); // consume the rule
            in_rows = true;
            continue;
        }
        let cells = split_cells(line);
        if in_rows && cells.len() == cur.header.len() {
            cur.rows.push(cells);
        } else {
            in_rows = false;
            cur.notes.push(line.trim().to_string());
        }
    }
    Ok(Artifact {
        id,
        title,
        sections,
    })
}

/// Where in a parsed artifact an expectation reads its value.
#[derive(Debug, Clone, Copy)]
pub enum Probe {
    /// A table cell: `section` matched by substring ("" = first section
    /// with a table), `row` by prefix against the row's cells joined with
    /// `|`, `col` by exact-then-substring match against the header.
    Cell {
        section: &'static str,
        row: &'static str,
        col: &'static str,
    },
    /// The `pick`-th number (negative = from the end) on the first note
    /// line containing `contains`, searched across all sections.
    Note { contains: &'static str, pick: isize },
    /// The number of table rows in the matched section.
    RowCount { section: &'static str },
}

/// How the probed value is judged.
#[derive(Debug, Clone, Copy)]
pub enum Check {
    /// Relative-drift band around `expected` (see `stats::Tolerance`).
    Near {
        expected: f64,
        tol: Tolerance,
    },
    /// Inclusive range; outside is FAIL (no WARN band).
    Within {
        lo: f64,
        hi: f64,
    },
    AtLeast(f64),
    AtMost(f64),
    /// The probed cell must be the maximum of its column (ties pass).
    MaxInColumn,
    /// The probed cell must be the minimum of its column (ties pass).
    MinInColumn,
}

/// One pinned expected value.
pub struct Expectation {
    /// Stable id, `<artifact>.<slug>`.
    pub id: &'static str,
    /// Artifact file stem (`fig1` → `results/fig1.txt`).
    pub artifact: &'static str,
    /// The paper figure/table this pins.
    pub pin: &'static str,
    /// What the value means, for humans reading the source.
    pub what: &'static str,
    pub probe: Probe,
    pub check: Check,
}

fn find_section<'a>(art: &'a Artifact, want: &str) -> Result<&'a Section, String> {
    if want.is_empty() {
        return art
            .sections
            .iter()
            .find(|s| !s.header.is_empty())
            .ok_or_else(|| format!("{}: no table in any section", art.id));
    }
    art.sections
        .iter()
        .find(|s| s.name.contains(want))
        .ok_or_else(|| format!("{}: no section matching `{want}`", art.id))
}

fn find_col(section: &Section, col: &str) -> Result<usize, String> {
    if let Some(i) = section.header.iter().position(|h| h == col) {
        return Ok(i);
    }
    section
        .header
        .iter()
        .position(|h| h.contains(col))
        .ok_or_else(|| format!("no column matching `{col}` in {:?}", section.header))
}

/// Resolves a `Cell` probe to its value plus every numeric value in the
/// same column (for the Max/MinInColumn checks).
fn resolve_cell(
    art: &Artifact,
    section: &str,
    row: &str,
    col: &str,
) -> Result<(f64, Vec<f64>), String> {
    let sec = find_section(art, section)?;
    let ci = find_col(sec, col)?;
    let ri = sec
        .rows
        .iter()
        .position(|r| (r.join("|") + "|").starts_with(row))
        .ok_or_else(|| format!("no row with prefix `{row}`"))?;
    let value = first_number(&sec.rows[ri][ci])
        .ok_or_else(|| format!("cell `{}` holds no number", sec.rows[ri][ci]))?;
    let column: Vec<f64> = sec
        .rows
        .iter()
        .filter_map(|r| first_number(&r[ci]))
        .collect();
    Ok((value, column))
}

fn resolve(art: &Artifact, probe: &Probe) -> Result<(f64, Vec<f64>), String> {
    match probe {
        Probe::Cell { section, row, col } => resolve_cell(art, section, row, col),
        Probe::Note { contains, pick } => {
            let line = art
                .sections
                .iter()
                .flat_map(|s| s.notes.iter())
                .find(|n| n.contains(contains))
                .ok_or_else(|| format!("no note containing `{contains}`"))?;
            let nums = numbers_in(line);
            let idx = if *pick < 0 {
                nums.len() as isize + pick
            } else {
                *pick
            };
            let v = (idx >= 0)
                .then(|| nums.get(idx as usize).copied())
                .flatten()
                .ok_or_else(|| format!("note `{line}` has no number at index {pick}"))?;
            Ok((v, Vec::new()))
        }
        Probe::RowCount { section } => {
            let sec = find_section(art, section)?;
            Ok((sec.rows.len() as f64, Vec::new()))
        }
    }
}

/// Formats a value for the report: integers plainly, otherwise up to 4
/// decimals with trailing zeros trimmed. Purely a function of the value,
/// so the report is byte-stable across reruns.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return if v.is_nan() {
            "NaN".into()
        } else {
            "inf".into()
        };
    }
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e12 {
        return format!("{:.0}", v);
    }
    let s = format!("{:.4}", v);
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

fn describe(check: &Check) -> String {
    match check {
        Check::Near { expected, tol } => format!(
            "near {} (warn {}%, fail {}%)",
            fmt_num(*expected),
            fmt_num(tol.warn_pct),
            fmt_num(tol.fail_pct)
        ),
        Check::Within { lo, hi } => format!("in [{}, {}]", fmt_num(*lo), fmt_num(*hi)),
        Check::AtLeast(v) => format!(">= {}", fmt_num(*v)),
        Check::AtMost(v) => format!("<= {}", fmt_num(*v)),
        Check::MaxInColumn => "column max".into(),
        Check::MinInColumn => "column min".into(),
    }
}

/// Grades `actual` (plus its `column` context) against `check`, returning
/// the verdict and the drift column text.
fn grade(check: &Check, actual: f64, column: &[f64]) -> (Grade, String) {
    if !actual.is_finite() {
        return (Grade::Fail, "-".into());
    }
    match check {
        Check::Near { expected, tol } => {
            let drift = Tolerance::drift_pct(*expected, actual);
            (tol.grade(*expected, actual), format!("{:+.1}%", drift))
        }
        Check::Within { lo, hi } => {
            let g = if actual >= *lo && actual <= *hi {
                Grade::Pass
            } else {
                Grade::Fail
            };
            (g, "-".into())
        }
        Check::AtLeast(v) => {
            let g = if actual >= *v {
                Grade::Pass
            } else {
                Grade::Fail
            };
            (g, "-".into())
        }
        Check::AtMost(v) => {
            let g = if actual <= *v {
                Grade::Pass
            } else {
                Grade::Fail
            };
            (g, "-".into())
        }
        Check::MaxInColumn => {
            let top = column.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let g = if actual >= top {
                Grade::Pass
            } else {
                Grade::Fail
            };
            (g, "-".into())
        }
        Check::MinInColumn => {
            let bottom = column.iter().cloned().fold(f64::INFINITY, f64::min);
            let g = if actual <= bottom {
                Grade::Pass
            } else {
                Grade::Fail
            };
            (g, "-".into())
        }
    }
}

/// Outcome of validating one directory of artifacts.
pub struct Validation {
    /// The rendered `validation.txt` body.
    pub report: String,
    pub passes: usize,
    pub warns: usize,
    pub fails: usize,
    /// Expectations skipped because their artifact file is absent.
    pub skipped: usize,
}

impl Validation {
    /// True iff the gate holds (no FAIL row).
    pub fn ok(&self) -> bool {
        self.fails == 0
    }
}

/// Validates every artifact in `dir` against [`expectations`], plus the
/// structural resilience check when `resilience.txt` is present.
pub fn validate_dir(dir: &Path) -> Validation {
    let mut table = Table::new(vec!["result", "id", "actual", "drift", "expected", "pins"]);
    let (mut passes, mut warns, mut fails, mut skipped) = (0usize, 0usize, 0usize, 0usize);
    let mut artifacts: Vec<String> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| {
                    let p = e.path();
                    let stem = p.file_stem()?.to_str()?.to_string();
                    (p.extension()?.to_str()? == "txt" && stem != "validation").then_some(stem)
                })
                .collect()
        })
        .unwrap_or_default();
    artifacts.sort();

    let mut covered: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut parsed: std::collections::BTreeMap<String, Result<Artifact, String>> =
        std::collections::BTreeMap::new();
    for stem in &artifacts {
        let path = dir.join(format!("{stem}.txt"));
        let res = std::fs::read_to_string(&path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|t| parse_artifact(&t));
        parsed.insert(stem.clone(), res);
    }

    let mut tally = |g: Grade| match g {
        Grade::Pass => passes += 1,
        Grade::Warn => warns += 1,
        Grade::Fail => fails += 1,
    };

    for e in expectations() {
        let Some(res) = parsed.get(e.artifact) else {
            skipped += 1;
            continue;
        };
        covered.insert(e.artifact.to_string());
        let (g, actual, drift) = match res {
            Ok(art) => match resolve(art, &e.probe) {
                Ok((v, column)) => {
                    let (g, drift) = grade(&e.check, v, &column);
                    (g, fmt_num(v), drift)
                }
                Err(err) => (Grade::Fail, err, "-".into()),
            },
            Err(err) => (Grade::Fail, err.clone(), "-".into()),
        };
        tally(g);
        table.row(vec![
            g.as_str().to_string(),
            e.id.to_string(),
            actual,
            drift,
            describe(&e.check),
            e.pin.to_string(),
        ]);
    }

    // The resilience table is scenario-dependent, so it is pinned
    // structurally: TOTAL must equal the per-experiment column sums.
    if let Some(res) = parsed.get("resilience") {
        covered.insert("resilience".to_string());
        for (g, id, actual, expected) in resilience_checks(res) {
            tally(g);
            table.row(vec![
                g.as_str().to_string(),
                id,
                actual,
                "-".into(),
                expected,
                "chaos campaign".into(),
            ]);
        }
    }

    for stem in &artifacts {
        if !covered.contains(stem) {
            tally(Grade::Fail);
            table.row(vec![
                Grade::Fail.as_str().to_string(),
                format!("{stem}.uncovered"),
                "-".into(),
                "-".into(),
                "an entry in bench::expect".into(),
                "-".into(),
            ]);
        }
    }
    if artifacts.is_empty() {
        tally(Grade::Fail);
        table.row(vec![
            Grade::Fail.as_str().to_string(),
            "validation.no-artifacts".into(),
            "0".into(),
            "-".into(),
            ">= 1 artifact in dir".into(),
            "-".into(),
        ]);
    }

    let mut report = format!(
        "==== VALIDATION — paper-fidelity gate ====\n{}",
        table.render()
    );
    report.push_str(&format!(
        "\n{} checks: {passes} PASS, {warns} WARN, {fails} FAIL\n\
         artifacts covered: {}/{}; expectations skipped (artifact absent): {skipped}\n",
        passes + warns + fails,
        covered.len(),
        artifacts.len(),
    ));
    Validation {
        report,
        passes,
        warns,
        fails,
        skipped,
    }
}

type StructuralCheck = (Grade, String, String, String);

/// TOTAL-row structural checks for `resilience.txt`. `detect(s)` is an
/// event-weighted mean, not a sum, so it is not checked here.
fn resilience_checks(res: &Result<Artifact, String>) -> Vec<StructuralCheck> {
    let art = match res {
        Ok(a) => a,
        Err(e) => {
            return vec![(
                Grade::Fail,
                "resilience.parse".into(),
                e.clone(),
                "parseable artifact".into(),
            )]
        }
    };
    let sec = match find_section(art, "") {
        Ok(s) => s,
        Err(e) => {
            return vec![(
                Grade::Fail,
                "resilience.table".into(),
                e,
                "a resilience table".into(),
            )]
        }
    };
    let total = sec.rows.iter().find(|r| r[0] == "TOTAL");
    let Some(total) = total else {
        return vec![(
            Grade::Fail,
            "resilience.total-row".into(),
            "absent".into(),
            "a TOTAL row".into(),
        )];
    };
    let body: Vec<&Vec<String>> = sec.rows.iter().filter(|r| r[0] != "TOTAL").collect();
    let mut out = Vec::new();
    for (slug, col) in [
        ("events", "events"),
        ("outage", "outage"),
        ("rebuffer", "rebuffer"),
        ("failovers", "failovers"),
    ] {
        let Ok(ci) = find_col(sec, col) else {
            out.push((
                Grade::Fail,
                format!("resilience.{slug}"),
                "column missing".into(),
                format!("a `{col}` column"),
            ));
            continue;
        };
        let sum: f64 = body.iter().filter_map(|r| first_number(&r[ci])).sum();
        let stated = first_number(&total[ci]).unwrap_or(f64::NAN);
        // Each addend is printed rounded to 2 decimals, so the stated
        // total may differ from the sum of printed values by half a ULP
        // of the print format per row.
        let slack = 0.005 * body.len() as f64 + 1e-9;
        let g = if (sum - stated).abs() <= slack {
            Grade::Pass
        } else {
            Grade::Fail
        };
        out.push((
            g,
            format!("resilience.{slug}"),
            fmt_num(stated),
            format!("sums to {}", fmt_num(sum)),
        ));
    }
    out
}

fn near(expected: f64, warn_pct: f64, fail_pct: f64) -> Check {
    Check::Near {
        expected,
        tol: Tolerance::pct(warn_pct, fail_pct),
    }
}

fn cell(section: &'static str, row: &'static str, col: &'static str) -> Probe {
    Probe::Cell { section, row, col }
}

/// The expected-value table. Values are pinned against the committed
/// seed-2021 goldens; `pin` names the paper figure/table each one
/// reproduces, and the bands encode how much campaign drift is tolerable
/// before the reproduction stops supporting the paper's claim.
#[rustfmt::skip]
pub fn expectations() -> Vec<Expectation> {
    let e = |id, artifact, pin, what, probe, check| Expectation { id, artifact, pin, what, probe, check };
    vec![
        // §3.1 — RTT vs UE-server distance (Fig 1–2).
        e("fig1.rtt-nearest", "fig1", "Fig 1", "RTT to the co-located Minneapolis server",
          cell("", "Verizon, Minneapolis|0|", "RTT"), near(6.0, 5.0, 15.0)),
        e("fig1.rtt-farthest", "fig1", "Fig 1", "RTT grows linearly to the farthest server",
          cell("", "Verizon, San Francisco|2545", "RTT"), near(49.3, 5.0, 15.0)),
        e("fig1.servers", "fig1", "Fig 1", "one row per measured server",
          Probe::RowCount { section: "" }, Check::Within { lo: 35.0, hi: 35.0 }),
        e("fig2.mmwave-floor", "fig2", "Fig 2", "mmWave latency floor at 0 km",
          cell("", "0|", "mmWave"), near(6.0, 5.0, 15.0)),
        e("fig2.lte-floor", "fig2", "Fig 2", "LTE latency floor at 0 km",
          cell("", "0|", "LTE"), near(20.0, 5.0, 15.0)),
        e("fig2.mmwave-far", "fig2", "Fig 2", "mmWave stays the lowest-latency band at range",
          cell("", "2545|", "mmWave"), near(49.3, 5.0, 15.0)),
        // §3.2 — mmWave throughput vs distance (Fig 3–4).
        e("fig3.multi-peak", "fig3", "Fig 3", "multi-connection DL saturates ~3.4 Gbps",
          cell("", "0|", "multi"), near(3400.0, 2.0, 8.0)),
        e("fig3.single-near", "fig3", "Fig 3", "single-connection DL near the server",
          cell("", "0|", "single"), near(3201.0, 5.0, 15.0)),
        e("fig3.single-far", "fig3", "Fig 3", "single-connection DL decays with distance",
          cell("", "2545|", "single"), Check::Within { lo: 1000.0, hi: 2400.0 }),
        e("fig3.rtt-far", "fig3", "Fig 3", "RTT at the farthest server",
          cell("", "2545|", "RTT"), near(49.3, 5.0, 15.0)),
        e("fig4.ul-cap", "fig4", "Fig 4", "mmWave UL cap ~230 Mbps",
          cell("", "0|", "multi"), near(230.0, 2.0, 8.0)),
        e("fig4.ul-single-far", "fig4", "Fig 4", "UL barely distance-sensitive",
          cell("", "2545|", "single"), Check::Within { lo: 200.0, hi: 230.0 }),
        // §3.3 — SA vs NSA low-band (Fig 5–7).
        e("fig5.latency-floor", "fig5", "Fig 5", "low-band latency floor at 0 km",
          cell("", "0|", "SA"), near(13.1, 5.0, 15.0)),
        e("fig5.sa-nsa-parity", "fig5", "Fig 5", "SA and NSA latency match at range",
          cell("", "2545|", "NSA"), near(56.3, 5.0, 15.0)),
        e("fig6.sa-dl", "fig6", "Fig 6", "SA low-band DL cap",
          cell("", "0|", "SA multi"), near(110.0, 2.0, 10.0)),
        e("fig6.nsa-dl", "fig6", "Fig 6", "NSA low-band DL cap (2x SA)",
          cell("", "0|", "NSA multi"), near(220.0, 2.0, 10.0)),
        e("fig7.sa-ul", "fig7", "Fig 7", "SA low-band UL cap",
          cell("", "0|", "SA multi"), near(55.0, 2.0, 10.0)),
        e("fig7.nsa-ul", "fig7", "Fig 7", "NSA low-band UL cap (2x SA)",
          cell("", "0|", "NSA multi"), near(110.0, 2.0, 10.0)),
        // §3.4 — transport settings across Azure regions (Fig 8).
        e("fig8.udp-cap", "fig8", "Fig 8", "UDP reaches the provisioned cap everywhere",
          cell("", "Azure Central|", "UDP"), near(2200.0, 2.0, 8.0)),
        e("fig8.default-collapse", "fig8", "Fig 8", "default single-TCP collapses at range",
          cell("", "Azure West|", "1-TCP default"), near(163.0, 10.0, 30.0)),
        e("fig8.tuned-recovers", "fig8", "Fig 8", "tuned single-TCP recovers most of the loss",
          cell("", "Azure West|", "1-TCP tuned"), Check::AtLeast(800.0)),
        // §3.5 — handoffs while driving (Fig 9).
        e("fig9.nsa-total", "fig9", "Fig 9", "NSA+LTE setting hands off the most",
          cell("", "NSA-5G + LTE|", "total"), near(95.0, 10.0, 30.0)),
        e("fig9.nsa-share", "fig9", "Fig 9", "time share spent on NSA in that setting",
          cell("", "NSA-5G + LTE|", "NSA %"), near(89.3, 5.0, 15.0)),
        e("fig9.lte-only", "fig9", "Fig 9", "LTE-only baseline handoff count",
          cell("", "LTE only|", "total"), near(30.0, 10.0, 30.0)),
        // §4.1 — RRC state inference (Fig 10, Table 7).
        e("fig10.sa-connected-rtt", "fig10", "Fig 10", "RTT while RRC_CONNECTED (SA)",
          cell("T-Mobile SA low-band", "1|", "mean RTT"), Check::Within { lo: 25.0, hi: 60.0 }),
        e("fig10.sa-inactive-resume", "fig10", "Fig 10", "RRC_INACTIVE resume is sub-promotion cost",
          cell("T-Mobile SA low-band", "11|", "mean RTT"), Check::Within { lo: 300.0, hi: 1000.0 }),
        e("fig10.sa-idle-promo", "fig10", "Fig 10", "RRC_IDLE pays the full promotion",
          cell("T-Mobile SA low-band", "16|", "mean RTT"), Check::AtLeast(950.0)),
        e("fig10.steps", "fig10", "Fig 10", "16 idle-gap probes per staircase",
          Probe::RowCount { section: "Verizon NSA mmWave" }, Check::Within { lo: 16.0, hi: 16.0 }),
        e("table7.sa-tail", "table7", "Table 7", "inferred SA RRC tail timer",
          cell("", "T-Mobile SA low-band|", "tail ms"), near(10400.0, 2.0, 8.0)),
        e("table7.mmwave-tail", "table7", "Table 7", "inferred mmWave RRC tail timer",
          cell("", "Verizon NSA mmWave|", "tail ms"), near(10500.0, 2.0, 8.0)),
        e("table7.4g-tail", "table7", "Table 7", "inferred T-Mobile 4G tail timer",
          cell("", "T-Mobile 4G|", "tail ms"), near(5000.0, 2.0, 8.0)),
        e("table7.mmwave-promo", "table7", "Table 7", "4G->5G promotion cost on mmWave",
          cell("", "Verizon NSA mmWave|", "5G promo"), near(1961.0, 10.0, 25.0)),
        // Campaign bookkeeping (Table 1).
        e("table1.tests", "table1", "Table 1", "number of 5G performance tests",
          cell("", "5G network performance tests|", "value"), near(4194.0, 5.0, 20.0)),
        e("table1.servers", "table1", "Table 1", "unique servers tested",
          cell("", "unique servers", "value"), near(115.0, 5.0, 20.0)),
        e("table1.walked", "table1", "Table 1", "kilometres of walking campaigns",
          cell("", "total kilometres", "value"), near(80.0, 5.0, 20.0)),
        // §4.2 — power during RRC transitions (Table 2), monitor cost (Table 3).
        e("table2.mmwave-tail", "table2", "Table 2", "mmWave tail power",
          cell("", "Verizon NSA mmWave|", "tail"), near(1097.0, 3.0, 10.0)),
        e("table2.mmwave-switch", "table2", "Table 2", "4G->5G switch power on mmWave",
          cell("", "Verizon NSA mmWave|", "switch"), near(1494.0, 3.0, 10.0)),
        e("table2.sa-tail", "table2", "Table 2", "SA low-band tail power",
          cell("", "T-Mobile SA low-band|", "tail"), near(593.0, 3.0, 10.0)),
        e("table2.4g-tail", "table2", "Table 2", "4G tail power is an order cheaper",
          cell("", "T-Mobile 4G|", "tail"), near(68.0, 10.0, 30.0)),
        e("table3.idle", "table3", "Table 3", "idle baseline power",
          cell("", "Idle|", "power"), near(2014.3, 1.0, 5.0)),
        e("table3.1hz", "table3", "Table 3", "1 Hz monitoring overhead",
          cell("", "Monitor on (1Hz)|", "power"), near(2668.5, 1.0, 5.0)),
        e("table3.10hz", "table3", "Table 3", "10 Hz monitoring overhead",
          cell("", "Monitor on (10Hz)|", "power"), near(3125.7, 1.0, 5.0)),
        // §4.3 — throughput-power curves (Fig 11–12, Fig 26, Table 8).
        e("fig11.dl-mmwave-2gbps", "fig11", "Fig 11", "S20U mmWave power at 2 Gbps DL",
          cell("Downlink", "2000|", "power"), near(6.64, 3.0, 10.0)),
        e("fig11.dl-crossover-4g", "fig11", "Fig 11", "DL rate where mmWave beats 4G on power",
          Probe::Note { contains: "crossover (Downlink): mmWave beats 4G/LTE", pick: -1 },
          near(187.0, 5.0, 15.0)),
        e("fig11.ul-crossover-4g", "fig11", "Fig 11", "UL rate where mmWave beats 4G on power",
          Probe::Note { contains: "crossover (Uplink): mmWave beats 4G/LTE", pick: -1 },
          near(40.0, 5.0, 15.0)),
        e("fig12.dl-1mbps", "fig12", "Fig 12", "mmWave efficiency at trickle rates",
          cell("Downlink", "1|", "mmWave"), near(3.018, 5.0, 15.0)),
        e("fig12.efficiency-note", "fig12", "Fig 12", "5G efficiency advantage at its high rate",
          Probe::Note { contains: "less efficient", pick: -1 }, near(5.3, 5.0, 20.0)),
        e("fig26.dl-2gbps", "fig26", "Fig 26", "S10 mmWave power at 2 Gbps DL",
          cell("Downlink", "2000|", "power"), near(7.17, 3.0, 10.0)),
        e("fig26.ul-crossover", "fig26", "Fig 26", "S10 UL crossover vs 4G",
          Probe::Note { contains: "crossover (Uplink)", pick: -1 }, near(44.0, 5.0, 15.0)),
        e("fig26.dl-eff-1mbps", "fig26", "Fig 27", "S10 5G efficiency at 1 Mbps",
          cell("Fig 27 Downlink", "1|", "5G uJ"), near(3.054, 5.0, 15.0)),
        e("table8.s10-lte-dl", "table8", "Table 8", "S10 4G DL slope",
          cell("", "S10|4G/LTE", "DL"), near(13.61, 5.0, 15.0)),
        e("table8.s20u-mmwave-dl", "table8", "Table 8", "S20U mmWave DL slope (flattest)",
          cell("", "S20U|5G NSA mmWave", "DL"), near(1.79, 5.0, 15.0)),
        e("table8.s20u-lte-ul", "table8", "Table 8", "S20U 4G UL slope (steepest)",
          cell("", "S20U|4G/LTE", "UL"), near(76.53, 10.0, 25.0)),
        // §4.4 — walking campaigns (Fig 13–14).
        e("fig13.mpls-strong", "fig13", "Fig 13", "Minneapolis mmWave tput at strong RSRP",
          cell("Minneapolis", "[-80,-70)|5G NSA mmWave", "tput"), near(1967.0, 10.0, 25.0)),
        e("fig13.mpls-weak", "fig13", "Fig 13", "Minneapolis mmWave tput at weak RSRP",
          cell("Minneapolis", "[-110,-100)|5G NSA mmWave", "tput"), near(363.0, 15.0, 40.0)),
        e("fig13.lowband-flat", "fig13", "Fig 13", "low-band tput barely tracks RSRP",
          cell("Minneapolis", "[-80,-70)|5G NSA Low-Band", "tput"),
          Check::Within { lo: 90.0, hi: 160.0 }),
        e("fig14.weak-bin", "fig14", "Fig 14", "uJ/bit explodes in the weakest RSRP bin",
          cell("Ann Arbor", "[-110,-105)", "uJ/bit"), near(0.1167, 15.0, 40.0)),
        e("fig14.strong-bin", "fig14", "Fig 14", "uJ/bit at the strongest RSRP bin",
          cell("Minneapolis", "[-80,-75)", "uJ/bit"), near(0.0039, 15.0, 40.0)),
        // §4.5 — power modeling (Fig 15–16, Table 9).
        e("fig15.thss-bound", "fig15", "Fig 15", "TH+SS MAPE stays under 4%",
          cell("", "S10/VZ/NSA-HB|", "TH+SS"), Check::AtMost(4.0)),
        e("fig15.thss-mape", "fig15", "Fig 15", "TH+SS MAPE, S10 mmWave",
          cell("", "S10/VZ/NSA-HB|", "TH+SS"), near(2.58, 5.0, 20.0)),
        e("fig15.ss-only-worst", "fig15", "Fig 15", "signal-strength-only model is far worse",
          cell("", "S20/TM/NSA-LB|", "SS %"), Check::AtLeast(15.0)),
        e("fig15.holdout", "fig15", "Fig 15", "held-out session MAPE bound",
          Probe::Note { contains: "held-out", pick: -1 }, Check::AtMost(4.0)),
        e("fig16.worst", "fig16", "Fig 16", "uncalibrated 1 Hz software monitor is worst",
          cell("", "SW-1Hz uncalibrated|", "MAPE"), Check::MaxInColumn),
        e("fig16.sw1hz-cal", "fig16", "Fig 16", "DTR calibration rescues the 1 Hz monitor",
          cell("", "SW-1Hz calibrated (DTR)|", "MAPE"), near(3.29, 10.0, 30.0)),
        e("fig16.sw10hz-cal", "fig16", "Fig 16", "calibrated 10 Hz monitor under 4%",
          cell("", "SW-10Hz calibrated (DTR)|", "MAPE"), Check::AtMost(4.0)),
        e("table9.video-1hz", "table9", "Table 9", "software monitor accuracy, video workload",
          cell("", "Video streaming|", "@1Hz"), near(92.7, 3.0, 10.0)),
        e("table9.udp400-10hz", "table9", "Table 9", "software monitor accuracy, bulk UDP",
          cell("", "UDP DL 400Mbps|", "@10Hz"), near(89.6, 3.0, 10.0)),
        e("table9.floor", "table9", "Table 9", "every workload stays above 80% accuracy",
          cell("", "Idle (screen off)|", "@1Hz"), Check::AtLeast(75.0)),
        // §5.2 — ABR QoE on 5G (Fig 17, Fig 18a–c).
        e("fig17.pensieve-worst", "fig17", "Fig 17", "Pensieve stalls most on 5G (4G-trained)",
          cell("", "Pensieve|", "5G stall"), Check::MaxInColumn),
        e("fig17.pensieve-5g-stall", "fig17", "Fig 17", "Pensieve 5G stall percentage",
          cell("", "Pensieve|", "5G stall"), near(34.31, 15.0, 40.0)),
        e("fig17.pensieve-5g-bitrate", "fig17", "Fig 17", "...while chasing the top bitrate",
          cell("", "Pensieve|", "5G bitrate"), Check::AtLeast(0.9)),
        e("fig17.4g-benign", "fig17", "Fig 17", "4G rarely stalls any algorithm",
          cell("", "BBA|", "4G stall"), Check::AtMost(1.0)),
        e("fig17.festive-conservative", "fig17", "Fig 17", "FESTIVE trades bitrate for safety",
          cell("", "FESTIVE|", "5G bitrate"), Check::MinInColumn),
        e("fig18a.truth-top", "fig18a", "Fig 18a", "oracle prediction upper-bounds QoE",
          cell("", "truthMPC|", "QoE"), Check::MaxInColumn),
        e("fig18a.gdbt-normalized", "fig18a", "Fig 18a", "GBDT recovers much of the oracle gap",
          cell("", "MPC_GDBT|", "normalized"), Check::Within { lo: 0.4, hi: 0.9 }),
        e("fig18a.hm-gap", "fig18a", "Fig 18a", "harmonic-mean prediction lags badly on 5G",
          cell("", "hmMPC|", "normalized"), Check::AtMost(0.5)),
        e("fig18b.stall-4s", "fig18b", "Fig 18b", "4 s chunks stall percentage",
          cell("", "4s|", "stall"), near(19.40, 15.0, 40.0)),
        e("fig18b.bitrate-1s", "fig18b", "Fig 18b", "short chunks keep bitrate high",
          cell("", "1s|", "bitrate"), Check::Within { lo: 0.75, hi: 0.95 }),
        e("fig18c.only-worst-energy", "fig18c", "Fig 18c/Table 4", "5G-only MPC costs most energy",
          cell("", "5G-only MPC|", "energy"), Check::MaxInColumn),
        e("fig18c.only-energy", "fig18c", "Fig 18c/Table 4", "5G-only MPC energy",
          cell("", "5G-only MPC|", "energy"), near(870.6, 10.0, 25.0)),
        e("fig18c.aware-energy", "fig18c", "Fig 18c/Table 4", "5G-aware selection saves energy",
          cell("", "5G-aware MPC|", "energy"), near(791.3, 10.0, 25.0)),
        // §6 — web QoE (Fig 19–21) and interface selection (Table 6).
        e("fig19.heavy-4g-plt", "fig19", "Fig 19", "4G PLT on >10MB pages",
          cell("impact of total page size", ">10MB|", "4G PLT"), near(12.23, 10.0, 30.0)),
        e("fig19.heavy-5g-plt", "fig19", "Fig 19", "5G loads heavy pages faster",
          cell("impact of total page size", ">10MB|", "5G PLT"), near(8.89, 10.0, 30.0)),
        e("fig19.heavy-5g-energy", "fig19", "Fig 19", "...but burns far more energy",
          cell("impact of total page size", ">10MB|", "5G J"), Check::AtLeast(15.0)),
        e("fig20.median-4g", "fig20", "Fig 20", "median 4G PLT",
          cell("", "0.50|", "4G PLT"), near(2.01, 10.0, 25.0)),
        e("fig20.median-5g", "fig20", "Fig 20", "median 5G PLT",
          cell("", "0.50|", "5G PLT"), near(1.52, 10.0, 25.0)),
        e("fig20.p99-energy", "fig20", "Fig 20", "tail 5G page energy",
          cell("", "0.99|", "5G J"), near(35.35, 15.0, 40.0)),
        e("fig21.modal-bucket", "fig21", "Fig 21", "most sites sit in the 20-30% penalty bucket",
          cell("", "20-30|", "n sites"), Check::MaxInColumn),
        e("fig21.saving-high", "fig21", "Fig 21", "4G saves ~70% energy in that bucket",
          cell("", "20-30|", "energy saving"), near(71.2, 5.0, 15.0)),
        e("table6.m1-5g-heavy", "table6", "Table 6", "performance-first model rides 5G",
          cell("", "M1|", "use 5G"), Check::AtLeast(350.0)),
        e("table6.m4-all-4g", "table6", "Table 6", "energy-first model picks 4G always",
          cell("", "M4|", "use 4G"), near(450.0, 1.0, 5.0)),
        e("table6.m3-acc", "table6", "Table 6", "balanced model decision accuracy",
          cell("", "M3|", "acc"), Check::AtLeast(90.0)),
        e("table6.m3-energy", "table6", "Table 6", "balanced model energy saving",
          cell("", "M3|", "energy saving"), near(68.0, 5.0, 15.0)),
        // §7 — extended experiments (Fig 23–24).
        e("fig23.8cc-multi", "fig23", "Fig 23", "8CC multi-connection DL",
          cell("", "S20U|", "multi DL"), near(3400.0, 2.0, 8.0)),
        e("fig23.4cc-multi", "fig23", "Fig 23", "4CC multi-connection DL",
          cell("", "PX5|", "multi DL"), near(2200.0, 2.0, 8.0)),
        e("fig24.servers", "fig24", "Fig 24", "one row per Minnesota Speedtest server",
          Probe::RowCount { section: "" }, Check::Within { lo: 37.0, hi: 37.0 }),
        e("fig24.best", "fig24", "Fig 24", "best server saturates the radio",
          cell("", "1. Verizon, Minneapolis|", "DL"), near(3400.0, 2.0, 8.0)),
        e("fig24.capped-tail", "fig24", "Fig 24", "worst server is backhaul-capped",
          cell("", "37. Midco, Ely|", "DL"), near(500.0, 2.0, 10.0)),
        // In-repo ablations and extensions.
        e("ablation-blockage.on-worse", "ablation-blockage", "§5.2 ablation",
          "blockage drives the 5G stall story",
          cell("", "on (default)|", "stall"), Check::MaxInColumn),
        e("ablation-blockage.on-stall", "ablation-blockage", "§5.2 ablation",
          "stall % with blockage on",
          cell("", "on (default)|", "stall"), near(20.49, 25.0, 60.0)),
        e("ablation-blockage.off-stall", "ablation-blockage", "§5.2 ablation",
          "pure-LoS mmWave barely stalls",
          cell("", "off (pure LoS)|", "stall"), Check::AtMost(5.0)),
        e("ablation-cc.cubic-gains-35ms", "ablation-cc", "§3.4 ablation",
          "CUBIC's edge grows with BDP",
          cell("", "35|", "CUBIC/Reno"), Check::AtLeast(1.2)),
        e("ablation-cc.cubic-8ms", "ablation-cc", "§3.4 ablation",
          "short-RTT throughput is healthy either way",
          cell("", "8|", "CUBIC Mbps"), Check::Within { lo: 2000.0, hi: 3400.0 }),
        e("ablation-cc.bbr-loss-resilient", "ablation-cc", "§3.4 ablation",
          "BBR holds goodput on the lossy long-haul path where CUBIC folds",
          cell("", "50|", "BBR/CUBIC"), Check::AtLeast(1.0)),
        e("ablation-cc.bbr-8ms", "ablation-cc", "§3.4 ablation",
          "BBR fills the short-RTT mmWave pipe too",
          cell("", "8|", "BBR Mbps"), Check::Within { lo: 2000.0, hi: 3400.0 }),
        e("ablation-cc.nada-long-haul", "ablation-cc", "§3.4 ablation",
          "NADA shrugs off random long-haul loss (quadratic loss term)",
          cell("", "50|", "NADA Mbps"), Check::AtLeast(1500.0)),
        e("ablation-hysteresis.damping", "ablation-hysteresis", "§3.5 ablation",
          "low hysteresis churns the most handoffs",
          cell("", "1|", "NSA total"), Check::MaxInColumn),
        e("ablation-hysteresis.base", "ablation-hysteresis", "§3.5 ablation",
          "NSA handoffs at 1 dB hysteresis",
          cell("", "1|", "NSA total"), near(104.0, 15.0, 40.0)),
        e("ablation-pensieve.4g-trained-worse", "ablation-pensieve", "§5.2 ablation",
          "training distribution drives Pensieve's 5G stalls",
          cell("", "4G traces", "5G stall"), Check::MaxInColumn),
        e("ablation-pensieve.4g-stall", "ablation-pensieve", "§5.2 ablation",
          "4G-trained Pensieve stall % on 5G",
          cell("", "4G traces", "5G stall"), near(38.15, 25.0, 60.0)),
        e("ablation-wmem.small-buffer", "ablation-wmem", "§3.4 ablation",
          "0.5 MB sender buffer throttles to ~200 Mbps",
          cell("", "0.5|", "1-TCP"), near(200.0, 5.0, 15.0)),
        e("ablation-wmem.saturation", "ablation-wmem", "§3.4 ablation",
          "large buffers saturate the path",
          cell("", "16.0|", "1-TCP"), Check::AtLeast(2500.0)),
        e("ablation-wmem.bbr-small-buffer", "ablation-wmem", "§3.4 ablation",
          "rate-based pacing hits the same wmem/RTT wall",
          cell("", "0.5|", "BBR Mbps"), Check::AtMost(220.0)),
        e("ablation-wmem.nada-saturation", "ablation-wmem", "§3.4 ablation",
          "a big buffer frees NADA to saturate the path",
          cell("", "16.0|", "NADA Mbps"), Check::AtLeast(2500.0)),
        e("bonded-uplink.metro-agg", "bonded-uplink", "§6 extension",
          "a metro 4G+5G bond aggregates well past the LTE leg alone",
          cell("throughput", "metro ", "agg Mbps"), near(1018.0, 10.0, 30.0)),
        e("bonded-uplink.metro-two-groups", "bonded-uplink", "§6 extension",
          "independent metro bottlenecks stay in separate SBD groups",
          cell("sbd", "metro ", "groups"), Check::Within { lo: 2.0, hi: 2.0 }),
        e("bonded-uplink.capped-one-group", "bonded-uplink", "§6 extension",
          "a capped carrier core collapses the bond into one SBD group",
          cell("sbd", "capped ", "groups"), Check::Within { lo: 1.0, hi: 1.0 }),
        e("bonded-uplink.capped-under-cap", "bonded-uplink", "§6 extension",
          "behind a 600 Mbps core the bond cannot beat the core",
          cell("throughput", "capped ", "agg Mbps"), Check::AtMost(600.0)),
        e("bonded-uplink.dual-lte-sbd-confound", "bonded-uplink", "§6 extension",
          "one sender saturating both legs correlates them (RFC 8382 caveat)",
          cell("sbd", "dual LTE|", "groups"), Check::Within { lo: 1.0, hi: 1.0 }),
        e("ext-periodic.mmwave-worst", "ext-periodic", "§4.2 extension",
          "keep-alives are most expensive on NSA mmWave",
          cell("", "Verizon NSA mmWave|", "T=1s"), Check::MaxInColumn),
        e("ext-periodic.mmwave-1s", "ext-periodic", "§4.2 extension",
          "10-minute energy at 1 s keep-alive period",
          cell("", "Verizon NSA mmWave|", "T=1s"), near(685.7, 10.0, 25.0)),
        e("ext-periodic.4g-cheap", "ext-periodic", "§4.2 extension",
          "the same workload on 4G",
          cell("", "T-Mobile 4G|", "T=1s"), near(131.6, 10.0, 25.0)),
        e("ext-periodic.sparse-cheap", "ext-periodic", "§4.2 extension",
          "sparse keep-alives amortize the tail",
          cell("", "Verizon NSA mmWave|", "T=300s"), Check::AtMost(100.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
==== FIGX — a sample artifact ====
-- Downlink --
Mbps              net  power W
------------------------------
 200    5G NSA mmWave     3.38
 200  5G NSA Low-Band     3.51
2000    5G NSA mmWave     6.64
crossover (Downlink): mmWave beats 4G/LTE above 187.0 Mbps

a trailing prose note with no numbers
";

    #[test]
    fn parses_banner_sections_tables_and_notes() {
        let art = parse_artifact(SAMPLE).expect("parse");
        assert_eq!(art.id, "FIGX");
        assert_eq!(art.title, "a sample artifact");
        let sec = &art.sections[1];
        assert_eq!(sec.name, "Downlink");
        assert_eq!(sec.header, vec!["Mbps", "net", "power W"]);
        assert_eq!(sec.rows.len(), 3);
        assert_eq!(sec.rows[1], vec!["200", "5G NSA Low-Band", "3.51"]);
        assert_eq!(sec.notes.len(), 2, "crossover + prose are notes");
    }

    #[test]
    fn cell_probe_disambiguates_rows_by_joined_prefix() {
        let art = parse_artifact(SAMPLE).expect("parse");
        let (v, column) =
            resolve(&art, &cell("Downlink", "200|5G NSA Low-Band", "power")).expect("cell");
        assert_eq!(v, 3.51);
        assert_eq!(column, vec![3.38, 3.51, 6.64]);
        // `200|` alone matches the first 200-Mbps row, not the 2000 one.
        let (first, _) = resolve(&art, &cell("", "200|", "power")).expect("cell");
        assert_eq!(first, 3.38);
    }

    #[test]
    fn note_probe_picks_numbers_from_the_end() {
        let art = parse_artifact(SAMPLE).expect("parse");
        // numbers_in sees the `4` of `4G/LTE`; pick -1 skips it.
        let probe = Probe::Note {
            contains: "mmWave beats 4G/LTE",
            pick: -1,
        };
        let (v, _) = resolve(&art, &probe).expect("note");
        assert_eq!(v, 187.0);
        assert!(resolve(
            &art,
            &Probe::Note {
                contains: "no numbers",
                pick: 0
            }
        )
        .is_err());
    }

    #[test]
    fn rowcount_and_missing_probes() {
        let art = parse_artifact(SAMPLE).expect("parse");
        let (n, _) = resolve(&art, &Probe::RowCount { section: "Down" }).expect("rowcount");
        assert_eq!(n, 3.0);
        assert!(resolve(&art, &cell("Uplink", "200|", "power")).is_err());
        assert!(resolve(&art, &cell("Downlink", "9999|", "power")).is_err());
        assert!(resolve(&art, &cell("Downlink", "200|", "nope")).is_err());
    }

    #[test]
    fn checks_grade_pass_warn_fail() {
        let near10 = near(10.0, 5.0, 20.0);
        assert_eq!(grade(&near10, 10.2, &[]).0, Grade::Pass);
        assert_eq!(grade(&near10, 11.0, &[]).0, Grade::Warn);
        assert_eq!(grade(&near10, 13.0, &[]).0, Grade::Fail);
        assert_eq!(
            grade(&Check::Within { lo: 1.0, hi: 2.0 }, 1.5, &[]).0,
            Grade::Pass
        );
        assert_eq!(
            grade(&Check::Within { lo: 1.0, hi: 2.0 }, 2.1, &[]).0,
            Grade::Fail
        );
        assert_eq!(grade(&Check::AtLeast(5.0), 5.0, &[]).0, Grade::Pass);
        assert_eq!(grade(&Check::AtMost(5.0), 5.1, &[]).0, Grade::Fail);
        assert_eq!(
            grade(&Check::MaxInColumn, 6.0, &[3.0, 6.0, 5.0]).0,
            Grade::Pass
        );
        assert_eq!(
            grade(&Check::MaxInColumn, 5.0, &[3.0, 6.0, 5.0]).0,
            Grade::Fail
        );
        assert_eq!(
            grade(&Check::MinInColumn, 3.0, &[3.0, 6.0, 5.0]).0,
            Grade::Pass
        );
        assert_eq!(grade(&near10, f64::NAN, &[]).0, Grade::Fail);
    }

    #[test]
    fn expectation_ids_are_unique_and_artifacts_well_formed() {
        let exps = expectations();
        let mut ids: Vec<&str> = exps.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), exps.len(), "duplicate expectation id");
        for e in &exps {
            assert!(
                e.id.starts_with(e.artifact),
                "{} should be prefixed by its artifact {}",
                e.id,
                e.artifact
            );
            assert!(!e.pin.is_empty() && !e.what.is_empty());
        }
    }

    #[test]
    fn fmt_num_is_stable_and_trimmed() {
        assert_eq!(fmt_num(3400.0), "3400");
        assert_eq!(fmt_num(6.64), "6.64");
        assert_eq!(fmt_num(0.0039), "0.0039");
        assert_eq!(fmt_num(f64::NAN), "NaN");
        assert_eq!(fmt_num(f64::INFINITY), "inf");
    }

    #[test]
    fn validate_dir_flags_empty_and_uncovered() {
        let dir = std::env::temp_dir().join(format!("fiveg-expect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let v = validate_dir(&dir);
        assert_eq!(v.fails, 1, "empty dir is a FAIL");
        std::fs::write(dir.join("mystery.txt"), "==== MYSTERY — x ====\n").expect("write");
        let v = validate_dir(&dir);
        assert_eq!(v.fails, 1);
        assert!(v.report.contains("mystery.uncovered"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
