//! Plain-text report rendering: fixed-width tables and sparkline series.

/// A rendered experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `"fig3"`.
    pub id: &'static str,
    /// Title line (what the paper's caption says).
    pub title: String,
    /// Rendered body.
    pub body: String,
}

impl Report {
    /// Renders the full report with a header rule.
    pub fn render(&self) -> String {
        format!(
            "==== {} — {} ====\n{}\n",
            self.id.to_uppercase(),
            self.title,
            self.body
        )
    }
}

/// A fixed-width table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `d` decimals.
pub fn f(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

/// A unicode sparkline of a series (for quick shape checks in reports).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| BARS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["100", "x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[3].starts_with("100"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 0.5]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().nth(1), Some('█'));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
