//! The campaign metrics observatory: rollups, flamegraphs, and telemetry
//! regression diffing.
//!
//! The paper is a measurement study, and this module is the point where the
//! reproduction turns its measurement discipline on itself. It consumes the
//! per-attempt [`AttemptTelemetry`] the runner already collects and builds
//! the campaign-wide view that `figures --obs <dir>` exports:
//!
//! * `metrics.json` — the machine-readable campaign metrics store: one row
//!   per experiment, per-layer span/counter rollups, every catalogued span,
//!   counter, gauge, histogram (with bucket-estimated quantiles), and
//!   fixed-bin sim-time series. Every name is annotated with its
//!   [`fiveg_simcore::telemetry::CATALOG`] layer and unit. This is the
//!   store ROADMAP item 5 (trace-ingest calibration) will consume.
//! * `observatory.txt` — the same data as a human dashboard (tables and
//!   sparklines). Unlike `telemetry.txt` it carries **no wall-clock
//!   numbers**, so it is byte-identical across reruns and `--jobs N`.
//! * `<id>.folded` / `campaign.folded` — nested spans collapsed into
//!   inferno-compatible stacks (`a;b;c <self-µs>` lines), so hot paths
//!   found by `--profile` stay visible as the code evolves.
//!
//! `figures --obs-diff <baseline> <current>` then compares two
//! `metrics.json` files under the shared [`OBS_TOLERANCE`] bands
//! (re-using [`fiveg_simcore::stats::Tolerance`]) and renders a
//! deterministic drift report; `--obs-strict` turns FAIL rows into a
//! non-zero exit, which CI points at the committed
//! `results/OBS_baseline.json`.
//!
//! Everything here is a pure function of sim-time telemetry: no clocks, no
//! randomness, no host-dependent iteration order (aggregates arrive
//! name-sorted, experiments in registry order, stacks in lexicographic
//! order), so every artifact is byte-identical across reruns, `--jobs N`,
//! and `--no-shard`.

use crate::json::Json;
use crate::report::{f, sparkline, Table};
use fiveg_simcore::stats::{Grade, Tolerance};
use fiveg_simcore::telemetry::{registered, AttemptTelemetry, MetricKind, SpanPhase, SERIES_BIN_S};
use std::collections::BTreeMap;
use std::path::Path;

/// Schema tag written into (and required of) every `metrics.json`.
pub const OBS_SCHEMA: &str = "obs-v1";

/// The tolerance bands shared by `--obs-diff` and `--check-strict`: drift
/// within 2 % passes, within 10 % warns, beyond fails. Campaign telemetry
/// is deterministic, so any drift at all is a real behavior change — the
/// bands only decide how loudly to say so.
pub const OBS_TOLERANCE: Tolerance = Tolerance {
    warn_pct: 2.0,
    fail_pct: 10.0,
};

/// Catalog layer of `name` under `kind` (`"?"` when unregistered — the
/// catalog lint keeps that from surviving CI).
fn layer_of(name: &str, kind: MetricKind) -> &'static str {
    registered(name, kind).map_or("?", |d| d.layer)
}

/// Catalog unit of `name` under `kind`.
fn unit_of(name: &str, kind: MetricKind) -> &'static str {
    registered(name, kind).map_or("?", |d| d.unit)
}

/// Rolls every per-experiment telemetry snapshot into one campaign-wide
/// aggregate (events are per-experiment artifacts and are not merged).
pub fn campaign_total(per: &[(String, AttemptTelemetry)]) -> AttemptTelemetry {
    let mut total = AttemptTelemetry::default();
    for (_, t) in per {
        total.merge_aggregates(t);
    }
    total
}

/// Builds the `metrics.json` document for a finished campaign.
/// `per` is `(experiment id, telemetry)` in registry order — the same
/// order serial and `--jobs N` runs deliver, so the document is
/// byte-identical across scheduling modes.
pub fn campaign_metrics(
    seed: u64,
    scenario: Option<&str>,
    per: &[(String, AttemptTelemetry)],
) -> Json {
    let total = campaign_total(per);

    let experiments: Vec<Json> = per
        .iter()
        .map(|(id, t)| {
            let span_total_s: f64 = t.spans.iter().map(|(_, s)| s.total_s).sum();
            let counter_total: u64 = t.counters.iter().map(|(_, n)| *n).sum();
            Json::obj(vec![
                ("id", Json::str(id.as_str())),
                ("events", Json::Num(t.events.len() as f64)),
                ("dropped_events", Json::Num(t.dropped_events as f64)),
                ("span_total_s", Json::Num(span_total_s)),
                ("counter_total", Json::Num(counter_total as f64)),
            ])
        })
        .collect();

    // Per-layer rollup: BTreeMap gives the deterministic (sorted) layer
    // order the byte-identity contract needs.
    let mut layers: BTreeMap<&str, (f64, u64, u64)> = BTreeMap::new();
    for (name, s) in &total.spans {
        let e = layers.entry(layer_of(name, MetricKind::Span)).or_default();
        e.0 += s.total_s;
        e.1 += s.count;
    }
    for (name, n) in &total.counters {
        layers
            .entry(layer_of(name, MetricKind::Counter))
            .or_default()
            .2 += n;
    }
    let layer_rows: Vec<Json> = layers
        .iter()
        .map(|(layer, (span_s, spans, counters))| {
            Json::obj(vec![
                ("layer", Json::str(*layer)),
                ("span_total_s", Json::Num(*span_s)),
                ("span_count", Json::Num(*spans as f64)),
                ("counter_total", Json::Num(*counters as f64)),
            ])
        })
        .collect();

    let spans: Vec<Json> = total
        .spans
        .iter()
        .map(|(name, s)| {
            let mean = if s.count == 0 {
                0.0
            } else {
                s.total_s / s.count as f64
            };
            Json::obj(vec![
                ("name", Json::str(*name)),
                ("layer", Json::str(layer_of(name, MetricKind::Span))),
                ("unit", Json::str(unit_of(name, MetricKind::Span))),
                ("count", Json::Num(s.count as f64)),
                ("total_s", Json::Num(s.total_s)),
                ("mean_s", Json::Num(mean)),
            ])
        })
        .collect();

    let counters: Vec<Json> = total
        .counters
        .iter()
        .map(|(name, n)| {
            Json::obj(vec![
                ("name", Json::str(*name)),
                ("layer", Json::str(layer_of(name, MetricKind::Counter))),
                ("total", Json::Num(*n as f64)),
            ])
        })
        .collect();

    let gauges: Vec<Json> = total
        .gauges
        .iter()
        .map(|(name, g)| {
            Json::obj(vec![
                ("name", Json::str(*name)),
                ("layer", Json::str(layer_of(name, MetricKind::Gauge))),
                ("unit", Json::str(unit_of(name, MetricKind::Gauge))),
                ("last", Json::Num(g.last)),
                ("min", Json::Num(g.min)),
                ("max", Json::Num(g.max)),
                ("samples", Json::Num(g.samples as f64)),
            ])
        })
        .collect();

    let hists: Vec<Json> = total
        .hists
        .iter()
        .map(|(name, h)| {
            Json::obj(vec![
                ("name", Json::str(*name)),
                ("layer", Json::str(layer_of(name, MetricKind::Histogram))),
                ("unit", Json::str(unit_of(name, MetricKind::Histogram))),
                ("count", Json::Num(h.count as f64)),
                ("mean", Json::Num(h.mean())),
                ("p50", Json::Num(h.quantile(0.50))),
                ("p90", Json::Num(h.quantile(0.90))),
                ("p99", Json::Num(h.quantile(0.99))),
                ("min", Json::Num(if h.count == 0 { 0.0 } else { h.min })),
                ("max", Json::Num(if h.count == 0 { 0.0 } else { h.max })),
            ])
        })
        .collect();

    let series: Vec<Json> = total
        .series
        .iter()
        .map(|(name, s)| {
            Json::obj(vec![
                ("name", Json::str(*name)),
                ("layer", Json::str(layer_of(name, MetricKind::Series))),
                ("unit", Json::str(unit_of(name, MetricKind::Series))),
                ("bin_s", Json::Num(SERIES_BIN_S)),
                ("samples", Json::Num(s.samples() as f64)),
                (
                    "sums",
                    Json::Arr(s.sums.iter().map(|&v| Json::Num(v)).collect()),
                ),
                (
                    "counts",
                    Json::Arr(s.counts.iter().map(|&n| Json::Num(n as f64)).collect()),
                ),
            ])
        })
        .collect();

    Json::obj(vec![
        ("schema", Json::str(OBS_SCHEMA)),
        ("seed", Json::Num(seed as f64)),
        ("scenario", scenario.map_or(Json::Null, Json::str)),
        ("experiments", Json::Arr(experiments)),
        ("layers", Json::Arr(layer_rows)),
        ("spans", Json::Arr(spans)),
        ("counters", Json::Arr(counters)),
        ("gauges", Json::Arr(gauges)),
        ("hists", Json::Arr(hists)),
        ("series", Json::Arr(series)),
    ])
}

/// Renders the human dashboard (`observatory.txt`). Pure sim-time data —
/// deliberately no wall-clock section, so the file stays byte-identical
/// across reruns and scheduling modes (`telemetry.txt` is the place for
/// wall numbers).
pub fn observatory_txt(
    seed: u64,
    scenario: Option<&str>,
    per: &[(String, AttemptTelemetry)],
) -> String {
    let total = campaign_total(per);
    let mut out = format!(
        "==== CAMPAIGN OBSERVATORY — seed {seed}, scenario `{}` ====\n\n",
        scenario.unwrap_or("none")
    );

    out.push_str("-- Experiments --\n");
    let mut t = Table::new(vec!["experiment", "events", "dropped", "span sim s"]);
    for (id, telem) in per {
        let span_total_s: f64 = telem.spans.iter().map(|(_, s)| s.total_s).sum();
        t.row(vec![
            id.clone(),
            telem.events.len().to_string(),
            telem.dropped_events.to_string(),
            f(span_total_s, 3),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n-- Layers --\n");
    let mut layers: BTreeMap<&str, (f64, u64, u64)> = BTreeMap::new();
    for (name, s) in &total.spans {
        let e = layers.entry(layer_of(name, MetricKind::Span)).or_default();
        e.0 += s.total_s;
        e.1 += s.count;
    }
    for (name, n) in &total.counters {
        layers
            .entry(layer_of(name, MetricKind::Counter))
            .or_default()
            .2 += n;
    }
    let mut t = Table::new(vec!["layer", "span sim s", "spans", "counter total"]);
    for (layer, (span_s, spans, counters)) in &layers {
        t.row(vec![
            (*layer).to_string(),
            f(*span_s, 3),
            spans.to_string(),
            counters.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n-- Spans --\n");
    let mut t = Table::new(vec!["span", "layer", "count", "total sim s", "mean sim s"]);
    for (name, s) in &total.spans {
        let mean = if s.count == 0 {
            0.0
        } else {
            s.total_s / s.count as f64
        };
        t.row(vec![
            (*name).to_string(),
            layer_of(name, MetricKind::Span).to_string(),
            s.count.to_string(),
            f(s.total_s, 3),
            f(mean, 6),
        ]);
    }
    out.push_str(&t.render());

    if !total.counters.is_empty() {
        out.push_str("\n-- Counters --\n");
        let mut t = Table::new(vec!["counter", "layer", "total"]);
        for (name, n) in &total.counters {
            t.row(vec![
                (*name).to_string(),
                layer_of(name, MetricKind::Counter).to_string(),
                n.to_string(),
            ]);
        }
        out.push_str(&t.render());
    }

    if !total.gauges.is_empty() {
        out.push_str("\n-- Gauges --\n");
        let mut t = Table::new(vec!["gauge", "unit", "last", "min", "max", "samples"]);
        for (name, g) in &total.gauges {
            t.row(vec![
                (*name).to_string(),
                unit_of(name, MetricKind::Gauge).to_string(),
                f(g.last, 3),
                f(g.min, 3),
                f(g.max, 3),
                g.samples.to_string(),
            ]);
        }
        out.push_str(&t.render());
    }

    if !total.hists.is_empty() {
        out.push_str("\n-- Histograms (bucket-estimated quantiles) --\n");
        let mut t = Table::new(vec![
            "histogram",
            "unit",
            "count",
            "mean",
            "p50",
            "p90",
            "p99",
            "max",
        ]);
        for (name, h) in &total.hists {
            t.row(vec![
                (*name).to_string(),
                unit_of(name, MetricKind::Histogram).to_string(),
                h.count.to_string(),
                f(h.mean(), 3),
                f(h.quantile(0.50), 3),
                f(h.quantile(0.90), 3),
                f(h.quantile(0.99), 3),
                f(if h.count == 0 { 0.0 } else { h.max }, 3),
            ]);
        }
        out.push_str(&t.render());
    }

    if !total.series.is_empty() {
        out.push_str("\n-- Series (bin means over sim time) --\n");
        let mut t = Table::new(vec!["series", "unit", "bin s", "samples", "shape"]);
        for (name, s) in &total.series {
            let means: Vec<f64> = (0..s.counts.len())
                .map(|i| s.mean(i).unwrap_or(0.0))
                .collect();
            t.row(vec![
                (*name).to_string(),
                unit_of(name, MetricKind::Series).to_string(),
                f(SERIES_BIN_S, 0),
                s.samples().to_string(),
                sparkline(&means),
            ]);
        }
        out.push_str(&t.render());
    }

    if total.dropped_events > 0 {
        out.push_str(&format!(
            "\nspan events dropped past the per-attempt buffer cap: {}\n",
            total.dropped_events
        ));
    }
    out
}

/// Collapses one attempt's span stream into flamegraph stacks: a map from
/// `a;b;c` stack path to *self* time in rounded sim-microseconds (child
/// time is charged to the child's own deeper path, as the collapsed-stack
/// format expects). Unmatched exits are skipped; frames left open at the
/// end of the stream (or orphaned by an out-of-order exit) contribute
/// nothing — malformed nesting degrades the picture, never determinism.
pub fn folded_map(t: &AttemptTelemetry) -> BTreeMap<String, u64> {
    // Open frame: (span id, name, enter sim-s, child sim-µs).
    let mut stack: Vec<(u64, &'static str, f64, u64)> = Vec::new();
    let mut out: BTreeMap<String, u64> = BTreeMap::new();
    for ev in &t.events {
        match ev.phase {
            SpanPhase::Enter => stack.push((ev.id, ev.name, ev.t_s, 0)),
            SpanPhase::Exit => {
                let Some(pos) = stack.iter().rposition(|fr| fr.0 == ev.id) else {
                    continue;
                };
                // Anything above the matching frame never closed; drop it.
                stack.truncate(pos + 1);
                let (_, name, t0, child_us) = stack.pop().expect("frame at pos");
                let dur_us = ((ev.t_s - t0).max(0.0) * 1e6).round() as u64;
                let self_us = dur_us.saturating_sub(child_us);
                if self_us > 0 {
                    let path: String = stack
                        .iter()
                        .map(|fr| fr.1)
                        .chain(std::iter::once(name))
                        .collect::<Vec<_>>()
                        .join(";");
                    *out.entry(path).or_insert(0) += self_us;
                }
                if let Some(parent) = stack.last_mut() {
                    parent.3 += dur_us;
                }
            }
        }
    }
    out
}

/// Merges one folded map into an accumulator (campaign-wide flamegraph).
pub fn merge_folded(into: &mut BTreeMap<String, u64>, other: &BTreeMap<String, u64>) {
    for (path, us) in other {
        *into.entry(path.clone()).or_insert(0) += us;
    }
}

/// Renders a folded map in the collapsed-stack format inferno and
/// flamegraph.pl consume: one `path count` line per stack, sorted by path.
pub fn render_folded(map: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (path, us) in map {
        out.push_str(path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Largest-remainder apportionment of `weights` into percentages with one
/// decimal place that sum to **exactly** 100.0. Independent per-row
/// rounding can drift the column total by several tenths; apportioning
/// 1000 tenth-of-a-percent units keeps the invariant exact. All-zero or
/// empty weights yield all-zero percentages.
pub fn apportion_pct(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().filter(|w| w.is_finite()).sum();
    if weights.is_empty() || total.is_nan() || total <= 0.0 {
        return vec![0.0; weights.len()];
    }
    let exact: Vec<f64> = weights
        .iter()
        .map(|&w| {
            if w.is_finite() {
                1000.0 * w / total
            } else {
                0.0
            }
        })
        .collect();
    let mut units: Vec<u64> = exact.iter().map(|e| e.floor() as u64).collect();
    let assigned: u64 = units.iter().sum();
    // Hand the residual units to the largest fractional remainders;
    // ties break on row index so the result is deterministic.
    let mut rem: Vec<(usize, f64)> = exact
        .iter()
        .enumerate()
        .map(|(i, e)| (i, e - e.floor()))
        .collect();
    rem.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let missing = 1000u64.saturating_sub(assigned) as usize;
    for k in 0..missing {
        units[rem[k % rem.len()].0] += 1;
    }
    units.iter().map(|&u| u as f64 / 10.0).collect()
}

/// Outcome of an `--obs-diff` comparison: the rendered report plus the
/// warn/fail tallies that decide the `--obs-strict` exit code.
#[derive(Debug, Clone)]
pub struct ObsDiff {
    /// The deterministic drift report.
    pub report: String,
    /// Comparisons performed.
    pub compared: usize,
    /// Rows graded WARN (drift past the warn band, or new in current).
    pub warns: usize,
    /// Rows graded FAIL (drift past the fail band, or missing in current).
    pub fails: usize,
}

/// One diffed section: JSON array key, row key field, numeric fields.
const DIFF_SECTIONS: &[(&str, &str, &[&str])] = &[
    (
        "experiments",
        "id",
        &["events", "span_total_s", "counter_total"],
    ),
    (
        "layers",
        "layer",
        &["span_total_s", "span_count", "counter_total"],
    ),
    ("spans", "name", &["count", "total_s"]),
    ("counters", "name", &["total"]),
    ("gauges", "name", &["samples", "min", "max"]),
    ("hists", "name", &["count", "p50", "p90", "p99"]),
    ("series", "name", &["samples"]),
];

/// Compares two `metrics.json` documents under [`OBS_TOLERANCE`] and
/// renders a deterministic drift report: per section, every row/field pair
/// outside the warn band is listed with its drift; rows missing from the
/// current campaign grade FAIL, rows new in it grade WARN. Two identical
/// documents produce zero warns and fails.
pub fn diff_metrics(baseline: &Json, current: &Json) -> ObsDiff {
    let mut out = String::from("==== OBSERVATORY DIFF ====\n");
    let mut compared = 0usize;
    let mut warns = 0usize;
    let mut fails = 0usize;

    let head = |v: &Json| {
        format!(
            "seed {}, scenario `{}`",
            v.get("seed").and_then(Json::as_f64).unwrap_or(-1.0) as i64,
            v.get("scenario").and_then(Json::as_str).unwrap_or("none"),
        )
    };
    out.push_str(&format!("baseline: {}\n", head(baseline)));
    out.push_str(&format!("current:  {}\n", head(current)));
    for key in ["schema", "seed", "scenario"] {
        if baseline.get(key) != current.get(key) {
            out.push_str(&format!(
                "  WARN {key} differs — campaigns may not be comparable\n"
            ));
            warns += 1;
        }
    }

    for (section, key_field, fields) in DIFF_SECTIONS {
        let empty: Vec<Json> = Vec::new();
        let base_rows = baseline
            .get(section)
            .and_then(Json::as_arr)
            .unwrap_or(&empty);
        let cur_rows = current
            .get(section)
            .and_then(Json::as_arr)
            .unwrap_or(&empty);
        let key_of = |r: &Json| {
            r.get(key_field)
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        out.push_str(&format!(
            "-- {section} ({} baseline row(s)) --\n",
            base_rows.len()
        ));
        let mut flagged = 0usize;
        for b in base_rows {
            let k = key_of(b);
            let Some(c) = cur_rows.iter().find(|r| key_of(r) == k) else {
                out.push_str(&format!("  FAIL {k}: missing from current campaign\n"));
                fails += 1;
                flagged += 1;
                continue;
            };
            for field in *fields {
                let (Some(expected), Some(actual)) = (
                    b.get(field).and_then(Json::as_f64),
                    c.get(field).and_then(Json::as_f64),
                ) else {
                    continue;
                };
                compared += 1;
                let grade = OBS_TOLERANCE.grade(expected, actual);
                if grade == Grade::Pass {
                    continue;
                }
                let drift = Tolerance::drift_pct(expected, actual);
                out.push_str(&format!(
                    "  {} {k} {field}: {} -> {} ({:+.2}%)\n",
                    grade.as_str(),
                    f(expected, 6),
                    f(actual, 6),
                    drift
                ));
                flagged += 1;
                match grade {
                    Grade::Warn => warns += 1,
                    Grade::Fail => fails += 1,
                    Grade::Pass => {}
                }
            }
        }
        for c in cur_rows {
            let k = key_of(c);
            if !base_rows.iter().any(|r| key_of(r) == k) {
                out.push_str(&format!(
                    "  WARN {k}: new in current campaign (no baseline row)\n"
                ));
                warns += 1;
                flagged += 1;
            }
        }
        if flagged == 0 {
            out.push_str("  all within tolerance\n");
        }
    }

    out.push_str(&format!(
        "drift: {warns} warn(s), {fails} fail(s) across {compared} comparison(s)\n"
    ));
    ObsDiff {
        report: out,
        compared,
        warns,
        fails,
    }
}

/// One `telemetry::<hook>(...)` call site found by the source scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricCall {
    /// Source file (as given to the scanner).
    pub file: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Hook family (maps to the catalog kind).
    pub kind: MetricKind,
    /// The literal metric name, or `None` when the first argument is not a
    /// string literal (a dynamic name the catalog lint must reject).
    pub name: Option<String>,
}

/// Scans one source text for `telemetry::<hook>("name", ...)` call sites.
/// A deliberately small lexer, not a parser: it finds the qualified hook
/// path, then reads the first argument iff it is a string literal. Hooks
/// that take no metric name (`clock`, `drain`, …) are ignored.
pub fn scan_metric_calls(src: &str, file: &str) -> Vec<MetricCall> {
    const HOOKS: &[(&str, MetricKind)] = &[
        ("span", MetricKind::Span),
        ("span_closed", MetricKind::Span),
        ("count", MetricKind::Counter),
        ("gauge", MetricKind::Gauge),
        ("observe", MetricKind::Histogram),
        ("series", MetricKind::Series),
    ];
    // Built from two halves so scanning this very file does not match the
    // needle inside its own string literal.
    let needle = concat!("telemetry", ":", ":");
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(off) = src[from..].find(needle) {
        let start = from + off + needle.len();
        from = start;
        let ident_end = start
            + src[start..]
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(src.len() - start);
        let ident = &src[start..ident_end];
        let Some(&(_, kind)) = HOOKS.iter().find(|(h, _)| *h == ident) else {
            continue;
        };
        let mut i = ident_end;
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'(' {
            continue;
        }
        i += 1;
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        let name = if i < bytes.len() && bytes[i] == b'"' {
            src[i + 1..]
                .find('"')
                .map(|n| src[i + 1..i + 1 + n].to_string())
        } else {
            None
        };
        let line = src[..start].matches('\n').count() + 1;
        out.push(MetricCall {
            file: file.to_string(),
            line,
            kind,
            name,
        });
    }
    out
}

/// Recursively scans every `.rs` file under `root` for metric call sites.
/// Files and directories are visited in sorted order, so the result is
/// deterministic across filesystems.
pub fn scan_dir(root: &Path) -> std::io::Result<Vec<MetricCall>> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(root)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(scan_dir(&path)?);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path)?;
            out.extend(scan_metric_calls(&src, &path.to_string_lossy()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_simcore::telemetry::{self, SpanEvent};

    fn synthetic() -> AttemptTelemetry {
        // outer [0, 10] containing inner [2, 5] — outer self 7 s, inner 3 s.
        let ev = |id, name, phase, t_s| SpanEvent {
            id,
            name,
            phase,
            t_s,
        };
        AttemptTelemetry {
            events: vec![
                ev(0, "outer", SpanPhase::Enter, 0.0),
                ev(1, "inner", SpanPhase::Enter, 2.0),
                ev(1, "inner", SpanPhase::Exit, 5.0),
                ev(0, "outer", SpanPhase::Exit, 10.0),
            ],
            ..AttemptTelemetry::default()
        }
    }

    #[test]
    fn folded_charges_self_time_to_the_deepest_frame() {
        let map = folded_map(&synthetic());
        assert_eq!(map.get("outer"), Some(&7_000_000));
        assert_eq!(map.get("outer;inner"), Some(&3_000_000));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn folded_skips_unmatched_exits_and_unclosed_frames() {
        let ev = |id, name, phase, t_s| SpanEvent {
            id,
            name,
            phase,
            t_s,
        };
        let t = AttemptTelemetry {
            events: vec![
                ev(7, "ghost", SpanPhase::Exit, 1.0), // never entered
                ev(0, "open", SpanPhase::Enter, 0.0), // never exits
                ev(1, "leaf", SpanPhase::Enter, 1.0),
                ev(1, "leaf", SpanPhase::Exit, 2.0),
            ],
            ..AttemptTelemetry::default()
        };
        let map = folded_map(&t);
        assert_eq!(map.get("open;leaf"), Some(&1_000_000));
        assert_eq!(map.len(), 1, "open frame contributes nothing: {map:?}");
    }

    #[test]
    fn folded_render_and_merge_are_deterministic() {
        let a = folded_map(&synthetic());
        let mut campaign = BTreeMap::new();
        merge_folded(&mut campaign, &a);
        merge_folded(&mut campaign, &a);
        let rendered = render_folded(&campaign);
        assert_eq!(rendered, "outer 14000000\nouter;inner 6000000\n");
        assert_eq!(render_folded(&campaign), rendered);
    }

    #[test]
    fn apportion_sums_to_exactly_one_hundred() {
        // Three equal weights independently round to 33.3 each (99.9);
        // apportionment hands the spare tenth to the first row.
        assert_eq!(apportion_pct(&[1.0, 1.0, 1.0]), vec![33.4, 33.3, 33.3]);
        for weights in [
            vec![0.1, 0.2, 0.3, 0.4],
            vec![1.0; 7],
            vec![0.001, 123.0, 4.5, 4.5, 0.0],
        ] {
            let pcts = apportion_pct(&weights);
            let sum: f64 = pcts.iter().sum();
            assert!(
                (sum - 100.0).abs() < 1e-9,
                "sum {sum} for {weights:?} -> {pcts:?}"
            );
        }
        assert_eq!(apportion_pct(&[]), Vec::<f64>::new());
        assert_eq!(apportion_pct(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn metrics_json_is_deterministic_and_annotated() {
        let per = || {
            let _g = telemetry::collect();
            telemetry::clock(0.0);
            {
                let _sp = telemetry::span("radio/drive");
                telemetry::clock(3.0);
            }
            telemetry::count("radio/rlf", 2);
            telemetry::observe("rrc/delay_ms", 80.0);
            telemetry::series("radio/rsrp_dbm_t", 1.0, -90.0);
            vec![("fig9".to_string(), telemetry::drain())]
        };
        let a = campaign_metrics(2021, None, &per()).render();
        let b = campaign_metrics(2021, None, &per()).render();
        assert_eq!(a, b);
        let doc = Json::parse(&a).expect("valid json");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(OBS_SCHEMA));
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans[0].get("layer").and_then(Json::as_str), Some("radio"));
        assert_eq!(spans[0].get("unit").and_then(Json::as_str), Some("sim-s"));
        let txt = observatory_txt(2021, None, &per());
        assert!(txt.contains("radio/drive"));
        assert!(txt.contains("radio/rsrp_dbm_t"));
        assert!(
            !txt.to_lowercase().contains("wall"),
            "no wall-clock content"
        );
    }

    #[test]
    fn self_diff_reports_zero_drift() {
        let doc = campaign_metrics(2021, Some("chaos"), &[]);
        let d = diff_metrics(&doc, &doc);
        assert_eq!(d.warns, 0, "{}", d.report);
        assert_eq!(d.fails, 0, "{}", d.report);
        assert!(d.report.contains("all within tolerance"));
    }

    #[test]
    fn diff_grades_drift_against_the_bands() {
        let row = |total: f64| {
            Json::obj(vec![
                ("schema", Json::str(OBS_SCHEMA)),
                ("seed", Json::Num(1.0)),
                ("scenario", Json::Null),
                (
                    "counters",
                    Json::Arr(vec![Json::obj(vec![
                        ("name", Json::str("web/object")),
                        ("total", Json::Num(total)),
                    ])]),
                ),
            ])
        };
        // +5% -> WARN band; +50% -> FAIL band.
        let warn = diff_metrics(&row(100.0), &row(105.0));
        assert_eq!((warn.warns, warn.fails), (1, 0), "{}", warn.report);
        let fail = diff_metrics(&row(100.0), &row(150.0));
        assert_eq!((fail.warns, fail.fails), (0, 1), "{}", fail.report);
        assert!(fail.report.contains("FAIL web/object total"));
        // A row vanishing from the current campaign is a hard failure.
        let gone = diff_metrics(&row(100.0), &campaign_metrics(1, None, &[]));
        assert!(gone.fails >= 1, "{}", gone.report);
        assert!(gone.report.contains("missing from current"));
    }

    #[test]
    fn scanner_finds_literal_and_dynamic_names() {
        // The sample uses `test/`-prefixed names (exempt in the lint) so
        // scanning this file cannot poison the workspace lint.
        let src = concat!(
            "fn x() {\n",
            "    telemetry",
            "::count(\"test/a\", 1);\n",
            "    telemetry",
            "::observe(  \"test/b\"  , 2.0);\n",
            "    telemetry",
            "::span(name_var);\n",
            "    telemetry",
            "::clock(3.0);\n",
            "}\n"
        );
        let calls = scan_metric_calls(src, "sample.rs");
        assert_eq!(calls.len(), 3, "{calls:?}");
        assert_eq!(calls[0].kind, MetricKind::Counter);
        assert_eq!(calls[0].name.as_deref(), Some("test/a"));
        assert_eq!(calls[0].line, 2);
        assert_eq!(calls[1].name.as_deref(), Some("test/b"));
        assert_eq!(calls[2].kind, MetricKind::Span);
        assert_eq!(calls[2].name, None, "dynamic name surfaces as None");
    }
}
