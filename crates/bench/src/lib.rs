//! The experiment harness: every table and figure of the paper as a
//! regenerable report.
//!
//! Each function in [`experiments`] runs one experiment against the
//! simulated field and renders the same rows/series the paper reports.
//! The `figures` binary dispatches on experiment ids (`figures fig3`,
//! `figures table2`, `figures all`); `EXPERIMENTS.md` records
//! paper-vs-measured for each.

pub mod expect;
pub mod experiments;
pub mod json;
pub mod observe;
pub mod report;
pub mod runner;
pub mod shard;
pub mod signal;
pub mod stress;
pub mod telemetry;
pub mod timing;

/// The default campaign seed used by every experiment (reproducible runs).
pub const CAMPAIGN_SEED: u64 = 2021;
