//! Minimal in-tree benchmark harness.
//!
//! Replaces Criterion so that `cargo bench` works with zero registry/network
//! access. Each `[[bench]]` target is a plain `harness = false` binary that
//! calls [`bench`] for every kernel it times. The default sample count keeps
//! `cargo bench` fast; build with `--features heavy-bench` for tighter
//! medians, or set `FIVEG_BENCH_SAMPLES=<n>` to override either default.

use std::hint::black_box;
use std::time::Instant;

/// Environment variable overriding the per-benchmark sample count.
pub const SAMPLES_ENV: &str = "FIVEG_BENCH_SAMPLES";

/// Samples per benchmark: small by default, larger under `heavy-bench`,
/// and `FIVEG_BENCH_SAMPLES` (any positive integer) beats both.
fn sample_count() -> usize {
    if let Ok(raw) = std::env::var(SAMPLES_ENV) {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => eprintln!("ignoring {SAMPLES_ENV}={raw:?}: expected a positive integer"),
        }
    }
    if cfg!(feature = "heavy-bench") {
        30
    } else {
        5
    }
}

/// Linear-interpolated percentile of an already-sorted sample set.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (rank - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Times `f` over several samples and prints a one-line summary with the
/// median plus the p10/p90 spread (tail noise is what campaign scheduling
/// cares about, not just the center).
///
/// The closure's result is passed through [`black_box`] so the optimizer
/// cannot delete the work.
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) {
    black_box(f()); // warm-up, untimed
    let n = sample_count();
    let mut samples_ms = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        black_box(f());
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples_ms.sort_by(f64::total_cmp);
    let median = samples_ms[n / 2];
    let p10 = percentile_ms(&samples_ms, 10.0);
    let p90 = percentile_ms(&samples_ms, 90.0);
    println!(
        "{name:<40} median {median:10.3} ms   (p10 {p10:.3}, p90 {p90:.3}, min {:.3}, max {:.3}, n={n})",
        samples_ms[0],
        samples_ms[n - 1]
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0;
        bench("noop", || calls += 1);
        assert_eq!(calls as usize, 1 + sample_count());
    }

    #[test]
    fn percentiles_interpolate_on_sorted_samples() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_ms(&s, 0.0), 1.0);
        assert_eq!(percentile_ms(&s, 100.0), 5.0);
        assert_eq!(percentile_ms(&s, 50.0), 3.0);
        // p10 of 5 samples: rank 0.4 → 1.0 + 0.4 * (2.0 - 1.0).
        assert!((percentile_ms(&s, 10.0) - 1.4).abs() < 1e-12);
        assert!((percentile_ms(&s, 90.0) - 4.6).abs() < 1e-12);
        assert_eq!(percentile_ms(&[7.0], 90.0), 7.0);
    }
}
