//! Minimal in-tree benchmark harness.
//!
//! Replaces Criterion so that `cargo bench` works with zero registry/network
//! access. Each `[[bench]]` target is a plain `harness = false` binary that
//! calls [`bench`] for every kernel it times. The default sample count keeps
//! `cargo bench` fast; build with `--features heavy-bench` for tighter
//! medians, or set `FIVEG_BENCH_SAMPLES=<n>` to override either default.

use std::hint::black_box;
use std::time::Instant;

/// Environment variable overriding the per-benchmark sample count.
pub const SAMPLES_ENV: &str = "FIVEG_BENCH_SAMPLES";

/// Samples per benchmark: small by default, larger under `heavy-bench`,
/// and `FIVEG_BENCH_SAMPLES` (any positive integer) beats both.
fn sample_count() -> usize {
    if let Ok(raw) = std::env::var(SAMPLES_ENV) {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => eprintln!("ignoring {SAMPLES_ENV}={raw:?}: expected a positive integer"),
        }
    }
    if cfg!(feature = "heavy-bench") {
        30
    } else {
        5
    }
}

/// Linear-interpolated percentile of an already-sorted sample set.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (rank - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// The timing summary [`bench`] prints and returns: sample count, min/max
/// extremes, and the median with its p10/p90 spread, all in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingSummary {
    /// Timed samples (the warm-up call is excluded).
    pub n: usize,
    /// Fastest sample.
    pub min_ms: f64,
    /// Slowest sample.
    pub max_ms: f64,
    /// Median sample.
    pub median_ms: f64,
    /// 10th percentile (linear interpolation).
    pub p10_ms: f64,
    /// 90th percentile (linear interpolation).
    pub p90_ms: f64,
}

/// Times `f` over several samples and prints a one-line summary with the
/// median plus the p10/p90 spread and the min/max extremes (tail noise is
/// what campaign scheduling cares about, not just the center). Returns the
/// same numbers as a [`TimingSummary`] so callers can gate on them.
///
/// The closure's result is passed through [`black_box`] so the optimizer
/// cannot delete the work.
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) -> TimingSummary {
    black_box(f()); // warm-up, untimed
    let n = sample_count();
    let mut samples_ms = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        black_box(f());
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples_ms.sort_by(f64::total_cmp);
    let summary = TimingSummary {
        n,
        min_ms: samples_ms[0],
        max_ms: samples_ms[n - 1],
        median_ms: samples_ms[n / 2],
        p10_ms: percentile_ms(&samples_ms, 10.0),
        p90_ms: percentile_ms(&samples_ms, 90.0),
    };
    println!(
        "{name:<40} median {:10.3} ms   (p10 {:.3}, p90 {:.3}, min {:.3}, max {:.3}, n={n})",
        summary.median_ms, summary.p10_ms, summary.p90_ms, summary.min_ms, summary.max_ms
    );
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0;
        bench("noop", || calls += 1);
        assert_eq!(calls as usize, 1 + sample_count());
    }

    #[test]
    fn summary_orders_its_quantiles() {
        let s = bench("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert_eq!(s.n, sample_count());
        assert!(s.min_ms >= 0.0);
        assert!(s.min_ms <= s.p10_ms, "{s:?}");
        assert!(s.p10_ms <= s.median_ms, "{s:?}");
        assert!(s.median_ms <= s.p90_ms, "{s:?}");
        assert!(s.p90_ms <= s.max_ms, "{s:?}");
    }

    #[test]
    fn percentiles_interpolate_on_sorted_samples() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_ms(&s, 0.0), 1.0);
        assert_eq!(percentile_ms(&s, 100.0), 5.0);
        assert_eq!(percentile_ms(&s, 50.0), 3.0);
        // p10 of 5 samples: rank 0.4 → 1.0 + 0.4 * (2.0 - 1.0).
        assert!((percentile_ms(&s, 10.0) - 1.4).abs() < 1e-12);
        assert!((percentile_ms(&s, 90.0) - 4.6).abs() < 1e-12);
        assert_eq!(percentile_ms(&[7.0], 90.0), 7.0);
    }
}
