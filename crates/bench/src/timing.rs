//! Minimal in-tree benchmark harness.
//!
//! Replaces Criterion so that `cargo bench` works with zero registry/network
//! access. Each `[[bench]]` target is a plain `harness = false` binary that
//! calls [`bench`] for every kernel it times. The default sample count keeps
//! `cargo bench` fast; build with `--features heavy-bench` for tighter
//! medians.

use std::hint::black_box;
use std::time::Instant;

/// Samples per benchmark: small by default, larger under `heavy-bench`.
fn sample_count() -> usize {
    if cfg!(feature = "heavy-bench") {
        30
    } else {
        5
    }
}

/// Times `f` over several samples and prints a one-line summary.
///
/// The closure's result is passed through [`black_box`] so the optimizer
/// cannot delete the work.
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) {
    black_box(f()); // warm-up, untimed
    let n = sample_count();
    let mut samples_ms = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        black_box(f());
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples_ms.sort_by(f64::total_cmp);
    let median = samples_ms[n / 2];
    println!(
        "{name:<40} median {median:10.3} ms   (min {:.3}, max {:.3}, n={n})",
        samples_ms[0],
        samples_ms[n - 1]
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0;
        bench("noop", || calls += 1);
        assert_eq!(calls as usize, 1 + sample_count());
    }
}
