//! Ablations of the design choices DESIGN.md calls out: what each modelled
//! mechanism contributes to the paper's findings.

use crate::report::{f, Report, Table};
use fiveg_geo::mobility::MobilityModel;
use fiveg_radio::cell::NetworkLayout;
use fiveg_radio::handoff::{simulate_drive, BandSetting, HandoffConfig};
use fiveg_simcore::stats::mean;
use fiveg_traces::lumos::TraceGenerator;
use fiveg_transport::path::PathModel;
use fiveg_transport::tcp::{measure_throughput, CcAlgo, TcpSimConfig};
use fiveg_video::abr::Mpc;
use fiveg_video::asset::VideoAsset;
use fiveg_video::pensieve;
use fiveg_video::player::{stream, PlayerConfig};

fn mmwave_path(rtt_ms: f64, dist_km: f64) -> PathModel {
    PathModel {
        rtt_ms,
        loss_per_pkt: fiveg_transport::path::BASE_LOSS
            + fiveg_transport::path::LOSS_PER_KM * dist_km,
        capacity_mbps: 3400.0,
        mss_bytes: 1460.0,
        queue_bdp: fiveg_transport::path::DEFAULT_QUEUE_BDP,
    }
}

fn single_tuned_with(algo: CcAlgo) -> TcpSimConfig {
    TcpSimConfig {
        algo,
        ..TcpSimConfig::single_tuned()
    }
}

/// Congestion control for a single flow as the path lengthens: CUBIC vs
/// Reno (why the paper's carriers run CUBIC), plus the rate-based
/// controllers — BBR's model-based pacing holds goodput on the lossy
/// long-haul rows where the loss-based laws keep cutting their windows.
pub fn ablation_cc(seed: u64) -> Report {
    let mut t = Table::new(vec![
        "RTT ms",
        "CUBIC Mbps",
        "Reno Mbps",
        "BBR Mbps",
        "NADA Mbps",
        "CUBIC/Reno",
        "BBR/CUBIC",
    ]);
    for (rtt, km) in [(8.0, 100.0), (20.0, 800.0), (35.0, 1600.0), (50.0, 2500.0)] {
        let cubic = measure_throughput(mmwave_path(rtt, km), TcpSimConfig::single_tuned(), seed);
        let reno = measure_throughput(mmwave_path(rtt, km), single_tuned_with(CcAlgo::Reno), seed);
        let bbr = measure_throughput(mmwave_path(rtt, km), single_tuned_with(CcAlgo::Bbr), seed);
        let nada = measure_throughput(mmwave_path(rtt, km), single_tuned_with(CcAlgo::Nada), seed);
        t.row(vec![
            f(rtt, 0),
            f(cubic, 0),
            f(reno, 0),
            f(bbr, 0),
            f(nada, 0),
            f(cubic / reno, 2),
            f(bbr / cubic, 2),
        ]);
    }
    Report {
        id: "ablation-cc",
        title: "Ablation: congestion control on big-BDP mmWave paths".into(),
        body: t.render(),
    }
}

/// `tcp_wmem` sweep: the Fig 8 mechanism isolated. BBR and NADA columns
/// show the rate-based controllers hit the same `wmem/RTT` wall — the
/// send buffer caps the data in flight no matter who paces it.
pub fn ablation_wmem(seed: u64) -> Report {
    let mut t = Table::new(vec!["wmem MB", "1-TCP Mbps @20ms", "BBR Mbps", "NADA Mbps"]);
    for mb in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let wmem = |algo| TcpSimConfig {
            wmem_bytes: mb * 1e6,
            algo,
            ..TcpSimConfig::single_default()
        };
        let thr = measure_throughput(mmwave_path(20.0, 800.0), wmem(CcAlgo::Cubic), seed);
        let bbr = measure_throughput(mmwave_path(20.0, 800.0), wmem(CcAlgo::Bbr), seed);
        let nada = measure_throughput(mmwave_path(20.0, 800.0), wmem(CcAlgo::Nada), seed);
        t.row(vec![f(mb, 1), f(thr, 0), f(bbr, 0), f(nada, 0)]);
    }
    Report {
        id: "ablation-wmem",
        title: "Ablation: sender-buffer cap vs single-connection throughput".into(),
        body: t.render(),
    }
}

/// Handoff hysteresis sweep: ping-pong suppression vs responsiveness.
pub fn ablation_hysteresis(seed: u64) -> Report {
    let layout = NetworkLayout::tmobile_drive_corridor(seed);
    let mobility = MobilityModel::driving_10km();
    let mut t = Table::new(vec!["hysteresis dB", "LTE-only handoffs", "NSA total"]);
    for hyst in [1.0, 2.0, 3.0, 4.0, 6.0] {
        let cfg = HandoffConfig {
            hysteresis_db: hyst,
            ..HandoffConfig::default()
        };
        let lte = simulate_drive(&layout, &mobility, BandSetting::LteOnly, &cfg, seed);
        let nsa = simulate_drive(&layout, &mobility, BandSetting::NsaPlusLte, &cfg, seed);
        t.row(vec![
            f(hyst, 0),
            lte.total_handoffs().to_string(),
            nsa.total_handoffs().to_string(),
        ]);
    }
    Report {
        id: "ablation-hysteresis",
        title: "Ablation: reselection hysteresis vs handoff counts".into(),
        body: t.render(),
    }
}

/// Blockage on/off: how much of mmWave's ABR pain is blockage.
pub fn ablation_blockage(seed: u64) -> Report {
    let gen = TraceGenerator::new(seed);
    let asset = VideoAsset::five_g_default();
    let cfg = PlayerConfig::default();
    let run = |traces: Vec<fiveg_transport::shaper::BandwidthTrace>| {
        let sessions: Vec<_> = traces
            .iter()
            .map(|t| stream(&asset, t, &mut Mpc::fast(), &cfg, 0.0))
            .collect();
        (
            mean(&sessions.iter().map(|s| s.stall_pct()).collect::<Vec<_>>()),
            mean(
                &sessions
                    .iter()
                    .map(|s| s.avg_norm_bitrate)
                    .collect::<Vec<_>>(),
            ),
        )
    };
    let (stall_on, br_on) = run((0..16).map(|i| gen.lumos5g_trace(i)).collect());
    let (stall_off, br_off) = run((0..16).map(|i| gen.lumos5g_trace_no_blockage(i)).collect());
    let mut t = Table::new(vec!["blockage", "stall %", "bitrate"]);
    t.row(vec![
        "on (default)".to_string(),
        f(stall_on, 2),
        f(br_on, 3),
    ]);
    t.row(vec![
        "off (pure LoS)".to_string(),
        f(stall_off, 2),
        f(br_off, 3),
    ]);
    Report {
        id: "ablation-blockage",
        title: "Ablation: mmWave blockage vs ABR QoE (fastMPC)".into(),
        body: t.render(),
    }
}

/// Ablation-pensieve shard count: one shard per training corpus.
pub(crate) const ABLATION_PENSIEVE_SHARDS: usize = 2;

/// One ablation-pensieve shard: train Pensieve on one corpus (shard 0 =
/// 4G, shard 1 = 5G) and evaluate on the shared 5G eval set, returning
/// `[stall, bitrate]`. The two trainings are the experiment's only heavy
/// work and are fully independent — each shard re-derives the trace
/// generator from the seed.
pub(crate) fn ablation_pensieve_shard(seed: u64, shard: usize) -> Vec<f64> {
    let gen = TraceGenerator::new(seed);
    let g5_eval: Vec<_> = (36..56).map(|i| gen.lumos5g_trace(i)).collect();
    let asset5 = VideoAsset::five_g_default();
    let cfg = PlayerConfig::default();
    let mut abr = if shard == 0 {
        let g4_train = gen.lte_corpus(36);
        pensieve::train(&g4_train, &VideoAsset::four_g_default(), seed)
    } else {
        let g5_train = gen.lumos5g_corpus(36);
        pensieve::train(&g5_train, &asset5, seed)
    };
    let sessions: Vec<_> = g5_eval
        .iter()
        .map(|t| stream(&asset5, t, &mut abr, &cfg, 0.0))
        .collect();
    vec![
        mean(&sessions.iter().map(|s| s.stall_pct()).collect::<Vec<_>>()),
        mean(
            &sessions
                .iter()
                .map(|s| s.avg_norm_bitrate)
                .collect::<Vec<_>>(),
        ),
    ]
}

/// Deterministic ablation-pensieve reducer: 4G-trained row then
/// 5G-trained row.
pub(crate) fn ablation_pensieve_merge(_seed: u64, parts: &[Vec<f64>]) -> Report {
    let mut t = Table::new(vec!["training corpus", "5G stall %", "5G bitrate"]);
    t.row(vec![
        "4G traces (paper's setup)".to_string(),
        f(parts[0][0], 2),
        f(parts[0][1], 3),
    ]);
    t.row(vec![
        "5G traces (hypothesis)".to_string(),
        f(parts[1][0], 2),
        f(parts[1][1], 3),
    ]);
    Report {
        id: "ablation-pensieve",
        title: "Ablation: Pensieve's training distribution vs 5G QoE".into(),
        body: t.render(),
    }
}

/// Pensieve trained on 5G traces — the paper's "a larger (5G) dataset is
/// needed" hypothesis, §5.2.
pub fn ablation_pensieve(seed: u64) -> Report {
    let parts: Vec<Vec<f64>> = (0..ABLATION_PENSIEVE_SHARDS)
        .map(|s| ablation_pensieve_shard(seed, s))
        .collect();
    ablation_pensieve_merge(seed, &parts)
}
