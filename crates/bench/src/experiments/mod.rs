//! One module per experiment family; every public function regenerates one
//! table or figure of the paper and returns a [`Report`].

pub mod ablations;
pub mod bonded;
pub mod extensions;
pub mod handoff;
pub mod modeling;
pub mod perf;
pub mod power;
pub mod rrc;
pub mod table1;
pub mod video;
pub mod web;

use crate::report::Report;

/// An experiment generator: seed in, rendered report out.
pub type Experiment = fn(u64) -> Report;

/// Every experiment id, in paper order, with its generator.
pub fn registry() -> Vec<(&'static str, Experiment)> {
    vec![
        ("table1", table1::table1 as Experiment),
        ("fig1", perf::fig1),
        ("fig2", perf::fig2),
        ("fig3", perf::fig3),
        ("fig4", perf::fig4),
        ("fig5", perf::fig5),
        ("fig6", perf::fig6),
        ("fig7", perf::fig7),
        ("fig8", perf::fig8),
        ("fig9", handoff::fig9),
        ("fig10", rrc::fig10),
        ("table2", rrc::table2),
        ("table7", rrc::table7),
        ("fig11", power::fig11),
        ("fig12", power::fig12),
        ("table8", power::table8),
        ("fig13", power::fig13),
        ("fig14", power::fig14),
        ("fig26", power::fig26),
        ("fig15", modeling::fig15),
        ("fig16", modeling::fig16),
        ("table3", modeling::table3),
        ("table9", modeling::table9),
        ("fig17", video::fig17),
        ("fig18a", video::fig18a),
        ("fig18b", video::fig18b),
        ("fig18c", video::fig18c_table4),
        ("fig19", web::fig19),
        ("fig20", web::fig20),
        ("fig21", web::fig21),
        ("table6", web::table6_fig22),
        ("fig23", perf::fig23),
        ("fig24", perf::fig24),
        ("ablation-cc", ablations::ablation_cc),
        ("ablation-wmem", ablations::ablation_wmem),
        ("ablation-hysteresis", ablations::ablation_hysteresis),
        ("ablation-blockage", ablations::ablation_blockage),
        ("ablation-pensieve", ablations::ablation_pensieve),
        ("bonded-uplink", bonded::bonded_uplink),
        ("ext-periodic", extensions::ext_periodic),
    ]
}

/// Runs one experiment by id.
pub fn run(id: &str, seed: u64) -> Option<Report> {
    registry()
        .into_iter()
        .find(|(rid, _)| *rid == id)
        .map(|(_, f)| f(seed))
}
