//! Extension experiments beyond the paper's figures, quantifying its
//! prose-level recommendations.

use crate::report::{f, Report, Table};
use fiveg_power::rrcpower::{periodic_traffic_energy_mj, RrcPowerParams};
use fiveg_rrc::profile::{RrcConfigId, RrcProfile};

/// §4.2's advice, quantified: radio energy of a 10-minute keep-alive
/// workload (one tiny transfer every T seconds) per configuration.
pub fn ext_periodic(_seed: u64) -> Report {
    let periods = [1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0];
    let mut header = vec!["config".to_string()];
    header.extend(periods.iter().map(|p| format!("T={p:.0}s (J)")));
    let mut t = Table::new(header);
    for config in RrcConfigId::all() {
        let profile = RrcProfile::for_config(config);
        let params = RrcPowerParams::for_config(config);
        let mut row = vec![config.label().to_string()];
        for &p in &periods {
            row.push(f(
                periodic_traffic_energy_mj(&profile, &params, p, 600.0) / 1e3,
                1,
            ));
        }
        t.row(row);
    }
    let mut body = t.render();
    body.push_str(
        "\nIntermittent traffic is poison on 5G: NSA mmWave burns the tail at\n\
         ~1.1 W between transfers and re-pays the 4G→5G switch each cycle,\n\
         while SA's RRC_INACTIVE resume keeps the same workload far cheaper\n\
         — §4.2's recommendation, in joules.\n",
    );
    Report {
        id: "ext-periodic",
        title: "Extension: energy of periodic keep-alive traffic (10 min)".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_configs_and_periods() {
        let r = ext_periodic(0);
        for config in RrcConfigId::all() {
            assert!(r.body.contains(config.label()));
        }
        assert!(r.body.contains("T=300s"));
    }
}
