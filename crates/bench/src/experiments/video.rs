//! §5 video experiments: Fig 17 (ABR QoE on 5G vs 4G), Fig 18a
//! (predictors), Fig 18b (chunk length), Fig 18c + Table 4 (interface
//! selection).

use crate::report::{f, Report, Table};
use fiveg_simcore::stats::mean;
use fiveg_traces::lumos::TraceGenerator;
use fiveg_transport::shaper::BandwidthTrace;
use fiveg_video::abr::{self, Abr, AbrAlgo, Mpc};
use fiveg_video::asset::VideoAsset;
use fiveg_video::ifselect::{stream_with_selection, IfSelectConfig};
use fiveg_video::pensieve;
use fiveg_video::player::{stream, PlayerConfig, SessionResult};
use fiveg_video::predictor::{ContextGbdtPredictor, HarmonicMeanPredictor, OraclePredictor};

/// Evaluation corpus sizes (the paper: 121 5G + 175 4G traces; we hold
/// most for training the learned components).
const EVAL_TRACES: usize = 24;

struct Corpora {
    /// Kept for symmetry with the 4G split (fig18a re-derives its
    /// training pairs with RSRP context directly from the generator).
    #[allow(dead_code)]
    g5_train: Vec<BandwidthTrace>,
    g5_eval: Vec<BandwidthTrace>,
    g4_train: Vec<BandwidthTrace>,
    g4_eval: Vec<BandwidthTrace>,
}

fn corpora(seed: u64) -> Corpora {
    let gen = TraceGenerator::new(seed);
    let mut g5 = gen.lumos5g_corpus(60);
    let mut g4 = gen.lte_corpus(60);
    let g5_eval = g5.split_off(g5.len() - EVAL_TRACES);
    let g4_eval = g4.split_off(g4.len() - EVAL_TRACES);
    Corpora {
        g5_train: g5,
        g5_eval,
        g4_train: g4,
        g4_eval,
    }
}

fn run_sessions(
    asset: &VideoAsset,
    traces: &[BandwidthTrace],
    mut make_abr: impl FnMut() -> Box<dyn Abr>,
) -> Vec<SessionResult> {
    traces
        .iter()
        .map(|t| {
            let mut abr = make_abr();
            stream(asset, t, abr.as_mut(), &PlayerConfig::default(), 0.0)
        })
        .collect()
}

fn summarize(sessions: &[SessionResult]) -> (f64, f64, f64) {
    (
        mean(&sessions.iter().map(|s| s.stall_pct()).collect::<Vec<_>>()),
        mean(
            &sessions
                .iter()
                .map(|s| s.avg_norm_bitrate)
                .collect::<Vec<_>>(),
        ),
        mean(&sessions.iter().map(|s| s.qoe).collect::<Vec<_>>()),
    )
}

/// Fig 17 shard count: one shard per ABR algorithm.
pub(crate) const FIG17_SHARDS: usize = 7;

/// One Fig 17 shard: a single ABR evaluated on the 5G then the 4G corpus,
/// returning `[stall5, br5, stall4, br4]`. The Pensieve shard carries its
/// own training run *and* both evaluation passes, because the trained
/// policy is streamed mutably across every session in a fixed order —
/// that order is part of the experiment's definition and must not be
/// split. Every other algorithm builds a fresh ABR per trace, so each is
/// independent. `corpora(seed)` is a pure function of the seed, so each
/// shard re-derives it instead of sharing state.
pub(crate) fn fig17_shard(seed: u64, shard: usize) -> Vec<f64> {
    let c = corpora(seed);
    let asset5 = VideoAsset::five_g_default();
    let asset4 = VideoAsset::four_g_default();
    let algo = AbrAlgo::all()[shard];
    let (s5, s4) = if algo == AbrAlgo::Pensieve {
        // Pensieve trains on the 4G corpus, as in the original paper's
        // setup.
        let mut trained = pensieve::train(&c.g4_train, &asset4, seed);
        let s5: Vec<SessionResult> = c
            .g5_eval
            .iter()
            .map(|tr| stream(&asset5, tr, &mut trained, &PlayerConfig::default(), 0.0))
            .collect();
        let s4: Vec<SessionResult> = c
            .g4_eval
            .iter()
            .map(|tr| stream(&asset4, tr, &mut trained, &PlayerConfig::default(), 0.0))
            .collect();
        (s5, s4)
    } else {
        (
            run_sessions(&asset5, &c.g5_eval, || abr::build(algo)),
            run_sessions(&asset4, &c.g4_eval, || abr::build(algo)),
        )
    };
    let (stall5, br5, _) = summarize(&s5);
    let (stall4, br4, _) = summarize(&s4);
    vec![stall5, br5, stall4, br4]
}

/// Deterministic Fig 17 reducer: one row per ABR in `AbrAlgo::all()`
/// order; the stall-increase column derives from the shard's own raw
/// stall percentages, so formatting is bit-equal to the unsharded path.
pub(crate) fn fig17_merge(_seed: u64, parts: &[Vec<f64>]) -> Report {
    let mut t = Table::new(vec![
        "algo",
        "5G stall %",
        "5G bitrate",
        "4G stall %",
        "4G bitrate",
        "stall increase %",
    ]);
    for (algo, part) in AbrAlgo::all().iter().zip(parts) {
        let [stall5, br5, stall4, br4] = part[..] else {
            panic!("fig17 shard returned {} values, expected 4", part.len());
        };
        let increase = if stall4 > 0.05 {
            (stall5 / stall4 - 1.0) * 100.0
        } else {
            f64::INFINITY
        };
        t.row(vec![
            algo.label().to_string(),
            f(stall5, 2),
            f(br5, 3),
            f(stall4, 2),
            f(br4, 3),
            if increase.is_finite() {
                f(increase, 0)
            } else {
                "inf".to_string()
            },
        ]);
    }
    Report {
        id: "fig17",
        title: "ABR QoE on mmWave 5G vs 4G (stall % and normalized bitrate)".into(),
        body: t.render(),
    }
}

/// Fig 17: the seven ABRs on 5G and 4G.
pub fn fig17(seed: u64) -> Report {
    let parts: Vec<Vec<f64>> = (0..FIG17_SHARDS).map(|s| fig17_shard(seed, s)).collect();
    fig17_merge(seed, &parts)
}

/// Fig 18a shard count and fixed predictor order (the oracle is last —
/// the reducer normalizes by it).
pub(crate) const FIG18A_SHARDS: usize = 3;
const FIG18A_PREDICTORS: [&str; FIG18A_SHARDS] = ["hmMPC", "MPC_GDBT", "truthMPC"];

/// One Fig 18a shard: a single predictor evaluated over the 5G corpus,
/// returning its raw mean QoE. Only the GBDT shard pays for predictor
/// training (the unsharded loop trained it up front for all three); the
/// training inputs derive purely from the seed, so the shard re-derives
/// them. Normalization against the oracle happens in the reducer, where
/// all three raw QoEs are in hand.
pub(crate) fn fig18a_shard(seed: u64, shard: usize) -> Vec<f64> {
    let c = corpora(seed);
    let asset = VideoAsset::five_g_default();
    let gen = TraceGenerator::new(seed);
    let sessions: Vec<SessionResult> = match shard {
        0 => c
            .g5_eval
            .iter()
            .map(|t| {
                let mut mpc =
                    Mpc::with_predictor(Box::new(HarmonicMeanPredictor::default()), false, "hmMPC");
                stream(&asset, t, &mut mpc, &PlayerConfig::default(), 0.0)
            })
            .collect(),
        1 => {
            // The Lumos5G-style predictor trains on (trace, RSRP-context)
            // pairs; indices 0..36 are the training split of the same
            // generator, 36..60 the per-eval-trace contexts in trace order.
            let train_pairs: Vec<_> = (0..36).map(|i| gen.lumos5g_trace_with_context(i)).collect();
            let eval_contexts: Vec<Vec<f64>> = (36..60)
                .map(|i| gen.lumos5g_trace_with_context(i).1)
                .collect();
            let gbdt = ContextGbdtPredictor::train(&train_pairs, &asset, 5);
            c.g5_eval
                .iter()
                .zip(&eval_contexts)
                .map(|(t, ctx)| {
                    let mut mpc =
                        Mpc::with_predictor(Box::new(gbdt.bind(ctx.clone())), false, "MPC_GDBT");
                    stream(&asset, t, &mut mpc, &PlayerConfig::default(), 0.0)
                })
                .collect()
        }
        _ => c
            .g5_eval
            .iter()
            .map(|t| {
                let mut mpc = Mpc::with_predictor(
                    Box::new(OraclePredictor::new(t.clone(), 8.0)),
                    false,
                    "truthMPC",
                );
                stream(&asset, t, &mut mpc, &PlayerConfig::default(), 0.0)
            })
            .collect(),
    };
    let (_, _, qoe) = summarize(&sessions);
    vec![qoe]
}

/// Deterministic Fig 18a reducer: rows in predictor order, normalized by
/// the oracle shard's raw QoE.
pub(crate) fn fig18a_merge(_seed: u64, parts: &[Vec<f64>]) -> Report {
    let oracle_qoe = parts.last().expect("non-empty")[0];
    let mut t = Table::new(vec!["predictor", "QoE", "normalized"]);
    for (name, part) in FIG18A_PREDICTORS.iter().zip(parts) {
        let qoe = part[0];
        t.row(vec![name.to_string(), f(qoe, 1), f(qoe / oracle_qoe, 3)]);
    }
    Report {
        id: "fig18a",
        title: "QoE impact of throughput predictors (fastMPC base, 5G)".into(),
        body: t.render(),
    }
}

/// Fig 18a: fastMPC with harmonic-mean, GBDT, and oracle predictors.
pub fn fig18a(seed: u64) -> Report {
    let parts: Vec<Vec<f64>> = (0..FIG18A_SHARDS).map(|s| fig18a_shard(seed, s)).collect();
    fig18a_merge(seed, &parts)
}

/// Fig 18b shard count and fixed chunk-length order.
pub(crate) const FIG18B_SHARDS: usize = 3;
const FIG18B_CHUNK_LENS: [f64; FIG18B_SHARDS] = [4.0, 2.0, 1.0];

/// One Fig 18b shard: one chunk length's ladder streamed over the 5G
/// corpus, returning `[stall, bitrate]`.
pub(crate) fn fig18b_shard(seed: u64, shard: usize) -> Vec<f64> {
    let c = corpora(seed);
    let len = FIG18B_CHUNK_LENS[shard];
    let asset = VideoAsset::ladder(160.0, 6, len, 240.0);
    let sessions = run_sessions(&asset, &c.g5_eval, || Box::new(Mpc::fast()));
    let (stall, br, _) = summarize(&sessions);
    vec![stall, br]
}

/// Deterministic Fig 18b reducer: one row per chunk length, in order.
pub(crate) fn fig18b_merge(_seed: u64, parts: &[Vec<f64>]) -> Report {
    let mut t = Table::new(vec!["chunk len", "bitrate", "stall %"]);
    for (len, part) in FIG18B_CHUNK_LENS.iter().zip(parts) {
        t.row(vec![format!("{len}s"), f(part[1], 3), f(part[0], 2)]);
    }
    Report {
        id: "fig18b",
        title: "QoE impact of chunk length (fastMPC, 5G)".into(),
        body: t.render(),
    }
}

/// Fig 18b: chunk length 4 s / 2 s / 1 s with fastMPC on 5G.
pub fn fig18b(seed: u64) -> Report {
    let parts: Vec<Vec<f64>> = (0..FIG18B_SHARDS).map(|s| fig18b_shard(seed, s)).collect();
    fig18b_merge(seed, &parts)
}

/// Fig 18c + Table 4 shard count and fixed scheme order.
pub(crate) const FIG18C_SHARDS: usize = 3;
const FIG18C_SCHEMES: [&str; FIG18C_SHARDS] = ["5G-only MPC", "5G-aware MPC", "5G-aware MPC NO"];

/// One Fig 18c shard: a single interface-selection scheme streamed over
/// the paired 5G/4G corpora, returning `[stall, bitrate, energy]`. The
/// scheme configs depend on the 4G training corpus mean, which each shard
/// re-derives from the seed.
pub(crate) fn fig18c_shard(seed: u64, shard: usize) -> Vec<f64> {
    let c = corpora(seed);
    let asset = VideoAsset::five_g_default();
    let four_g_avg = mean(&c.g4_train.iter().map(|t| t.mean_mbps()).collect::<Vec<_>>());
    let cfg = match shard {
        0 => IfSelectConfig::five_g_only(),
        1 => IfSelectConfig::aware(four_g_avg),
        _ => IfSelectConfig::aware_no_overhead(four_g_avg),
    };
    let results: Vec<_> = c
        .g5_eval
        .iter()
        .zip(c.g4_eval.iter().cycle())
        .map(|(t5, t4)| {
            let mut mpc = Mpc::fast();
            stream_with_selection(&asset, t5, t4, &mut mpc, &cfg, &PlayerConfig::default())
        })
        .collect();
    let stall = mean(
        &results
            .iter()
            .map(|r| r.session.stall_pct())
            .collect::<Vec<_>>(),
    );
    let br = mean(
        &results
            .iter()
            .map(|r| r.session.avg_norm_bitrate)
            .collect::<Vec<_>>(),
    );
    let energy = mean(&results.iter().map(|r| r.energy_j).collect::<Vec<_>>());
    vec![stall, br, energy]
}

/// Deterministic Fig 18c reducer: one row per scheme, in order.
pub(crate) fn fig18c_merge(_seed: u64, parts: &[Vec<f64>]) -> Report {
    let mut t = Table::new(vec!["scheme", "bitrate", "stall %", "energy J"]);
    for (name, part) in FIG18C_SCHEMES.iter().zip(parts) {
        t.row(vec![
            name.to_string(),
            f(part[1], 3),
            f(part[0], 2),
            f(part[2], 1),
        ]);
    }
    Report {
        id: "fig18c",
        title: "Interface selection for 5G video: QoE (Fig 18c) and energy (Table 4)".into(),
        body: t.render(),
    }
}

/// Fig 18c + Table 4: interface-selection schemes — bitrate, stall, energy.
pub fn fig18c_table4(seed: u64) -> Report {
    let parts: Vec<Vec<f64>> = (0..FIG18C_SHARDS).map(|s| fig18c_shard(seed, s)).collect();
    fig18c_merge(seed, &parts)
}
