//! The bonded-uplink scenario family: one flow striped across a 4G and a
//! 5G interface by `fiveg_transport::bond` (DWRR scheduling, per-link
//! capacity estimation, RFC 8382 shared-bottleneck detection).
//!
//! Four scenarios, one shard each (independent, pure in `(seed, shard)`):
//! metro and long-haul LTE+mmWave bonds (independent bottlenecks — the
//! bond aggregates, and SBD keeps the links in separate groups), the same
//! metro bond behind a capped carrier core (SBD collapses the links into
//! one group — bonding buys redundancy, not bandwidth), and a dual-LTE
//! bond. The dual-LTE row doubles as an honest SBD caveat: both legs
//! saturate, both queues track the single aggregate controller's
//! oscillation, and the correlation test merges them — the classic
//! false-positive mode RFC 8382 §1.2 warns about when one sender drives
//! every member link.
//!
//! The aggregate controller defaults to NADA; `figures --cc <bbr|nada>`
//! flips the family-wide selection for exploratory runs (the committed
//! golden pins the default).

use crate::report::{f, Report, Table};
use fiveg_simcore::RngStream;
use fiveg_transport::path::PathModel;
use fiveg_transport::tcp::CcAlgo;
use fiveg_transport::{BondedConfig, BondedSim};
use std::sync::atomic::{AtomicU8, Ordering};

/// Family-wide controller override: 0 = NADA (default), 1 = BBR. A
/// process-global atomic (not a thread-local) because shards run on the
/// supervisor's worker pool.
static CC_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Selects the controller for subsequent bonded-uplink runs. Only the
/// rate-based controllers drive a bond.
///
/// # Panics
/// Panics on `Cubic`/`Reno`.
pub fn set_cc(algo: CcAlgo) {
    assert!(
        algo.is_rate_based(),
        "bonded-uplink runs on a rate-based controller (bbr or nada)"
    );
    CC_OVERRIDE.store(
        match algo {
            CcAlgo::Bbr => 1,
            _ => 0,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected controller.
pub fn cc() -> CcAlgo {
    match CC_OVERRIDE.load(Ordering::Relaxed) {
        1 => CcAlgo::Bbr,
        _ => CcAlgo::Nada,
    }
}

fn link(rtt_ms: f64, capacity_mbps: f64, dist_km: f64) -> PathModel {
    PathModel {
        rtt_ms,
        loss_per_pkt: fiveg_transport::path::BASE_LOSS
            + fiveg_transport::path::LOSS_PER_KM * dist_km,
        capacity_mbps,
        mss_bytes: 1460.0,
        queue_bdp: fiveg_transport::path::DEFAULT_QUEUE_BDP,
    }
}

/// One scenario: display label (stable — expectations key on it), RNG
/// label, member links, and the optional shared core cap.
struct Scenario {
    label: &'static str,
    slug: &'static str,
    links: fn() -> Vec<PathModel>,
    shared_cap_mbps: Option<f64>,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            label: "metro LTE+mmWave",
            slug: "metro",
            links: || vec![link(30.0, 150.0, 100.0), link(20.0, 1500.0, 100.0)],
            shared_cap_mbps: None,
        },
        Scenario {
            label: "long-haul LTE+mmWave",
            slug: "long-haul",
            links: || vec![link(45.0, 150.0, 1600.0), link(35.0, 1500.0, 1600.0)],
            shared_cap_mbps: None,
        },
        Scenario {
            label: "capped core LTE+mmWave",
            slug: "capped",
            links: || vec![link(30.0, 150.0, 100.0), link(20.0, 1500.0, 100.0)],
            shared_cap_mbps: Some(600.0),
        },
        Scenario {
            label: "dual LTE",
            slug: "dual-lte",
            links: || vec![link(30.0, 150.0, 100.0), link(28.0, 180.0, 100.0)],
            shared_cap_mbps: None,
        },
    ]
}

/// Bonded-uplink shard count: one shard per scenario.
pub(crate) const BONDED_UPLINK_SHARDS: usize = 4;

/// Runs one scenario for 15 s and returns the raw values the reducer
/// renders: `[agg Mbps, 4G share, 5G share, SBD groups, skew 4G,
/// skew 5G, loss events, max queue delay ms]`.
pub(crate) fn bonded_uplink_shard(seed: u64, shard: usize) -> Vec<f64> {
    let sc = &scenarios()[shard];
    let mut cfg = BondedConfig::new((sc.links)(), cc());
    cfg.shared_cap_mbps = sc.shared_cap_mbps;
    let mut sim = BondedSim::new(cfg, RngStream::new(seed, &format!("bonded/{}", sc.slug)));
    let res = sim.run(15.0);
    vec![
        res.mean_mbps,
        res.per_link_share[0],
        res.per_link_share[1],
        res.group_count() as f64,
        res.skew_est[0],
        res.skew_est[1],
        res.loss_events as f64,
        res.max_queue_delay_s * 1e3,
    ]
}

/// Deterministic reducer: scenario rows in shard order, a throughput
/// section and an SBD section.
pub(crate) fn bonded_uplink_merge(_seed: u64, parts: &[Vec<f64>]) -> Report {
    let mut thr = Table::new(vec!["scenario", "agg Mbps", "4G share", "5G share", "loss"]);
    let mut sbd = Table::new(vec![
        "scenario",
        "groups",
        "skew 4G",
        "skew 5G",
        "max qdelay ms",
    ]);
    for (sc, p) in scenarios().iter().zip(parts) {
        thr.row(vec![
            sc.label.to_string(),
            f(p[0], 0),
            f(p[1], 3),
            f(p[2], 3),
            f(p[6], 0),
        ]);
        sbd.row(vec![
            sc.label.to_string(),
            f(p[3], 0),
            f(p[4], 2),
            f(p[5], 2),
            f(p[7], 1),
        ]);
    }
    let body = format!(
        "-- throughput --\n{}\n-- sbd --\n{}controller: {}\n",
        thr.render(),
        sbd.render(),
        cc().as_str()
    );
    Report {
        id: "bonded-uplink",
        title: "Bonded 4G+5G uplink: DWRR striping with shared-bottleneck detection".into(),
        body,
    }
}

/// The bonded-uplink experiment: every scenario shard in order, merged.
pub fn bonded_uplink(seed: u64) -> Report {
    let parts: Vec<Vec<f64>> = (0..BONDED_UPLINK_SHARDS)
        .map(|s| bonded_uplink_shard(seed, s))
        .collect();
    bonded_uplink_merge(seed, &parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_sections_and_all_scenarios() {
        let r = bonded_uplink(7);
        assert_eq!(r.id, "bonded-uplink");
        assert!(r.body.contains("-- throughput --"));
        assert!(r.body.contains("-- sbd --"));
        for sc in scenarios() {
            assert!(r.body.contains(sc.label), "missing {}", sc.label);
        }
        assert!(r.body.contains("controller: nada"));
    }

    #[test]
    fn shards_compose_to_the_monolithic_report() {
        let parts: Vec<Vec<f64>> = (0..BONDED_UPLINK_SHARDS)
            .map(|s| bonded_uplink_shard(9, s))
            .collect();
        let merged = bonded_uplink_merge(9, &parts);
        assert_eq!(merged.render(), bonded_uplink(9).render());
    }

    #[test]
    fn cc_override_round_trips() {
        assert_eq!(cc(), CcAlgo::Nada);
        set_cc(CcAlgo::Bbr);
        assert_eq!(cc(), CcAlgo::Bbr);
        set_cc(CcAlgo::Nada);
        assert_eq!(cc(), CcAlgo::Nada);
    }
}
