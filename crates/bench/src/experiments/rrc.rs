//! RRC experiments: Fig 10 (state staircases), Table 7 (inferred
//! parameters), Table 2 (tail & switch power).

use crate::report::{f, Report, Table};
use fiveg_power::monitor::HardwareMonitor;
use fiveg_power::rrcpower::{measure_tail_power_mw, promotion_scenario_trace, RrcPowerParams};
use fiveg_probes::rrcprobe::RrcProbe;
use fiveg_rrc::profile::{RrcConfigId, RrcProfile, RrcState};
use fiveg_simcore::{RngStream, SimDuration, SimTime};

/// Nearby probing server path RTT in ms (carrier edge).
const SERVER_RTT_MS: f64 = 3.0;

/// Fig 10 / Fig 25: the RTT-vs-idle-interval staircase for each config.
pub fn fig10(seed: u64) -> Report {
    let grid: Vec<f64> = (1..=16).map(|i| i as f64).collect();
    let mut body = String::new();
    for config in RrcConfigId::all() {
        let profile = RrcProfile::for_config(config);
        let probe = RrcProbe::new(profile, SERVER_RTT_MS, seed);
        let samples = probe.staircase(&grid);
        let mut t = Table::new(vec!["idle s", "mean RTT ms", "radio", "state"]);
        for &g in &grid {
            let at: Vec<_> = samples
                .iter()
                .filter(|s| (s.interval_ms - g * 1e3).abs() < 1.0)
                .collect();
            let mean = at.iter().map(|s| s.rtt_ms).sum::<f64>() / at.len().max(1) as f64;
            let state = at.first().map(|s| s.state);
            let radio = at.first().map(|s| s.radio);
            t.row(vec![
                f(g, 0),
                f(mean, 0),
                format!("{radio:?}"),
                match state {
                    Some(RrcState::Connected) => "RRC_CONNECTED",
                    Some(RrcState::ConnectedLte) => "CONNECTED (LTE leg)",
                    Some(RrcState::Inactive) => "RRC_INACTIVE",
                    Some(RrcState::Idle) => "RRC_IDLE",
                    None => "-",
                }
                .to_string(),
            ]);
        }
        body.push_str(&format!("-- {} --\n{}", config.label(), t.render()));
    }
    Report {
        id: "fig10",
        title: "RRC state inference staircases (RRC-Probe)".into(),
        body,
    }
}

/// Table 7: RRC parameters inferred by RRC-Probe vs ground truth.
pub fn table7(seed: u64) -> Report {
    let mut t = Table::new(vec![
        "config",
        "tail ms (truth)",
        "LTE-tail ms",
        "long DRX ms",
        "idle DRX ms",
        "4G promo ms",
        "5G promo ms",
    ]);
    let opt = |v: Option<f64>| v.map_or("N/A".to_string(), |x| f(x, 0));
    for config in RrcConfigId::all() {
        let truth = RrcProfile::for_config(config);
        let got = RrcProbe::new(truth, SERVER_RTT_MS, seed).infer();
        t.row(vec![
            config.label().to_string(),
            format!("{} ({})", f(got.tail_ms, 0), f(truth.tail_ms, 0)),
            opt(got.lte_tail_ms),
            f(got.long_drx_ms, 0),
            f(got.idle_drx_ms, 0),
            opt(got.promo_4g_ms),
            opt(got.promo_5g_ms),
        ]);
    }
    Report {
        id: "table7",
        title: "Inferred 4G/5G RRC parameters (RRC-Probe) — inferred (ground truth)".into(),
        body: t.render(),
    }
}

/// Table 2: power during RRC state transitions, measured off the hardware
/// monitor trace of the §4.1 promotion scenario.
pub fn table2(seed: u64) -> Report {
    let hw = HardwareMonitor::default();
    let mut t = Table::new(vec![
        "config",
        "tail mW (truth)",
        "4G->5G switch mW (truth)",
    ]);
    for config in RrcConfigId::all() {
        let profile = RrcProfile::for_config(config);
        let params = RrcPowerParams::for_config(config);
        let truth_trace = promotion_scenario_trace(&profile, &params);
        // Record through the 5 kHz monitor (measurement noise included).
        let duration = truth_trace.end().expect("non-empty").as_secs_f64();
        let mut rng = RngStream::new(seed, &format!("t2/{config:?}"));
        let recorded = hw.record(
            |t_s| {
                truth_trace
                    .sample_at(SimTime::from_secs_f64(t_s))
                    .unwrap_or(params.idle_mw)
            },
            duration,
            &mut rng,
        );
        let tail = measure_tail_power_mw(&profile, &recorded);
        // Switch window measurement (NSA: between the 4G and 5G promos; SA:
        // the direct NR promotion window; DSS: the nominal sharing switch).
        let switch = params.switch_4g_to_5g_mw.and_then(|truth_mw| {
            let (from_ms, to_ms) = fiveg_power::rrcpower::switch_window_abs_ms(&profile)?;
            let from = SimTime::from_millis(from_ms as u64) + SimDuration::from_millis(5);
            let to = SimTime::from_millis(to_ms as u64);
            let measured = recorded.integrate_between(from, to) / to.since(from).as_secs_f64();
            Some((measured, truth_mw))
        });
        t.row(vec![
            config.label().to_string(),
            format!("{} ({})", f(tail, 0), f(params.tail_mw, 0)),
            switch.map_or("N/A".to_string(), |(m, tr)| {
                format!("{} ({})", f(m, 0), f(tr, 0))
            }),
        ]);
    }
    Report {
        id: "table2",
        title: "Power during RRC state transitions — measured (ground truth)".into(),
        body: t.render(),
    }
}
