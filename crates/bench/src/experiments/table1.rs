//! Table 1: the statistics of the (simulated) measurement campaign.
//!
//! The paper reports the raw scale of its field effort; we report the
//! corresponding scale of the regenerated campaign, computed from the same
//! experiment parameters the other modules use.

use crate::report::{f, Report, Table};
use fiveg_geo::mobility::MobilityModel;
use fiveg_geo::servers::{azure_regions, carrier_pool, minnesota_pool, Carrier};

/// Table 1: dataset statistics of the campaign this harness runs.
pub fn table1(_seed: u64) -> Report {
    // Speedtest-style tests: Figs 1–7 (carrier pools × modes × repeats ×
    // bands), Fig 8 (Azure × 4 settings), Figs 23/24.
    let carrier_servers =
        carrier_pool(Carrier::Verizon).len() + carrier_pool(Carrier::TMobile).len();
    let unique_servers = carrier_servers + minnesota_pool().len() + azure_regions().len();
    let repeats = 6;
    let vz_tests = carrier_pool(Carrier::Verizon).len() * 3 /* bands */ * 2 /* modes */ * repeats
        + carrier_pool(Carrier::Verizon).len() * 2 * 2 * repeats /* UL */;
    let tm_tests = carrier_pool(Carrier::TMobile).len() * 2 /* SA/NSA */ * 2 * 2 * repeats;
    let azure_tests = azure_regions().len() * 4 * repeats;
    let mn_tests = minnesota_pool().len() * repeats;
    let perf_tests = vz_tests + tm_tests + azure_tests + mn_tests;

    // Power campaigns: 5 settings × 10 walking loops.
    let walk = MobilityModel::walking_loop();
    let loops = 5 * 10;
    let walk_km = loops as f64 * 1.6;
    let walk_minutes = loops as f64 * walk.duration_s() / 60.0;
    // Monsoon-style traces: walking + RRC scenarios + Table 9 benchmarks.
    let power_minutes = walk_minutes + 6.0 * 1.0 + 8.0 * 2.0 * 2.0;

    // Web page loads: 1500 sites × 2 radios × 8 repetitions.
    let web_loads = 1500 * 2 * 8;

    let mut t = Table::new(vec!["dataset statistic", "value"]);
    t.row(vec![
        "5G network performance tests".to_string(),
        perf_tests.to_string(),
    ]);
    t.row(vec![
        "unique servers tested with".to_string(),
        unique_servers.to_string(),
    ]);
    t.row(vec![
        "cumulative measurement trace minutes".to_string(),
        f(perf_tests as f64 * 15.0 / 60.0 + walk_minutes, 0),
    ]);
    t.row(vec![
        "power measurements @5000 Hz (minutes)".to_string(),
        f(power_minutes, 0),
    ]);
    t.row(vec!["total kilometres walked".to_string(), f(walk_km, 1)]);
    t.row(vec![
        "# of web page load tests".to_string(),
        web_loads.to_string(),
    ]);
    t.row(vec![
        "# of 5G smartphones (and models)".to_string(),
        "3 (3)".to_string(),
    ]);
    Report {
        id: "table1",
        title: "Statistics of the simulated measurement campaign".into(),
        body: t.render(),
    }
}
