//! §3 network-performance experiments: Figs 1–8, 23, 24.

use crate::report::{f, Report, Table};
use fiveg_geo::servers::{
    azure_regions, carrier_pool, default_ue_location, minnesota_pool, Carrier,
};
use fiveg_geo::LatLon;
use fiveg_probes::speedtest::{ConnMode, SpeedtestHarness};
use fiveg_radio::band::{Band, Direction};
use fiveg_radio::link::LinkState;
use fiveg_radio::ue::UeModel;

/// Repeats per `<server, mode>` setting ("at least 10 times" in §3.1; we
/// use a smaller count per setting and rely on determinism).
const REPEATS: usize = 6;

fn harness(ue: UeModel, band: Band, rsrp: f64, sa: bool, seed: u64) -> SpeedtestHarness {
    SpeedtestHarness {
        ue,
        link: LinkState {
            band,
            rsrp_dbm: rsrp,
            sa,
        },
        ue_location: default_ue_location(),
        seed,
    }
}

/// Stationary-LoS links used across §3: mmWave panel nearby, strong
/// low-band macro, LTE macro.
fn vz_mmwave(seed: u64) -> SpeedtestHarness {
    harness(UeModel::GalaxyS20Ultra, Band::N261, -70.0, false, seed)
}
fn vz_lowband(seed: u64) -> SpeedtestHarness {
    harness(UeModel::GalaxyS20Ultra, Band::N5Dss, -85.0, false, seed)
}
fn vz_lte(seed: u64) -> SpeedtestHarness {
    harness(
        UeModel::GalaxyS20Ultra,
        Band::LteMidBand,
        -82.0,
        false,
        seed,
    )
}
fn tm_low(seed: u64, sa: bool) -> SpeedtestHarness {
    harness(UeModel::GalaxyS20Ultra, Band::N71, -85.0, sa, seed)
}

/// Carrier servers sorted by distance from the UE.
fn sorted_pool(carrier: Carrier, ue: LatLon) -> Vec<fiveg_geo::servers::ServerInfo> {
    let mut pool = carrier_pool(carrier);
    pool.sort_by(|a, b| {
        a.distance_km(ue)
            .partial_cmp(&b.distance_km(ue))
            .expect("finite")
    });
    pool
}

/// Fig 1: RTT to every Verizon carrier server from the Minneapolis UE.
pub fn fig1(seed: u64) -> Report {
    let ue = default_ue_location();
    let h = vz_mmwave(seed);
    let mut t = Table::new(vec!["server", "km", "RTT ms"]);
    for s in sorted_pool(Carrier::Verizon, ue) {
        t.row(vec![
            s.name.clone(),
            f(s.distance_km(ue), 0),
            f(h.latency_ms(&s, 10), 1),
        ]);
    }
    Report {
        id: "fig1",
        title: "Impact of UE-Server distance on RTT (Verizon mmWave)".into(),
        body: t.render(),
    }
}

/// Fig 2: Verizon RTT vs distance for mmWave / low-band / LTE.
pub fn fig2(seed: u64) -> Report {
    let ue = default_ue_location();
    let (mm, lb, lte) = (vz_mmwave(seed), vz_lowband(seed), vz_lte(seed));
    let mut t = Table::new(vec!["km", "mmWave ms", "low-band ms", "LTE ms"]);
    for s in sorted_pool(Carrier::Verizon, ue) {
        t.row(vec![
            f(s.distance_km(ue), 0),
            f(mm.latency_ms(&s, 10), 1),
            f(lb.latency_ms(&s, 10), 1),
            f(lte.latency_ms(&s, 10), 1),
        ]);
    }
    Report {
        id: "fig2",
        title: "[Verizon] latency by band vs UE-server distance".into(),
        body: t.render(),
    }
}

fn throughput_vs_distance(
    h: &SpeedtestHarness,
    carrier: Carrier,
    dir: Direction,
    with_rtt: bool,
) -> String {
    let ue = default_ue_location();
    let mut header = vec!["km", "multi-conn Mbps", "single-conn Mbps"];
    if with_rtt {
        header.push("RTT ms");
    }
    let mut t = Table::new(header);
    for s in sorted_pool(carrier, ue) {
        let multi = h.run(&s, dir, ConnMode::Multi, REPEATS);
        let single = h.run(&s, dir, ConnMode::SingleTuned, REPEATS);
        let mut row = vec![
            f(s.distance_km(ue), 0),
            f(multi.p95_mbps, 0),
            f(single.p95_mbps, 0),
        ];
        if with_rtt {
            row.push(f(multi.rtt_ms, 1));
        }
        t.row(row);
    }
    t.render()
}

/// Fig 3: Verizon mmWave downlink throughput vs distance.
pub fn fig3(seed: u64) -> Report {
    Report {
        id: "fig3",
        title: "[Verizon mmWave] downlink throughput vs distance".into(),
        body: throughput_vs_distance(
            &vz_mmwave(seed),
            Carrier::Verizon,
            Direction::Downlink,
            true,
        ),
    }
}

/// Fig 4: Verizon mmWave uplink throughput vs distance.
pub fn fig4(seed: u64) -> Report {
    Report {
        id: "fig4",
        title: "[Verizon mmWave] uplink throughput vs distance".into(),
        body: throughput_vs_distance(&vz_mmwave(seed), Carrier::Verizon, Direction::Uplink, false),
    }
}

/// Fig 5: T-Mobile SA vs NSA low-band latency.
pub fn fig5(seed: u64) -> Report {
    let ue = default_ue_location();
    let (sa, nsa) = (tm_low(seed, true), tm_low(seed, false));
    let mut t = Table::new(vec!["km", "SA ms", "NSA ms"]);
    for s in sorted_pool(Carrier::TMobile, ue) {
        t.row(vec![
            f(s.distance_km(ue), 0),
            f(sa.latency_ms(&s, 10), 1),
            f(nsa.latency_ms(&s, 10), 1),
        ]);
    }
    Report {
        id: "fig5",
        title: "[T-Mobile] SA vs NSA low-band latency vs distance".into(),
        body: t.render(),
    }
}

fn tmobile_updown(seed: u64, dir: Direction, id: &'static str, what: &str) -> Report {
    let ue = default_ue_location();
    let (sa, nsa) = (tm_low(seed, true), tm_low(seed, false));
    let mut t = Table::new(vec![
        "km",
        "SA multi",
        "SA single",
        "NSA multi",
        "NSA single",
    ]);
    for s in sorted_pool(Carrier::TMobile, ue) {
        t.row(vec![
            f(s.distance_km(ue), 0),
            f(sa.run(&s, dir, ConnMode::Multi, REPEATS).p95_mbps, 0),
            f(sa.run(&s, dir, ConnMode::SingleTuned, REPEATS).p95_mbps, 0),
            f(nsa.run(&s, dir, ConnMode::Multi, REPEATS).p95_mbps, 0),
            f(nsa.run(&s, dir, ConnMode::SingleTuned, REPEATS).p95_mbps, 0),
        ]);
    }
    Report {
        id,
        title: format!("[T-Mobile] SA vs NSA low-band {what} vs distance (Mbps)"),
        body: t.render(),
    }
}

/// Fig 6: T-Mobile downlink, SA vs NSA.
pub fn fig6(seed: u64) -> Report {
    tmobile_updown(seed, Direction::Downlink, "fig6", "downlink")
}

/// Fig 7: T-Mobile uplink, SA vs NSA.
pub fn fig7(seed: u64) -> Report {
    tmobile_updown(seed, Direction::Uplink, "fig7", "uplink")
}

/// Fig 8: single-connection downlink across all US Azure regions under
/// different transport settings (rooted PX5).
pub fn fig8(seed: u64) -> Report {
    let h = harness(UeModel::Pixel5, Band::N261, -70.0, false, seed);
    let ue = default_ue_location();
    let mut t = Table::new(vec![
        "region",
        "km",
        "UDP",
        "TCP-8",
        "1-TCP tuned",
        "1-TCP default",
    ]);
    for s in azure_regions() {
        t.row(vec![
            s.name.clone(),
            f(s.distance_km(ue), 0),
            f(h.run(&s, Direction::Downlink, ConnMode::Udp, 3).p95_mbps, 0),
            f(
                h.run(&s, Direction::Downlink, ConnMode::TcpN(8), REPEATS)
                    .p95_mbps,
                0,
            ),
            f(
                h.run(&s, Direction::Downlink, ConnMode::SingleTuned, REPEATS)
                    .p95_mbps,
                0,
            ),
            f(
                h.run(&s, Direction::Downlink, ConnMode::SingleDefault, REPEATS)
                    .p95_mbps,
                0,
            ),
        ]);
    }
    Report {
        id: "fig8",
        title: "Single-conn DL across Azure regions under transport settings (Mbps)".into(),
        body: t.render(),
    }
}

/// Fig 23: carrier aggregation — PX5 (4CC) vs S20U (8CC).
pub fn fig23(seed: u64) -> Report {
    let ue = default_ue_location();
    let local = sorted_pool(Carrier::Verizon, ue)
        .into_iter()
        .next()
        .expect("non-empty pool");
    let mut t = Table::new(vec!["UE", "CC", "single DL", "multi DL", "multi UL"]);
    for (ue_model, cc) in [(UeModel::Pixel5, "4CC"), (UeModel::GalaxyS20Ultra, "8CC")] {
        let h = harness(ue_model, Band::N261, -70.0, false, seed);
        t.row(vec![
            ue_model.short_name().to_string(),
            cc.to_string(),
            f(
                h.run(&local, Direction::Downlink, ConnMode::SingleTuned, REPEATS)
                    .p95_mbps,
                0,
            ),
            f(
                h.run(&local, Direction::Downlink, ConnMode::Multi, REPEATS)
                    .p95_mbps,
                0,
            ),
            f(
                h.run(&local, Direction::Uplink, ConnMode::Multi, REPEATS)
                    .p95_mbps,
                0,
            ),
        ]);
    }
    Report {
        id: "fig23",
        title: "Carrier aggregation: 4CC vs 8CC throughput (Mbps)".into(),
        body: t.render(),
    }
}

/// Fig 24: downlink throughput across the 37 in-state Speedtest servers.
pub fn fig24(seed: u64) -> Report {
    let h = vz_mmwave(seed);
    let mut t = Table::new(vec!["server", "km", "DL Mbps", "cap"]);
    for s in minnesota_pool() {
        let r = h.run(&s, Direction::Downlink, ConnMode::Multi, REPEATS);
        t.row(vec![
            s.name.clone(),
            f(r.distance_km, 0),
            f(r.p95_mbps, 0),
            s.cap_mbps.map_or("-".to_string(), |c| f(c, 0)),
        ]);
    }
    Report {
        id: "fig24",
        title: "[Verizon mmWave] DL throughput across Minnesota Speedtest servers".into(),
        body: t.render(),
    }
}
