//! §6 web experiments: Fig 19 (factor impact), Fig 20 (CDFs), Fig 21
//! (penalty vs saving), Table 6 + Fig 22 (DT interface selection).

use crate::report::{f, Report, Table};
use fiveg_radio::ue::UeModel;
use fiveg_simcore::stats::{mean, Ecdf};
use fiveg_web::ifselect::{label, measure_corpus, ModelSpec, SelectionModel, SiteMeasurement};
use fiveg_web::loader::PageLoader;
use fiveg_web::site::WebsiteCorpus;

/// The paper's corpus scale and repetitions.
const CORPUS_SIZE: usize = 1500;
const REPS: usize = 8;

fn measurements(seed: u64) -> Vec<SiteMeasurement> {
    let corpus = WebsiteCorpus::generate(CORPUS_SIZE, seed);
    let loader = PageLoader::new(UeModel::Pixel5, seed);
    measure_corpus(&corpus, &loader, REPS)
}

/// Fig 19: PLT and energy binned by object count and page size.
pub fn fig19(seed: u64) -> Report {
    let ms = measurements(seed);
    let mut out = String::new();

    let mut by_objects = Table::new(vec!["objects", "4G PLT s", "5G PLT s", "4G J", "5G J"]);
    for (label_txt, lo, hi) in [
        ("0-10", 0.0, 10.0),
        ("11-100", 11.0, 100.0),
        ("100-1000", 100.0, 1000.0),
    ] {
        let bin: Vec<&SiteMeasurement> = ms
            .iter()
            .filter(|m| m.features[2] >= lo && m.features[2] <= hi)
            .collect();
        if bin.is_empty() {
            continue;
        }
        by_objects.row(vec![
            label_txt.to_string(),
            f(
                mean(&bin.iter().map(|m| m.lte.plt_s).collect::<Vec<_>>()),
                2,
            ),
            f(
                mean(&bin.iter().map(|m| m.mmwave.plt_s).collect::<Vec<_>>()),
                2,
            ),
            f(
                mean(&bin.iter().map(|m| m.lte.energy_j).collect::<Vec<_>>()),
                2,
            ),
            f(
                mean(&bin.iter().map(|m| m.mmwave.energy_j).collect::<Vec<_>>()),
                2,
            ),
        ]);
    }
    out.push_str(&format!(
        "-- impact of # of objects --\n{}",
        by_objects.render()
    ));

    let mut by_size = Table::new(vec!["page size", "4G PLT s", "5G PLT s", "4G J", "5G J"]);
    for (label_txt, lo, hi) in [
        ("<1MB", 0.0, 1.0),
        ("1-10MB", 1.0, 10.0),
        (">10MB", 10.0, 1e9),
    ] {
        let bin: Vec<&SiteMeasurement> = ms
            .iter()
            .filter(|m| m.features[5] >= lo && m.features[5] < hi)
            .collect();
        if bin.is_empty() {
            continue;
        }
        by_size.row(vec![
            label_txt.to_string(),
            f(
                mean(&bin.iter().map(|m| m.lte.plt_s).collect::<Vec<_>>()),
                2,
            ),
            f(
                mean(&bin.iter().map(|m| m.mmwave.plt_s).collect::<Vec<_>>()),
                2,
            ),
            f(
                mean(&bin.iter().map(|m| m.lte.energy_j).collect::<Vec<_>>()),
                2,
            ),
            f(
                mean(&bin.iter().map(|m| m.mmwave.energy_j).collect::<Vec<_>>()),
                2,
            ),
        ]);
    }
    out.push_str(&format!(
        "-- impact of total page size --\n{}",
        by_size.render()
    ));
    Report {
        id: "fig19",
        title: "How page factors affect PLT and energy under 4G vs mmWave 5G".into(),
        body: out,
    }
}

/// Fig 20: CDFs of PLT and energy.
pub fn fig20(seed: u64) -> Report {
    let ms = measurements(seed);
    let plt4 = Ecdf::new(&ms.iter().map(|m| m.lte.plt_s).collect::<Vec<_>>());
    let plt5 = Ecdf::new(&ms.iter().map(|m| m.mmwave.plt_s).collect::<Vec<_>>());
    let e4 = Ecdf::new(&ms.iter().map(|m| m.lte.energy_j).collect::<Vec<_>>());
    let e5 = Ecdf::new(&ms.iter().map(|m| m.mmwave.energy_j).collect::<Vec<_>>());
    let mut t = Table::new(vec!["quantile", "4G PLT s", "5G PLT s", "4G J", "5G J"]);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        t.row(vec![
            f(q, 2),
            f(plt4.quantile(q), 2),
            f(plt5.quantile(q), 2),
            f(e4.quantile(q), 2),
            f(e5.quantile(q), 2),
        ]);
    }
    Report {
        id: "fig20",
        title: "CDFs of page load time and energy, 4G vs 5G".into(),
        body: t.render(),
    }
}

/// Fig 21: energy saving of choosing 4G, bucketed by the PLT penalty.
pub fn fig21(seed: u64) -> Report {
    let ms = measurements(seed);
    let mut t = Table::new(vec!["PLT penalty %", "n sites", "energy saving %"]);
    for (lo, hi) in [
        (0.0, 10.0),
        (10.0, 20.0),
        (20.0, 30.0),
        (30.0, 40.0),
        (40.0, 50.0),
        (50.0, 60.0),
    ] {
        let bin: Vec<&SiteMeasurement> = ms
            .iter()
            .filter(|m| {
                let penalty = (m.lte.plt_s / m.mmwave.plt_s - 1.0) * 100.0;
                penalty >= lo && penalty < hi
            })
            .collect();
        if bin.is_empty() {
            continue;
        }
        let saving = mean(
            &bin.iter()
                .map(|m| (1.0 - m.lte.energy_j / m.mmwave.energy_j) * 100.0)
                .collect::<Vec<_>>(),
        );
        t.row(vec![
            format!("{lo:.0}-{hi:.0}"),
            bin.len().to_string(),
            f(saving, 1),
        ]);
    }
    Report {
        id: "fig21",
        title: "4G's PLT penalty vs energy saving over 5G".into(),
        body: t.render(),
    }
}

/// Table 6 + Fig 22: the five DT interface-selection models.
pub fn table6_fig22(seed: u64) -> Report {
    let mut ms = measurements(seed);
    // The paper's 7:3 split: 420 test sites out of 1400-ish.
    let test = ms.split_off(ms.len() * 7 / 10);
    let mut t = Table::new(vec![
        "model",
        "desired QoE",
        "alpha",
        "beta",
        "use 4G",
        "use 5G",
        "acc %",
        "energy saving %",
        "PLT penalty %",
    ]);
    let mut splits_out = String::new();
    for spec in ModelSpec::table6() {
        let model = SelectionModel::train(&ms, spec, seed);
        let counts = model.evaluate(&test);
        let (saving, penalty) = model.savings_vs_5g(&test);
        t.row(vec![
            spec.id.to_string(),
            spec.desired.to_string(),
            f(spec.alpha, 1),
            f(spec.beta, 1),
            counts.use_4g.to_string(),
            counts.use_5g.to_string(),
            f(counts.accuracy * 100.0, 1),
            f(saving * 100.0, 1),
            f(penalty * 100.0, 1),
        ]);
        let splits = model.splits();
        splits_out.push_str(&format!(
            "{} tree: {}\n",
            spec.id,
            if splits.is_empty() {
                "majority leaf (use 4G)".to_string()
            } else {
                splits
                    .iter()
                    .map(|s| format!("[d{}] {} < {:.2}", s.depth, s.feature, s.threshold))
                    .collect::<Vec<_>>()
                    .join("; ")
            }
        ));
    }
    // Sanity line mirroring the label balance (ground truth).
    let truth_5g: usize = label(&test, &ModelSpec::table6()[0]).iter().sum();
    let body = format!(
        "{}\n-- Fig 22: pruned tree structures --\n{}\n(M1 ground-truth 5G share of test: {}/{})\n",
        t.render(),
        splits_out,
        truth_5g,
        test.len()
    );
    Report {
        id: "table6",
        title: "DT radio-interface selection (Table 6) and tree structure (Fig 22)".into(),
        body,
    }
}
