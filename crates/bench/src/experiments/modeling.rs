//! §4.5/§4.6 modelling experiments: Fig 15 (power-model MAPE), Fig 16
//! (software-monitor calibration), Table 3 (sampling overhead), Table 9
//! (SW/HW benchmark).

use crate::report::{f, Report, Table};
use fiveg_mlkit::dataset::Dataset;
use fiveg_mlkit::tree::{DecisionTreeRegressor, TreeConfig};
use fiveg_power::datamodel::{DataPowerModel, NetworkKind};
use fiveg_power::monitor::{Activity, HardwareMonitor, SoftwareMonitor};
use fiveg_radio::band::Direction;
use fiveg_radio::ue::UeModel;
use fiveg_simcore::stats::mape;
use fiveg_simcore::RngStream;
use fiveg_traces::walking::{to_dataset, PowerFeatures, WalkingCampaign};

/// Trains a DTR on 70% and reports test MAPE.
fn dtr_mape(data: &Dataset, seed: u64) -> f64 {
    let mut rng = RngStream::new(seed, "fig15/split");
    let (train, test) = data.split(0.7, &mut rng);
    let model = DecisionTreeRegressor::fit(&train, &TreeConfig::default());
    mape(&test.targets, &model.predict_all(&test))
}

/// Fig 15 shard count: one shard per walking-campaign setting (5) plus the
/// held-out validation session.
pub(crate) const FIG15_SHARDS: usize = 6;

/// One Fig 15 shard: shards `0..5` train the three feature models on one
/// setting's campaign and return the three MAPEs; the final shard runs the
/// §4.5 held-out validation walk and returns its single MAPE. Every shard
/// is a pure function of `(seed, shard)` — no state crosses shards.
pub(crate) fn fig15_shard(seed: u64, shard: usize) -> Vec<f64> {
    let settings = WalkingCampaign::fig15_settings();
    if shard < settings.len() {
        let campaign = settings[shard];
        let samples = campaign.campaign(10, seed);
        return [
            PowerFeatures::ThroughputAndSignal,
            PowerFeatures::ThroughputOnly,
            PowerFeatures::SignalOnly,
        ]
        .into_iter()
        .map(|feat| dtr_mape(&to_dataset(&samples, campaign.network, feat), seed))
        .collect();
    }
    // §4.5 validation on "real applications": hold out a fresh walk and
    // predict it with the TH+SS model (stand-ins for the video/web runs).
    let campaign = settings[1];
    let train_samples = campaign.campaign(10, seed);
    let train = to_dataset(
        &train_samples,
        campaign.network,
        PowerFeatures::ThroughputAndSignal,
    );
    let model = DecisionTreeRegressor::fit(&train, &TreeConfig::default());
    let fresh = campaign.walk(99, seed, 10.0);
    let val = to_dataset(&fresh, campaign.network, PowerFeatures::ThroughputAndSignal);
    vec![mape(&val.targets, &model.predict_all(&val))]
}

/// Deterministic Fig 15 reducer: formats the shard MAPEs into the table in
/// setting order, then appends the validation note.
pub(crate) fn fig15_merge(_seed: u64, parts: &[Vec<f64>]) -> Report {
    let settings = WalkingCampaign::fig15_settings();
    let mut t = Table::new(vec!["setting", "TH+SS %", "TH %", "SS %"]);
    for (campaign, errs) in settings.iter().zip(parts) {
        t.row(vec![
            campaign.label(),
            f(errs[0], 2),
            f(errs[1], 2),
            f(errs[2], 2),
        ]);
    }
    let val_err = parts[settings.len()][0];
    let body = format!(
        "{}\nvalidation on a held-out session (S20U mmWave): MAPE {}%\n",
        t.render(),
        f(val_err, 1)
    );
    Report {
        id: "fig15",
        title: "Power-model MAPE: TH+SS vs TH-only vs SS-only (DTR)".into(),
        body,
    }
}

/// Fig 15: TH+SS vs TH vs SS model error across the five settings. The
/// unsharded path is the sharded one run in order — byte-identity between
/// the two is by construction.
pub fn fig15(seed: u64) -> Report {
    let parts: Vec<Vec<f64>> = (0..FIG15_SHARDS).map(|s| fig15_shard(seed, s)).collect();
    fig15_merge(seed, &parts)
}

/// The benchmark's true total-device power for an activity, mW (idle base
/// of Table 3 plus radio activity).
fn activity_power_mw(activity: Activity) -> f64 {
    let idle_screen_on = 2014.3;
    let radio = |mbps: f64| {
        DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::MmWave)
            .power_mw(Direction::Downlink, mbps)
    };
    match activity {
        Activity::IdleScreenOn => idle_screen_on,
        Activity::IdleScreenOff => idle_screen_on - fiveg_power::SCREEN_POWER_MW,
        Activity::RandomInteraction => idle_screen_on + 600.0,
        Activity::UdpDl50 => idle_screen_on + radio(50.0),
        Activity::UdpDl400 => idle_screen_on + radio(400.0),
        Activity::UdpDl800 => idle_screen_on + radio(800.0),
        Activity::UdpDl1200 => idle_screen_on + radio(1200.0),
        Activity::VideoStreaming => idle_screen_on + 1200.0 + radio(80.0),
    }
}

/// Table 9: SW/HW relative error per activity and sampling rate.
pub fn table9(seed: u64) -> Report {
    let hw = HardwareMonitor::default();
    let mut t = Table::new(vec!["test case", "@1Hz %", "@10Hz %"]);
    for activity in Activity::all() {
        let truth = activity_power_mw(activity);
        let mut cells = Vec::new();
        for rate in [1.0, 10.0] {
            let sw = SoftwareMonitor::new(rate);
            let rng = RngStream::new(seed, &format!("t9/{activity:?}/{rate}"));
            // The monitor's own overhead raises the UE's true draw.
            let true_fn = |_t: f64| truth + sw.overhead_mw();
            let hw_trace = hw.record(true_fn, 120.0, &mut rng.fork("hw"));
            let sw_trace = sw.record(true_fn, activity, 120.0, &mut rng.fork("sw"));
            let ratio = sw_trace.time_weighted_mean() / hw_trace.time_weighted_mean();
            cells.push(f(ratio * 100.0, 1));
        }
        t.row(vec![
            activity.label().to_string(),
            cells[0].clone(),
            cells[1].clone(),
        ]);
    }
    Report {
        id: "table9",
        title: "Software/hardware power monitor relative error".into(),
        body: t.render(),
    }
}

/// Table 3: sampling-rate overhead.
pub fn table3(_seed: u64) -> Report {
    let idle = 2014.3;
    let mut t = Table::new(vec!["activity", "average power mW"]);
    t.row(vec!["Idle".to_string(), f(idle, 1)]);
    t.row(vec![
        "Monitor on (1Hz)".to_string(),
        f(idle + SoftwareMonitor::new(1.0).overhead_mw(), 1),
    ]);
    t.row(vec![
        "Monitor on (10Hz)".to_string(),
        f(idle + SoftwareMonitor::new(10.0).overhead_mw(), 1),
    ]);
    Report {
        id: "table3",
        title: "A higher sampling rate incurs more overhead".into(),
        body: t.render(),
    }
}

/// Fig 16 shard count: the TH+SS baseline plus one shard per software
/// sampling rate (1 Hz, 10 Hz).
pub(crate) const FIG16_SHARDS: usize = 3;

/// One Fig 16 shard. Shard 0 reproduces the Fig 15 TH+SS baseline MAPE;
/// shards 1 and 2 build one sampling rate's mixed-activity session and
/// return `[uncalibrated, calibrated]` MAPEs. RNG streams are keyed by
/// `(seed, activity, rate)` exactly as the unsharded loop keyed them.
pub(crate) fn fig16_shard(seed: u64, shard: usize) -> Vec<f64> {
    if shard == 0 {
        // Baseline: TH+SS model error on the walking data (same as Fig 15).
        let campaign = WalkingCampaign::fig15_settings()[1];
        let samples = campaign.campaign(10, seed);
        return vec![dtr_mape(
            &to_dataset(
                &samples,
                campaign.network,
                PowerFeatures::ThroughputAndSignal,
            ),
            seed,
        )];
    }
    // Build a mixed-activity session: the UE runs each activity in turn;
    // features are (sw reading, throughput) and the target is the hardware
    // reading.
    let hw = HardwareMonitor::default();
    let activities = Activity::all();
    let rate = [1.0, 10.0][shard - 1];
    let sw = SoftwareMonitor::new(rate);
    let mut data = Dataset::new(
        vec!["sw_reading_mw".into(), "throughput_mbps".into()],
        vec![],
        vec![],
    );
    let mut raw_actual = Vec::new();
    let mut raw_sw = Vec::new();
    for (ai, activity) in activities.iter().enumerate() {
        let truth = activity_power_mw(*activity);
        let tput = match activity {
            Activity::UdpDl50 => 50.0,
            Activity::UdpDl400 => 400.0,
            Activity::UdpDl800 => 800.0,
            Activity::UdpDl1200 => 1200.0,
            Activity::VideoStreaming => 80.0,
            _ => 0.0,
        };
        let rng = RngStream::new(seed, &format!("fig16/{ai}/{rate}"));
        // Real device power fluctuates within an activity (DVFS, screen
        // content, scheduler bursts) — that is what makes calibration a
        // learning problem rather than a lookup.
        let true_fn = |t: f64| {
            truth * (1.0 + 0.08 * (t * std::f64::consts::TAU / 7.3).sin()) + sw.overhead_mw()
        };
        let hw_trace = hw.record(true_fn, 60.0, &mut rng.fork("hw"));
        let sw_trace = sw.record(true_fn, *activity, 60.0, &mut rng.fork("sw"));
        for (t_sw, reading) in sw_trace.iter() {
            // Pair each software reading with the hardware reading of
            // the same instant.
            let hw_now = hw_trace.sample_at(t_sw).unwrap_or(truth);
            data.push(vec![reading, tput], hw_now);
            raw_actual.push(hw_now);
            raw_sw.push(reading);
        }
    }
    vec![
        mape(&raw_actual, &raw_sw),
        dtr_mape(&data, seed ^ rate as u64),
    ]
}

/// Deterministic Fig 16 reducer: baseline row, then per-rate
/// uncalibrated/calibrated rows in rate order.
pub(crate) fn fig16_merge(_seed: u64, parts: &[Vec<f64>]) -> Report {
    let mut t = Table::new(vec!["estimator", "MAPE %"]);
    t.row(vec!["TH+SS".to_string(), f(parts[0][0], 2)]);
    for (rate, part) in [1.0f64, 10.0].iter().zip(&parts[1..]) {
        t.row(vec![format!("SW-{rate:.0}Hz uncalibrated"), f(part[0], 2)]);
        t.row(vec![
            format!("SW-{rate:.0}Hz calibrated (DTR)"),
            f(part[1], 2),
        ]);
    }
    Report {
        id: "fig16",
        title: "Software power monitor calibration".into(),
        body: t.render(),
    }
}

/// Fig 16: DTR calibration of the software monitor vs the TH+SS model.
pub fn fig16(seed: u64) -> Report {
    let parts: Vec<Vec<f64>> = (0..FIG16_SHARDS).map(|s| fig16_shard(seed, s)).collect();
    fig16_merge(seed, &parts)
}
