//! Fig 9: handoff frequency while driving, across five band settings.

use crate::report::{f, Report, Table};
use fiveg_geo::mobility::MobilityModel;
use fiveg_probes::drivetest::summarize;
use fiveg_radio::cell::NetworkLayout;
use fiveg_radio::handoff::{simulate_drive, BandSetting, HandoffConfig};

/// Fig 9: drive the 10 km route under each band configuration.
pub fn fig9(seed: u64) -> Report {
    let layout = NetworkLayout::tmobile_drive_corridor(seed);
    let mobility = MobilityModel::driving_10km();
    let cfg = HandoffConfig::default();
    let mut t = Table::new(vec![
        "setting",
        "total",
        "vertical",
        "horizontal",
        "LTE %",
        "NSA %",
        "SA %",
        "segments",
    ]);
    for setting in BandSetting::all() {
        let result = simulate_drive(&layout, &mobility, setting, &cfg, seed);
        let s = summarize(&result);
        let (lte, nsa, sa, _outage) = s.share;
        t.row(vec![
            setting.label().to_string(),
            s.total.to_string(),
            s.vertical.to_string(),
            s.horizontal.to_string(),
            f(lte * 100.0, 1),
            f(nsa * 100.0, 1),
            f(sa * 100.0, 1),
            s.segments.len().to_string(),
        ]);
    }
    Report {
        id: "fig9",
        title: "[T-Mobile] handoff frequency while driving, per band setting".into(),
        body: t.render(),
    }
}
