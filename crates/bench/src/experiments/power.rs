//! §4.3/§4.4 power experiments: Figs 11–14, 26/27, Table 8.

use crate::report::{f, Report, Table};
use fiveg_power::datamodel::{DataPowerModel, NetworkKind};
use fiveg_power::efficiency::{crossover_mbps, energy_efficiency_uj_per_bit};
use fiveg_radio::band::Direction;
use fiveg_radio::ue::UeModel;
use fiveg_radio::Carrier;
use fiveg_simcore::stats::{linear_fit, mean};
use fiveg_traces::walking::{WalkingCampaign, WalkingSample};

/// The controlled iPerf3 target sweep of §4.3, per network.
fn sweep_targets(network: NetworkKind, dir: Direction) -> Vec<f64> {
    let max = match (network, dir) {
        (NetworkKind::MmWave, Direction::Downlink) => 2000.0,
        (NetworkKind::MmWave, Direction::Uplink) => 220.0,
        (NetworkKind::LowBandNsa, Direction::Downlink) => 400.0,
        (NetworkKind::LowBandNsa, Direction::Uplink) => 110.0,
        (NetworkKind::LowBandSa, Direction::Downlink) => 110.0,
        (NetworkKind::LowBandSa, Direction::Uplink) => 55.0,
        (NetworkKind::Lte, Direction::Downlink) => 200.0,
        (NetworkKind::Lte, Direction::Uplink) => 100.0,
    };
    (1..=10).map(|i| max * i as f64 / 10.0).collect()
}

/// One throughput-vs-power table for a UE over the three §4.3 networks.
fn throughput_power_table(ue: UeModel, networks: &[NetworkKind]) -> String {
    let mut out = String::new();
    for dir in [Direction::Downlink, Direction::Uplink] {
        let mut t = Table::new(vec!["Mbps", "net", "power W"]);
        for &nk in networks {
            let m = DataPowerModel::lookup(ue, nk);
            for tput in sweep_targets(nk, dir) {
                t.row(vec![
                    f(tput, 0),
                    nk.label().to_string(),
                    f(m.power_mw(dir, tput) / 1e3, 2),
                ]);
            }
        }
        out.push_str(&format!("-- {dir:?} --\n{}", t.render()));
    }
    // Crossover annotations (the dashed verticals of Fig 11).
    if networks.contains(&NetworkKind::MmWave) {
        let mm = DataPowerModel::lookup(ue, NetworkKind::MmWave);
        for dir in [Direction::Downlink, Direction::Uplink] {
            for &other in networks.iter().filter(|&&n| n != NetworkKind::MmWave) {
                let o = DataPowerModel::lookup(ue, other);
                if let Some(x) = crossover_mbps(&o.curve(dir), &mm.curve(dir)) {
                    out.push_str(&format!(
                        "crossover ({dir:?}): mmWave beats {} above {} Mbps\n",
                        o.network.label(),
                        f(x, 1)
                    ));
                }
            }
        }
    }
    out
}

/// Fig 11: throughput vs power for 4G and 5G (S20U, Verizon).
pub fn fig11(_seed: u64) -> Report {
    Report {
        id: "fig11",
        title: "Throughput vs power, S20U: 4G vs low-band 5G vs mmWave 5G".into(),
        body: throughput_power_table(
            UeModel::GalaxyS20Ultra,
            &[
                NetworkKind::MmWave,
                NetworkKind::LowBandNsa,
                NetworkKind::Lte,
            ],
        ),
    }
}

/// Fig 26/27: the S10 version (Ann Arbor) — power curves plus the Fig 27
/// energy-efficiency series.
pub fn fig26(_seed: u64) -> Report {
    let mut body =
        throughput_power_table(UeModel::GalaxyS10, &[NetworkKind::MmWave, NetworkKind::Lte]);
    // Fig 27: µJ/bit at log-spaced throughputs.
    let mm = DataPowerModel::lookup(UeModel::GalaxyS10, NetworkKind::MmWave);
    let lte = DataPowerModel::lookup(UeModel::GalaxyS10, NetworkKind::Lte);
    for dir in [Direction::Downlink, Direction::Uplink] {
        let mut t = Table::new(vec!["Mbps", "5G uJ/bit", "4G uJ/bit"]);
        for &p in &[1.0, 10.0, 100.0, 1000.0] {
            let lte_max = sweep_targets(NetworkKind::Lte, dir)
                .last()
                .copied()
                .expect("non-empty");
            let mm_max = sweep_targets(NetworkKind::MmWave, dir)
                .last()
                .copied()
                .expect("non-empty");
            t.row(vec![
                f(p, 0),
                if p <= mm_max {
                    f(energy_efficiency_uj_per_bit(&mm.curve(dir), p), 3)
                } else {
                    "-".to_string()
                },
                if p <= lte_max {
                    f(energy_efficiency_uj_per_bit(&lte.curve(dir), p), 3)
                } else {
                    "-".to_string()
                },
            ]);
        }
        body.push_str(&format!("-- Fig 27 {dir:?} efficiency --\n{}", t.render()));
    }
    Report {
        id: "fig26",
        title: "Throughput vs power (Fig 26) and energy efficiency (Fig 27), S10".into(),
        body,
    }
}

/// Fig 12: throughput vs energy efficiency (µJ/bit, log–log shape).
pub fn fig12(_seed: u64) -> Report {
    let ue = UeModel::GalaxyS20Ultra;
    let mut out = String::new();
    for dir in [Direction::Downlink, Direction::Uplink] {
        let mut t = Table::new(vec![
            "Mbps",
            "mmWave uJ/bit",
            "low-band uJ/bit",
            "4G uJ/bit",
        ]);
        let points = [1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 2000.0];
        for &p in &points {
            let cell = |nk: NetworkKind| {
                let max = sweep_targets(nk, dir).last().copied().expect("non-empty");
                if p > max {
                    "-".to_string()
                } else {
                    let m = DataPowerModel::lookup(ue, nk);
                    f(energy_efficiency_uj_per_bit(&m.curve(dir), p), 3)
                }
            };
            t.row(vec![
                f(p, 0),
                cell(NetworkKind::MmWave),
                cell(NetworkKind::LowBandNsa),
                cell(NetworkKind::Lte),
            ]);
        }
        out.push_str(&format!("-- {dir:?} --\n{}", t.render()));
    }
    // The §4.3 headline ratios.
    let mm = DataPowerModel::lookup(ue, NetworkKind::MmWave);
    let lte = DataPowerModel::lookup(ue, NetworkKind::Lte);
    let low_dl = 1.0
        - energy_efficiency_uj_per_bit(&lte.downlink, 1.0)
            / energy_efficiency_uj_per_bit(&mm.downlink, 1.0);
    let high_dl = energy_efficiency_uj_per_bit(&lte.downlink, 200.0)
        / energy_efficiency_uj_per_bit(&mm.downlink, 2000.0);
    out.push_str(&format!(
        "DL: 5G is {}% less efficient at 1 Mbps; {}x more efficient at its high rate\n",
        f(low_dl * 100.0, 0),
        f(high_dl, 1)
    ));
    Report {
        id: "fig12",
        title: "Throughput vs energy efficiency, S20U".into(),
        body: out,
    }
}

/// Table 8: slopes of the throughput–power curves, recovered by linear
/// regression over the simulated sweeps (with measurement noise).
pub fn table8(seed: u64) -> Report {
    let mut rng = fiveg_simcore::RngStream::new(seed, "table8");
    let mut t = Table::new(vec![
        "device",
        "network",
        "DL mW/Mbps (truth)",
        "UL mW/Mbps (truth)",
    ]);
    let settings = [
        (UeModel::GalaxyS10, NetworkKind::Lte),
        (UeModel::GalaxyS10, NetworkKind::MmWave),
        (UeModel::GalaxyS20Ultra, NetworkKind::Lte),
        (UeModel::GalaxyS20Ultra, NetworkKind::LowBandNsa),
        (UeModel::GalaxyS20Ultra, NetworkKind::MmWave),
    ];
    for (ue, nk) in settings {
        let m = DataPowerModel::lookup(ue, nk);
        let fit_dir = |dir: Direction, rng: &mut fiveg_simcore::RngStream| {
            let xs = sweep_targets(nk, dir);
            let ys: Vec<f64> = xs
                .iter()
                .map(|&x| m.power_mw(dir, x) * (1.0 + rng.normal(0.0, 0.02)))
                .collect();
            linear_fit(&xs, &ys).0
        };
        let dl = fit_dir(Direction::Downlink, &mut rng);
        let ul = fit_dir(Direction::Uplink, &mut rng);
        t.row(vec![
            ue.short_name().to_string(),
            nk.label().to_string(),
            format!("{} ({})", f(dl, 2), f(m.downlink.slope_mw_per_mbps, 2)),
            format!("{} ({})", f(ul, 2), f(m.uplink.slope_mw_per_mbps, 2)),
        ]);
    }
    Report {
        id: "table8",
        title: "Slopes of throughput-power curves — regressed (ground truth)".into(),
        body: t.render(),
    }
}

fn campaign_samples(c: &WalkingCampaign, seed: u64) -> Vec<WalkingSample> {
    c.campaign(10, seed)
}

/// Fig 13: the power–RSRP–throughput relationship from the walking data.
pub fn fig13(seed: u64) -> Report {
    let mut out = String::new();
    for (label, campaign) in [
        (
            "Ann Arbor, MI (UE: S10)",
            WalkingCampaign {
                ue: UeModel::GalaxyS10,
                carrier: Carrier::Verizon,
                network: NetworkKind::MmWave,
            },
        ),
        (
            "Minneapolis, MN (UE: S20U)",
            WalkingCampaign {
                ue: UeModel::GalaxyS20Ultra,
                carrier: Carrier::Verizon,
                network: NetworkKind::MmWave,
            },
        ),
    ] {
        let samples = campaign_samples(&campaign, seed);
        let mut t = Table::new(vec![
            "RSRP bin dBm",
            "net",
            "n",
            "mean tput Mbps",
            "mean power W",
        ]);
        for nk in [NetworkKind::MmWave, NetworkKind::LowBandNsa] {
            for bin_lo in (-110..-70).step_by(10) {
                let in_bin: Vec<&WalkingSample> = samples
                    .iter()
                    .filter(|s| {
                        s.network == nk
                            && s.rsrp_dbm >= bin_lo as f64
                            && s.rsrp_dbm < (bin_lo + 10) as f64
                    })
                    .collect();
                if in_bin.is_empty() {
                    continue;
                }
                let tput = mean(&in_bin.iter().map(|s| s.throughput_mbps).collect::<Vec<_>>());
                let power = mean(&in_bin.iter().map(|s| s.power_mw).collect::<Vec<_>>());
                t.row(vec![
                    format!("[{},{})", bin_lo, bin_lo + 10),
                    nk.label().to_string(),
                    in_bin.len().to_string(),
                    f(tput, 0),
                    f(power / 1e3, 2),
                ]);
            }
        }
        out.push_str(&format!("-- {label} --\n{}", t.render()));
    }
    Report {
        id: "fig13",
        title: "Power-RSRP-throughput relationship (walking campaigns)".into(),
        body: out,
    }
}

/// Fig 14: energy efficiency vs RSRP bins (mmWave).
pub fn fig14(seed: u64) -> Report {
    let mut out = String::new();
    for (label, ue) in [
        ("Ann Arbor, MI (UE: S10)", UeModel::GalaxyS10),
        ("Minneapolis, MN (UE: S20U)", UeModel::GalaxyS20Ultra),
    ] {
        let campaign = WalkingCampaign {
            ue,
            carrier: Carrier::Verizon,
            network: NetworkKind::MmWave,
        };
        let samples = campaign_samples(&campaign, seed);
        let mut t = Table::new(vec!["NR-SS-RSRP bin", "uJ/bit"]);
        for bin_lo in (-110..-75).step_by(5) {
            let in_bin: Vec<&WalkingSample> = samples
                .iter()
                .filter(|s| {
                    s.network == NetworkKind::MmWave
                        && s.rsrp_dbm >= bin_lo as f64
                        && s.rsrp_dbm < (bin_lo + 5) as f64
                        && s.throughput_mbps > 1.0
                })
                .collect();
            if in_bin.len() < 5 {
                continue;
            }
            let eff = mean(
                &in_bin
                    .iter()
                    .map(|s| fiveg_simcore::units::energy_per_bit_uj(s.power_mw, s.throughput_mbps))
                    .collect::<Vec<_>>(),
            );
            t.row(vec![format!("[{},{})", bin_lo, bin_lo + 5), f(eff, 4)]);
        }
        out.push_str(&format!("-- {label} --\n{}", t.render()));
    }
    Report {
        id: "fig14",
        title: "Energy efficiency vs RSRP (mmWave walking data)".into(),
        body: out,
    }
}
