//! Throughput predictors pluggable into MPC (§5.3, Fig 18a).

use fiveg_mlkit::dataset::Dataset;
use fiveg_mlkit::gbdt::{GbdtConfig, GbdtRegressor};
use fiveg_transport::shaper::BandwidthTrace;

/// Predicts near-future throughput from recent observations.
pub trait ThroughputPredictor {
    /// Predicted throughput in Mbps for the next chunk download starting
    /// at wall time `wall_t_s`, given past per-chunk measurements (most
    /// recent last).
    fn predict_mbps(&self, past: &[f64], wall_t_s: f64) -> f64;

    /// Display name ("hmMPC", "MPC_GDBT", "truthMPC").
    fn name(&self) -> &'static str;
}

/// FastMPC's default: harmonic mean of the last `window` chunk
/// throughputs.
#[derive(Debug, Clone, Copy)]
pub struct HarmonicMeanPredictor {
    /// Number of past samples to average.
    pub window: usize,
}

impl Default for HarmonicMeanPredictor {
    fn default() -> Self {
        HarmonicMeanPredictor { window: 5 }
    }
}

impl ThroughputPredictor for HarmonicMeanPredictor {
    fn predict_mbps(&self, past: &[f64], _wall_t_s: f64) -> f64 {
        if past.is_empty() {
            return 1.0;
        }
        let start = past.len().saturating_sub(self.window);
        // Stall samples (zero throughput) are dropped, not floored: a
        // floored near-zero sample dominates the harmonic mean and
        // collapses the prediction for the whole window.
        let window: Vec<f64> = past[start..]
            .iter()
            .map(|&x| if x.is_finite() { x } else { 1e4 })
            .collect();
        let hm = fiveg_simcore::stats::harmonic_mean_positive(&window);
        if hm.is_finite() {
            hm.max(0.01)
        } else {
            0.01
        }
    }

    fn name(&self) -> &'static str {
        "hmMPC"
    }
}

/// The ground-truth oracle: reads the future of the actual trace
/// ("truthMPC", the upper bound on what prediction can buy).
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    trace: BandwidthTrace,
    /// Averaging horizon in seconds.
    pub horizon_s: f64,
}

impl OraclePredictor {
    /// Creates an oracle over `trace`.
    pub fn new(trace: BandwidthTrace, horizon_s: f64) -> Self {
        assert!(horizon_s > 0.0, "horizon must be positive");
        OraclePredictor { trace, horizon_s }
    }
}

impl ThroughputPredictor for OraclePredictor {
    fn predict_mbps(&self, _past: &[f64], wall_t_s: f64) -> f64 {
        let step = self.trace.granularity_s();
        let n = (self.horizon_s / step).ceil() as usize;
        let mut sum = 0.0;
        for i in 0..n {
            sum += self.trace.bandwidth_at(wall_t_s + i as f64 * step);
        }
        (sum / n as f64).max(0.01)
    }

    fn name(&self) -> &'static str {
        "truthMPC"
    }
}

/// The Lumos5G-style learned predictor: gradient-boosted trees over the
/// recent throughput window ("MPC_GDBT").
#[derive(Debug, Clone)]
pub struct GbdtPredictor {
    model: GbdtRegressor,
    window: usize,
}

impl GbdtPredictor {
    /// Trains on *chunk-aligned* sequences: each training trace is walked
    /// by downloading mid-ladder chunks back to back, producing the same
    /// per-chunk throughput observations MPC will feed the predictor at
    /// run time. Features are the last `window` chunk throughputs; the
    /// target is the next chunk's throughput.
    ///
    /// # Panics
    /// Panics on an empty corpus or zero window.
    pub fn train_on_chunks(
        corpus: &[BandwidthTrace],
        asset: &crate::asset::VideoAsset,
        window: usize,
    ) -> Self {
        assert!(!corpus.is_empty(), "need training traces");
        assert!(window > 0, "window must be positive");
        let names: Vec<String> = (0..window)
            .map(|i| format!("tput_m{}", window - i))
            .collect();
        let mut data = Dataset::new(names, vec![], vec![]);
        let mid_bytes = asset.chunk_bytes(asset.n_tracks() / 2);
        for trace in corpus {
            let mut wall = 0.0;
            let mut tputs: Vec<f64> = Vec::new();
            while wall < trace.duration_s() {
                let dl = trace.transfer_time_s(mid_bytes, wall);
                if !dl.is_finite() {
                    break;
                }
                let tput = (mid_bytes * 8.0 / 1e6 / dl.max(1e-6)).min(1e4);
                if tputs.len() >= window {
                    // Log-space target: squared loss becomes *relative*
                    // error, so the model stays honest in low regimes —
                    // exactly where optimistic predictions cause stalls.
                    data.push(tputs[tputs.len() - window..].to_vec(), (1.0 + tput).ln());
                }
                tputs.push(tput);
                // A steady-state player is paced by playback: one chunk per
                // chunk duration unless the link is the bottleneck.
                wall += dl.max(asset.chunk_len_s);
            }
        }
        assert!(!data.is_empty(), "traces too short for the window");
        let model = GbdtRegressor::fit(
            &data,
            &GbdtConfig {
                n_estimators: 120,
                tree_depth: 5,
                ..GbdtConfig::default()
            },
        );
        GbdtPredictor { model, window }
    }

    /// Trains on a trace corpus: features are the last `window` seconds of
    /// throughput, the target is the mean over the next 4 s.
    ///
    /// # Panics
    /// Panics on an empty corpus or zero window.
    pub fn train(corpus: &[BandwidthTrace], window: usize) -> Self {
        assert!(!corpus.is_empty(), "need training traces");
        assert!(window > 0, "window must be positive");
        let names: Vec<String> = (0..window)
            .map(|i| format!("tput_m{}", window - i))
            .collect();
        let mut data = Dataset::new(names, vec![], vec![]);
        for trace in corpus {
            let s = trace.samples();
            let horizon = 4usize;
            if s.len() < window + horizon {
                continue;
            }
            for i in window..s.len() - horizon {
                let row: Vec<f64> = s[i - window..i].to_vec();
                let target = s[i..i + horizon].iter().sum::<f64>() / horizon as f64;
                data.push(row, (1.0 + target).ln());
            }
        }
        let model = GbdtRegressor::fit(
            &data,
            &GbdtConfig {
                n_estimators: 60,
                tree_depth: 4,
                ..GbdtConfig::default()
            },
        );
        GbdtPredictor { model, window }
    }
}

impl ThroughputPredictor for GbdtPredictor {
    fn predict_mbps(&self, past: &[f64], _wall_t_s: f64) -> f64 {
        if past.len() < self.window {
            // Stall-tolerant warm-up window: zero samples are dropped so
            // one stall can't zero the prediction (NaN = nothing usable).
            let hm = fiveg_simcore::stats::harmonic_mean_positive(past);
            return if hm.is_finite() {
                hm.clamp(0.01, 1e4)
            } else {
                0.01
            };
        }
        let row: Vec<f64> = past[past.len() - self.window..]
            .iter()
            .map(|&x| if x.is_finite() { x.min(1e4) } else { 1e4 })
            .collect();
        (self.model.predict(&row).exp() - 1.0).max(0.01)
    }

    fn name(&self) -> &'static str {
        "MPC_GDBT"
    }
}

/// The full Lumos5G-style predictor: gradient-boosted trees over the
/// recent throughput window **plus UE-side radio context** (the serving
/// NR-SS-RSRP), which is what lets the learned model beat the harmonic
/// mean — signal strength leads throughput by seconds.
#[derive(Debug, Clone)]
pub struct ContextGbdtPredictor {
    model: GbdtRegressor,
    window: usize,
    /// Pessimism margin in log space: the prediction is shifted down to a
    /// lower quantile before MPC consumes it, because rebuffering is far
    /// costlier than under-selecting one track. 0.7 ≈ predict ~50% below
    /// the conditional geometric mean.
    pub pessimism_log: f64,
}

/// A [`ContextGbdtPredictor`] bound to one session's per-second RSRP log
/// (UE-observable at run time — this is *not* future information).
#[derive(Debug, Clone)]
pub struct BoundContextPredictor {
    inner: ContextGbdtPredictor,
    rsrp_per_s: Vec<f64>,
}

impl ContextGbdtPredictor {
    /// Trains on `(trace, per-second RSRP)` pairs, chunk-aligned like
    /// [`GbdtPredictor::train_on_chunks`].
    ///
    /// # Panics
    /// Panics on an empty corpus or zero window.
    pub fn train(
        corpus: &[(BandwidthTrace, Vec<f64>)],
        asset: &crate::asset::VideoAsset,
        window: usize,
    ) -> Self {
        assert!(!corpus.is_empty(), "need training traces");
        assert!(window > 0, "window must be positive");
        let mut names: Vec<String> = (0..window)
            .map(|i| format!("tput_m{}", window - i))
            .collect();
        names.push("rsrp_now".into());
        let mut data = Dataset::new(names, vec![], vec![]);
        let mid_bytes = asset.chunk_bytes(asset.n_tracks() / 2);
        for (trace, rsrp) in corpus {
            let mut wall = 0.0;
            let mut tputs: Vec<f64> = Vec::new();
            while wall < trace.duration_s() {
                // The trace replay loops past its end; so does the log.
                let rsrp_now = if rsrp.is_empty() {
                    -130.0
                } else {
                    rsrp[(wall as usize) % rsrp.len()]
                };
                let dl = trace.transfer_time_s(mid_bytes, wall);
                if !dl.is_finite() {
                    break;
                }
                let tput = (mid_bytes * 8.0 / 1e6 / dl.max(1e-6)).min(1e4);
                if tputs.len() >= window {
                    let mut row = tputs[tputs.len() - window..].to_vec();
                    row.push(rsrp_now);
                    data.push(row, (1.0 + tput).ln());
                }
                tputs.push(tput);
                wall += dl.max(asset.chunk_len_s);
            }
        }
        assert!(!data.is_empty(), "traces too short for the window");
        let model = GbdtRegressor::fit(
            &data,
            &GbdtConfig {
                n_estimators: 120,
                tree_depth: 5,
                ..GbdtConfig::default()
            },
        );
        ContextGbdtPredictor {
            model,
            window,
            pessimism_log: 0.7,
        }
    }

    /// Binds the predictor to one session's RSRP log.
    pub fn bind(&self, rsrp_per_s: Vec<f64>) -> BoundContextPredictor {
        BoundContextPredictor {
            inner: self.clone(),
            rsrp_per_s,
        }
    }
}

impl ThroughputPredictor for BoundContextPredictor {
    fn predict_mbps(&self, past: &[f64], wall_t_s: f64) -> f64 {
        let rsrp_now = if self.rsrp_per_s.is_empty() {
            -130.0
        } else {
            self.rsrp_per_s[(wall_t_s.max(0.0) as usize) % self.rsrp_per_s.len()]
        };
        if past.len() < self.inner.window {
            // Same stall-tolerant warm-up as GbdtPredictor::predict_mbps.
            let hm = fiveg_simcore::stats::harmonic_mean_positive(past);
            return if hm.is_finite() {
                hm.clamp(0.01, 1e4)
            } else {
                0.01
            };
        }
        let mut row: Vec<f64> = past[past.len() - self.inner.window..]
            .iter()
            .map(|&x| if x.is_finite() { x.min(1e4) } else { 1e4 })
            .collect();
        row.push(rsrp_now);
        ((self.inner.model.predict(&row) - self.inner.pessimism_log).exp() - 1.0).max(0.01)
    }

    fn name(&self) -> &'static str {
        "MPC_GDBT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_is_pessimistic_about_dips() {
        let p = HarmonicMeanPredictor::default();
        let past = vec![100.0, 100.0, 100.0, 100.0, 1.0];
        let pred = p.predict_mbps(&past, 0.0);
        // Harmonic mean is pulled hard toward the dip.
        assert!(pred < 10.0, "{pred}");
    }

    #[test]
    fn harmonic_mean_handles_empty_and_infinite() {
        let p = HarmonicMeanPredictor::default();
        assert!(p.predict_mbps(&[], 0.0) > 0.0);
        assert!(p.predict_mbps(&[f64::INFINITY, 10.0], 0.0).is_finite());
    }

    #[test]
    fn one_stall_sample_does_not_zero_the_prediction() {
        // Regression: a zero-throughput sample (a stall under chaos) in
        // the window used to drag the prediction to the floor (~0.01)
        // even with four healthy 100 Mbps samples alongside it.
        let p = HarmonicMeanPredictor::default();
        let pred = p.predict_mbps(&[100.0, 100.0, 0.0, 100.0, 100.0], 0.0);
        assert!(pred > 50.0, "prediction collapsed to {pred}");
        // With no positive sample at all there is nothing to average:
        // fall to the conservative floor instead of NaN.
        assert_eq!(p.predict_mbps(&[0.0, 0.0], 0.0), 0.01);
    }

    #[test]
    fn gbdt_warmup_window_tolerates_stall_samples() {
        // Same regression on the short-history fallback path of the
        // learned predictors (past shorter than the trained window).
        let mut corpus = Vec::new();
        for _ in 0..2 {
            corpus.push(BandwidthTrace::new(vec![100.0; 60], 1.0));
        }
        let p = GbdtPredictor::train(&corpus, 5);
        let pred = p.predict_mbps(&[100.0, 0.0], 0.0);
        assert!(pred > 50.0, "warm-up prediction collapsed to {pred}");

        let ctx = ContextGbdtPredictor::train(
            &corpus
                .iter()
                .map(|t| (t.clone(), vec![-90.0; 60]))
                .collect::<Vec<_>>(),
            &crate::asset::VideoAsset::five_g_default(),
            5,
        );
        let bound = ctx.bind(vec![-90.0; 60]);
        let pred = bound.predict_mbps(&[100.0, 0.0], 0.0);
        assert!(pred > 50.0, "bound warm-up prediction collapsed to {pred}");
    }

    #[test]
    fn oracle_reads_the_future() {
        let trace = BandwidthTrace::new(vec![10.0, 10.0, 100.0, 100.0, 100.0, 100.0], 1.0);
        let p = OraclePredictor::new(trace, 4.0);
        // Standing at t=2, the next 4 s are all 100.
        assert!((p.predict_mbps(&[10.0], 2.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn gbdt_learns_fade_persistence() {
        // Traces alternate long high/low regimes: after seeing five ~0
        // samples the next seconds stay ~0 — harmonic mean knows this too,
        // but GBDT must also learn the *high* regime persistence.
        let mut corpus = Vec::new();
        for k in 0..8 {
            let mut s = Vec::new();
            for i in 0..300 {
                let high = ((i / 20) + k) % 2 == 0;
                s.push(if high { 200.0 } else { 2.0 });
            }
            corpus.push(BandwidthTrace::new(s, 1.0));
        }
        let p = GbdtPredictor::train(&corpus, 5);
        let high_pred = p.predict_mbps(&[200.0, 200.0, 200.0, 200.0, 200.0], 0.0);
        let low_pred = p.predict_mbps(&[2.0, 2.0, 2.0, 2.0, 2.0], 0.0);
        assert!(high_pred > 100.0, "{high_pred}");
        assert!(low_pred < 40.0, "{low_pred}");
    }

    #[test]
    #[should_panic(expected = "need training traces")]
    fn gbdt_rejects_empty_corpus() {
        GbdtPredictor::train(&[], 5);
    }
}
