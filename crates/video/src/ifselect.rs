//! 5G-aware video streaming: 4G/5G interface selection (§5.4).
//!
//! The insight: mmWave 5G burns far more power than 4G at low throughput
//! (§4) *and* its throughput collapses unpredictably. So: when the
//! predicted 5G throughput sinks below the 4G average, ride out the fade
//! on 4G (stable, cheap), and return to 5G once the buffer has recovered
//! past a threshold (10 s). Switching costs a real delay (the NSA 4G↔5G
//! promotion, §4.2), which the paper emulates with `tc` — and so do we.

use crate::abr::{Abr, AbrContext};
use crate::asset::VideoAsset;
use crate::player::{ChunkRecord, PlayerConfig, SessionResult};
use fiveg_power::datamodel::{DataPowerModel, NetworkKind};
use fiveg_radio::band::Direction;
use fiveg_radio::ue::UeModel;
use fiveg_simcore::stats::harmonic_mean_positive;
use fiveg_simcore::{faults, recovery};
use fiveg_transport::shaper::BandwidthTrace;

/// Interface-selection policy configuration.
#[derive(Debug, Clone, Copy)]
pub struct IfSelectConfig {
    /// Enable the 5G-aware policy ("5G-only MPC" when false).
    pub enabled: bool,
    /// Switch to 4G when predicted 5G throughput falls below this (the 4G
    /// corpus average).
    pub to_4g_below_mbps: f64,
    /// Return to 5G once the buffer exceeds this (paper: empirically 10 s).
    pub return_buffer_s: f64,
    /// 4G↔5G switch delay, seconds (0 for the "no overhead" variant).
    pub switch_delay_s: f64,
    /// Stall-triggered failover (fault plane only): a chunk that stalls
    /// playback longer than this while on 5G forces an immediate switch to
    /// 4G, without waiting for the throughput history to sink.
    pub failover_stall_s: f64,
}

impl IfSelectConfig {
    /// Always-5G baseline.
    pub fn five_g_only() -> Self {
        IfSelectConfig {
            enabled: false,
            to_4g_below_mbps: 25.0,
            return_buffer_s: 10.0,
            switch_delay_s: 1.5,
            failover_stall_s: 1.0,
        }
    }

    /// The 5G-aware policy with realistic switch overhead.
    pub fn aware(to_4g_below_mbps: f64) -> Self {
        IfSelectConfig {
            enabled: true,
            to_4g_below_mbps,
            return_buffer_s: 10.0,
            switch_delay_s: 1.5,
            failover_stall_s: 1.0,
        }
    }

    /// The idealized no-overhead variant.
    pub fn aware_no_overhead(to_4g_below_mbps: f64) -> Self {
        IfSelectConfig {
            switch_delay_s: 0.0,
            ..Self::aware(to_4g_below_mbps)
        }
    }
}

/// The leave-5G trigger: true when the stall-tolerant harmonic mean of
/// the recent 5G throughput window sinks below `threshold_mbps`.
///
/// Stall samples (zero or negative throughput, e.g. a chaos-shaped
/// outage recorded as a dead chunk) are excluded from the window: a
/// single zero used to collapse the plain harmonic mean to 0 and force a
/// spurious 5G→4G failover even when every real measurement was healthy.
/// A window with no positive sample at all triggers the switch — there
/// is no evidence the 5G leg still carries traffic.
pub fn should_leave_5g(recent_5g_mbps: &[f64], threshold_mbps: f64) -> bool {
    let hm = harmonic_mean_positive(recent_5g_mbps);
    !hm.is_finite() || hm < threshold_mbps
}

/// Result of an interface-selected session.
#[derive(Debug, Clone)]
pub struct IfSelectResult {
    /// The streaming session outcome.
    pub session: SessionResult,
    /// Fraction of chunks fetched over 5G.
    pub on_5g_fraction: f64,
    /// Radio energy over the session, joules.
    pub energy_j: f64,
    /// Number of interface switches.
    pub iface_switches: usize,
}

/// Streams `asset` with ABR `abr`, switching between a 5G and a 4G link.
pub fn stream_with_selection(
    asset: &VideoAsset,
    trace_5g: &BandwidthTrace,
    trace_4g: &BandwidthTrace,
    abr: &mut dyn Abr,
    cfg: &IfSelectConfig,
    player: &PlayerConfig,
) -> IfSelectResult {
    let n_chunks = asset.n_chunks();
    let mut wall = 0.0f64;
    let mut buffer_s = 0.0f64;
    let mut past_tput: Vec<f64> = Vec::new();
    let mut past_5g: Vec<f64> = Vec::new();
    let mut last_track = 0usize;
    let mut on_5g = true;
    let mut chunks: Vec<ChunkRecord> = Vec::new();
    let mut chunk_iface_5g: Vec<bool> = Vec::new();
    let mut stall_total = 0.0;
    let mut startup = 0.0;
    let mut switches = 0usize;
    let mut iface_switches = 0usize;
    let mut qoe = 0.0;
    let mut prev_q: Option<f64> = None;
    let mut energy_mj = 0.0;
    let ue = UeModel::GalaxyS20Ultra;
    let p5 = DataPowerModel::lookup(ue, NetworkKind::MmWave);
    let p4 = DataPowerModel::lookup(ue, NetworkKind::Lte);

    for index in 0..n_chunks {
        // --- Interface policy. ---
        if cfg.enabled {
            if on_5g && past_5g.len() >= 3 {
                let recent: Vec<f64> = past_5g.iter().rev().take(5).cloned().collect();
                if should_leave_5g(&recent, cfg.to_4g_below_mbps) {
                    on_5g = false;
                    iface_switches += 1;
                    // The switch stalls playback if the buffer can't cover it.
                    let d = cfg.switch_delay_s;
                    stall_total += (d - buffer_s).max(0.0);
                    buffer_s = (buffer_s - d).max(0.0);
                    wall += d;
                    energy_mj += p4.power_mw(Direction::Downlink, 0.0) * d;
                }
            } else if !on_5g && buffer_s > cfg.return_buffer_s {
                on_5g = true;
                iface_switches += 1;
                let d = cfg.switch_delay_s;
                stall_total += (d - buffer_s).max(0.0);
                buffer_s = (buffer_s - d).max(0.0);
                wall += d;
                energy_mj += p5.power_mw(Direction::Downlink, 0.0) * d;
            }
        }

        let ctx = AbrContext {
            asset,
            buffer_s,
            last_track,
            past_tput_mbps: &past_tput,
            chunks_remaining: n_chunks - index,
            wall_t_s: wall,
        };
        let track = abr.choose(&ctx).min(asset.n_tracks() - 1);
        let bytes = asset.chunk_bytes(track);
        let trace = if on_5g { trace_5g } else { trace_4g };
        let dl = trace.transfer_time_s(bytes, wall);
        let dl = if dl.is_finite() { dl } else { 1e6 };

        let stall = (dl - buffer_s).max(0.0);
        if index == 0 {
            startup = dl;
        } else {
            stall_total += stall;
        }
        buffer_s = (buffer_s - dl).max(0.0) + asset.chunk_len_s;
        wall += dl;

        let tput = if dl > 0.0 {
            bytes * 8.0 / 1e6 / dl
        } else {
            f64::INFINITY
        };
        // Radio energy: active download at `tput` over `dl` seconds.
        let model = if on_5g { &p5 } else { &p4 };
        energy_mj += model.power_mw(Direction::Downlink, tput.min(1e4)) * dl;

        if buffer_s > player.max_buffer_s {
            let wait = buffer_s - player.max_buffer_s;
            wall += wait;
            buffer_s = player.max_buffer_s;
            // Connected-idle power while paced.
            energy_mj += model.power_mw(Direction::Downlink, 0.0) * wait;
        }

        past_tput.push(tput);
        if on_5g {
            past_5g.push(tput);
        }
        if index > 0 && track != last_track {
            switches += 1;
        }
        let q = asset.norm_bitrate(track);
        qoe += q;
        if index > 0 {
            qoe -= player.rebuf_penalty * stall;
        }
        if let Some(pq) = prev_q {
            qoe -= player.smooth_penalty * (q - pq).abs();
        }
        prev_q = Some(q);
        chunks.push(ChunkRecord {
            index,
            track,
            bitrate_mbps: asset.bitrates_mbps[track],
            start_s: wall - dl,
            download_s: dl,
            tput_mbps: tput,
            stall_s: if index == 0 { 0.0 } else { stall },
        });
        chunk_iface_5g.push(on_5g);
        last_track = track;

        // Stall-triggered failover (fault plane only): a fault-shaped 5G
        // collapse that already stalled playback doesn't wait for the
        // harmonic-mean history to sink — fail over to 4G now. A fault
        // window must cover the download (a purely natural stall never
        // fails over, so windowless scenarios stay bit-identical).
        if faults::enabled()
            && cfg.enabled
            && on_5g
            && index > 0
            && stall > cfg.failover_stall_s
            && (crate::player::link_faulted(wall - dl) || crate::player::link_faulted(wall))
        {
            on_5g = false;
            iface_switches += 1;
            let d = cfg.switch_delay_s;
            stall_total += (d - buffer_s).max(0.0);
            buffer_s = (buffer_s - d).max(0.0);
            wall += d;
            energy_mj += p4.power_mw(Direction::Downlink, 0.0) * d;
            recovery::record(
                recovery::RecoveryKind::IfaceFailover,
                wall,
                cfg.failover_stall_s,
                stall,
                || format!("chunk {index}: stalled {stall:.2}s on 5G, failing over to 4G"),
            );
        }
    }

    let avg_norm = chunks
        .iter()
        .map(|c| c.bitrate_mbps / asset.top_bitrate())
        .sum::<f64>()
        / chunks.len().max(1) as f64;
    let on_5g_fraction =
        chunk_iface_5g.iter().filter(|&&x| x).count() as f64 / chunk_iface_5g.len().max(1) as f64;

    IfSelectResult {
        session: SessionResult {
            avg_norm_bitrate: avg_norm,
            stall_time_s: stall_total,
            play_time_s: asset.duration_s,
            startup_s: startup,
            switches,
            qoe,
            chunks,
        },
        on_5g_fraction,
        energy_j: energy_mj / 1e3,
        iface_switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abr::Mpc;

    /// A 5G trace with a long mid-stream fade (weak but not dead, so the
    /// player keeps making per-chunk decisions inside it), and a steady 4G
    /// trace.
    fn fade_traces() -> (BandwidthTrace, BandwidthTrace) {
        let mut s5 = vec![400.0; 60];
        s5.extend(vec![8.0; 150]);
        s5.extend(vec![400.0; 290]);
        let s4 = vec![40.0; 500];
        (BandwidthTrace::new(s5, 1.0), BandwidthTrace::new(s4, 1.0))
    }

    #[test]
    fn aware_policy_reduces_stalls_through_a_fade() {
        let asset = VideoAsset::five_g_default();
        let (t5, t4) = fade_traces();
        let only = stream_with_selection(
            &asset,
            &t5,
            &t4,
            &mut Mpc::fast(),
            &IfSelectConfig::five_g_only(),
            &PlayerConfig::default(),
        );
        let aware = stream_with_selection(
            &asset,
            &t5,
            &t4,
            &mut Mpc::fast(),
            &IfSelectConfig::aware(40.0),
            &PlayerConfig::default(),
        );
        assert!(
            aware.session.stall_time_s < only.session.stall_time_s,
            "aware {} vs only {}",
            aware.session.stall_time_s,
            only.session.stall_time_s
        );
        assert!(aware.iface_switches >= 2, "switched out and back");
        assert!(aware.on_5g_fraction > 0.2 && aware.on_5g_fraction < 1.0);
    }

    #[test]
    fn aware_policy_saves_energy() {
        let asset = VideoAsset::five_g_default();
        let (t5, t4) = fade_traces();
        let only = stream_with_selection(
            &asset,
            &t5,
            &t4,
            &mut Mpc::fast(),
            &IfSelectConfig::five_g_only(),
            &PlayerConfig::default(),
        );
        let aware = stream_with_selection(
            &asset,
            &t5,
            &t4,
            &mut Mpc::fast(),
            &IfSelectConfig::aware(40.0),
            &PlayerConfig::default(),
        );
        assert!(
            aware.energy_j < only.energy_j,
            "aware {} vs only {}",
            aware.energy_j,
            only.energy_j
        );
    }

    #[test]
    fn no_overhead_variant_stalls_no_more_than_realistic() {
        let asset = VideoAsset::five_g_default();
        let (t5, t4) = fade_traces();
        let real = stream_with_selection(
            &asset,
            &t5,
            &t4,
            &mut Mpc::fast(),
            &IfSelectConfig::aware(40.0),
            &PlayerConfig::default(),
        );
        let ideal = stream_with_selection(
            &asset,
            &t5,
            &t4,
            &mut Mpc::fast(),
            &IfSelectConfig::aware_no_overhead(40.0),
            &PlayerConfig::default(),
        );
        assert!(ideal.session.stall_time_s <= real.session.stall_time_s + 1e-9);
    }

    #[test]
    fn one_stall_sample_does_not_force_failover() {
        // Regression: a single zero-throughput sample (a stall under
        // chaos) collapsed the harmonic mean to 0 and forced a spurious
        // 5G→4G switch despite four healthy 400 Mbps measurements.
        assert!(!should_leave_5g(&[400.0, 400.0, 0.0, 400.0, 400.0], 25.0));
        // A genuinely sunk window still triggers the switch...
        assert!(should_leave_5g(&[5.0, 4.0, 6.0, 5.0, 5.0], 25.0));
        // ...and so does a window with no positive sample at all.
        assert!(should_leave_5g(&[0.0, 0.0, 0.0], 25.0));
        assert!(should_leave_5g(&[], 25.0));
    }

    #[test]
    fn disabled_policy_never_leaves_5g() {
        let asset = VideoAsset::five_g_default();
        let (t5, t4) = fade_traces();
        let r = stream_with_selection(
            &asset,
            &t5,
            &t4,
            &mut Mpc::fast(),
            &IfSelectConfig::five_g_only(),
            &PlayerConfig::default(),
        );
        assert_eq!(r.on_5g_fraction, 1.0);
        assert_eq!(r.iface_switches, 0);
    }
}
