//! The Pensieve stand-in: a learned ABR policy.
//!
//! Pensieve (Mao et al., SIGCOMM'17) trains a neural policy on network
//! traces. Our substitute trains the same *kind* of policy — a small MLP
//! over normalized player state — by imitating an oracle-MPC teacher on a
//! 4G-statistics corpus. That preserves the paper's finding (§5.2): the
//! learned policy is excellent under the dynamics it trained on and badly
//! miscalibrated under mmWave's deep fades, where it "sometimes chooses
//! the highest bitrate chunk only to regret it".

use crate::abr::{Abr, AbrContext, Mpc};
use crate::asset::VideoAsset;
use crate::player::{stream, PlayerConfig};
use crate::predictor::OraclePredictor;
use fiveg_mlkit::mlp::Mlp;
use fiveg_simcore::RngStream;
use fiveg_transport::shaper::BandwidthTrace;

/// Number of input features.
pub const N_FEATURES: usize = 6;

/// Extracts the normalized feature vector Pensieve sees.
pub fn features(ctx: &AbrContext) -> Vec<f64> {
    let top = ctx.asset.top_bitrate();
    let finite = |x: f64| if x.is_finite() { x } else { 4.0 * top };
    let last = ctx
        .past_tput_mbps
        .last()
        .copied()
        .map(finite)
        .unwrap_or(0.0);
    let start = ctx.past_tput_mbps.len().saturating_sub(5);
    // Stall samples (zero or negative throughput, e.g. a chaos-shaped
    // outage) are dropped from the window instead of being floored: a
    // floor near zero still collapses the harmonic mean — the min of the
    // window dominates it — and zeroes the policy's throughput signal.
    let window: Vec<f64> = ctx.past_tput_mbps[start..]
        .iter()
        .map(|&x| finite(x))
        .filter(|&x| x > 0.0)
        .collect();
    let hm = if window.is_empty() {
        0.0
    } else {
        fiveg_simcore::stats::harmonic_mean_positive(&window)
    };
    let min5 = window.iter().cloned().fold(f64::INFINITY, f64::min);
    vec![
        (last / top).min(4.0),
        (hm / top).min(4.0),
        (if min5.is_finite() { min5 } else { 0.0 } / top).min(4.0),
        ctx.buffer_s / 30.0,
        ctx.last_track as f64 / (ctx.asset.n_tracks() - 1).max(1) as f64,
        (ctx.chunks_remaining as f64 / 60.0).min(2.0),
    ]
}

/// A trained Pensieve policy.
pub struct PensieveAbr {
    net: Mlp,
}

impl PensieveAbr {
    /// Wraps a trained network.
    ///
    /// # Panics
    /// Panics if the network shape doesn't match the feature contract.
    pub fn new(net: Mlp) -> Self {
        assert_eq!(net.input_dim(), N_FEATURES, "feature shape mismatch");
        PensieveAbr { net }
    }
}

impl Abr for PensieveAbr {
    fn name(&self) -> &'static str {
        "Pensieve"
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        self.net.act(&features(ctx)).min(ctx.asset.n_tracks() - 1)
    }
}

/// An ABR wrapper that records (features, action) demonstrations.
struct Recorder<'a> {
    teacher: Mpc,
    demos: &'a mut Vec<(Vec<f64>, usize)>,
}

impl Abr for Recorder<'_> {
    fn name(&self) -> &'static str {
        "recorder"
    }
    fn choose(&mut self, ctx: &AbrContext) -> usize {
        let action = self.teacher.choose(ctx);
        self.demos.push((features(ctx), action));
        action
    }
}

/// Trains the policy by imitating oracle-MPC on `corpus` (the paper's
/// Pensieve trains on 4G-statistics traces; we verify 5G-trained variants
/// behave differently in the ablation bench).
pub fn train(corpus: &[BandwidthTrace], asset: &VideoAsset, seed: u64) -> PensieveAbr {
    assert!(!corpus.is_empty(), "need training traces");
    let mut demos: Vec<(Vec<f64>, usize)> = Vec::new();
    for trace in corpus {
        let teacher = Mpc::with_predictor(
            Box::new(OraclePredictor::new(trace.clone(), 8.0)),
            false,
            "oracle-teacher",
        );
        let mut rec = Recorder {
            teacher,
            demos: &mut demos,
        };
        stream(asset, trace, &mut rec, &PlayerConfig::default(), 0.0);
    }
    let n_tracks = asset.n_tracks();
    // The teacher's action distribution is heavily skewed toward the top
    // track on well-provisioned traces; oversample minority actions so the
    // policy also learns *when to back off* (capped at 4×).
    let mut counts = vec![0usize; n_tracks];
    for &(_, a) in &demos {
        counts[a] += 1;
    }
    let max_count = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut inputs: Vec<Vec<f64>> = Vec::new();
    let mut targets: Vec<Vec<f64>> = Vec::new();
    for (features, a) in &demos {
        let dup = (max_count / counts[*a].max(1)).clamp(1, 8);
        for _ in 0..dup {
            inputs.push(features.clone());
            let mut t = vec![0.0; n_tracks];
            t[*a] = 1.0;
            targets.push(t);
        }
    }
    let mut rng = RngStream::new(seed, "pensieve");
    let mut net = Mlp::new(&[N_FEATURES, 48, 24, n_tracks], &mut rng);
    net.train(&inputs, &targets, 40, 0.008, &mut rng);
    PensieveAbr::new(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_corpus(n: usize, mean: f64) -> Vec<BandwidthTrace> {
        let mut out = Vec::new();
        for k in 0..n {
            let mut rng = RngStream::new(k as u64, "corpus");
            let mut v = mean;
            let samples: Vec<f64> = (0..300)
                .map(|_| {
                    v = (v + rng.normal(0.0, mean * 0.08)).clamp(mean * 0.3, mean * 1.8);
                    v
                })
                .collect();
            out.push(BandwidthTrace::new(samples, 1.0));
        }
        out
    }

    #[test]
    fn features_are_bounded_and_shaped() {
        let asset = VideoAsset::five_g_default();
        let past = vec![f64::INFINITY, 200.0, 3.0];
        let ctx = AbrContext {
            asset: &asset,
            buffer_s: 15.0,
            last_track: 3,
            past_tput_mbps: &past,
            chunks_remaining: 30,
            wall_t_s: 0.0,
        };
        let f = features(&ctx);
        assert_eq!(f.len(), N_FEATURES);
        assert!(f.iter().all(|x| x.is_finite() && *x >= 0.0 && *x <= 4.0));
    }

    #[test]
    fn one_stall_sample_does_not_zero_the_throughput_signal() {
        // Regression: a zero-throughput sample (stall under chaos) in the
        // 5-chunk window used to collapse the harmonic-mean feature to ~0
        // even when the other four chunks measured 800 Mbps.
        let asset = VideoAsset::five_g_default();
        let past = vec![800.0, 800.0, 800.0, 800.0, 0.0];
        let ctx = AbrContext {
            asset: &asset,
            buffer_s: 15.0,
            last_track: 3,
            past_tput_mbps: &past,
            chunks_remaining: 30,
            wall_t_s: 0.0,
        };
        let f = features(&ctx);
        assert!(
            f[1] >= 1.0,
            "harmonic-mean feature collapsed to {} despite healthy history",
            f[1]
        );
        // An all-stall window carries no signal: the feature reads 0.
        let dead = vec![0.0; 5];
        let ctx_dead = AbrContext {
            past_tput_mbps: &dead,
            ..ctx
        };
        assert_eq!(features(&ctx_dead)[1], 0.0);
    }

    #[test]
    fn trained_policy_streams_well_in_distribution() {
        let asset = VideoAsset::four_g_default();
        let corpus = smooth_corpus(16, 25.0);
        let policy = train(&corpus, &asset, 7);
        let mut abr = policy;
        let eval = smooth_corpus(20, 25.0); // same statistics, fresh draws
        let mut stall = 0.0;
        let mut bitrate = 0.0;
        for trace in &eval[16..] {
            let r = stream(&asset, trace, &mut abr, &PlayerConfig::default(), 0.0);
            stall += r.stall_pct();
            bitrate += r.avg_norm_bitrate;
        }
        let n = (eval.len() - 16) as f64;
        assert!(stall / n < 5.0, "in-distribution stall {}", stall / n);
        assert!(bitrate / n > 0.5, "in-distribution bitrate {}", bitrate / n);
    }

    #[test]
    fn policy_picks_high_tracks_when_history_is_rich() {
        let asset = VideoAsset::four_g_default();
        let corpus = smooth_corpus(8, 25.0);
        let mut policy = train(&corpus, &asset, 8);
        let past = vec![30.0; 6];
        let ctx = AbrContext {
            asset: &asset,
            buffer_s: 25.0,
            last_track: 4,
            past_tput_mbps: &past,
            chunks_remaining: 30,
            wall_t_s: 0.0,
        };
        assert!(policy.choose(&ctx) >= 3, "rich history → high track");
    }

    #[test]
    #[should_panic(expected = "need training traces")]
    fn train_rejects_empty_corpus() {
        train(&[], &VideoAsset::four_g_default(), 1);
    }
}
