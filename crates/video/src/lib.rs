//! DASH video streaming over 5G/4G (§5 of the paper).
//!
//! * [`asset`] — encoding ladders: 6 tracks, adjacent-bitrate ratio ≈1.5,
//!   top track matched to the trace corpus median (160 Mbps on 5G,
//!   20 Mbps on 4G),
//! * [`player`] — a chunk-level DASH player over a trace-driven link:
//!   buffer dynamics, stalls, startup, switches, and the QoE reward,
//! * [`abr`] — the seven ABR algorithms of §5.1: BBA, BOLA, RB, FESTIVE,
//!   FastMPC, RobustMPC, and a Pensieve stand-in ([`pensieve`]),
//! * [`predictor`] — throughput predictors for MPC (§5.3): harmonic mean,
//!   GBDT (Lumos5G-style), and the ground-truth oracle,
//! * [`ifselect`] — §5.4's 5G-aware streaming: drop to 4G when predicted
//!   5G throughput sinks below the 4G average, return to 5G once the
//!   buffer recovers; accounts for the 4G↔5G switch delay and computes
//!   radio energy via the power models.

pub mod abr;
pub mod asset;
pub mod ifselect;
pub mod pensieve;
pub mod player;
pub mod predictor;

pub use abr::{Abr, AbrAlgo};
pub use asset::VideoAsset;
pub use player::{PlayerConfig, SessionResult};
pub use predictor::ThroughputPredictor;
