//! The chunk-level DASH player over a trace-driven link.
//!
//! Mirrors dash.js behaviour at the granularity that matters to ABR
//! research: sequential chunk downloads over the shaped link, a playback
//! buffer capped at 30 s (downloads pause when full), stalls when the
//! buffer drains, and the standard QoE decomposition (normalized bitrate,
//! rebuffering, smoothness).

use crate::abr::{Abr, AbrContext};
use crate::asset::VideoAsset;
use fiveg_simcore::{faults, guard, recovery, telemetry};
use fiveg_transport::shaper::BandwidthTrace;

/// Player configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlayerConfig {
    /// Maximum buffer level in seconds; downloads pause above it.
    pub max_buffer_s: f64,
    /// Rebuffering penalty per second, in units of normalized bitrate
    /// (the QoE weight µ).
    pub rebuf_penalty: f64,
    /// Smoothness penalty per unit change of normalized bitrate.
    pub smooth_penalty: f64,
    /// Segment-retry trigger (fault plane only): once the buffer has
    /// drained and the stall has lasted this long, the player abandons the
    /// in-flight chunk and refetches it at the lowest track.
    pub panic_stall_s: f64,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        PlayerConfig {
            max_buffer_s: 30.0,
            rebuf_penalty: 1.0,
            smooth_penalty: 1.0,
            panic_stall_s: 4.0,
        }
    }
}

/// Per-chunk download record.
#[derive(Debug, Clone, Copy)]
pub struct ChunkRecord {
    /// Chunk index.
    pub index: usize,
    /// Chosen track.
    pub track: usize,
    /// Track bitrate, Mbps.
    pub bitrate_mbps: f64,
    /// Wall-clock start of the download, s.
    pub start_s: f64,
    /// Download duration, s.
    pub download_s: f64,
    /// Measured delivery throughput, Mbps.
    pub tput_mbps: f64,
    /// Stall time incurred while this chunk downloaded, s.
    pub stall_s: f64,
}

/// Outcome of one streaming session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Mean normalized bitrate across chunks (Fig 17's y-axis).
    pub avg_norm_bitrate: f64,
    /// Total stall (rebuffering) time, s.
    pub stall_time_s: f64,
    /// Total playback time, s.
    pub play_time_s: f64,
    /// Startup delay (first-chunk download), s — not counted as stall.
    pub startup_s: f64,
    /// Number of track switches.
    pub switches: usize,
    /// QoE reward: Σ q − µ·stall − Σ|Δq| with q the normalized bitrate.
    pub qoe: f64,
    /// Per-chunk records.
    pub chunks: Vec<ChunkRecord>,
}

impl SessionResult {
    /// Stall time as a percentage of playback time (Fig 17's x-axis).
    pub fn stall_pct(&self) -> f64 {
        if self.play_time_s <= 0.0 {
            return 0.0;
        }
        100.0 * self.stall_time_s / self.play_time_s
    }
}

/// True when a fault window that can disturb the delivery path covers
/// trace-time `t` — the trigger condition for the panic recoveries. Keying
/// the *behaviour* on fault windows (not merely an installed plane) keeps
/// a windowless scenario like `quiet` bit-identical to no plane at all:
/// natural stalls never trip the recovery paths.
pub(crate) fn link_faulted(t: f64) -> bool {
    use fiveg_simcore::faults::FaultKind;
    faults::is_active(FaultKind::StallWindow, t)
        || faults::is_active(FaultKind::BlockageStorm, t)
        || faults::is_active(FaultKind::LossBurst, t)
        || faults::is_active(FaultKind::RttSpike, t)
}

/// Streams `asset` over `trace` under `abr`, starting the trace at
/// `trace_offset_s`.
pub fn stream(
    asset: &VideoAsset,
    trace: &BandwidthTrace,
    abr: &mut dyn Abr,
    cfg: &PlayerConfig,
    trace_offset_s: f64,
) -> SessionResult {
    let n_chunks = asset.n_chunks();
    let mut wall = trace_offset_s;
    let mut buffer_s = 0.0f64;
    let mut past_tput: Vec<f64> = Vec::new();
    let mut last_track = 0usize;
    let mut chunks: Vec<ChunkRecord> = Vec::new();
    let mut stall_total = 0.0;
    let mut startup = 0.0;
    let mut switches = 0usize;
    let mut qoe = 0.0;
    let mut prev_q: Option<f64> = None;

    telemetry::clock(trace_offset_s);
    let _session_span = telemetry::span("video/session");
    for index in 0..n_chunks {
        let ctx = AbrContext {
            asset,
            buffer_s,
            last_track,
            past_tput_mbps: &past_tput,
            chunks_remaining: n_chunks - index,
            wall_t_s: wall,
        };
        let mut track = abr.choose(&ctx).min(asset.n_tracks() - 1);
        let mut bytes = asset.chunk_bytes(track);
        let mut dl = trace.transfer_time_s(bytes, wall);
        if !dl.is_finite() {
            dl = 1e6;
        }

        // Segment retry with bitrate panic-down (fault plane only): when a
        // mid-session chunk would stall playback past the panic threshold,
        // dash.js-style players abandon the request and refetch the segment
        // at the lowest track. The retry starts where the abandon happened,
        // so the trace is consulted at the same deterministic times.
        if faults::enabled() && index > 0 && track > 0 {
            let abandon_after = buffer_s + cfg.panic_stall_s;
            if dl > abandon_after && (link_faulted(wall) || link_faulted(wall + abandon_after)) {
                let retry_bytes = asset.chunk_bytes(0);
                let mut retry_dl = trace.transfer_time_s(retry_bytes, wall + abandon_after);
                if !retry_dl.is_finite() {
                    retry_dl = 1e6;
                }
                let total_dl = abandon_after + retry_dl;
                let old_track = track;
                let stall_after = (total_dl - buffer_s).max(0.0);
                recovery::record(
                    recovery::RecoveryKind::SegmentRetry,
                    wall + abandon_after,
                    cfg.panic_stall_s,
                    stall_after,
                    || format!("chunk {index}: abandoned track {old_track}"),
                );
                recovery::record(
                    recovery::RecoveryKind::BitratePanic,
                    wall + abandon_after,
                    0.0,
                    0.0,
                    || format!("chunk {index}: track {old_track} -> 0"),
                );
                track = 0;
                bytes = retry_bytes;
                dl = total_dl;
            }
        }

        // Buffer drains while downloading.
        let stall = (dl - buffer_s).max(0.0);
        if index == 0 {
            startup = dl;
        } else {
            stall_total += stall;
            if stall > 0.0 {
                telemetry::count("video/stall", 1);
                telemetry::observe("video/stall_s", stall);
            }
        }
        buffer_s = (buffer_s - dl).max(0.0) + asset.chunk_len_s;
        wall += dl;
        telemetry::clock(wall);
        telemetry::span_closed("video/segment", wall - dl, wall);

        // Full buffer: wait before the next request.
        if buffer_s > cfg.max_buffer_s {
            let wait = buffer_s - cfg.max_buffer_s;
            wall += wait;
            buffer_s = cfg.max_buffer_s;
        }
        // The playback buffer lives in [0, cap] between requests; leaving
        // that range means the drain/refill arithmetic went wrong.
        guard::in_range(
            "video",
            "buffer-bounds",
            buffer_s,
            0.0,
            cfg.max_buffer_s,
            1e-9,
            wall,
        );

        let tput = if dl > 0.0 {
            bytes * 8.0 / 1e6 / dl
        } else {
            f64::INFINITY
        };
        past_tput.push(tput);
        if index > 0 && track != last_track {
            telemetry::count("video/bitrate_switch", 1);
            switches += 1;
        }

        let q = asset.norm_bitrate(track);
        qoe += q;
        if index > 0 {
            qoe -= cfg.rebuf_penalty * stall;
        }
        if let Some(pq) = prev_q {
            qoe -= cfg.smooth_penalty * (q - pq).abs();
        }
        prev_q = Some(q);
        if guard::enabled() {
            // Chunk download windows are sequential: this chunk starts at
            // or after the previous one finished.
            let prev_end = chunks
                .last()
                .map_or(trace_offset_s, |c| c.start_s + c.download_s);
            guard::check(
                "video",
                "chunk-order",
                wall - dl >= prev_end - 1e-9,
                wall,
                || {
                    format!(
                        "chunk {index} starts at {} before previous end {prev_end}",
                        wall - dl
                    )
                },
            );
        }
        chunks.push(ChunkRecord {
            index,
            track,
            bitrate_mbps: asset.bitrates_mbps[track],
            start_s: wall - dl,
            download_s: dl,
            tput_mbps: tput,
            stall_s: if index == 0 { 0.0 } else { stall },
        });
        last_track = track;
    }

    let avg_norm = chunks
        .iter()
        .map(|c| c.bitrate_mbps / asset.top_bitrate())
        .sum::<f64>()
        / chunks.len().max(1) as f64;

    if guard::enabled() {
        // Conservation: the per-chunk stall records partition the session's
        // stall total exactly (same additions, same order).
        let ledger: f64 = chunks.iter().map(|c| c.stall_s).sum();
        guard::check(
            "video",
            "stall-conserved",
            (ledger - stall_total).abs() <= 1e-9,
            wall,
            || format!("per-chunk stalls {ledger}s vs session total {stall_total}s"),
        );
    }

    SessionResult {
        avg_norm_bitrate: avg_norm,
        stall_time_s: stall_total,
        play_time_s: asset.duration_s,
        startup_s: startup,
        switches,
        qoe,
        chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abr::fixed_track_abr;

    fn constant_trace(mbps: f64) -> BandwidthTrace {
        BandwidthTrace::new(vec![mbps; 600], 1.0)
    }

    #[test]
    fn ample_bandwidth_never_stalls() {
        let asset = VideoAsset::five_g_default();
        let trace = constant_trace(1000.0);
        let mut abr = fixed_track_abr(5);
        let r = stream(&asset, &trace, &mut abr, &PlayerConfig::default(), 0.0);
        assert_eq!(r.stall_time_s, 0.0);
        assert_eq!(r.avg_norm_bitrate, 1.0);
        assert_eq!(r.switches, 0);
    }

    #[test]
    fn starving_bandwidth_stalls() {
        let asset = VideoAsset::five_g_default();
        // Top track is 160 Mbps; give it 80: every chunk takes 8 s for 4 s
        // of content.
        let trace = constant_trace(80.0);
        let mut abr = fixed_track_abr(5);
        let r = stream(&asset, &trace, &mut abr, &PlayerConfig::default(), 0.0);
        assert!(r.stall_time_s > 100.0, "stall {}", r.stall_time_s);
        assert!(r.stall_pct() > 40.0);
    }

    #[test]
    fn lowest_track_survives_modest_bandwidth() {
        let asset = VideoAsset::five_g_default();
        // Lowest 5G track ≈ 21 Mbps.
        let trace = constant_trace(40.0);
        let mut abr = fixed_track_abr(0);
        let r = stream(&asset, &trace, &mut abr, &PlayerConfig::default(), 0.0);
        assert_eq!(r.stall_time_s, 0.0);
        assert!(r.avg_norm_bitrate < 0.2);
    }

    #[test]
    fn startup_is_not_a_stall() {
        let asset = VideoAsset::four_g_default();
        let trace = constant_trace(40.0);
        let mut abr = fixed_track_abr(5);
        let r = stream(&asset, &trace, &mut abr, &PlayerConfig::default(), 0.0);
        assert!(r.startup_s > 0.0);
        assert_eq!(r.stall_time_s, 0.0);
    }

    #[test]
    fn buffer_cap_paces_downloads() {
        let asset = VideoAsset::four_g_default();
        let trace = constant_trace(1000.0);
        let mut abr = fixed_track_abr(0);
        let r = stream(&asset, &trace, &mut abr, &PlayerConfig::default(), 0.0);
        // With a 30 s cap and a 240 s video the last chunk must start no
        // earlier than 240 − 30 − ε seconds before… i.e. downloads take at
        // least duration − cap of wall time.
        let last = r.chunks.last().expect("non-empty");
        assert!(
            last.start_s >= asset.duration_s - PlayerConfig::default().max_buffer_s - 5.0,
            "last chunk at {}",
            last.start_s
        );
    }

    #[test]
    fn qoe_penalizes_stalls() {
        let asset = VideoAsset::five_g_default();
        let good = stream(
            &asset,
            &constant_trace(1000.0),
            &mut fixed_track_abr(5),
            &PlayerConfig::default(),
            0.0,
        );
        let bad = stream(
            &asset,
            &constant_trace(80.0),
            &mut fixed_track_abr(5),
            &PlayerConfig::default(),
            0.0,
        );
        assert!(good.qoe > bad.qoe);
    }
}
