//! The seven ABR algorithms of §5.1.
//!
//! | category          | algorithms            |
//! |-------------------|-----------------------|
//! | buffer-based      | BBA, BOLA             |
//! | throughput-based  | RB, FESTIVE           |
//! | control-theoretic | FastMPC, RobustMPC    |
//! | learning-based    | Pensieve ([`crate::pensieve`]) |

use crate::asset::VideoAsset;
use crate::predictor::{HarmonicMeanPredictor, ThroughputPredictor};

/// Everything an ABR sees when choosing the next chunk's track.
#[derive(Debug, Clone, Copy)]
pub struct AbrContext<'a> {
    /// The asset being streamed.
    pub asset: &'a VideoAsset,
    /// Current buffer level, seconds.
    pub buffer_s: f64,
    /// Track of the previous chunk.
    pub last_track: usize,
    /// Measured per-chunk throughputs, most recent last (Mbps).
    pub past_tput_mbps: &'a [f64],
    /// Chunks left to download (including this one).
    pub chunks_remaining: usize,
    /// Wall-clock time, seconds (oracle predictors key on this).
    pub wall_t_s: f64,
}

/// An adaptive-bitrate algorithm.
pub trait Abr {
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
    /// Chooses the track index for the next chunk.
    fn choose(&mut self, ctx: &AbrContext) -> usize;
}

/// The algorithm identifiers of Fig 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbrAlgo {
    /// Buffer-based BBA.
    Bba,
    /// Simple rate-based.
    Rb,
    /// BOLA.
    Bola,
    /// FastMPC (harmonic-mean predictor).
    FastMpc,
    /// Pensieve (learned policy).
    Pensieve,
    /// RobustMPC.
    RobustMpc,
    /// FESTIVE.
    Festive,
}

impl AbrAlgo {
    /// All seven, in Fig 17c order.
    pub fn all() -> [AbrAlgo; 7] {
        [
            AbrAlgo::Bba,
            AbrAlgo::Rb,
            AbrAlgo::Bola,
            AbrAlgo::FastMpc,
            AbrAlgo::Pensieve,
            AbrAlgo::RobustMpc,
            AbrAlgo::Festive,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AbrAlgo::Bba => "BBA",
            AbrAlgo::Rb => "RB",
            AbrAlgo::Bola => "BOLA",
            AbrAlgo::FastMpc => "fastMPC",
            AbrAlgo::Pensieve => "Pensieve",
            AbrAlgo::RobustMpc => "robustMPC",
            AbrAlgo::Festive => "FESTIVE",
        }
    }
}

/// Highest track whose bitrate is at most `budget_mbps`.
fn highest_affordable(asset: &VideoAsset, budget_mbps: f64) -> usize {
    let mut pick = 0;
    for (i, &b) in asset.bitrates_mbps.iter().enumerate() {
        if b <= budget_mbps {
            pick = i;
        }
    }
    pick
}

// ---------------------------------------------------------------- BBA ----

/// Buffer-Based Adaptation (Huang et al., SIGCOMM'14): a linear map from
/// buffer occupancy to bitrate between a reservoir and a cushion.
#[derive(Debug, Clone, Copy)]
pub struct Bba {
    /// Below this buffer level, pick the lowest track.
    pub reservoir_s: f64,
    /// Width of the linear region above the reservoir.
    pub cushion_s: f64,
}

impl Default for Bba {
    fn default() -> Self {
        Bba {
            reservoir_s: 5.0,
            cushion_s: 12.0,
        }
    }
}

impl Abr for Bba {
    fn name(&self) -> &'static str {
        "BBA"
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        let min = ctx.asset.bitrates_mbps[0];
        let max = ctx.asset.top_bitrate();
        if ctx.buffer_s <= self.reservoir_s {
            return 0;
        }
        if ctx.buffer_s >= self.reservoir_s + self.cushion_s {
            return ctx.asset.n_tracks() - 1;
        }
        let f = (ctx.buffer_s - self.reservoir_s) / self.cushion_s;
        highest_affordable(ctx.asset, min + f * (max - min))
    }
}

// --------------------------------------------------------------- BOLA ----

/// BOLA (Spiteri et al., INFOCOM'16): Lyapunov-drift-plus-penalty control
/// on the buffer, maximizing a log utility per byte.
#[derive(Debug, Clone, Copy)]
pub struct Bola {
    /// Utility weight γp.
    pub gamma_p: f64,
    /// Target (maximum) buffer in chunks for the V parameter.
    pub buffer_target_chunks: f64,
}

impl Default for Bola {
    fn default() -> Self {
        Bola {
            gamma_p: 5.0,
            buffer_target_chunks: 7.0,
        }
    }
}

impl Abr for Bola {
    fn name(&self) -> &'static str {
        "BOLA"
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        let sizes = &ctx.asset.bitrates_mbps;
        let s_min = sizes[0];
        let utilities: Vec<f64> = sizes.iter().map(|s| (s / s_min).ln()).collect();
        let u_max = *utilities.last().expect("non-empty");
        let v = (self.buffer_target_chunks - 1.0) / (u_max + self.gamma_p);
        let q_chunks = ctx.buffer_s / ctx.asset.chunk_len_s;
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (m, &s) in sizes.iter().enumerate() {
            let score = (v * (utilities[m] + self.gamma_p) - q_chunks) / s;
            if score > best_score {
                best_score = score;
                best = m;
            }
        }
        best
    }
}

// ----------------------------------------------------------------- RB ----

/// Simple rate-based: highest track under a safety factor times the last
/// measured throughput.
#[derive(Debug, Clone, Copy)]
pub struct RateBased {
    /// Fraction of the estimate considered safe to spend.
    pub safety: f64,
}

impl Default for RateBased {
    fn default() -> Self {
        RateBased { safety: 0.9 }
    }
}

impl Abr for RateBased {
    fn name(&self) -> &'static str {
        "RB"
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        let est = ctx
            .past_tput_mbps
            .last()
            .copied()
            .filter(|x| x.is_finite())
            .unwrap_or(ctx.asset.bitrates_mbps[0]);
        highest_affordable(ctx.asset, est * self.safety)
    }
}

// ------------------------------------------------------------- FESTIVE ----

/// FESTIVE (Jiang et al., CoNEXT'12): harmonic-mean estimation with
/// gradual, stability-biased switching (one level at a time; upswitch only
/// after several consistent chunks).
#[derive(Debug, Clone)]
pub struct Festive {
    predictor: HarmonicMeanPredictor,
    up_streak: usize,
    /// Chunks of consistent headroom required before stepping up.
    pub up_patience: usize,
}

impl Default for Festive {
    fn default() -> Self {
        Festive {
            predictor: HarmonicMeanPredictor::default(),
            up_streak: 0,
            up_patience: 2,
        }
    }
}

impl Abr for Festive {
    fn name(&self) -> &'static str {
        "FESTIVE"
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        let est = self
            .predictor
            .predict_mbps(ctx.past_tput_mbps, ctx.wall_t_s);
        let target = highest_affordable(ctx.asset, est / 1.2);
        let cur = ctx.last_track;
        if ctx.past_tput_mbps.is_empty() {
            return 0;
        }
        if target > cur {
            self.up_streak += 1;
            if self.up_streak >= self.up_patience {
                self.up_streak = 0;
                return cur + 1;
            }
            cur
        } else if target < cur {
            self.up_streak = 0;
            cur - 1
        } else {
            self.up_streak = 0;
            cur
        }
    }
}

// ---------------------------------------------------------------- MPC ----

/// Model Predictive Control (Yin et al., SIGCOMM'15): pick the first step
/// of the track sequence maximizing predicted QoE over a lookahead window.
/// `robust` discounts the prediction by the recent maximum error
/// (RobustMPC); otherwise the raw prediction is trusted (FastMPC).
pub struct Mpc {
    /// Throughput predictor.
    pub predictor: Box<dyn ThroughputPredictor>,
    /// Lookahead depth in chunks.
    pub lookahead: usize,
    /// RobustMPC's error discounting.
    pub robust: bool,
    /// Rebuffer penalty (µ) in normalized-bitrate units.
    pub rebuf_penalty: f64,
    /// Smoothness penalty.
    pub smooth_penalty: f64,
    /// (prediction, actual) pairs for the robust error bound.
    history: Vec<(f64, f64)>,
    pending_prediction: Option<f64>,
    name: &'static str,
    /// Reused per-decision buffers (per-track download times/qualities and
    /// the odometer sequence) — one chunk decision per call, so keeping
    /// them on the struct drops all steady-state allocation from the
    /// per-chunk hot path.
    scratch_dl: Vec<f64>,
    scratch_quality: Vec<f64>,
    scratch_seq: Vec<usize>,
}

impl Mpc {
    /// FastMPC with its default harmonic-mean predictor.
    pub fn fast() -> Self {
        Mpc::with_predictor(Box::new(HarmonicMeanPredictor::default()), false, "fastMPC")
    }

    /// RobustMPC with its default harmonic-mean predictor.
    pub fn robust() -> Self {
        Mpc::with_predictor(
            Box::new(HarmonicMeanPredictor::default()),
            true,
            "robustMPC",
        )
    }

    /// An MPC with an arbitrary predictor (Fig 18a plugs in GBDT and the
    /// oracle here).
    pub fn with_predictor(
        predictor: Box<dyn ThroughputPredictor>,
        robust: bool,
        name: &'static str,
    ) -> Self {
        Mpc {
            predictor,
            lookahead: 5,
            robust,
            rebuf_penalty: 1.0,
            smooth_penalty: 1.0,
            history: Vec::new(),
            pending_prediction: None,
            name,
            scratch_dl: Vec::new(),
            scratch_quality: Vec::new(),
            scratch_seq: Vec::new(),
        }
    }

    /// The robust discount: 1/(1 + max recent relative error).
    fn robust_discount(&self) -> f64 {
        if !self.robust {
            return 1.0;
        }
        let max_err = self
            .history
            .iter()
            .rev()
            .take(5)
            .map(|&(pred, actual)| ((pred - actual) / actual.max(0.01)).max(0.0))
            .fold(0.0, f64::max);
        1.0 / (1.0 + max_err)
    }

    /// Simulated QoE of playing `seq` starting from the context state,
    /// against per-track download times and qualities precomputed by
    /// [`Mpc::choose`] (they depend only on the prediction, not the
    /// sequence, and hoisting them out of the 6^depth-sequence search is
    /// most of the search's cost). The arithmetic per step is exactly the
    /// inline computation's, so scores are bit-identical.
    fn eval_sequence(&self, ctx: &AbrContext, dl_s: &[f64], quality: &[f64], seq: &[usize]) -> f64 {
        let asset = ctx.asset;
        let mut buffer = ctx.buffer_s;
        let mut qoe = 0.0;
        let mut prev_q = quality[ctx.last_track];
        let first = ctx.past_tput_mbps.is_empty();
        for &track in seq {
            let dl = dl_s[track];
            let stall = (dl - buffer).max(0.0);
            buffer = (buffer - dl).max(0.0) + asset.chunk_len_s;
            buffer = buffer.min(30.0);
            let q = quality[track];
            qoe += q - self.smooth_penalty * (q - prev_q).abs();
            if !first {
                qoe -= self.rebuf_penalty * stall;
            }
            prev_q = q;
        }
        qoe
    }
}

impl Abr for Mpc {
    fn name(&self) -> &'static str {
        self.name
    }

    fn choose(&mut self, ctx: &AbrContext) -> usize {
        // Book-keeping for the robust error bound.
        if let (Some(pred), Some(&actual)) =
            (self.pending_prediction.take(), ctx.past_tput_mbps.last())
        {
            if actual.is_finite() {
                self.history.push((pred, actual));
            }
        }
        let raw = self
            .predictor
            .predict_mbps(ctx.past_tput_mbps, ctx.wall_t_s);
        let pred = raw * self.robust_discount();
        self.pending_prediction = Some(raw);

        let n_tracks = ctx.asset.n_tracks();
        let depth = self.lookahead.min(ctx.chunks_remaining).max(1);
        // Per-track constants of this decision: download time at the
        // predicted rate and normalized quality (taken out of `self` for
        // the search so `eval_sequence` can borrow them alongside `self`).
        let mut dl_s = std::mem::take(&mut self.scratch_dl);
        dl_s.clear();
        dl_s.extend((0..n_tracks).map(|t| ctx.asset.chunk_bytes(t) * 8.0 / 1e6 / pred.max(0.01)));
        let mut quality = std::mem::take(&mut self.scratch_quality);
        quality.clear();
        quality.extend((0..n_tracks).map(|t| ctx.asset.norm_bitrate(t)));
        // Exhaustive search over track sequences.
        let mut best_first = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        let mut seq = std::mem::take(&mut self.scratch_seq);
        seq.clear();
        seq.resize(depth, 0);
        'search: loop {
            let score = self.eval_sequence(ctx, &dl_s, &quality, &seq);
            if score > best_score {
                best_score = score;
                best_first = seq[0];
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == depth {
                    break 'search;
                }
                seq[i] += 1;
                if seq[i] < n_tracks {
                    break;
                }
                seq[i] = 0;
                i += 1;
            }
        }
        self.scratch_dl = dl_s;
        self.scratch_quality = quality;
        self.scratch_seq = seq;
        best_first
    }
}

// -------------------------------------------------------------- helpers ----

/// A trivial ABR pinned to one track (tests/baselines).
pub fn fixed_track_abr(track: usize) -> impl Abr {
    struct Fixed(usize);
    impl Abr for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn choose(&mut self, _ctx: &AbrContext) -> usize {
            self.0
        }
    }
    Fixed(track)
}

/// Builds a boxed instance of one of the seven algorithms.
///
/// `Pensieve` requires a trained policy; use
/// [`crate::pensieve::PensieveAbr`] directly for it.
///
/// # Panics
/// Panics when asked for `Pensieve` (it cannot be built without training).
pub fn build(algo: AbrAlgo) -> Box<dyn Abr> {
    match algo {
        AbrAlgo::Bba => Box::new(Bba::default()),
        AbrAlgo::Rb => Box::new(RateBased::default()),
        AbrAlgo::Bola => Box::new(Bola::default()),
        AbrAlgo::FastMpc => Box::new(Mpc::fast()),
        AbrAlgo::RobustMpc => Box::new(Mpc::robust()),
        AbrAlgo::Festive => Box::new(Festive::default()),
        AbrAlgo::Pensieve => {
            panic!("Pensieve requires a trained policy; see pensieve::PensieveAbr")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::VideoAsset;

    fn ctx<'a>(
        asset: &'a VideoAsset,
        buffer_s: f64,
        last: usize,
        past: &'a [f64],
    ) -> AbrContext<'a> {
        AbrContext {
            asset,
            buffer_s,
            last_track: last,
            past_tput_mbps: past,
            chunks_remaining: 30,
            wall_t_s: 0.0,
        }
    }

    #[test]
    fn bba_maps_buffer_to_bitrate() {
        let asset = VideoAsset::five_g_default();
        let mut bba = Bba::default();
        assert_eq!(bba.choose(&ctx(&asset, 2.0, 0, &[])), 0, "reservoir");
        assert_eq!(
            bba.choose(&ctx(&asset, 25.0, 0, &[])),
            asset.n_tracks() - 1,
            "cushion top"
        );
        let mid = bba.choose(&ctx(&asset, 11.0, 0, &[]));
        assert!(
            mid > 0 && mid < asset.n_tracks() - 1,
            "linear region: {mid}"
        );
    }

    #[test]
    fn bola_grows_with_buffer() {
        let asset = VideoAsset::five_g_default();
        let mut bola = Bola::default();
        let low = bola.choose(&ctx(&asset, 2.0, 0, &[]));
        let high = bola.choose(&ctx(&asset, 24.0, 0, &[]));
        assert!(high > low, "{low} -> {high}");
    }

    #[test]
    fn rb_follows_the_last_sample() {
        let asset = VideoAsset::five_g_default();
        let mut rb = RateBased::default();
        assert_eq!(rb.choose(&ctx(&asset, 10.0, 0, &[500.0])), 5);
        assert_eq!(rb.choose(&ctx(&asset, 10.0, 5, &[10.0])), 0);
    }

    #[test]
    fn festive_moves_one_level_at_a_time() {
        let asset = VideoAsset::five_g_default();
        let mut f = Festive::default();
        let past = vec![1000.0; 5];
        // Huge headroom, but the first call only banks a streak…
        let first = f.choose(&ctx(&asset, 10.0, 2, &past));
        assert_eq!(first, 2);
        // …and the second steps up exactly one level.
        let second = f.choose(&ctx(&asset, 10.0, 2, &past));
        assert_eq!(second, 3);
    }

    #[test]
    fn festive_downswitches_immediately() {
        let asset = VideoAsset::five_g_default();
        let mut f = Festive::default();
        let past = vec![5.0; 5];
        assert_eq!(f.choose(&ctx(&asset, 10.0, 3, &past)), 2);
    }

    #[test]
    fn mpc_prefers_affordable_quality() {
        let asset = VideoAsset::five_g_default();
        let mut mpc = Mpc::fast();
        // Plenty of bandwidth (500 Mbps) and buffer: go top.
        let past = vec![500.0; 5];
        assert_eq!(mpc.choose(&ctx(&asset, 20.0, 5, &past)), 5);
        // Starved (10 Mbps < lowest track) and low buffer: go bottom.
        let mut mpc = Mpc::fast();
        let past = vec![10.0; 5];
        assert_eq!(mpc.choose(&ctx(&asset, 4.0, 5, &past)), 0);
    }

    #[test]
    fn robust_mpc_is_more_conservative_after_errors() {
        let asset = VideoAsset::five_g_default();
        let mut fast = Mpc::fast();
        let mut robust = Mpc::robust();
        // Feed both a history where predictions exceeded reality:
        // chunk 1 measured 400, chunk 2 measured 40 (prediction was ~400).
        let seq: Vec<Vec<f64>> = vec![vec![400.0], vec![400.0, 40.0], vec![400.0, 40.0, 120.0]];
        let mut last_fast = 0;
        let mut last_robust = 0;
        for past in &seq {
            last_fast = fast.choose(&ctx(&asset, 8.0, last_fast, past));
            last_robust = robust.choose(&ctx(&asset, 8.0, last_robust, past));
        }
        assert!(
            last_robust <= last_fast,
            "robust {last_robust} vs fast {last_fast}"
        );
    }

    #[test]
    fn build_covers_six_algorithms() {
        for algo in AbrAlgo::all() {
            if algo == AbrAlgo::Pensieve {
                continue;
            }
            let mut abr = build(algo);
            let asset = VideoAsset::four_g_default();
            let past = vec![15.0; 5];
            let track = abr.choose(&ctx(&asset, 10.0, 0, &past));
            assert!(track < asset.n_tracks());
            assert_eq!(abr.name(), algo.label());
        }
    }

    #[test]
    #[should_panic(expected = "trained policy")]
    fn build_rejects_pensieve() {
        build(AbrAlgo::Pensieve);
    }
}
