//! Video assets and encoding ladders.
//!
//! §5.1: the custom 4K video is encoded into 6 tracks with an adjacent
//! bitrate ratio of ~1.5 (following Flare); the top track is set to the
//! median of the network-trace corpus — 160 Mbps for 5G, 20 Mbps for 4G —
//! "to identify rate adaptation challenges … avoiding any trivial bitrate
//! selection."

/// An encoded video: a bitrate ladder plus chunking parameters.
#[derive(Debug, Clone)]
pub struct VideoAsset {
    /// Track bitrates in Mbps, ascending.
    pub bitrates_mbps: Vec<f64>,
    /// Chunk duration in seconds.
    pub chunk_len_s: f64,
    /// Total video duration in seconds.
    pub duration_s: f64,
}

impl VideoAsset {
    /// Builds a ladder of `tracks` tracks topping out at `top_mbps`, with
    /// adjacent-track ratio 1.5, chunked at `chunk_len_s`.
    ///
    /// # Panics
    /// Panics on zero tracks, non-positive bitrate/length/duration.
    pub fn ladder(top_mbps: f64, tracks: usize, chunk_len_s: f64, duration_s: f64) -> Self {
        assert!(tracks > 0, "need at least one track");
        assert!(top_mbps > 0.0 && chunk_len_s > 0.0 && duration_s > 0.0);
        let mut bitrates: Vec<f64> = (0..tracks)
            .map(|i| top_mbps / 1.5f64.powi((tracks - 1 - i) as i32))
            .collect();
        bitrates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        VideoAsset {
            bitrates_mbps: bitrates,
            chunk_len_s,
            duration_s,
        }
    }

    /// The paper's 5G asset: 6 tracks topping at 160 Mbps, 4 s chunks.
    pub fn five_g_default() -> Self {
        VideoAsset::ladder(160.0, 6, 4.0, 240.0)
    }

    /// The paper's 4G asset: 6 tracks topping at 20 Mbps, 4 s chunks.
    pub fn four_g_default() -> Self {
        VideoAsset::ladder(20.0, 6, 4.0, 240.0)
    }

    /// Number of tracks.
    pub fn n_tracks(&self) -> usize {
        self.bitrates_mbps.len()
    }

    /// Number of chunks (rounded up).
    pub fn n_chunks(&self) -> usize {
        (self.duration_s / self.chunk_len_s).ceil() as usize
    }

    /// Top-track bitrate, Mbps.
    pub fn top_bitrate(&self) -> f64 {
        *self.bitrates_mbps.last().expect("non-empty")
    }

    /// Chunk size in bytes for a track.
    pub fn chunk_bytes(&self, track: usize) -> f64 {
        self.bitrates_mbps[track] * 1e6 / 8.0 * self.chunk_len_s
    }

    /// Bitrate normalized by the top track.
    pub fn norm_bitrate(&self, track: usize) -> f64 {
        self.bitrates_mbps[track] / self.top_bitrate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_ratios_are_1_5() {
        let a = VideoAsset::five_g_default();
        assert_eq!(a.n_tracks(), 6);
        assert_eq!(a.top_bitrate(), 160.0);
        for w in a.bitrates_mbps.windows(2) {
            assert!((w[1] / w[0] - 1.5).abs() < 1e-9);
        }
    }

    #[test]
    fn four_g_ladder_tops_at_20() {
        let a = VideoAsset::four_g_default();
        assert_eq!(a.top_bitrate(), 20.0);
        // Lowest track ≈ 20 / 1.5⁵ ≈ 2.6 Mbps.
        assert!((a.bitrates_mbps[0] - 2.63).abs() < 0.05);
    }

    #[test]
    fn chunk_accounting() {
        let a = VideoAsset::five_g_default();
        assert_eq!(a.n_chunks(), 60);
        // Top track: 160 Mbps × 4 s = 80 MB… bits / 8 = 80 MB.
        assert!((a.chunk_bytes(5) - 80e6).abs() < 1.0);
        assert_eq!(a.norm_bitrate(5), 1.0);
        assert!(a.norm_bitrate(0) < 0.14);
    }

    #[test]
    #[should_panic(expected = "at least one track")]
    fn rejects_empty_ladder() {
        VideoAsset::ladder(100.0, 0, 4.0, 240.0);
    }
}
