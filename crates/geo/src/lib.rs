//! Geography of the simulated measurement campaign.
//!
//! The paper's §3 results are, above all, functions of **UE–server
//! distance**: the UE sits in Minneapolis (or Ann Arbor) and tests against
//! Speedtest servers hosted by the carriers across the conterminous US, the
//! Speedtest servers inside Minnesota, and Azure VMs in the eight US Azure
//! regions. This crate provides that world:
//!
//! * [`coord`] — latitude/longitude and great-circle distances,
//! * [`cities`] — the US cities that host test servers,
//! * [`servers`] — the three server pools (carrier-hosted Speedtest,
//!   in-state Speedtest, Azure regions) with per-server capacity caps,
//! * [`route`] — polyline routes in local metric coordinates (the 10 km
//!   drive of Fig 9, the 1.6 km walking loop of §4.1),
//! * [`mobility`] — stationary / walking / driving movement along a route.

pub mod cities;
pub mod coord;
pub mod mobility;
pub mod route;
pub mod servers;

pub use coord::{haversine_km, LatLon};
pub use mobility::{MobilityModel, MobilityPattern};
pub use route::Route;
pub use servers::{Carrier, ServerHost, ServerInfo};
