//! The US cities of the measurement campaign.
//!
//! `MINNEAPOLIS` and `ANN_ARBOR` are the two UE locations. The rest host
//! carrier Speedtest servers (the paper notes Verizon hosts 48 and T-Mobile
//! 47 servers, "mainly located in major metropolitan U.S. cities"); we carry
//! a representative pool of 33 metros matching the density of Fig 1.

use crate::coord::LatLon;

/// A named city with its coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// Two-letter state code.
    pub state: &'static str,
    /// Coordinates.
    pub loc: LatLon,
}

const fn city(name: &'static str, state: &'static str, lat: f64, lon: f64) -> City {
    City {
        name,
        state,
        loc: LatLon { lat, lon },
    }
}

/// UE location for the Minneapolis campaigns (Verizon mmWave/low-band,
/// T-Mobile NSA/SA low-band).
pub const MINNEAPOLIS: City = city("Minneapolis", "MN", 44.9778, -93.2650);

/// UE location for the Ann Arbor campaigns (Verizon mmWave, S10).
pub const ANN_ARBOR: City = city("Ann Arbor", "MI", 42.2808, -83.7430);

/// Metro areas hosting carrier Speedtest servers across the conterminous US.
pub const METROS: &[City] = &[
    city("Minneapolis", "MN", 44.9778, -93.2650),
    city("Chicago", "IL", 41.8781, -87.6298),
    city("Milwaukee", "WI", 43.0389, -87.9065),
    city("Kansas City", "MO", 39.0997, -94.5786),
    city("St. Louis", "MO", 38.6270, -90.1994),
    city("Omaha", "NE", 41.2565, -95.9345),
    city("Denver", "CO", 39.7392, -104.9903),
    city("Dallas", "TX", 32.7767, -96.7970),
    city("Houston", "TX", 29.7604, -95.3698),
    city("San Antonio", "TX", 29.4241, -98.4936),
    city("Oklahoma City", "OK", 35.4676, -97.5164),
    city("New Orleans", "LA", 29.9511, -90.0715),
    city("Memphis", "TN", 35.1495, -90.0490),
    city("Nashville", "TN", 36.1627, -86.7816),
    city("Atlanta", "GA", 33.7490, -84.3880),
    city("Miami", "FL", 25.7617, -80.1918),
    city("Tampa", "FL", 27.9506, -82.4572),
    city("Charlotte", "NC", 35.2271, -80.8431),
    city("Washington", "DC", 38.9072, -77.0369),
    city("Philadelphia", "PA", 39.9526, -75.1652),
    city("New York", "NY", 40.7128, -74.0060),
    city("Boston", "MA", 42.3601, -71.0589),
    city("Pittsburgh", "PA", 40.4406, -79.9959),
    city("Cleveland", "OH", 41.4993, -81.6944),
    city("Columbus", "OH", 39.9612, -82.9988),
    city("Detroit", "MI", 42.3314, -83.0458),
    city("Indianapolis", "IN", 39.7684, -86.1581),
    city("Phoenix", "AZ", 33.4484, -112.0740),
    city("Las Vegas", "NV", 36.1699, -115.1398),
    city("Salt Lake City", "UT", 40.7608, -111.8910),
    city("Seattle", "WA", 47.6062, -122.3321),
    city("Portland", "OR", 45.5152, -122.6784),
    city("San Francisco", "CA", 37.7749, -122.4194),
    city("Los Angeles", "CA", 34.0522, -118.2437),
    city("San Diego", "CA", 32.7157, -117.1611),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::haversine_km;

    #[test]
    fn metro_pool_spans_the_conterminous_us() {
        assert!(METROS.len() >= 30, "need a dense server map like Fig 1");
        let max = METROS
            .iter()
            .map(|c| haversine_km(MINNEAPOLIS.loc, c.loc))
            .fold(0.0, f64::max);
        assert!(max > 2000.0, "pool must include far coasts, max {max} km");
    }

    #[test]
    fn minneapolis_is_in_the_pool() {
        assert!(METROS.iter().any(|c| c.name == "Minneapolis"));
    }

    #[test]
    fn nearest_metro_to_ue_is_local() {
        let nearest = METROS
            .iter()
            .min_by(|a, b| {
                haversine_km(MINNEAPOLIS.loc, a.loc)
                    .partial_cmp(&haversine_km(MINNEAPOLIS.loc, b.loc))
                    .expect("distances are finite")
            })
            .expect("non-empty");
        assert_eq!(nearest.name, "Minneapolis");
    }
}
