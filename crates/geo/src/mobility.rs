//! Mobility models: stationary, walking, and driving.
//!
//! A [`MobilityModel`] binds a [`Route`] to a speed profile and answers
//! "where is the UE at time *t*?". The paper's three mobility patterns map
//! directly:
//!
//! * **stationary** — throughput/latency tests with clear LoS to a tower,
//! * **walking** — the 20-min, 1.6 km loop of the power campaigns,
//! * **driving** — the 10 km route of the handoff study (0–100 kph with
//!   downtown stops).

use crate::route::{Point, Route};

/// A constant-speed stretch of a route.
#[derive(Debug, Clone, Copy)]
pub struct SpeedSegment {
    /// Segment start, metres of arc length from the route origin.
    pub from_m: f64,
    /// Segment end, metres of arc length.
    pub to_m: f64,
    /// Travel speed in metres per second.
    pub speed_mps: f64,
}

/// A full stop (traffic light, crosswalk) at a point along the route.
#[derive(Debug, Clone, Copy)]
pub struct Stop {
    /// Arc-length position of the stop in metres.
    pub at_m: f64,
    /// Stop duration in seconds.
    pub duration_s: f64,
}

/// The three mobility patterns of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobilityPattern {
    /// UE held stationary (LoS throughput/latency tests).
    Stationary,
    /// Walking the 1.6 km loop at ~1.33 m/s (~20 min).
    Walking,
    /// Driving the 10 km route, 0–100 kph.
    Driving,
}

/// Position/speed as a function of time along a route.
#[derive(Debug, Clone)]
pub struct MobilityModel {
    route: Route,
    /// Piecewise-linear `(time_s, distance_m)` breakpoints, strictly
    /// non-decreasing in both coordinates.
    timeline: Vec<(f64, f64)>,
}

impl MobilityModel {
    /// A UE that never moves from `point`.
    pub fn stationary(point: Point) -> Self {
        // Degenerate two-point route at the same location.
        let route = Route::new(vec![point, Point::new(point.x + 1e-9, point.y)]);
        MobilityModel {
            route,
            timeline: vec![(0.0, 0.0), (f64::MAX, 0.0)],
        }
    }

    /// Builds a model from segments and stops over `route`.
    ///
    /// # Panics
    /// Panics if segments do not tile `[0, route.length_m()]` contiguously
    /// or any speed is non-positive.
    pub fn new(route: Route, segments: &[SpeedSegment], stops: &[Stop]) -> Self {
        assert!(!segments.is_empty(), "need at least one speed segment");
        assert!(
            (segments[0].from_m).abs() < 1e-6,
            "segments must start at the route origin"
        );
        assert!(
            (segments.last().expect("non-empty").to_m - route.length_m()).abs() < 1.0,
            "segments must cover the whole route"
        );
        let mut stops = stops.to_vec();
        stops.sort_by(|a, b| a.at_m.partial_cmp(&b.at_m).expect("finite stop positions"));
        let mut timeline = vec![(0.0, 0.0)];
        let mut stop_iter = stops.iter().peekable();
        let mut t = 0.0;
        for (i, seg) in segments.iter().enumerate() {
            assert!(seg.speed_mps > 0.0, "segment speed must be positive");
            if i > 0 {
                assert!(
                    (seg.from_m - segments[i - 1].to_m).abs() < 1e-6,
                    "segments must be contiguous"
                );
            }
            let mut pos = seg.from_m;
            // Emit sub-segments split at each stop within this segment.
            while let Some(stop) = stop_iter.peek() {
                if stop.at_m > seg.to_m {
                    break;
                }
                let stop = *stop_iter.next().expect("peeked");
                t += (stop.at_m - pos) / seg.speed_mps;
                timeline.push((t, stop.at_m));
                t += stop.duration_s;
                timeline.push((t, stop.at_m));
                pos = stop.at_m;
            }
            t += (seg.to_m - pos) / seg.speed_mps;
            timeline.push((t, seg.to_m));
        }
        MobilityModel { route, timeline }
    }

    /// The walking model: the 1.6 km loop at 1.33 m/s with two crosswalk
    /// waits — a ~20.5 minute trace, matching the paper's walking loops.
    pub fn walking_loop() -> Self {
        let route = Route::walking_loop_1600m();
        let len = route.length_m();
        MobilityModel::new(
            route,
            &[SpeedSegment {
                from_m: 0.0,
                to_m: len,
                speed_mps: 1.33,
            }],
            &[
                Stop {
                    at_m: 500.0,
                    duration_s: 15.0,
                },
                Stop {
                    at_m: 1300.0,
                    duration_s: 15.0,
                },
            ],
        )
    }

    /// The driving model of Fig 9: downtown grid at 25 kph with four
    /// traffic-light stops, freeway at 100 kph, arterial at 60 kph with one
    /// light — speeds ranging 0–100 kph over ~12 minutes.
    pub fn driving_10km() -> Self {
        let route = Route::driving_route_10km();
        let len = route.length_m();
        MobilityModel::new(
            route,
            &[
                SpeedSegment {
                    from_m: 0.0,
                    to_m: 2000.0,
                    speed_mps: 25.0 / 3.6,
                },
                SpeedSegment {
                    from_m: 2000.0,
                    to_m: 8000.0,
                    speed_mps: 100.0 / 3.6,
                },
                SpeedSegment {
                    from_m: 8000.0,
                    to_m: len,
                    speed_mps: 60.0 / 3.6,
                },
            ],
            &[
                Stop {
                    at_m: 300.0,
                    duration_s: 25.0,
                },
                Stop {
                    at_m: 800.0,
                    duration_s: 20.0,
                },
                Stop {
                    at_m: 1300.0,
                    duration_s: 30.0,
                },
                Stop {
                    at_m: 1800.0,
                    duration_s: 20.0,
                },
                Stop {
                    at_m: 9000.0,
                    duration_s: 25.0,
                },
            ],
        )
    }

    /// Builds the standard model for a [`MobilityPattern`] (stationary UEs
    /// sit at the origin of the local frame).
    pub fn from_pattern(pattern: MobilityPattern) -> Self {
        match pattern {
            MobilityPattern::Stationary => MobilityModel::stationary(Point::new(0.0, 0.0)),
            MobilityPattern::Walking => MobilityModel::walking_loop(),
            MobilityPattern::Driving => MobilityModel::driving_10km(),
        }
    }

    /// Total traversal time in seconds (∞-like sentinel for stationary).
    pub fn duration_s(&self) -> f64 {
        self.timeline.last().expect("non-empty").0
    }

    /// Arc-length distance travelled by time `t_s`, clamped to the route.
    pub fn distance_at(&self, t_s: f64) -> f64 {
        let t = t_s.max(0.0);
        let idx = self.timeline.partition_point(|&(bt, _)| bt <= t);
        if idx == 0 {
            return self.timeline[0].1;
        }
        if idx >= self.timeline.len() {
            return self.timeline.last().expect("non-empty").1;
        }
        let (t0, d0) = self.timeline[idx - 1];
        let (t1, d1) = self.timeline[idx];
        if t1 == t0 {
            return d1;
        }
        d0 + (d1 - d0) * (t - t0) / (t1 - t0)
    }

    /// UE position at time `t_s`.
    pub fn position_at(&self, t_s: f64) -> Point {
        self.route.position_at(self.distance_at(t_s))
    }

    /// Instantaneous speed in m/s at time `t_s` (central difference).
    pub fn speed_at(&self, t_s: f64) -> f64 {
        let h = 0.5;
        (self.distance_at(t_s + h) - self.distance_at((t_s - h).max(0.0))).max(0.0)
            / (t_s.min(h) + h)
    }

    /// The underlying route.
    pub fn route(&self) -> &Route {
        &self.route
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_moves() {
        let m = MobilityModel::stationary(Point::new(7.0, 9.0));
        for t in [0.0, 100.0, 1e6] {
            let p = m.position_at(t);
            assert!((p.x - 7.0).abs() < 1e-6 && (p.y - 9.0).abs() < 1e-6);
        }
    }

    #[test]
    fn walking_loop_takes_about_20_minutes() {
        let m = MobilityModel::walking_loop();
        let d = m.duration_s();
        // 1600 m / 1.33 m/s + 30 s of stops ≈ 1233 s.
        assert!((d - 1233.0).abs() < 5.0, "duration {d}");
    }

    #[test]
    fn driving_distance_is_monotone_and_complete() {
        let m = MobilityModel::driving_10km();
        let total = m.duration_s();
        let mut last = -1.0;
        let mut t = 0.0;
        while t <= total {
            let d = m.distance_at(t);
            assert!(d >= last, "distance must be monotone");
            last = d;
            t += 5.0;
        }
        assert!((m.distance_at(total) - 10_000.0).abs() < 100.0);
    }

    #[test]
    fn stops_hold_position() {
        let m = MobilityModel::driving_10km();
        // Find the first stop (at 300 m): reaching it takes 300/(25/3.6) ≈ 43.2 s.
        let t_arrive = 300.0 / (25.0 / 3.6);
        let d1 = m.distance_at(t_arrive + 1.0);
        let d2 = m.distance_at(t_arrive + 20.0);
        assert!((d1 - 300.0).abs() < 1.0, "{d1}");
        assert!((d2 - 300.0).abs() < 1.0, "{d2}");
    }

    #[test]
    fn freeway_speed_is_100kph() {
        let m = MobilityModel::driving_10km();
        // Midway along the freeway stretch (arc 5000 m). Find a time there.
        let mut t = 0.0;
        while m.distance_at(t) < 5000.0 {
            t += 1.0;
        }
        let v = m.speed_at(t);
        assert!((v - 100.0 / 3.6).abs() < 1.0, "speed {v} m/s");
    }

    #[test]
    fn driving_duration_is_reasonable() {
        let m = MobilityModel::driving_10km();
        let d = m.duration_s();
        assert!(d > 500.0 && d < 1000.0, "duration {d}");
    }
}
