//! Server pools used by the Speedtest and Azure experiments.
//!
//! Three pools appear in the paper:
//!
//! 1. **Carrier-hosted Speedtest servers** across major US metros (§3.1):
//!    carriers place these at the edge of their city-level ingress points, so
//!    testing against them isolates the radio + carrier path from the wider
//!    Internet. [`carrier_pool`] instantiates one per metro.
//! 2. **In-state (Minnesota) Speedtest servers** (Fig 24): mostly hosted by
//!    local ISPs and universities, some of which cap out at 1 or 2 Gbps due
//!    to NIC/switch-port limits. [`minnesota_pool`] reproduces that mix.
//! 3. **Azure regions** (Fig 8): eight US regions at the paper's reported
//!    UE–server distances. [`azure_regions`].

use crate::cities::{City, METROS, MINNEAPOLIS};
use crate::coord::LatLon;

/// The two commercial carriers of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Carrier {
    /// Verizon: NSA mmWave (n260/n261) + NSA low-band (n5, DSS).
    Verizon,
    /// T-Mobile: low-band (n71) in both NSA and SA modes.
    TMobile,
}

impl Carrier {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Carrier::Verizon => "Verizon",
            Carrier::TMobile => "T-Mobile",
        }
    }
}

/// Who operates a test server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerHost {
    /// Hosted by a carrier at its ingress edge (minimal Internet-side path).
    Carrier(Carrier),
    /// Third-party Speedtest host (local ISP, university, ...).
    ThirdParty,
    /// A cloud VM (the paper's Azure DS4_v2 instances).
    Cloud,
}

/// A throughput/latency test server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInfo {
    /// Display name, e.g. `"Verizon, Chicago"`.
    pub name: String,
    /// Operator class.
    pub host: ServerHost,
    /// Server location, if it is placed on the map.
    pub loc: Option<LatLon>,
    /// Fixed UE–server distance in km, overriding the coordinate-derived
    /// distance (used for Azure regions, where the paper reports distances
    /// directly).
    pub distance_override_km: Option<f64>,
    /// Server-side throughput cap in Mbps (NIC / switch-port / config
    /// limits), if any.
    pub cap_mbps: Option<f64>,
    /// Multiplicative throughput efficiency of the Internet path to this
    /// server relative to a carrier-edge server (1.0 = no extra overhead).
    pub path_efficiency: f64,
}

impl ServerInfo {
    /// Great-circle UE–server distance in km (or the fixed override).
    ///
    /// # Panics
    /// Panics if the server has neither coordinates nor a distance override.
    pub fn distance_km(&self, ue: LatLon) -> f64 {
        if let Some(d) = self.distance_override_km {
            return d;
        }
        let loc = self
            .loc
            .unwrap_or_else(|| panic!("server {} has no location", self.name));
        crate::coord::haversine_km(ue, loc)
    }
}

/// One carrier-hosted Speedtest server in every metro of [`METROS`].
pub fn carrier_pool(carrier: Carrier) -> Vec<ServerInfo> {
    METROS
        .iter()
        .map(|c: &City| ServerInfo {
            name: format!("{}, {}", carrier.name(), c.name),
            host: ServerHost::Carrier(carrier),
            loc: Some(c.loc),
            distance_override_km: None,
            cap_mbps: None,
            path_efficiency: 1.0,
        })
        .collect()
}

/// The Minnesota in-state Speedtest pool of Fig 24: 37 servers; the
/// carrier's own Minneapolis server is unconstrained, most third-party
/// servers lose ~10% to Internet-side routing, and several are bound by
/// 2 Gbps or 1 Gbps port capacities.
pub fn minnesota_pool() -> Vec<ServerInfo> {
    // (name, km from Minneapolis, cap in Mbps, path efficiency)
    const POOL: &[(&str, f64, Option<f64>, f64)] = &[
        ("Verizon, Minneapolis", 3.0, None, 1.0),
        ("Hennepin H., Minneapolis", 5.0, None, 0.92),
        ("Sprint, St. Paul", 15.0, None, 0.92),
        ("Carleton C., Northfield", 60.0, None, 0.92),
        ("CenturyLink, St. Paul", 15.0, None, 0.91),
        ("Midco, Cambridge", 65.0, None, 0.91),
        ("NetINS, Minneapolis", 4.0, None, 0.92),
        ("Fibernet M., Monticello", 55.0, None, 0.91),
        ("US Internet, Minneapolis", 6.0, None, 0.92),
        ("Paul Bunyan, Minneapolis", 7.0, None, 0.91),
        ("Metronet, Rochester", 120.0, None, 0.90),
        ("Gigabit Mi., Rosemount", 30.0, None, 0.90),
        ("Arvig, Perham", 280.0, None, 0.90),
        ("West Centr., Sebeka", 250.0, None, 0.90),
        ("Spectrum, St Cloud", 100.0, None, 0.90),
        ("CTC, Brainerd", 180.0, None, 0.89),
        ("Hiawatha B., Winona", 170.0, None, 0.89),
        ("CenturyLink, Rochester", 120.0, None, 0.89),
        ("Midco, Bemidji", 330.0, None, 0.89),
        ("Midco, Fairmont", 210.0, None, 0.89),
        ("Midco, St. Joseph", 110.0, None, 0.88),
        ("Paul Bunyan, Bemidji", 330.0, None, 0.88),
        ("702 Comm., Moorhead", 380.0, None, 0.88),
        ("fdcservers, Minneapolis", 8.0, None, 0.85),
        ("Vibrant Br., Litchfield", 95.0, Some(2000.0), 1.0),
        ("Midco, International F.", 460.0, Some(2000.0), 1.0),
        ("Gustavus A., Saint Peter", 95.0, Some(2000.0), 1.0),
        ("AcenTek-Sp., Houston", 210.0, Some(2000.0), 1.0),
        ("RadioLink, Ellendale", 110.0, Some(1000.0), 1.0),
        ("Albany Mut., Albany", 120.0, Some(1000.0), 1.0),
        ("Paul Bunyan, Duluth", 250.0, Some(1000.0), 1.0),
        ("Stellar As., Brandon", 220.0, Some(1000.0), 1.0),
        ("Nuvera, New Ulm", 140.0, Some(1000.0), 1.0),
        ("Halstad Te., Halstad", 390.0, Some(800.0), 1.0),
        ("vRad, Eden Prairie", 20.0, Some(700.0), 1.0),
        ("Northeast, Mountain Iron", 290.0, Some(600.0), 1.0),
        ("Midco, Ely", 350.0, Some(500.0), 1.0),
    ];
    POOL.iter()
        .enumerate()
        .map(|(i, &(name, km, cap, eff))| ServerInfo {
            name: format!("{}. {}", i + 1, name),
            host: if i == 0 {
                ServerHost::Carrier(Carrier::Verizon)
            } else {
                ServerHost::ThirdParty
            },
            loc: None,
            distance_override_km: Some(km),
            cap_mbps: cap,
            path_efficiency: eff,
        })
        .collect()
}

/// The eight US Azure regions of Fig 8, at the paper's reported UE–server
/// distances from the Minneapolis UE.
pub fn azure_regions() -> Vec<ServerInfo> {
    const REGIONS: &[(&str, f64)] = &[
        ("Central", 374.0),
        ("North Central", 563.0),
        ("East", 1393.0),
        ("West Central", 1444.0),
        ("East2", 1539.0),
        ("South Central", 1779.0),
        ("West2", 2044.0),
        ("West", 2532.0),
    ];
    REGIONS
        .iter()
        .map(|&(name, km)| ServerInfo {
            name: format!("Azure {name}"),
            host: ServerHost::Cloud,
            loc: None,
            distance_override_km: Some(km),
            cap_mbps: None,
            path_efficiency: 1.0,
        })
        .collect()
}

/// Convenience: the UE coordinates for the Minneapolis campaigns.
pub fn default_ue_location() -> LatLon {
    MINNEAPOLIS.loc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carrier_pool_covers_every_metro() {
        let pool = carrier_pool(Carrier::Verizon);
        assert_eq!(pool.len(), METROS.len());
        assert!(pool
            .iter()
            .all(|s| matches!(s.host, ServerHost::Carrier(Carrier::Verizon))));
    }

    #[test]
    fn carrier_pool_distances_span_the_us() {
        let ue = default_ue_location();
        let pool = carrier_pool(Carrier::TMobile);
        let dists: Vec<f64> = pool.iter().map(|s| s.distance_km(ue)).collect();
        let min = dists.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = dists.iter().cloned().fold(0.0, f64::max);
        assert!(min < 10.0, "a local server exists, min {min}");
        assert!(max > 2000.0, "far-coast servers exist, max {max}");
    }

    #[test]
    fn minnesota_pool_matches_fig24_structure() {
        let pool = minnesota_pool();
        assert_eq!(pool.len(), 37);
        assert!(matches!(
            pool[0].host,
            ServerHost::Carrier(Carrier::Verizon)
        ));
        assert_eq!(pool[0].cap_mbps, None);
        let capped_2g = pool.iter().filter(|s| s.cap_mbps == Some(2000.0)).count();
        let capped_1g = pool.iter().filter(|s| s.cap_mbps == Some(1000.0)).count();
        assert_eq!(capped_2g, 4, "servers 25-28 are 2 Gbps-bound");
        assert_eq!(capped_1g, 5, "servers 29-33 are 1 Gbps-bound");
    }

    #[test]
    fn azure_regions_match_paper_distances() {
        let regions = azure_regions();
        assert_eq!(regions.len(), 8);
        let ue = default_ue_location();
        assert_eq!(regions[0].distance_km(ue), 374.0);
        assert_eq!(regions[7].distance_km(ue), 2532.0);
        // Monotonically increasing distance, as presented in Fig 8.
        for w in regions.windows(2) {
            assert!(w[0].distance_km(ue) < w[1].distance_km(ue));
        }
    }

    #[test]
    #[should_panic(expected = "has no location")]
    fn distance_requires_loc_or_override() {
        let s = ServerInfo {
            name: "bad".into(),
            host: ServerHost::ThirdParty,
            loc: None,
            distance_override_km: None,
            cap_mbps: None,
            path_efficiency: 1.0,
        };
        s.distance_km(default_ue_location());
    }
}
