//! Polyline routes in local metric coordinates.
//!
//! Routes are used by the mobility models: the 10 km driving route of Fig 9
//! (downtown → freeway → arterial) and the 1.6 km / 20-min walking loop of
//! the power campaigns (§4.1). Coordinates are metres in a local tangent
//! plane centred on the campaign city; tower placement (in `fiveg-radio`)
//! uses the same frame.

/// A point in the local metric frame, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance_m(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A polyline route with precomputed cumulative arc length.
#[derive(Debug, Clone)]
pub struct Route {
    points: Vec<Point>,
    /// `cum[i]` = arc length from the start to `points[i]`, metres.
    cum: Vec<f64>,
}

impl Route {
    /// Builds a route from waypoints.
    ///
    /// # Panics
    /// Panics if fewer than two waypoints are given.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(points.len() >= 2, "a route needs at least two waypoints");
        let mut cum = Vec::with_capacity(points.len());
        cum.push(0.0);
        for w in points.windows(2) {
            let last = *cum.last().expect("cum starts non-empty");
            cum.push(last + w[0].distance_m(w[1]));
        }
        Route { points, cum }
    }

    /// Total route length in metres.
    pub fn length_m(&self) -> f64 {
        *self.cum.last().expect("non-empty")
    }

    /// Position at arc-length `s` metres from the start, clamped to the
    /// route's span.
    pub fn position_at(&self, s: f64) -> Point {
        let s = s.clamp(0.0, self.length_m());
        let idx = self.cum.partition_point(|&c| c <= s);
        if idx == 0 {
            return self.points[0];
        }
        if idx >= self.points.len() {
            return *self.points.last().expect("non-empty");
        }
        let (c0, c1) = (self.cum[idx - 1], self.cum[idx]);
        let seg = c1 - c0;
        let frac = if seg == 0.0 { 0.0 } else { (s - c0) / seg };
        let (a, b) = (self.points[idx - 1], self.points[idx]);
        Point::new(a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac)
    }

    /// The waypoints of the route.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The 10 km driving route of Fig 9: ~2 km of downtown grid, ~6 km of
    /// freeway, ~2 km of arterial road back toward downtown.
    pub fn driving_route_10km() -> Route {
        // Downtown grid (500 m zig-zag blocks, 2 km), then a 6 km freeway
        // run east, then 2 km of arterial north.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(500.0, 0.0),
            Point::new(500.0, 500.0),
            Point::new(1000.0, 500.0),
            Point::new(1000.0, 1000.0),
            Point::new(7000.0, 1000.0),
            Point::new(7000.0, 3000.0),
        ];
        Route::new(pts)
    }

    /// The 1.6 km walking loop of the power campaigns: a rectangle through
    /// the measured blocks, returning to the start.
    pub fn walking_loop_1600m() -> Route {
        Route::new(vec![
            Point::new(0.0, 0.0),
            Point::new(500.0, 0.0),
            Point::new(500.0, 300.0),
            Point::new(0.0, 300.0),
            Point::new(0.0, 0.0),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_accumulates() {
        let r = Route::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ]);
        assert!((r.length_m() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn position_interpolates_within_segments() {
        let r = Route::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let p = r.position_at(2.5);
        assert!((p.x - 2.5).abs() < 1e-12 && p.y == 0.0);
    }

    #[test]
    fn position_clamps_at_ends() {
        let r = Route::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        assert_eq!(r.position_at(-5.0), Point::new(0.0, 0.0));
        assert_eq!(r.position_at(500.0), Point::new(10.0, 0.0));
    }

    #[test]
    fn driving_route_is_about_10km() {
        let r = Route::driving_route_10km();
        assert!((r.length_m() - 10_000.0).abs() < 100.0, "{}", r.length_m());
    }

    #[test]
    fn walking_loop_is_1600m_and_closed() {
        let r = Route::walking_loop_1600m();
        assert!((r.length_m() - 1600.0).abs() < 1e-9);
        assert_eq!(r.points().first(), r.points().last());
    }

    #[test]
    #[should_panic(expected = "at least two waypoints")]
    fn rejects_degenerate_routes() {
        Route::new(vec![Point::new(0.0, 0.0)]);
    }
}
