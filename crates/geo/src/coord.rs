//! Latitude/longitude coordinates and great-circle distance.

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A WGS-84-ish latitude/longitude pair in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl LatLon {
    /// Creates a coordinate.
    ///
    /// # Panics
    /// Panics if the latitude is outside `[-90, 90]` or the longitude is
    /// outside `[-180, 180]`.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        LatLon { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres.
    pub fn distance_km(self, other: LatLon) -> f64 {
        haversine_km(self, other)
    }
}

/// Haversine great-circle distance between two coordinates, in kilometres.
pub fn haversine_km(a: LatLon, b: LatLon) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = LatLon::new(44.98, -93.27);
        assert_eq!(haversine_km(p, p), 0.0);
    }

    #[test]
    fn known_distances() {
        let msp = LatLon::new(44.9778, -93.2650);
        let chicago = LatLon::new(41.8781, -87.6298);
        let d = haversine_km(msp, chicago);
        assert!((d - 570.0).abs() < 20.0, "MSP-Chicago ≈ 570 km, got {d}");

        let la = LatLon::new(34.0522, -118.2437);
        let ny = LatLon::new(40.7128, -74.0060);
        let d = haversine_km(la, ny);
        assert!((d - 3936.0).abs() < 50.0, "LA-NY ≈ 3936 km, got {d}");
    }

    #[test]
    fn symmetric() {
        let a = LatLon::new(10.0, 20.0);
        let b = LatLon::new(-30.0, 140.0);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn rejects_bad_latitude() {
        LatLon::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude out of range")]
    fn rejects_bad_longitude() {
        LatLon::new(0.0, 181.0);
    }
}
