//! Lumos5G-style throughput traces.
//!
//! Each 5G trace is produced by walking a virtual UE around the mmWave
//! loop deployment with a saturating transfer running: per second, the
//! trace records the application throughput on the 5G interface — the link
//! capacity under the current RSRP and blockage, scaled by an application
//! utilization factor and cell contention — and records **zero** whenever
//! mmWave is unusable (exactly how the paper's tooling logs 5G throughput
//! while the UE has fallen back to 4G). 4G traces walk the same loop
//! against the LTE macro with heavier cell contention.

use fiveg_geo::mobility::MobilityModel;
use fiveg_radio::band::{Band, BandClass, Direction};
use fiveg_radio::blockage::{BlockageConfig, BlockageProcess};
use fiveg_radio::cell::NetworkLayout;
use fiveg_radio::link::LinkBudget;
use fiveg_radio::ue::UeModel;
use fiveg_simcore::RngStream;
use fiveg_transport::shaper::BandwidthTrace;

/// Default trace length in seconds (the paper's traces are several minutes
/// at 1-second granularity).
pub const TRACE_LEN_S: usize = 320;

/// Generates the Lumos5G-substitute corpus.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator; all output is a pure function of the seed.
    pub fn new(seed: u64) -> Self {
        TraceGenerator { seed }
    }

    /// One mmWave 5G throughput trace (1 s granularity).
    pub fn lumos5g_trace(&self, idx: usize) -> BandwidthTrace {
        self.lumos5g_trace_with_context(idx).0
    }

    /// One mmWave 5G trace plus the UE-side context the Lumos5G predictor
    /// consumes: the effective serving NR-SS-RSRP per second (−130 dBm
    /// sentinel when the 5G interface has no usable cell).
    pub fn lumos5g_trace_with_context(&self, idx: usize) -> (BandwidthTrace, Vec<f64>) {
        self.lumos5g_trace_inner(idx, true)
    }

    /// Ablation variant: the same walk with the blockage process disabled
    /// (pure LoS). Quantifies how much of mmWave ABR pain is blockage.
    pub fn lumos5g_trace_no_blockage(&self, idx: usize) -> BandwidthTrace {
        self.lumos5g_trace_inner(idx, false).0
    }

    fn lumos5g_trace_inner(&self, idx: usize, blockage_on: bool) -> (BandwidthTrace, Vec<f64>) {
        let mut rng = RngStream::new(self.seed, &format!("lumos5g/{idx}"));
        // Each walk sees a different shadowing world and walking start.
        let layout = NetworkLayout::walking_loop_deployment(
            self.seed.wrapping_add(idx as u64 * 7919),
            Band::N261,
            Band::N5Dss,
        );
        let mobility = MobilityModel::walking_loop();
        // Urban walking sees more and *longer* obstruction than the
        // default process: whole building faces, not just passers-by —
        // NLoS episodes last tens of seconds at walking pace, which is
        // what the paper's mmWave traces show.
        let blk_cfg = BlockageConfig {
            block_rate_per_s: 0.018,
            block_rate_per_m: 1.0 / 110.0,
            clear_rate_per_s: 0.022,
            clear_rate_per_m: 1.0 / 120.0,
        };
        let mut blockage = BlockageProcess::new(blk_cfg, rng.fork("blk"));
        let start_offset = rng.gen_range(0.0..mobility.duration_s());
        // Application share of the PHY (scheduler + contention + app
        // demand), drifting as an AR(1): throughput is deliberately *not*
        // a pure function of signal strength.
        // Log-space AR(1): heavy-tailed share, median ≈ 0.10 — the pooled
        // 5G corpus lands a ~160 Mbps median with a mean pulled up by
        // bursts, matching the Lumos5G statistics the paper scales its
        // video ladder to.
        let mut log_share = rng.normal(-2.2, 0.7);
        // Every mmWave tower on the loop runs the same band, so the link
        // budget (floor/ramp/peak/UE cap) is one per-segment precompute.
        let budget = LinkBudget::new(UeModel::GalaxyS10, Band::N261, false, Direction::Downlink);
        let mut samples = Vec::with_capacity(TRACE_LEN_S);
        let mut rsrp_context = Vec::with_capacity(TRACE_LEN_S);
        let mut was_blocked = false;
        let mut episode_atten = 0.0;
        for s in 0..TRACE_LEN_S {
            let t = (start_offset + s as f64) % mobility.duration_s();
            let p = mobility.position_at(t);
            let speed = mobility.speed_at(t);
            let blocked = blockage.advance(1.0, speed) && blockage_on;
            // Mean-reverting AR(1): second-to-second throughput is smooth;
            // the abrupt component comes from blockage episodes below.
            log_share = -2.2 + 0.98 * (log_share + 2.2) + rng.normal(0.0, 0.14);
            let share = log_share.clamp(-3.5, -0.35).exp();
            // Blockage is graded, not binary: a body or tree attenuates
            // 12–25 dB, a building corner ~35 dB — and the attenuation is
            // a property of the *episode* (it persists until the blocker
            // clears), giving the multi-second fades ABR must ride out.
            if blocked && !was_blocked {
                episode_atten = if rng.chance(0.65) {
                    rng.gen_range(12.0..25.0)
                } else {
                    35.0
                };
            }
            was_blocked = blocked;
            let attenuation_db = if blocked { episode_atten } else { 0.0 };
            let best = layout.best_cell(p, false, |tw| tw.band.class() == BandClass::MmWave);
            let mbps = match best {
                Some((_, rsrp)) => {
                    let eff_rsrp = rsrp - attenuation_db;
                    rsrp_context.push(eff_rsrp);
                    let cap = budget.capacity_mbps(eff_rsrp);
                    (cap * share).max(0.0)
                }
                // Fallen back to 4G: the 5G interface carries nothing.
                None => {
                    rsrp_context.push(-130.0);
                    0.0
                }
            };
            samples.push(mbps);
        }
        (BandwidthTrace::new(samples, 1.0), rsrp_context)
    }

    /// One 4G/LTE throughput trace (1 s granularity). LTE macro coverage is
    /// solid but heavily shared, so per-user throughput is modest and
    /// smooth — the paper's 4G traces have a 20 Mbps-class median.
    pub fn lte_trace(&self, idx: usize) -> BandwidthTrace {
        let mut rng = RngStream::new(self.seed, &format!("lte/{idx}"));
        let layout = NetworkLayout::walking_loop_deployment(
            self.seed.wrapping_add(0xACE0 + idx as u64 * 104729),
            Band::N261,
            Band::N5Dss,
        );
        let mobility = MobilityModel::walking_loop();
        let start_offset = rng.gen_range(0.0..mobility.duration_s());
        // LTE macros serve many users: the app sees a small share, drifting
        // slowly with cell load (AR(1) utilization).
        let mut share = rng.gen_range(0.09..0.14);
        // The only LTE-class band is the mid-band macro, so one budget
        // covers every candidate the filter below can select.
        let budget = LinkBudget::new(
            UeModel::GalaxyS10,
            Band::LteMidBand,
            false,
            Direction::Downlink,
        );
        let mut samples = Vec::with_capacity(TRACE_LEN_S);
        for s in 0..TRACE_LEN_S {
            let t = (start_offset + s as f64) % mobility.duration_s();
            let p = mobility.position_at(t);
            let best = layout.best_cell(p, false, |tw| tw.band.class() == BandClass::Lte);
            share = (share + rng.normal(0.0, 0.01)).clamp(0.08, 0.22);
            let mbps = match best {
                Some((_, rsrp)) => (budget.capacity_mbps(rsrp) * share).max(0.5),
                None => 0.5,
            };
            samples.push(mbps);
        }
        BandwidthTrace::new(samples, 1.0)
    }

    /// The full 5G corpus (the paper uses 121 traces).
    pub fn lumos5g_corpus(&self, count: usize) -> Vec<BandwidthTrace> {
        (0..count).map(|i| self.lumos5g_trace(i)).collect()
    }

    /// The full 4G corpus (the paper uses 175 traces).
    pub fn lte_corpus(&self, count: usize) -> Vec<BandwidthTrace> {
        (0..count).map(|i| self.lte_trace(i)).collect()
    }
}

/// Pools every sample of a corpus (for corpus-level statistics).
pub fn pooled_samples(corpus: &[BandwidthTrace]) -> Vec<f64> {
    corpus
        .iter()
        .flat_map(|t| t.samples().iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_simcore::stats::{mean, median};

    #[test]
    fn five_g_mean_is_about_10x_of_4g() {
        let gen = TraceGenerator::new(42);
        let g5 = pooled_samples(&gen.lumos5g_corpus(20));
        let g4 = pooled_samples(&gen.lte_corpus(20));
        let ratio = mean(&g5) / mean(&g4);
        assert!(
            (3.5..16.0).contains(&ratio),
            "5G/4G mean ratio {ratio} (paper: ~10x; our blocked fraction trims the 5G mean)"
        );
    }

    #[test]
    fn five_g_median_matches_the_160mbps_track_scale() {
        let gen = TraceGenerator::new(42);
        let g5 = pooled_samples(&gen.lumos5g_corpus(20));
        let med = median(&g5);
        assert!(
            (80.0..320.0).contains(&med),
            "5G median {med} should sit near the 160 Mbps top track"
        );
    }

    #[test]
    fn four_g_median_matches_the_20mbps_track_scale() {
        let gen = TraceGenerator::new(42);
        let g4 = pooled_samples(&gen.lte_corpus(20));
        let med = median(&g4);
        assert!((10.0..35.0).contains(&med), "4G median {med}");
    }

    #[test]
    fn five_g_has_deep_fades() {
        let gen = TraceGenerator::new(42);
        let g5 = pooled_samples(&gen.lumos5g_corpus(20));
        let dead = g5.iter().filter(|&&x| x < 1.0).count() as f64 / g5.len() as f64;
        assert!(
            (0.05..0.6).contains(&dead),
            "5G dead-air fraction {dead} (blockage + coverage holes)"
        );
    }

    #[test]
    fn four_g_has_no_deep_fades() {
        let gen = TraceGenerator::new(42);
        let g4 = pooled_samples(&gen.lte_corpus(20));
        let dead = g4.iter().filter(|&&x| x < 1.0).count() as f64 / g4.len() as f64;
        assert!(dead < 0.01, "4G dead-air fraction {dead}");
    }

    #[test]
    fn five_g_is_far_more_variable_than_4g() {
        let gen = TraceGenerator::new(7);
        let g5 = pooled_samples(&gen.lumos5g_corpus(10));
        let g4 = pooled_samples(&gen.lte_corpus(10));
        let cv5 = fiveg_simcore::stats::std_dev(&g5) / mean(&g5);
        let cv4 = fiveg_simcore::stats::std_dev(&g4) / mean(&g4);
        assert!(cv5 > 1.5 * cv4, "cv5 {cv5} vs cv4 {cv4}");
    }

    #[test]
    fn traces_have_expected_shape() {
        let gen = TraceGenerator::new(1);
        let t = gen.lumos5g_trace(0);
        assert_eq!(t.samples().len(), TRACE_LEN_S);
        assert_eq!(t.granularity_s(), 1.0);
    }

    #[test]
    fn generation_is_deterministic_and_diverse() {
        let gen = TraceGenerator::new(9);
        let a = gen.lumos5g_trace(3);
        let b = gen.lumos5g_trace(3);
        assert_eq!(a.samples(), b.samples());
        let c = gen.lumos5g_trace(4);
        assert_ne!(a.samples(), c.samples(), "different indices differ");
    }
}
