//! Synthetic dataset substitutes, generated from the radio substrate.
//!
//! The paper's application studies replay two field datasets we cannot
//! download into a simulator verbatim, so we regenerate their statistical
//! shape from the modelled world:
//!
//! * [`lumos`] — Lumos5G-style throughput traces (121 mmWave-5G + 175 4G
//!   traces at 1-second granularity, §5.1): a virtual UE walks the loop
//!   deployment while a bulk transfer runs; mmWave throughput collapses
//!   under blockage and out-of-coverage stretches, 4G stays modest and
//!   smooth. Key preserved statistics: 5G mean ≈ 10× 4G mean, 5G median
//!   near the paper's 160 Mbps top video track, deep 5G fades.
//! * [`walking`] — the §4 walking power campaigns: joint
//!   (throughput, RSRP, active network, true radio power) samples for the
//!   five device/carrier/network settings of Fig 15, from which the power
//!   models are trained.

pub mod lumos;
pub mod walking;

pub use lumos::TraceGenerator;
pub use walking::{WalkingCampaign, WalkingSample};
