//! Walking power campaigns (§4.1): joint throughput/RSRP/power traces.
//!
//! The paper walks a fixed 20-minute loop with a bulk transfer running,
//! logging network state at 10 Hz and power at 5 kHz, for five
//! device/carrier/network settings (Fig 15's x-axis). Here a virtual walk
//! produces the same joint samples; the *true* power comes from the
//! ground-truth [`DataPowerModel`] with the RSRP penalty plus measurement
//! noise, which is exactly what makes the paper's modelling question
//! non-trivial: can a learner recover power from (throughput, RSRP) alone?

use fiveg_geo::mobility::MobilityModel;
use fiveg_mlkit::dataset::Dataset;
use fiveg_power::datamodel::{DataPowerModel, NetworkKind};
use fiveg_radio::band::{Band, BandClass, Direction};
use fiveg_radio::blockage::{BlockageConfig, BlockageProcess};
use fiveg_radio::cell::NetworkLayout;
use fiveg_radio::link::LinkBudget;
use fiveg_radio::ue::UeModel;
use fiveg_radio::Carrier;
use fiveg_simcore::RngStream;

/// One 10 Hz-logged walking sample.
#[derive(Debug, Clone, Copy)]
pub struct WalkingSample {
    /// Seconds since the walk started.
    pub t_s: f64,
    /// Application throughput on the active radio, Mbps.
    pub throughput_mbps: f64,
    /// Serving-cell RSRP, dBm.
    pub rsrp_dbm: f64,
    /// The network the sample was taken on.
    pub network: NetworkKind,
    /// True radio power (what the hardware monitor would integrate), mW.
    pub power_mw: f64,
}

/// A walking campaign configuration (one Fig 15 setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkingCampaign {
    /// Device under test.
    pub ue: UeModel,
    /// Carrier.
    pub carrier: Carrier,
    /// Network setting being measured.
    pub network: NetworkKind,
}

impl WalkingCampaign {
    /// The five Fig 15 settings, in x-axis order.
    pub fn fig15_settings() -> [WalkingCampaign; 5] {
        [
            WalkingCampaign {
                ue: UeModel::GalaxyS10,
                carrier: Carrier::Verizon,
                network: NetworkKind::MmWave,
            },
            WalkingCampaign {
                ue: UeModel::GalaxyS20Ultra,
                carrier: Carrier::Verizon,
                network: NetworkKind::MmWave,
            },
            WalkingCampaign {
                ue: UeModel::GalaxyS20Ultra,
                carrier: Carrier::Verizon,
                network: NetworkKind::LowBandNsa,
            },
            WalkingCampaign {
                ue: UeModel::GalaxyS20Ultra,
                carrier: Carrier::TMobile,
                network: NetworkKind::LowBandNsa,
            },
            WalkingCampaign {
                ue: UeModel::GalaxyS20Ultra,
                carrier: Carrier::TMobile,
                network: NetworkKind::LowBandSa,
            },
        ]
    }

    /// Display label matching Fig 15, e.g. `"S20/VZ/NSA-LB"`.
    pub fn label(&self) -> String {
        let dev = match self.ue {
            UeModel::GalaxyS10 => "S10",
            UeModel::GalaxyS20Ultra => "S20",
            UeModel::Pixel5 => "PX5",
        };
        let car = match self.carrier {
            Carrier::Verizon => "VZ",
            Carrier::TMobile => "TM",
        };
        let net = match self.network {
            NetworkKind::MmWave => "NSA-HB",
            NetworkKind::LowBandNsa => "NSA-LB",
            NetworkKind::LowBandSa => "SA-LB",
            NetworkKind::Lte => "LTE",
        };
        format!("{dev}/{car}/{net}")
    }

    /// The bands this campaign's carrier deploys.
    fn bands(&self) -> (Band, Band) {
        match self.carrier {
            Carrier::Verizon => (Band::N261, Band::N5Dss),
            Carrier::TMobile => (Band::N261, Band::N71),
        }
    }

    /// Simulates one walk of the loop, logging at `log_hz`.
    ///
    /// mmWave campaigns emit the active network per sample: mmWave when a
    /// panel is usable, low-band otherwise (the Fig 13 Minneapolis plot
    /// shows exactly these two clusters). Low-band campaigns lock to the
    /// low band.
    pub fn walk(&self, trace_idx: usize, seed: u64, log_hz: f64) -> Vec<WalkingSample> {
        assert!(log_hz > 0.0, "log rate must be positive");
        let mut rng = RngStream::new(seed, &format!("walk/{}/{trace_idx}", self.label()));
        let (mm_band, lb_band) = self.bands();
        let layout = NetworkLayout::walking_loop_deployment(
            seed.wrapping_add(trace_idx as u64 * 15485863),
            mm_band,
            lb_band,
        );
        let mobility = MobilityModel::walking_loop();
        let mut blockage = BlockageProcess::new(BlockageConfig::default(), rng.fork("blk"));
        let dt = 1.0 / log_hz;
        // Application share of the PHY, drifting as an AR(1): at a given
        // RSRP the observed throughput varies widely (scheduler load, app
        // demand), which is what forces a power model to see *both*
        // features (Fig 15).
        let mut share = rng.gen_range(0.3..0.9);
        // A sample serves from either the mmWave band or the low band; both
        // link budgets are fixed for the whole walk, so precompute them.
        let sa = self.network == NetworkKind::LowBandSa;
        let mm_budget = LinkBudget::new(self.ue, mm_band, sa, Direction::Downlink);
        let lb_budget = LinkBudget::new(self.ue, lb_band, sa, Direction::Downlink);
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < mobility.duration_s() {
            // One budget event per simulated log tick: the walking
            // campaigns feed the Fig 13/14/15 experiments, and charging
            // here keeps their longest loops cancellable and visible to
            // the progress watchdog.
            fiveg_simcore::budget::charge(1);
            let p = mobility.position_at(t);
            let speed = mobility.speed_at(t);
            let blocked = blockage.advance(dt, speed);
            // Pick the active cell for this campaign.
            let (network, cell) = if self.network == NetworkKind::MmWave {
                match layout.best_cell(p, blocked, |tw| tw.band.class() == BandClass::MmWave) {
                    Some(hit) => (NetworkKind::MmWave, Some(hit)),
                    None => (
                        NetworkKind::LowBandNsa,
                        layout.best_cell(p, false, |tw| tw.band.class() == BandClass::LowBand),
                    ),
                }
            } else {
                (
                    self.network,
                    layout.best_cell(p, false, |tw| tw.band.class() == BandClass::LowBand),
                )
            };
            share = (share + rng.normal(0.0, 0.03)).clamp(0.15, 0.95);
            if let Some((idx, rsrp)) = cell {
                let budget = if layout.towers[idx].band == mm_band {
                    &mm_budget
                } else {
                    &lb_budget
                };
                let tput = budget.capacity_mbps(rsrp) * share;
                let model = DataPowerModel::lookup(self.ue, network);
                let power = model.power_mw_with_rsrp(Direction::Downlink, tput, rsrp)
                    * (1.0 + rng.normal(0.0, 0.03));
                out.push(WalkingSample {
                    t_s: t,
                    throughput_mbps: tput,
                    rsrp_dbm: rsrp,
                    network,
                    power_mw: power,
                });
            }
            t += dt;
        }
        out
    }

    /// Runs `n_walks` loops (the paper collects 10 per setting) at the
    /// paper's 10 Hz network-log rate.
    pub fn campaign(&self, n_walks: usize, seed: u64) -> Vec<WalkingSample> {
        (0..n_walks)
            .flat_map(|i| self.walk(i, seed, 10.0))
            .collect()
    }
}

/// Which features a power model sees (Fig 15's three variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerFeatures {
    /// Throughput + signal strength (the paper's model).
    ThroughputAndSignal,
    /// Throughput only (prior work, e.g. Huang et al.).
    ThroughputOnly,
    /// Signal strength only (prior work, e.g. Ding et al.).
    SignalOnly,
}

impl PowerFeatures {
    /// Display label matching Fig 15's legend.
    pub fn label(self) -> &'static str {
        match self {
            PowerFeatures::ThroughputAndSignal => "TH+SS",
            PowerFeatures::ThroughputOnly => "TH",
            PowerFeatures::SignalOnly => "SS",
        }
    }
}

/// Builds a model-training dataset from walking samples restricted to
/// `network`, with the chosen feature set; targets are true power in mW.
pub fn to_dataset(
    samples: &[WalkingSample],
    network: NetworkKind,
    features: PowerFeatures,
) -> Dataset {
    let names: Vec<String> = match features {
        PowerFeatures::ThroughputAndSignal => vec!["throughput_mbps".into(), "rsrp_dbm".into()],
        PowerFeatures::ThroughputOnly => vec!["throughput_mbps".into()],
        PowerFeatures::SignalOnly => vec!["rsrp_dbm".into()],
    };
    let mut d = Dataset::new(names, vec![], vec![]);
    for s in samples.iter().filter(|s| s.network == network) {
        let row = match features {
            PowerFeatures::ThroughputAndSignal => vec![s.throughput_mbps, s.rsrp_dbm],
            PowerFeatures::ThroughputOnly => vec![s.throughput_mbps],
            PowerFeatures::SignalOnly => vec![s.rsrp_dbm],
        };
        d.push(row, s.power_mw);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_mlkit::tree::{DecisionTreeRegressor, TreeConfig};
    use fiveg_simcore::stats::mape;

    #[test]
    fn mmwave_campaign_sees_both_clusters() {
        // Fig 13 (Minneapolis): mmWave and low-band clusters in one walk.
        let c = WalkingCampaign {
            ue: UeModel::GalaxyS20Ultra,
            carrier: Carrier::Verizon,
            network: NetworkKind::MmWave,
        };
        let samples = c.campaign(3, 42);
        let mm = samples
            .iter()
            .filter(|s| s.network == NetworkKind::MmWave)
            .count();
        let lb = samples
            .iter()
            .filter(|s| s.network == NetworkKind::LowBandNsa)
            .count();
        assert!(mm > 0 && lb > 0, "mm {mm}, lb {lb}");
        assert!(
            mm as f64 / (mm + lb) as f64 > 0.3,
            "mmWave should dominate LoS walks"
        );
    }

    #[test]
    fn low_band_campaign_is_homogeneous() {
        let c = WalkingCampaign {
            ue: UeModel::GalaxyS20Ultra,
            carrier: Carrier::TMobile,
            network: NetworkKind::LowBandSa,
        };
        let samples = c.campaign(2, 42);
        assert!(!samples.is_empty());
        assert!(samples.iter().all(|s| s.network == NetworkKind::LowBandSa));
    }

    #[test]
    fn power_respects_the_ground_truth_model() {
        let c = WalkingCampaign {
            ue: UeModel::GalaxyS10,
            carrier: Carrier::Verizon,
            network: NetworkKind::MmWave,
        };
        let samples = c.campaign(2, 7);
        let model = DataPowerModel::lookup(UeModel::GalaxyS10, NetworkKind::MmWave);
        for s in samples
            .iter()
            .filter(|s| s.network == NetworkKind::MmWave)
            .take(200)
        {
            let expected =
                model.power_mw_with_rsrp(Direction::Downlink, s.throughput_mbps, s.rsrp_dbm);
            assert!(
                (s.power_mw - expected).abs() / expected < 0.15,
                "sample within noise of truth"
            );
        }
    }

    #[test]
    fn th_ss_model_beats_single_feature_models() {
        // The heart of Fig 15.
        let c = WalkingCampaign {
            ue: UeModel::GalaxyS20Ultra,
            carrier: Carrier::Verizon,
            network: NetworkKind::MmWave,
        };
        let samples = c.campaign(4, 11);
        let mut errors = Vec::new();
        for features in [
            PowerFeatures::ThroughputAndSignal,
            PowerFeatures::ThroughputOnly,
            PowerFeatures::SignalOnly,
        ] {
            let data = to_dataset(&samples, NetworkKind::MmWave, features);
            let mut rng = RngStream::new(11, "split");
            let (train, test) = data.split(0.7, &mut rng);
            let model = DecisionTreeRegressor::fit(&train, &TreeConfig::default());
            let preds = model.predict_all(&test);
            errors.push(mape(&test.targets, &preds));
        }
        let (thss, th, ss) = (errors[0], errors[1], errors[2]);
        assert!(thss < th, "TH+SS {thss} must beat TH {th}");
        assert!(th < ss, "TH {th} must beat SS {ss} on mmWave");
        assert!(thss < 8.0, "TH+SS MAPE should be single-digit: {thss}");
        assert!(ss > 12.0, "SS-only should be poor on mmWave: {ss}");
    }

    #[test]
    fn fig15_settings_have_the_right_labels() {
        let labels: Vec<String> = WalkingCampaign::fig15_settings()
            .iter()
            .map(|c| c.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "S10/VZ/NSA-HB",
                "S20/VZ/NSA-HB",
                "S20/VZ/NSA-LB",
                "S20/TM/NSA-LB",
                "S20/TM/SA-LB"
            ]
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let c = WalkingCampaign::fig15_settings()[0];
        let a = c.campaign(1, 5);
        let b = c.campaign(1, 5);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].power_mw, b[0].power_mw);
    }

    #[test]
    fn dataset_builder_filters_by_network() {
        let c = WalkingCampaign::fig15_settings()[1];
        let samples = c.campaign(2, 3);
        let d = to_dataset(
            &samples,
            NetworkKind::MmWave,
            PowerFeatures::ThroughputAndSignal,
        );
        let total_mm = samples
            .iter()
            .filter(|s| s.network == NetworkKind::MmWave)
            .count();
        assert_eq!(d.len(), total_mm);
        assert_eq!(d.n_features(), 2);
    }
}
