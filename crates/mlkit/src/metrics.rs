//! Evaluation metrics.
//!
//! `MAPE` (the paper's power-model metric, Fig 15/16) lives in
//! `fiveg_simcore::stats`; this module adds classification measures.

/// Fraction of matching labels.
///
/// # Panics
/// Panics on length mismatch or empty inputs.
pub fn accuracy(actual: &[usize], predicted: &[usize]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "accuracy: length mismatch");
    assert!(!actual.is_empty(), "accuracy: empty inputs");
    actual.iter().zip(predicted).filter(|(a, p)| a == p).count() as f64 / actual.len() as f64
}

/// Confusion counts for a binary problem: `(tp, fp, tn, fn)` with class 1
/// treated as positive.
pub fn binary_confusion(actual: &[usize], predicted: &[usize]) -> (usize, usize, usize, usize) {
    assert_eq!(actual.len(), predicted.len(), "confusion: length mismatch");
    let mut tp = 0;
    let mut fp = 0;
    let mut tn = 0;
    let mut fal_n = 0;
    for (&a, &p) in actual.iter().zip(predicted) {
        match (a, p) {
            (1, 1) => tp += 1,
            (0, 1) => fp += 1,
            (0, 0) => tn += 1,
            (1, 0) => fal_n += 1,
            _ => panic!("binary_confusion expects labels in {{0, 1}}"),
        }
    }
    (tp, fp, tn, fal_n)
}

/// Re-export of the regression error used throughout §4.
pub use fiveg_simcore::stats::mape;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 0, 1, 1], &[1, 1, 1, 0]), 0.5);
        assert_eq!(accuracy(&[2, 2], &[2, 2]), 1.0);
    }

    #[test]
    fn confusion_partitions() {
        let (tp, fp, tn, fal_n) = binary_confusion(&[1, 1, 0, 0, 1], &[1, 0, 0, 1, 1]);
        assert_eq!((tp, fp, tn, fal_n), (2, 1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatch() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "labels in")]
    fn confusion_rejects_multiclass() {
        binary_confusion(&[2], &[1]);
    }
}
