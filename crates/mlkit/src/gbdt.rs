//! Gradient-boosted regression trees (squared loss).
//!
//! The stand-in for the Lumos5G GDBT throughput predictor (§5.3): boosting
//! shallow CART regressors on residuals.

use crate::dataset::Dataset;
use crate::tree::{DecisionTreeRegressor, TreeConfig};

/// Gradient-boosting hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Depth of each weak learner.
    pub tree_depth: usize,
    /// Minimum samples per leaf in weak learners.
    pub min_samples_leaf: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_estimators: 80,
            learning_rate: 0.1,
            tree_depth: 3,
            min_samples_leaf: 5,
        }
    }
}

/// A fitted gradient-boosted regressor.
#[derive(Debug, Clone)]
pub struct GbdtRegressor {
    base: f64,
    learning_rate: f64,
    trees: Vec<DecisionTreeRegressor>,
}

impl GbdtRegressor {
    /// Fits the ensemble to `data`.
    ///
    /// # Panics
    /// Panics on an empty dataset or zero estimators.
    pub fn fit(data: &Dataset, cfg: &GbdtConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit an empty dataset");
        assert!(cfg.n_estimators > 0, "need at least one estimator");
        let base = fiveg_simcore::stats::mean(&data.targets);
        let tree_cfg = TreeConfig {
            max_depth: cfg.tree_depth,
            min_samples_leaf: cfg.min_samples_leaf,
            ..TreeConfig::default()
        };
        let mut preds = vec![base; data.len()];
        let mut trees = Vec::with_capacity(cfg.n_estimators);
        let mut residual_data = data.clone();
        for _ in 0..cfg.n_estimators {
            for (i, r) in residual_data.targets.iter_mut().enumerate() {
                *r = data.targets[i] - preds[i];
            }
            let tree = DecisionTreeRegressor::fit(&residual_data, &tree_cfg);
            for (i, p) in preds.iter_mut().enumerate() {
                *p += cfg.learning_rate * tree.predict(&data.features[i]);
            }
            trees.push(tree);
        }
        GbdtRegressor {
            base,
            learning_rate: cfg.learning_rate,
            trees,
        }
    }

    /// Predicts one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Predicts every row of `data`.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        data.features.iter().map(|r| self.predict(r)).collect()
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_simcore::stats::r_squared;
    use fiveg_simcore::RngStream;

    fn wavy(n: usize, seed: u64) -> Dataset {
        let mut rng = RngStream::new(seed, "gbdt");
        let mut d = Dataset::new(vec!["x".into(), "y".into()], vec![], vec![]);
        for _ in 0..n {
            let x = rng.gen_range(0.0..std::f64::consts::TAU);
            let y = rng.gen_range(0.0..1.0);
            d.push(vec![x, y], x.sin() * 5.0 + y * 2.0 + rng.normal(0.0, 0.05));
        }
        d
    }

    #[test]
    fn fits_nonlinear_targets() {
        let data = wavy(3000, 1);
        let model = GbdtRegressor::fit(&data, &GbdtConfig::default());
        let r2 = r_squared(&data.targets, &model.predict_all(&data));
        assert!(r2 > 0.97, "R² {r2}");
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let data = wavy(4000, 2);
        let mut rng = RngStream::new(2, "split");
        let (train, test) = data.split(0.7, &mut rng);
        let model = GbdtRegressor::fit(&train, &GbdtConfig::default());
        let r2 = r_squared(&test.targets, &model.predict_all(&test));
        assert!(r2 > 0.95, "held-out R² {r2}");
    }

    #[test]
    fn boosting_beats_a_single_weak_tree() {
        let data = wavy(2000, 3);
        let weak_cfg = TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        };
        let weak = DecisionTreeRegressor::fit(&data, &weak_cfg);
        let boosted = GbdtRegressor::fit(&data, &GbdtConfig::default());
        let weak_r2 = r_squared(&data.targets, &weak.predict_all(&data));
        let boosted_r2 = r_squared(&data.targets, &boosted.predict_all(&data));
        assert!(boosted_r2 > weak_r2, "{boosted_r2} vs {weak_r2}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let mut d = Dataset::new(vec!["x".into()], vec![], vec![]);
        for i in 0..50 {
            d.push(vec![i as f64], 4.0);
        }
        let model = GbdtRegressor::fit(&d, &GbdtConfig::default());
        assert!((model.predict(&[25.0]) - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one estimator")]
    fn rejects_zero_estimators() {
        let mut d = Dataset::new(vec!["x".into()], vec![], vec![]);
        d.push(vec![0.0], 0.0);
        GbdtRegressor::fit(
            &d,
            &GbdtConfig {
                n_estimators: 0,
                ..GbdtConfig::default()
            },
        );
    }
}
