//! Feature matrices and split utilities.

use fiveg_simcore::RngStream;

/// A dense dataset: one row per sample, one target per row.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature names (column labels), used for interpretable trees.
    pub feature_names: Vec<String>,
    /// Row-major feature matrix.
    pub features: Vec<Vec<f64>>,
    /// Per-row target values (class indices as floats for classification).
    pub targets: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if row lengths are inconsistent with the feature names or the
    /// target count differs from the row count.
    pub fn new(feature_names: Vec<String>, features: Vec<Vec<f64>>, targets: Vec<f64>) -> Self {
        assert_eq!(features.len(), targets.len(), "rows vs targets mismatch");
        for row in &features {
            assert_eq!(row.len(), feature_names.len(), "row width mismatch");
        }
        Dataset {
            feature_names,
            features,
            targets,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Appends one sample.
    ///
    /// # Panics
    /// Panics on a row-width mismatch.
    pub fn push(&mut self, row: Vec<f64>, target: f64) {
        assert_eq!(row.len(), self.feature_names.len(), "row width mismatch");
        self.features.push(row);
        self.targets.push(target);
    }

    /// Splits into `(train, test)` with `train_frac` of samples in train,
    /// shuffled deterministically by `rng` (the paper's 7:3 split).
    ///
    /// # Panics
    /// Panics if `train_frac` is outside `(0, 1)`.
    pub fn split(&self, train_frac: f64, rng: &mut RngStream) -> (Dataset, Dataset) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train_frac must be in (0, 1)"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let n_train = ((self.len() as f64) * train_frac).round() as usize;
        let take = |ids: &[usize]| Dataset {
            feature_names: self.feature_names.clone(),
            features: ids.iter().map(|&i| self.features[i].clone()).collect(),
            targets: ids.iter().map(|&i| self.targets[i]).collect(),
        };
        (take(&idx[..n_train]), take(&idx[n_train..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x".into()], vec![], vec![]);
        for i in 0..n {
            d.push(vec![i as f64], i as f64 * 2.0);
        }
        d
    }

    #[test]
    fn split_partitions_without_loss() {
        let d = toy(100);
        let mut rng = RngStream::new(1, "split");
        let (train, test) = d.split(0.7, &mut rng);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<f64> = train
            .features
            .iter()
            .chain(test.features.iter())
            .map(|r| r[0])
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(50);
        let (a, _) = d.split(0.7, &mut RngStream::new(9, "s"));
        let (b, _) = d.split(0.7, &mut RngStream::new(9, "s"));
        assert_eq!(a.features, b.features);
    }

    #[test]
    #[should_panic(expected = "rows vs targets")]
    fn rejects_mismatched_targets() {
        Dataset::new(vec!["x".into()], vec![vec![1.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_bad_row() {
        let mut d = toy(1);
        d.push(vec![1.0, 2.0], 0.0);
    }
}
