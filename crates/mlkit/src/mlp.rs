//! A small multi-layer perceptron with SGD training.
//!
//! The stand-in for Pensieve's policy network (§5.2): a feed-forward net
//! with ReLU hidden layers and a linear output, trained here by imitation
//! (regression onto oracle action scores). Everything is plain `Vec<f64>`
//! math — no BLAS, no autograd.

use fiveg_simcore::RngStream;

/// One dense layer.
#[derive(Debug, Clone)]
struct Layer {
    /// `weights[o][i]`: input `i` → output `o`.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut RngStream) -> Self {
        // He initialization for ReLU nets.
        let scale = (2.0 / inputs as f64).sqrt();
        Layer {
            weights: (0..outputs)
                .map(|_| (0..inputs).map(|_| rng.normal(0.0, scale)).collect())
                .collect(),
            biases: vec![0.0; outputs],
        }
    }

    fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(w, b)| w.iter().zip(input).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
            .collect()
    }
}

/// A feed-forward network: ReLU hidden layers, linear output.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Creates a network with the given layer sizes, e.g. `&[8, 32, 16, 6]`.
    ///
    /// # Panics
    /// Panics with fewer than two sizes or any zero size.
    pub fn new(sizes: &[usize], rng: &mut RngStream) -> Self {
        assert!(sizes.len() >= 2, "need input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        Mlp {
            layers: sizes
                .windows(2)
                .map(|w| Layer::new(w[0], w[1], rng))
                .collect(),
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].weights[0].len()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").biases.len()
    }

    /// Forward pass; hidden layers ReLU, output linear.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let n = self.layers.len();
        let mut x = input.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(&x);
            if i + 1 < n {
                for v in &mut x {
                    *v = v.max(0.0);
                }
            }
        }
        x
    }

    /// The argmax of the forward pass — the policy's chosen action.
    pub fn act(&self, input: &[f64]) -> usize {
        let out = self.forward(input);
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite outputs"))
            .map(|(i, _)| i)
            .expect("non-empty output")
    }

    /// One SGD step on a single `(input, target)` pair with squared loss;
    /// returns the loss before the update.
    pub fn train_step(&mut self, input: &[f64], target: &[f64], lr: f64) -> f64 {
        assert_eq!(target.len(), self.output_dim(), "target dimension mismatch");
        // Forward, keeping activations.
        let n = self.layers.len();
        let mut activations = vec![input.to_vec()];
        let mut pre_acts = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(activations.last().expect("non-empty"));
            pre_acts.push(z.clone());
            let a = if i + 1 < n {
                z.iter().map(|v| v.max(0.0)).collect()
            } else {
                z
            };
            activations.push(a);
        }
        let output = activations.last().expect("non-empty").clone();
        let loss: f64 = output
            .iter()
            .zip(target)
            .map(|(o, t)| (o - t).powi(2))
            .sum::<f64>()
            / output.len() as f64;

        // Backward.
        let mut delta: Vec<f64> = output
            .iter()
            .zip(target)
            .map(|(o, t)| 2.0 * (o - t) / output.len() as f64)
            .collect();
        for li in (0..n).rev() {
            // ReLU derivative for hidden layers (output layer is linear).
            if li + 1 < n {
                for (d, z) in delta.iter_mut().zip(&pre_acts[li]) {
                    if *z <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            let input_act = activations[li].clone();
            // Gradient wrt the previous activation, before updating weights.
            let mut prev_delta = vec![0.0; input_act.len()];
            for (o, d) in delta.iter().enumerate() {
                for (i, pd) in prev_delta.iter_mut().enumerate() {
                    *pd += self.layers[li].weights[o][i] * d;
                }
            }
            for (o, d) in delta.iter().enumerate() {
                for (i, &a) in input_act.iter().enumerate() {
                    self.layers[li].weights[o][i] -= lr * d * a;
                }
                self.layers[li].biases[o] -= lr * d;
            }
            delta = prev_delta;
        }
        loss
    }

    /// Trains over the dataset for `epochs` passes (deterministic shuffling
    /// via `rng`); returns the final mean loss.
    pub fn train(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        epochs: usize,
        lr: f64,
        rng: &mut RngStream,
    ) -> f64 {
        assert_eq!(inputs.len(), targets.len(), "inputs vs targets mismatch");
        assert!(!inputs.is_empty(), "cannot train on an empty dataset");
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        let mut last_loss = f64::NAN;
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0;
            for &i in &order {
                total += self.train_step(&inputs[i], &targets[i], lr);
            }
            last_loss = total / inputs.len() as f64;
        }
        last_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        let mut rng = RngStream::new(1, "mlp");
        let net = Mlp::new(&[4, 8, 3], &mut rng);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.forward(&[0.0; 4]).len(), 3);
    }

    #[test]
    fn learns_a_linear_map() {
        let mut rng = RngStream::new(2, "mlp");
        let mut net = Mlp::new(&[2, 16, 1], &mut rng);
        let inputs: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.uniform(), rng.uniform()])
            .collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![x[0] + 2.0 * x[1]]).collect();
        let loss = net.train(&inputs, &targets, 200, 0.01, &mut rng);
        assert!(loss < 1e-3, "final loss {loss}");
        let pred = net.forward(&[0.5, 0.25])[0];
        assert!((pred - 1.0).abs() < 0.1, "pred {pred}");
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let mut rng = RngStream::new(3, "mlp");
        let mut net = Mlp::new(&[2, 16, 8, 2], &mut rng);
        let inputs: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let targets: Vec<Vec<f64>> = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        net.train(&inputs, &targets, 3000, 0.05, &mut rng);
        assert_eq!(net.act(&[0.0, 0.0]), 0);
        assert_eq!(net.act(&[1.0, 0.0]), 1);
        assert_eq!(net.act(&[0.0, 1.0]), 1);
        assert_eq!(net.act(&[1.0, 1.0]), 0);
    }

    #[test]
    fn training_is_deterministic() {
        let build = || {
            let mut rng = RngStream::new(4, "mlp");
            let mut net = Mlp::new(&[2, 8, 1], &mut rng);
            let inputs = vec![vec![0.1, 0.9], vec![0.8, 0.2]];
            let targets = vec![vec![1.0], vec![0.0]];
            net.train(&inputs, &targets, 50, 0.05, &mut rng);
            net.forward(&[0.5, 0.5])[0]
        };
        assert_eq!(build().to_bits(), build().to_bits());
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn rejects_bad_input_shape() {
        let mut rng = RngStream::new(5, "mlp");
        let net = Mlp::new(&[3, 2], &mut rng);
        net.forward(&[1.0]);
    }
}
