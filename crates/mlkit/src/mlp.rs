//! A small multi-layer perceptron with SGD training.
//!
//! The stand-in for Pensieve's policy network (§5.2): a feed-forward net
//! with ReLU hidden layers and a linear output, trained here by imitation
//! (regression onto oracle action scores). Everything is plain `Vec<f64>`
//! math — no BLAS, no autograd.

use fiveg_simcore::RngStream;

/// One dense layer.
#[derive(Debug, Clone)]
struct Layer {
    /// `weights[o][i]`: input `i` → output `o`.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut RngStream) -> Self {
        // He initialization for ReLU nets.
        let scale = (2.0 / inputs as f64).sqrt();
        Layer {
            weights: (0..outputs)
                .map(|_| (0..inputs).map(|_| rng.normal(0.0, scale)).collect())
                .collect(),
            biases: vec![0.0; outputs],
        }
    }

    fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.forward_into(input, &mut out);
        out
    }

    /// [`Layer::forward`] into a reused buffer: same inner products, same
    /// summation order, no allocation when `out` has capacity.
    fn forward_into(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.weights
                .iter()
                .zip(&self.biases)
                .map(|(w, b)| w.iter().zip(input).map(|(wi, xi)| wi * xi).sum::<f64>() + b),
        );
    }
}

/// Reusable per-step training buffers: one SGD step on the pensieve-sized
/// nets costs ~10 small `Vec` allocations if taken naively, which rivals
/// the arithmetic itself. [`Mlp::train`] allocates this once and reuses it
/// for every step; the arithmetic (and therefore the trained weights) is
/// bit-identical to the allocating path.
#[derive(Debug, Default)]
struct TrainScratch {
    /// `activations[0]` = input; `activations[i + 1]` = layer `i` output.
    activations: Vec<Vec<f64>>,
    /// Pre-activation values per layer (for the ReLU derivative).
    pre_acts: Vec<Vec<f64>>,
    /// Backprop error for the current layer.
    delta: Vec<f64>,
    /// Backprop error for the previous layer.
    prev_delta: Vec<f64>,
}

/// A feed-forward network: ReLU hidden layers, linear output.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Creates a network with the given layer sizes, e.g. `&[8, 32, 16, 6]`.
    ///
    /// # Panics
    /// Panics with fewer than two sizes or any zero size.
    pub fn new(sizes: &[usize], rng: &mut RngStream) -> Self {
        assert!(sizes.len() >= 2, "need input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        Mlp {
            layers: sizes
                .windows(2)
                .map(|w| Layer::new(w[0], w[1], rng))
                .collect(),
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].weights[0].len()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").biases.len()
    }

    /// Forward pass; hidden layers ReLU, output linear.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let n = self.layers.len();
        let mut x = input.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(&x);
            if i + 1 < n {
                for v in &mut x {
                    *v = v.max(0.0);
                }
            }
        }
        x
    }

    /// The argmax of the forward pass — the policy's chosen action.
    pub fn act(&self, input: &[f64]) -> usize {
        let out = self.forward(input);
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite outputs"))
            .map(|(i, _)| i)
            .expect("non-empty output")
    }

    /// One SGD step on a single `(input, target)` pair with squared loss;
    /// returns the loss before the update.
    pub fn train_step(&mut self, input: &[f64], target: &[f64], lr: f64) -> f64 {
        self.train_step_with(input, target, lr, &mut TrainScratch::default())
    }

    /// [`Mlp::train_step`] against caller-owned scratch buffers.
    fn train_step_with(
        &mut self,
        input: &[f64],
        target: &[f64],
        lr: f64,
        s: &mut TrainScratch,
    ) -> f64 {
        assert_eq!(target.len(), self.output_dim(), "target dimension mismatch");
        // Forward, keeping activations.
        let n = self.layers.len();
        s.activations.resize_with(n + 1, Vec::new);
        s.pre_acts.resize_with(n, Vec::new);
        s.activations[0].clear();
        s.activations[0].extend_from_slice(input);
        for i in 0..n {
            let (done, rest) = s.activations.split_at_mut(i + 1);
            self.layers[i].forward_into(&done[i], &mut s.pre_acts[i]);
            let a = &mut rest[0];
            a.clear();
            if i + 1 < n {
                a.extend(s.pre_acts[i].iter().map(|v| v.max(0.0)));
            } else {
                a.extend_from_slice(&s.pre_acts[i]);
            }
        }
        let output = &s.activations[n];
        let loss: f64 = output
            .iter()
            .zip(target)
            .map(|(o, t)| (o - t).powi(2))
            .sum::<f64>()
            / output.len() as f64;

        // Backward.
        s.delta.clear();
        s.delta.extend(
            output
                .iter()
                .zip(target)
                .map(|(o, t)| 2.0 * (o - t) / output.len() as f64),
        );
        for li in (0..n).rev() {
            // ReLU derivative for hidden layers (output layer is linear).
            if li + 1 < n {
                for (d, z) in s.delta.iter_mut().zip(&s.pre_acts[li]) {
                    if *z <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            let input_act = &s.activations[li];
            // Gradient wrt the previous activation, before updating weights.
            s.prev_delta.clear();
            s.prev_delta.resize(input_act.len(), 0.0);
            for (o, d) in s.delta.iter().enumerate() {
                for (i, pd) in s.prev_delta.iter_mut().enumerate() {
                    *pd += self.layers[li].weights[o][i] * d;
                }
            }
            for (o, d) in s.delta.iter().enumerate() {
                for (i, &a) in input_act.iter().enumerate() {
                    self.layers[li].weights[o][i] -= lr * d * a;
                }
                self.layers[li].biases[o] -= lr * d;
            }
            std::mem::swap(&mut s.delta, &mut s.prev_delta);
        }
        loss
    }

    /// Trains over the dataset for `epochs` passes (deterministic shuffling
    /// via `rng`); returns the final mean loss.
    pub fn train(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        epochs: usize,
        lr: f64,
        rng: &mut RngStream,
    ) -> f64 {
        assert_eq!(inputs.len(), targets.len(), "inputs vs targets mismatch");
        assert!(!inputs.is_empty(), "cannot train on an empty dataset");
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        let mut last_loss = f64::NAN;
        let mut scratch = TrainScratch::default();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0;
            for &i in &order {
                // One budget event per SGD step: training is the hot loop
                // of the Pensieve experiments, and charging here is what
                // makes them visible to the progress watchdog and
                // killable by deadlines/interrupts mid-epoch.
                fiveg_simcore::budget::charge(1);
                total += self.train_step_with(&inputs[i], &targets[i], lr, &mut scratch);
            }
            last_loss = total / inputs.len() as f64;
        }
        last_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        let mut rng = RngStream::new(1, "mlp");
        let net = Mlp::new(&[4, 8, 3], &mut rng);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.forward(&[0.0; 4]).len(), 3);
    }

    #[test]
    fn learns_a_linear_map() {
        let mut rng = RngStream::new(2, "mlp");
        let mut net = Mlp::new(&[2, 16, 1], &mut rng);
        let inputs: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.uniform(), rng.uniform()])
            .collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![x[0] + 2.0 * x[1]]).collect();
        let loss = net.train(&inputs, &targets, 200, 0.01, &mut rng);
        assert!(loss < 1e-3, "final loss {loss}");
        let pred = net.forward(&[0.5, 0.25])[0];
        assert!((pred - 1.0).abs() < 0.1, "pred {pred}");
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let mut rng = RngStream::new(3, "mlp");
        let mut net = Mlp::new(&[2, 16, 8, 2], &mut rng);
        let inputs: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let targets: Vec<Vec<f64>> = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        net.train(&inputs, &targets, 3000, 0.05, &mut rng);
        assert_eq!(net.act(&[0.0, 0.0]), 0);
        assert_eq!(net.act(&[1.0, 0.0]), 1);
        assert_eq!(net.act(&[0.0, 1.0]), 1);
        assert_eq!(net.act(&[1.0, 1.0]), 0);
    }

    #[test]
    fn training_is_deterministic() {
        let build = || {
            let mut rng = RngStream::new(4, "mlp");
            let mut net = Mlp::new(&[2, 8, 1], &mut rng);
            let inputs = vec![vec![0.1, 0.9], vec![0.8, 0.2]];
            let targets = vec![vec![1.0], vec![0.0]];
            net.train(&inputs, &targets, 50, 0.05, &mut rng);
            net.forward(&[0.5, 0.5])[0]
        };
        assert_eq!(build().to_bits(), build().to_bits());
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn rejects_bad_input_shape() {
        let mut rng = RngStream::new(5, "mlp");
        let net = Mlp::new(&[3, 2], &mut rng);
        net.forward(&[1.0]);
    }
}
