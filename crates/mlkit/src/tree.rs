//! CART decision trees: regression (variance reduction) and classification
//! (Gini), with bottom-up reduced-error post-pruning and feature
//! importances.
//!
//! These power the paper's three tree applications: the TH+SS power model
//! (Decision Tree Regression, §4.5), software-power-monitor calibration
//! (§4.6), and the interpretable 4G/5G interface-selection classifiers
//! M1–M5 whose pruned structure Fig 22 draws.

use crate::dataset::Dataset;

/// Hyper-parameters shared by both tree types.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum impurity decrease to accept a split.
    pub min_impurity_decrease: f64,
    /// Maximum candidate thresholds evaluated per feature (quantiles).
    pub max_thresholds: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_leaf: 5,
            min_impurity_decrease: 1e-9,
            max_thresholds: 64,
        }
    }
}

/// A tree node (arena-indexed).
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
        n: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
        /// Impurity decrease achieved by this split (for importances).
        gain: f64,
        /// Leaf value this node would take if pruned.
        fallback: f64,
        n: usize,
    },
}

/// Shared tree structure.
#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl Tree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value, .. } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Indices of nodes reachable from the root (pruning orphans arena
    /// entries, which must not be counted).
    fn reachable(&self) -> Vec<usize> {
        let mut stack = vec![0usize];
        let mut out = Vec::new();
        while let Some(idx) = stack.pop() {
            out.push(idx);
            if let Node::Split { left, right, .. } = &self.nodes[idx] {
                stack.push(*left);
                stack.push(*right);
            }
        }
        out
    }

    /// Normalized total impurity decrease per feature.
    fn importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for idx in self.reachable() {
            if let Node::Split {
                feature, gain, n, ..
            } = &self.nodes[idx]
            {
                imp[*feature] += gain * *n as f64;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    fn depth_from(&self, idx: usize) -> usize {
        match &self.nodes[idx] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => {
                1 + self.depth_from(*left).max(self.depth_from(*right))
            }
        }
    }

    fn n_leaves(&self) -> usize {
        self.reachable()
            .into_iter()
            .filter(|&i| matches!(self.nodes[i], Node::Leaf { .. }))
            .count()
    }

    /// The sample count of the smallest reachable leaf (what the
    /// `min_samples_leaf` constraint actually produced).
    fn min_leaf_n(&self) -> usize {
        self.reachable()
            .into_iter()
            .filter_map(|i| match self.nodes[i] {
                Node::Leaf { n, .. } => Some(n),
                Node::Split { .. } => None,
            })
            .min()
            .unwrap_or(0)
    }
}

/// Candidate split thresholds for a feature: quantiles of the observed
/// values, midpointed.
fn candidate_thresholds(values: &mut Vec<f64>, max_thresholds: usize) -> Vec<f64> {
    // `total_cmp` + unstable sort: ~2× faster than a stable
    // `partial_cmp` sort and observationally identical here — the inputs
    // are finite, equal finite values are bit-identical (so instability
    // cannot reorder anything observable), and the one total_cmp quirk,
    // ordering -0.0 before +0.0, is invisible because dedup merges the
    // pair and both compare identically as thresholds and average
    // identically as interval endpoints.
    values.sort_unstable_by(f64::total_cmp);
    values.dedup();
    if values.len() < 2 {
        return Vec::new();
    }
    let n_cand = (values.len() - 1).min(max_thresholds);
    (0..n_cand)
        .map(|i| {
            // Even coverage of the gap list.
            let pos = (i as f64 + 0.5) / n_cand as f64 * (values.len() - 1) as f64;
            let j = pos.floor() as usize;
            (values[j] + values[j + 1]) / 2.0
        })
        .collect()
}

/// Leaf statistic + impurity function abstraction: regression uses
/// (mean, variance·n); classification uses (majority, gini·n).
trait Criterion {
    /// Leaf prediction for the target subset.
    fn leaf_value(targets: &[f64]) -> f64;
    /// Total impurity (already multiplied by n) of the subset.
    fn impurity_n(targets: &[f64]) -> f64;

    /// `(impurity_n(left), impurity_n(right))` for the partition of
    /// `(feat, tgt)` at `thr`, or `None` when a side falls under
    /// `min_leaf`. The default materializes both sides and calls
    /// [`Criterion::impurity_n`] — criteria with a cheaper evaluation
    /// override it, but every override must accumulate in the *same
    /// element order* as the materialized path so the returned impurities
    /// (and therefore the fitted tree) are bit-identical.
    fn split_impurities(
        feat: &[f64],
        tgt: &[f64],
        thr: f64,
        min_leaf: usize,
    ) -> Option<(f64, f64)> {
        let (mut lt, mut rt) = (Vec::new(), Vec::new());
        for (x, t) in feat.iter().zip(tgt) {
            if *x < thr {
                lt.push(*t);
            } else {
                rt.push(*t);
            }
        }
        if lt.len() < min_leaf || rt.len() < min_leaf {
            return None;
        }
        Some((Self::impurity_n(&lt), Self::impurity_n(&rt)))
    }

    /// [`Criterion::split_impurities`] for every candidate threshold of
    /// one feature. The default evaluates thresholds one by one; criteria
    /// that can amortize the column scans across thresholds override it.
    /// Overrides must produce, per threshold, exactly the per-threshold
    /// result — same accumulators, same element order — so the split
    /// search is bit-identical however the batch is computed.
    fn split_impurities_batch(
        feat: &[f64],
        tgt: &[f64],
        thrs: &[f64],
        min_leaf: usize,
    ) -> Vec<Option<(f64, f64)>> {
        thrs.iter()
            .map(|&thr| Self::split_impurities(feat, tgt, thr, min_leaf))
            .collect()
    }
}

struct VarianceCriterion;
impl Criterion for VarianceCriterion {
    fn leaf_value(targets: &[f64]) -> f64 {
        fiveg_simcore::stats::mean(targets)
    }
    fn impurity_n(targets: &[f64]) -> f64 {
        if targets.is_empty() {
            return 0.0;
        }
        let m = fiveg_simcore::stats::mean(targets);
        targets.iter().map(|t| (t - m).powi(2)).sum()
    }

    /// Zero-allocation two-pass evaluation: pass one accumulates each
    /// side's target sum (the additions hit each accumulator in exactly
    /// the order the materialized vectors would have summed, so the means
    /// match [`fiveg_simcore::stats::mean`] bit-for-bit), pass two
    /// accumulates the squared deviations in the same order. This is the
    /// campaign's hottest loop — the power-model DTR fits of Fig 15/16
    /// evaluate it ~64 thresholds × features × nodes times over ~80 k
    /// rows — and skipping the two `Vec` builds per threshold is worth
    /// ~3× on the whole fit.
    fn split_impurities(
        feat: &[f64],
        tgt: &[f64],
        thr: f64,
        min_leaf: usize,
    ) -> Option<(f64, f64)> {
        // Branchless accumulation: `x < thr` is data-dependent and
        // effectively random in row order, so a branchy loop spends most
        // of its time in mispredictions. Masking with 0.0/1.0 instead is
        // bit-transparent: the masked-out side adds `±0.0`, and IEEE-754
        // addition of a zero is an identity on these accumulators (an
        // accumulator that starts at +0.0 can never become -0.0, and
        // `s + ±0.0 == s` for every other value), so each side's sum sees
        // exactly the additions — in exactly the order — that summing a
        // materialized side vector would perform.
        let (mut lsum, mut rsum) = (0.0f64, 0.0f64);
        let mut ln = 0usize;
        for (&x, &t) in feat.iter().zip(tgt) {
            let m = f64::from(u8::from(x < thr));
            lsum += m * t;
            rsum += (1.0 - m) * t;
            ln += usize::from(x < thr);
        }
        let rn = feat.len() - ln;
        if ln < min_leaf || rn < min_leaf {
            return None;
        }
        // Guard the degenerate empty side (reachable only when
        // `min_leaf == 0`): a 0/0 mean would poison the masked pass with
        // NaN·0.0; any finite stand-in keeps the side's accumulator at
        // the 0.0 that `impurity_n(&[])` reports.
        let lm = if ln == 0 { 0.0 } else { lsum / ln as f64 };
        let rm = if rn == 0 { 0.0 } else { rsum / rn as f64 };
        let (mut li, mut ri) = (0.0f64, 0.0f64);
        for (&x, &t) in feat.iter().zip(tgt) {
            let m = f64::from(u8::from(x < thr));
            let dl = t - lm;
            let dr = t - rm;
            li += m * (dl * dl);
            ri += (1.0 - m) * (dr * dr);
        }
        Some((li, ri))
    }

    /// All thresholds of a feature in two passes over the column instead
    /// of two passes *per threshold*. Every threshold keeps its own
    /// accumulator set, fed in element order by the same masked additions
    /// as [`VarianceCriterion::split_impurities`] — per threshold the
    /// accumulators see the identical operation sequence, so each entry of
    /// the result is bit-for-bit the per-threshold answer. The win is
    /// memory traffic and instruction-level parallelism: the per-threshold
    /// path re-streams an ~80 k-row column 2×64 times with one
    /// latency-bound add chain, while this walks it twice with 64
    /// independent chains the CPU can overlap.
    fn split_impurities_batch(
        feat: &[f64],
        tgt: &[f64],
        thrs: &[f64],
        min_leaf: usize,
    ) -> Vec<Option<(f64, f64)>> {
        let k = thrs.len();
        let (mut lsum, mut rsum) = (vec![0.0f64; k], vec![0.0f64; k]);
        let mut ln = vec![0usize; k];
        for (&x, &t) in feat.iter().zip(tgt) {
            for ((thr, ls), (rs, n)) in thrs.iter().zip(&mut lsum).zip(rsum.iter_mut().zip(&mut ln))
            {
                let m = f64::from(u8::from(x < *thr));
                *ls += m * t;
                *rs += (1.0 - m) * t;
                *n += usize::from(x < *thr);
            }
        }
        // Means per threshold, with the same empty-side NaN guard as the
        // single-threshold path (thresholds already known to fail
        // `min_leaf` still flow through pass two with a finite stand-in
        // mean; their results are discarded below).
        let lm: Vec<f64> = lsum
            .iter()
            .zip(&ln)
            .map(|(s, &n)| if n == 0 { 0.0 } else { s / n as f64 })
            .collect();
        let rm: Vec<f64> = rsum
            .iter()
            .zip(&ln)
            .map(|(s, &n)| {
                let rn = feat.len() - n;
                if rn == 0 {
                    0.0
                } else {
                    s / rn as f64
                }
            })
            .collect();
        let (mut li, mut ri) = (vec![0.0f64; k], vec![0.0f64; k]);
        for (&x, &t) in feat.iter().zip(tgt) {
            for ((thr, (l, r)), (lmu, rmu)) in thrs
                .iter()
                .zip(li.iter_mut().zip(&mut ri))
                .zip(lm.iter().zip(&rm))
            {
                let m = f64::from(u8::from(x < *thr));
                let dl = t - lmu;
                let dr = t - rmu;
                *l += m * (dl * dl);
                *r += (1.0 - m) * (dr * dr);
            }
        }
        (0..k)
            .map(|i| {
                let rn = feat.len() - ln[i];
                if ln[i] < min_leaf || rn < min_leaf {
                    None
                } else {
                    Some((li[i], ri[i]))
                }
            })
            .collect()
    }
}

struct GiniCriterion;
impl Criterion for GiniCriterion {
    fn leaf_value(targets: &[f64]) -> f64 {
        // Majority class; count ties break toward the smaller class id so
        // the tree is identical run-to-run (HashMap iteration order is not).
        let mut counts = std::collections::BTreeMap::new();
        for &t in targets {
            *counts.entry(t as i64).or_insert(0usize) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(k, c)| (c, std::cmp::Reverse(k)))
            .map(|(k, _)| k as f64)
            .unwrap_or(0.0)
    }
    fn impurity_n(targets: &[f64]) -> f64 {
        if targets.is_empty() {
            return 0.0;
        }
        let mut counts = std::collections::BTreeMap::new();
        for &t in targets {
            *counts.entry(t as i64).or_insert(0usize) += 1;
        }
        let n = targets.len() as f64;
        let gini = 1.0
            - counts
                .values()
                .map(|&c| (c as f64 / n).powi(2))
                .sum::<f64>();
        gini * n
    }
}

fn build<C: Criterion>(
    data: &Dataset,
    rows: Vec<usize>,
    depth: usize,
    cfg: &TreeConfig,
    nodes: &mut Vec<Node>,
) -> usize {
    let targets: Vec<f64> = rows.iter().map(|&i| data.targets[i]).collect();
    let leaf_value = C::leaf_value(&targets);
    let node_impurity = C::impurity_n(&targets);

    let make_leaf = |nodes: &mut Vec<Node>| {
        nodes.push(Node::Leaf {
            value: leaf_value,
            n: rows.len(),
        });
        nodes.len() - 1
    };

    if depth >= cfg.max_depth
        || rows.len() < 2 * cfg.min_samples_leaf
        || node_impurity <= f64::EPSILON
    {
        return make_leaf(nodes);
    }

    // Find the best split. The feature column is gathered into a
    // contiguous scratch once per (node, feature) — the threshold loop
    // then scans cache-friendly slices instead of chasing the row-major
    // `Vec<Vec<f64>>` per candidate. One budget charge per column scan
    // keeps the campaign's heaviest loops visible to the cancellation
    // plane (a deadline or interrupt lands between scans, not after the
    // whole fit).
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for f in 0..data.n_features() {
        let col: Vec<f64> = rows.iter().map(|&i| data.features[i][f]).collect();
        let mut vals = col.clone();
        fiveg_simcore::budget::charge(rows.len() as u64);
        let thrs = candidate_thresholds(&mut vals, cfg.max_thresholds);
        let imps = C::split_impurities_batch(&col, &targets, &thrs, cfg.min_samples_leaf);
        for (thr, imp) in thrs.into_iter().zip(imps) {
            let Some((il, ir)) = imp else {
                continue;
            };
            let gain = node_impurity - il - ir;
            if gain > cfg.min_impurity_decrease * rows.len() as f64
                && best.is_none_or(|(_, _, g)| gain > g)
            {
                best = Some((f, thr, gain));
            }
        }
    }

    let Some((feature, threshold, gain)) = best else {
        return make_leaf(nodes);
    };

    let (mut left_rows, mut right_rows) = (Vec::new(), Vec::new());
    for &i in &rows {
        if data.features[i][feature] < threshold {
            left_rows.push(i);
        } else {
            right_rows.push(i);
        }
    }
    let n = rows.len();
    drop(rows);
    // Reserve our slot before children so the root stays at index 0.
    nodes.push(Node::Leaf { value: 0.0, n: 0 });
    let me = nodes.len() - 1;
    let left = build::<C>(data, left_rows, depth + 1, cfg, nodes);
    let right = build::<C>(data, right_rows, depth + 1, cfg, nodes);
    nodes[me] = Node::Split {
        feature,
        threshold,
        left,
        right,
        gain: gain / n as f64,
        fallback: leaf_value,
        n,
    };
    me
}

/// Bottom-up reduced-error pruning against a validation set: replace any
/// internal node with its fallback leaf when that does not increase
/// validation error.
fn prune(tree: &mut Tree, val: &Dataset, classify: bool) {
    // Route every validation row to the nodes it passes through.
    fn routes(tree: &Tree, row: &[f64]) -> Vec<usize> {
        let mut path = vec![0usize];
        let mut idx = 0usize;
        loop {
            match &tree.nodes[idx] {
                Node::Leaf { .. } => return path,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                    path.push(idx);
                }
            }
        }
    }
    let err = |pred: f64, actual: f64| {
        if classify {
            if (pred - actual).abs() > 0.5 {
                1.0
            } else {
                0.0
            }
        } else {
            (pred - actual).powi(2)
        }
    };
    // Iterate until fixpoint (post-order-ish via repeated sweeps).
    loop {
        let mut changed = false;
        for idx in (0..tree.nodes.len()).rev() {
            let Node::Split {
                left,
                right,
                fallback,
                n,
                ..
            } = tree.nodes[idx].clone()
            else {
                continue;
            };
            // Only prune nodes whose children are both leaves (bottom-up).
            let both_leaves = matches!(tree.nodes[left], Node::Leaf { .. })
                && matches!(tree.nodes[right], Node::Leaf { .. });
            if !both_leaves {
                continue;
            }
            // Validation rows reaching this node.
            let mut subtree_err = 0.0;
            let mut leaf_err = 0.0;
            let mut hits = 0usize;
            for (row, &target) in val.features.iter().zip(&val.targets) {
                if routes(tree, row).contains(&idx) {
                    subtree_err += err(tree.predict_row_from(idx, row), target);
                    leaf_err += err(fallback, target);
                    hits += 1;
                }
            }
            if hits == 0 || leaf_err <= subtree_err {
                tree.nodes[idx] = Node::Leaf { value: fallback, n };
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

impl Tree {
    fn predict_row_from(&self, start: usize, row: &[f64]) -> f64 {
        let mut idx = start;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value, .. } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A human-readable split description (used to render Fig 22).
#[derive(Debug, Clone, PartialEq)]
pub struct SplitDescription {
    /// Feature name.
    pub feature: String,
    /// Threshold (`feature < threshold` goes left).
    pub threshold: f64,
    /// Node depth (root = 0).
    pub depth: usize,
}

fn describe(tree: &Tree, names: &[String]) -> Vec<SplitDescription> {
    fn walk(
        tree: &Tree,
        idx: usize,
        depth: usize,
        names: &[String],
        out: &mut Vec<SplitDescription>,
    ) {
        if let Node::Split {
            feature,
            threshold,
            left,
            right,
            ..
        } = &tree.nodes[idx]
        {
            out.push(SplitDescription {
                feature: names[*feature].clone(),
                threshold: *threshold,
                depth,
            });
            walk(tree, *left, depth + 1, names, out);
            walk(tree, *right, depth + 1, names, out);
        }
    }
    let mut out = Vec::new();
    walk(tree, 0, 0, names, &mut out);
    out
}

/// Decision-tree regressor (variance-reduction CART).
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    tree: Tree,
    feature_names: Vec<String>,
}

impl DecisionTreeRegressor {
    /// Fits a regression tree to `data`.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, cfg: &TreeConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit an empty dataset");
        let mut nodes = Vec::new();
        build::<VarianceCriterion>(data, (0..data.len()).collect(), 0, cfg, &mut nodes);
        DecisionTreeRegressor {
            tree: Tree {
                nodes,
                n_features: data.n_features(),
            },
            feature_names: data.feature_names.clone(),
        }
    }

    /// Predicts a single row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.tree.predict_row(row)
    }

    /// Predicts every row of `data`.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        fiveg_simcore::budget::charge(data.len() as u64);
        data.features.iter().map(|r| self.predict(r)).collect()
    }

    /// Normalized feature importances.
    pub fn importances(&self) -> Vec<f64> {
        self.tree.importances()
    }

    /// The splits of the fitted tree, pre-order.
    pub fn splits(&self) -> Vec<SplitDescription> {
        describe(&self.tree, &self.feature_names)
    }

    /// Sample count of the smallest leaf.
    pub fn min_leaf_samples(&self) -> usize {
        self.tree.min_leaf_n()
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.tree.depth_from(0)
    }
}

/// Decision-tree classifier (Gini CART) with optional post-pruning.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    tree: Tree,
    feature_names: Vec<String>,
}

impl DecisionTreeClassifier {
    /// Fits a classification tree; targets are class indices (0.0, 1.0, …).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, cfg: &TreeConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit an empty dataset");
        let mut nodes = Vec::new();
        build::<GiniCriterion>(data, (0..data.len()).collect(), 0, cfg, &mut nodes);
        DecisionTreeClassifier {
            tree: Tree {
                nodes,
                n_features: data.n_features(),
            },
            feature_names: data.feature_names.clone(),
        }
    }

    /// Bottom-up reduced-error post-pruning against `validation`.
    pub fn prune(&mut self, validation: &Dataset) {
        prune(&mut self.tree, validation, true);
    }

    /// Predicted class index for one row.
    pub fn predict(&self, row: &[f64]) -> usize {
        self.tree.predict_row(row).round() as usize
    }

    /// Predicts every row.
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        fiveg_simcore::budget::charge(data.len() as u64);
        data.features.iter().map(|r| self.predict(r)).collect()
    }

    /// Normalized feature (Gini) importances.
    pub fn importances(&self) -> Vec<f64> {
        self.tree.importances()
    }

    /// The splits of the (possibly pruned) tree, pre-order.
    pub fn splits(&self) -> Vec<SplitDescription> {
        describe(&self.tree, &self.feature_names)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.tree.n_leaves()
    }

    /// Sample count of the smallest leaf.
    pub fn min_leaf_samples(&self) -> usize {
        self.tree.min_leaf_n()
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.tree.depth_from(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_simcore::RngStream;

    fn linear_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = RngStream::new(seed, "data");
        let mut d = Dataset::new(vec!["x".into(), "noise".into()], vec![], vec![]);
        for _ in 0..n {
            let x = rng.gen_range(0.0..10.0);
            let noise_feature = rng.uniform();
            d.push(vec![x, noise_feature], 3.0 * x + rng.normal(0.0, 0.1));
        }
        d
    }

    #[test]
    fn regressor_fits_a_smooth_function() {
        let data = linear_dataset(2000, 1);
        let model = DecisionTreeRegressor::fit(&data, &TreeConfig::default());
        let preds = model.predict_all(&data);
        let r2 = fiveg_simcore::stats::r_squared(&data.targets, &preds);
        assert!(r2 > 0.98, "R² {r2}");
    }

    #[test]
    fn regressor_importance_finds_the_signal() {
        let data = linear_dataset(2000, 2);
        let model = DecisionTreeRegressor::fit(&data, &TreeConfig::default());
        let imp = model.importances();
        assert!(imp[0] > 0.95, "x dominates: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regressor_respects_max_depth() {
        let data = linear_dataset(500, 3);
        let cfg = TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        };
        let model = DecisionTreeRegressor::fit(&data, &cfg);
        assert!(model.depth() <= 3);
    }

    #[test]
    fn regressor_respects_min_samples_leaf_and_names_splits() {
        let data = linear_dataset(500, 11);
        let cfg = TreeConfig {
            min_samples_leaf: 20,
            ..TreeConfig::default()
        };
        let model = DecisionTreeRegressor::fit(&data, &cfg);
        assert!(
            model.min_leaf_samples() >= 20,
            "{}",
            model.min_leaf_samples()
        );
        let splits = model.splits();
        assert!(!splits.is_empty());
        assert!(splits
            .iter()
            .all(|s| s.feature == "x" || s.feature == "noise"));
    }

    fn xor_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = RngStream::new(seed, "xor");
        let mut d = Dataset::new(vec!["a".into(), "b".into()], vec![], vec![]);
        for _ in 0..n {
            let a = rng.uniform();
            let b = rng.uniform();
            let class = ((a > 0.5) ^ (b > 0.5)) as u8 as f64;
            d.push(vec![a, b], class);
        }
        d
    }

    #[test]
    fn classifier_learns_xor() {
        let data = xor_dataset(2000, 4);
        let model = DecisionTreeClassifier::fit(&data, &TreeConfig::default());
        let preds = model.predict_all(&data);
        let acc = preds
            .iter()
            .zip(&data.targets)
            .filter(|(&p, &t)| p == t as usize)
            .count() as f64
            / data.len() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn pruning_shrinks_an_overfit_tree() {
        // Pure noise targets: any split is overfitting.
        let mut rng = RngStream::new(5, "noise");
        let mut d = Dataset::new(vec!["x".into()], vec![], vec![]);
        for _ in 0..400 {
            d.push(vec![rng.uniform()], rng.chance(0.5) as u8 as f64);
        }
        let (train, val) = d.split(0.5, &mut rng);
        let cfg = TreeConfig {
            max_depth: 10,
            min_samples_leaf: 2,
            ..TreeConfig::default()
        };
        let mut model = DecisionTreeClassifier::fit(&train, &cfg);
        let before = model.n_leaves();
        model.prune(&val);
        let after = model.n_leaves();
        assert!(after < before, "pruning must shrink: {before} -> {after}");
    }

    #[test]
    fn pruning_preserves_a_real_signal() {
        let data = xor_dataset(2000, 6);
        let mut rng = RngStream::new(6, "s");
        let (train, val) = data.split(0.7, &mut rng);
        let mut model = DecisionTreeClassifier::fit(&train, &TreeConfig::default());
        model.prune(&val);
        let preds = model.predict_all(&val);
        let acc = preds
            .iter()
            .zip(&val.targets)
            .filter(|(&p, &t)| p == t as usize)
            .count() as f64
            / val.len() as f64;
        assert!(acc > 0.9, "pruned accuracy {acc}");
    }

    #[test]
    fn splits_describe_structure() {
        let data = xor_dataset(1000, 7);
        let model = DecisionTreeClassifier::fit(&data, &TreeConfig::default());
        let splits = model.splits();
        assert!(!splits.is_empty());
        assert_eq!(splits[0].depth, 0);
        assert!(splits.iter().all(|s| s.feature == "a" || s.feature == "b"));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_fit() {
        let d = Dataset::new(vec!["x".into()], vec![], vec![]);
        DecisionTreeRegressor::fit(&d, &TreeConfig::default());
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let mut d = Dataset::new(vec!["x".into()], vec![], vec![]);
        for i in 0..100 {
            d.push(vec![i as f64], 7.0);
        }
        let model = DecisionTreeRegressor::fit(&d, &TreeConfig::default());
        assert_eq!(model.depth(), 0);
        assert_eq!(model.predict(&[55.0]), 7.0);
    }
}
