//! Machine-learning toolkit, built from scratch for the reproduction.
//!
//! The paper uses three model families, all re-implemented here with no
//! external ML dependencies:
//!
//! * **CART decision trees** ([`tree`]) — Decision Tree Regression for the
//!   throughput+signal-strength power model (§4.5) and for software-monitor
//!   calibration (§4.6); a Gini classifier with bottom-up post-pruning for
//!   the web 4G/5G interface selection models M1–M5 (§6.2, Fig 22).
//! * **Gradient-boosted decision trees** ([`gbdt`]) — the Lumos5G-style
//!   mmWave throughput predictor plugged into MPC (§5.3, Fig 18a).
//! * **A small multi-layer perceptron** ([`mlp`]) — the stand-in for
//!   Pensieve's policy network (§5.2), trained by imitation of an MPC
//!   oracle.
//!
//! [`dataset`] holds feature matrices and the seeded 70/30 splits the paper
//! uses; [`metrics`] the evaluation measures (MAPE, accuracy).

pub mod dataset;
pub mod gbdt;
pub mod metrics;
pub mod mlp;
pub mod tree;

pub use dataset::Dataset;
pub use gbdt::GbdtRegressor;
pub use mlp::Mlp;
pub use tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeConfig};
