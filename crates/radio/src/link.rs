//! Link budget: RSRP → achievable PHY throughput.
//!
//! We map RSRP onto a fraction of the cell's peak capacity with a linear
//! ramp in the dB domain between the band's floor and saturation points —
//! a first-order stand-in for the MCS curve — then clamp by the UE modem's
//! ceiling (carrier-aggregation capability, Appendix A.1).

use crate::band::{Band, BandClass, Direction};
use crate::ue::UeModel;
use fiveg_simcore::faults::{self, FaultKind};
use fiveg_simcore::guard;

/// The instantaneous radio link between a UE and its serving cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkState {
    /// Serving band.
    pub band: Band,
    /// Measured RSRP in dBm (after shadowing/blockage).
    pub rsrp_dbm: f64,
    /// Whether the connection runs in SA mode (low-band only; halves
    /// capacity per §3.2 since SA lacks carrier aggregation).
    pub sa: bool,
}

/// Fraction of peak capacity available at `rsrp_dbm` for a band class:
/// 0 at the floor, 1 at saturation, linear in dB between.
pub fn capacity_fraction(class: BandClass, rsrp_dbm: f64) -> f64 {
    let floor = class.rsrp_floor_dbm();
    let sat = class.rsrp_saturation_dbm();
    ((rsrp_dbm - floor) / (sat - floor)).clamp(0.0, 1.0)
}

/// Achievable PHY-layer throughput in Mbps for `ue` on `link` in `dir`.
pub fn link_capacity_mbps(ue: UeModel, link: &LinkState, dir: Direction) -> f64 {
    let class = link.band.class();
    let cell = class.cell_capacity_mbps(dir, link.sa) * capacity_fraction(class, link.rsrp_dbm);
    cell.min(ue.max_throughput_mbps(class, dir))
}

/// A precomputed link budget for a fixed `(ue, band, sa, dir)` tuple.
///
/// The trace generators and transport paths evaluate capacity once per
/// sample over segments where everything but RSRP is constant;
/// [`LinkBudget::capacity_mbps`] reuses the per-segment constants (floor,
/// ramp span, cell peak, UE modem cap) instead of re-deriving them from the
/// band/UE tables each call. The arithmetic mirrors [`link_capacity_mbps`]
/// operation-for-operation, so results are bit-identical (pinned by
/// `budget_matches_link_capacity_exactly`).
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    floor_dbm: f64,
    span_db: f64,
    cell_peak_mbps: f64,
    ue_cap_mbps: f64,
}

impl LinkBudget {
    /// Precomputes the budget for `ue` on `band` (`sa` mode) in `dir`.
    pub fn new(ue: UeModel, band: Band, sa: bool, dir: Direction) -> LinkBudget {
        let class = band.class();
        LinkBudget {
            floor_dbm: class.rsrp_floor_dbm(),
            span_db: class.rsrp_saturation_dbm() - class.rsrp_floor_dbm(),
            cell_peak_mbps: class.cell_capacity_mbps(dir, sa),
            ue_cap_mbps: ue.max_throughput_mbps(class, dir),
        }
    }

    /// Achievable PHY throughput at `rsrp_dbm`, identical to
    /// [`link_capacity_mbps`] on the matching [`LinkState`].
    pub fn capacity_mbps(&self, rsrp_dbm: f64) -> f64 {
        let frac = ((rsrp_dbm - self.floor_dbm) / self.span_db).clamp(0.0, 1.0);
        (self.cell_peak_mbps * frac).min(self.ue_cap_mbps)
    }
}

/// [`link_capacity_mbps`] at simulated time `t_s`: during an ambient
/// blockage-storm fault window, mmWave capacity divides by the storm
/// magnitude (beam tracking thrashes; sub-6 GHz is untouched). Identical to
/// `link_capacity_mbps` when no fault plane is installed.
pub fn link_capacity_mbps_at(ue: UeModel, link: &LinkState, dir: Direction, t_s: f64) -> f64 {
    let cap = link_capacity_mbps(ue, link, dir);
    if guard::enabled() {
        guard::in_range("radio", "rsrp-range", link.rsrp_dbm, -220.0, 0.0, 1e-9, t_s);
        guard::in_range(
            "radio",
            "capacity-bounds",
            cap,
            0.0,
            ue.max_throughput_mbps(link.band.class(), dir),
            1e-9,
            t_s,
        );
    }
    if link.band.class() != BandClass::MmWave {
        return cap;
    }
    match faults::magnitude(FaultKind::BlockageStorm, t_s) {
        Some(m) => cap / m.max(1.0),
        None => cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_is_clamped_ramp() {
        let c = BandClass::MmWave;
        assert_eq!(capacity_fraction(c, -150.0), 0.0);
        assert_eq!(capacity_fraction(c, -40.0), 1.0);
        let mid = (c.rsrp_floor_dbm() + c.rsrp_saturation_dbm()) / 2.0;
        assert!((capacity_fraction(c, mid) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn s20u_hits_3_4_gbps_at_strong_mmwave() {
        let link = LinkState {
            band: Band::N261,
            rsrp_dbm: -70.0,
            sa: false,
        };
        let c = link_capacity_mbps(UeModel::GalaxyS20Ultra, &link, Direction::Downlink);
        assert!((c - 3400.0).abs() < 1.0, "UE-capped at 3.4 Gbps, got {c}");
    }

    #[test]
    fn px5_is_modem_capped_at_2_2_gbps() {
        let link = LinkState {
            band: Band::N261,
            rsrp_dbm: -70.0,
            sa: false,
        };
        let c = link_capacity_mbps(UeModel::Pixel5, &link, Direction::Downlink);
        assert!((c - 2200.0).abs() < 1.0, "got {c}");
    }

    #[test]
    fn sa_halves_low_band_throughput() {
        let nsa = LinkState {
            band: Band::N71,
            rsrp_dbm: -85.0,
            sa: false,
        };
        let sa = LinkState { sa: true, ..nsa };
        let ue = UeModel::GalaxyS20Ultra;
        let c_nsa = link_capacity_mbps(ue, &nsa, Direction::Downlink);
        let c_sa = link_capacity_mbps(ue, &sa, Direction::Downlink);
        assert!((c_sa / c_nsa - 0.5).abs() < 0.05, "{c_sa} vs {c_nsa}");
    }

    #[test]
    fn weak_signal_degrades_capacity() {
        let strong = LinkState {
            band: Band::N261,
            rsrp_dbm: -75.0,
            sa: false,
        };
        let weak = LinkState {
            rsrp_dbm: -104.0,
            ..strong
        };
        let ue = UeModel::GalaxyS10;
        assert!(
            link_capacity_mbps(ue, &weak, Direction::Downlink)
                < 0.5 * link_capacity_mbps(ue, &strong, Direction::Downlink)
        );
    }

    #[test]
    fn budget_matches_link_capacity_exactly() {
        for ue in [UeModel::GalaxyS20Ultra, UeModel::Pixel5, UeModel::GalaxyS10] {
            for band in Band::ALL {
                for sa in [false, true] {
                    for dir in [Direction::Downlink, Direction::Uplink] {
                        let budget = LinkBudget::new(ue, band, sa, dir);
                        let mut rsrp = -140.0;
                        while rsrp <= -40.0 {
                            let link = LinkState {
                                band,
                                rsrp_dbm: rsrp,
                                sa,
                            };
                            assert_eq!(
                                budget.capacity_mbps(rsrp).to_bits(),
                                link_capacity_mbps(ue, &link, dir).to_bits(),
                                "{ue:?} {band:?} sa={sa} {dir:?} rsrp={rsrp}"
                            );
                            rsrp += 0.37;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn uplink_is_far_below_downlink_on_mmwave() {
        let link = LinkState {
            band: Band::N260,
            rsrp_dbm: -70.0,
            sa: false,
        };
        let ue = UeModel::GalaxyS20Ultra;
        let dl = link_capacity_mbps(ue, &link, Direction::Downlink);
        let ul = link_capacity_mbps(ue, &link, Direction::Uplink);
        assert!((200.0..=240.0).contains(&ul), "UL ≈ 220 Mbps (Fig 4): {ul}");
        assert!(dl / ul > 10.0);
    }
}
