//! User-equipment (smartphone) profiles.
//!
//! The paper uses three phones whose network-relevant differences reduce to
//! the modem's carrier-aggregation capability (Appendix A.1, Fig 23) and
//! per-device power-curve parameters (Table 8; modelled in `fiveg-power`):
//!
//! | UE  | modem  | DL CC × 100 MHz | UL CC | observed mmWave DL cap |
//! |-----|--------|-----------------|-------|------------------------|
//! | PX5 | QC X52 | 4               | 1     | ≈2.2 Gbps              |
//! | S10 | QC X50 | 4               | 1     | ≈2.0 Gbps              |
//! | S20U| QC X55 | 8               | 2     | ≈3.4 Gbps              |

use crate::band::{BandClass, Direction};

/// The smartphone models of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UeModel {
    /// Google Pixel 5 (Snapdragon X52 modem, 4CC).
    Pixel5,
    /// Samsung Galaxy S10 5G (Snapdragon X50 modem, 4CC).
    GalaxyS10,
    /// Samsung Galaxy S20 Ultra 5G (Snapdragon X55 modem, 8CC).
    GalaxyS20Ultra,
}

impl UeModel {
    /// Short name used in figures ("PX5", "S10", "S20U").
    pub fn short_name(self) -> &'static str {
        match self {
            UeModel::Pixel5 => "PX5",
            UeModel::GalaxyS10 => "S10",
            UeModel::GalaxyS20Ultra => "S20U",
        }
    }

    /// Modem name.
    pub fn modem(self) -> &'static str {
        match self {
            UeModel::Pixel5 => "Snapdragon X52",
            UeModel::GalaxyS10 => "Snapdragon X50",
            UeModel::GalaxyS20Ultra => "Snapdragon X55",
        }
    }

    /// Number of downlink component carriers on mmWave.
    pub fn mmwave_dl_cc(self) -> u32 {
        match self {
            UeModel::Pixel5 | UeModel::GalaxyS10 => 4,
            UeModel::GalaxyS20Ultra => 8,
        }
    }

    /// Number of uplink component carriers on mmWave.
    pub fn mmwave_ul_cc(self) -> u32 {
        match self {
            UeModel::Pixel5 | UeModel::GalaxyS10 => 1,
            UeModel::GalaxyS20Ultra => 2,
        }
    }

    /// The UE-side throughput ceiling in Mbps for a band class and
    /// direction — the modem/chipset bottleneck that exists regardless of
    /// how strong the cell is.
    pub fn max_throughput_mbps(self, class: BandClass, dir: Direction) -> f64 {
        match (class, dir) {
            (BandClass::MmWave, Direction::Downlink) => match self {
                // 4CC phones observed ≈2.0–2.2 Gbps; 8CC ≈3.4 Gbps (Fig 23).
                UeModel::Pixel5 => 2200.0,
                UeModel::GalaxyS10 => 2000.0,
                UeModel::GalaxyS20Ultra => 3400.0,
            },
            (BandClass::MmWave, Direction::Uplink) => match self {
                UeModel::Pixel5 | UeModel::GalaxyS10 => 130.0,
                UeModel::GalaxyS20Ultra => 230.0,
            },
            // Sub-6 and LTE are cell-limited, not modem-limited, on all
            // three phones; use a generous ceiling.
            (BandClass::LowBand, Direction::Downlink) => 600.0,
            (BandClass::LowBand, Direction::Uplink) => 150.0,
            (BandClass::Lte, Direction::Downlink) => 400.0,
            (BandClass::Lte, Direction::Uplink) => 120.0,
        }
    }

    /// Whether the phone can be rooted for packet capture in our campaigns
    /// (the paper roots PX5 for the Azure and web experiments).
    pub fn rootable(self) -> bool {
        matches!(self, UeModel::Pixel5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s20u_has_double_the_carriers() {
        assert_eq!(UeModel::GalaxyS20Ultra.mmwave_dl_cc(), 8);
        assert_eq!(UeModel::Pixel5.mmwave_dl_cc(), 4);
        assert_eq!(UeModel::GalaxyS20Ultra.mmwave_ul_cc(), 2);
    }

    #[test]
    fn ca_advantage_shows_in_caps() {
        let s20 =
            UeModel::GalaxyS20Ultra.max_throughput_mbps(BandClass::MmWave, Direction::Downlink);
        let px5 = UeModel::Pixel5.max_throughput_mbps(BandClass::MmWave, Direction::Downlink);
        // Fig 23: S20U improves DL by 50-60% over PX5.
        let gain = s20 / px5 - 1.0;
        assert!((0.4..=0.7).contains(&gain), "CA gain {gain}");
    }

    #[test]
    fn only_px5_is_rooted() {
        assert!(UeModel::Pixel5.rootable());
        assert!(!UeModel::GalaxyS20Ultra.rootable());
        assert!(!UeModel::GalaxyS10.rootable());
    }

    #[test]
    fn short_names() {
        assert_eq!(UeModel::Pixel5.short_name(), "PX5");
        assert_eq!(UeModel::GalaxyS10.short_name(), "S10");
        assert_eq!(UeModel::GalaxyS20Ultra.short_name(), "S20U");
    }
}
