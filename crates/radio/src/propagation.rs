//! Path loss, shadowing, and RSRP.
//!
//! We use a close-in (CI) reference path-loss model per band class with
//! calibrated effective transmit powers, plus a spatially correlated
//! log-normal shadowing field. The constants are calibrated so that:
//!
//! * mmWave is strong only within a few hundred metres of a panel and
//!   collapses entirely when blocked (≈30 dB penetration penalty),
//! * low-band (600–850 MHz) covers kilometres ("omnipresent" in the paper's
//!   walking loops),
//! * LTE mid-band sits in between.

use crate::band::{Band, BandClass};
use fiveg_geo::route::Point;
use fiveg_simcore::{guard, telemetry, RngStream};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Free-space path loss at the 1 m reference distance, in dB.
fn fspl_1m_db(freq_ghz: f64) -> f64 {
    32.4 + 20.0 * freq_ghz.log10()
}

/// Per-band constants that the hot path would otherwise recompute on every
/// sample (FSPL involves a `log10` per call; the radio hot paths evaluate
/// it once per tower per step). Values are computed once, by the exact
/// formulas the uncached path uses, so cached and uncached results are
/// bit-identical (pinned by `lut_matches_direct_computation`).
struct BandTables {
    /// [`fspl_1m_db`] of each band's carrier frequency, [`Band::index`]ed.
    fspl_1m_db: [f64; 5],
    /// [`effective_eirp_dbm`] per band, [`Band::index`]ed.
    eirp_dbm: [f64; 5],
}

fn band_tables() -> &'static BandTables {
    static TABLES: OnceLock<BandTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = BandTables {
            fspl_1m_db: [0.0; 5],
            eirp_dbm: [0.0; 5],
        };
        for band in Band::ALL {
            t.fspl_1m_db[band.index()] = fspl_1m_db(band.frequency_ghz());
            t.eirp_dbm[band.index()] = effective_eirp_dbm(band);
        }
        t
    })
}

/// Path-loss exponent for a band class (line-of-sight conditions).
fn path_loss_exponent(class: BandClass) -> f64 {
    match class {
        BandClass::MmWave => 2.9,
        BandClass::LowBand => 3.0,
        BandClass::Lte => 3.2,
    }
}

/// Additional loss when a mmWave link is blocked (body/foliage/building),
/// in dB. Sub-6 bands diffract around obstacles and take no such penalty.
pub fn blockage_loss_db(class: BandClass) -> f64 {
    match class {
        BandClass::MmWave => 30.0,
        BandClass::LowBand | BandClass::Lte => 0.0,
    }
}

/// Calibrated effective EIRP (transmit power + antenna gains, folded into a
/// single constant) per band, in dBm.
fn effective_eirp_dbm(band: Band) -> f64 {
    match band.class() {
        BandClass::MmWave => 35.0,
        BandClass::LowBand => 33.0,
        BandClass::Lte => 49.0,
    }
}

/// Close-in path loss at `distance_m` metres, in dB.
///
/// Distances below 1 m clamp to the reference distance. The per-band FSPL
/// constant comes from the memoized [`band_tables`]; results are
/// bit-identical to [`path_loss_db_uncached`].
pub fn path_loss_db(band: Band, distance_m: f64, blocked: bool) -> f64 {
    let d = distance_m.max(1.0);
    let class = band.class();
    band_tables().fspl_1m_db[band.index()]
        + 10.0 * path_loss_exponent(class) * d.log10()
        + if blocked {
            blockage_loss_db(class)
        } else {
            0.0
        }
}

/// [`path_loss_db`] computed from scratch, bypassing the per-band lookup
/// tables. The equivalence suite pins `path_loss_db == path_loss_db_uncached`
/// over a dense distance/band grid.
pub fn path_loss_db_uncached(band: Band, distance_m: f64, blocked: bool) -> f64 {
    let d = distance_m.max(1.0);
    let class = band.class();
    fspl_1m_db(band.frequency_ghz())
        + 10.0 * path_loss_exponent(class) * d.log10()
        + if blocked {
            blockage_loss_db(class)
        } else {
            0.0
        }
}

/// RSRP in dBm at `distance_m` from the tower, before shadowing, clamped to
/// a physical ceiling of −44 dBm (the strongest value UEs report).
pub fn rsrp_dbm(band: Band, distance_m: f64, blocked: bool) -> f64 {
    (band_tables().eirp_dbm[band.index()] - path_loss_db(band, distance_m, blocked)).min(-44.0)
}

/// Lattice nodes memoized per field before wholesale eviction. A mobile
/// observer only ever straddles a handful of tiles per tower, so even the
/// 40-tower drive corridor stays far below this; the bound only protects
/// pathological access patterns from unbounded growth.
const NODE_CACHE_CAP: usize = 16 * 1024;

/// A deterministic, spatially correlated log-normal shadowing field.
///
/// The field is a bilinear interpolation of i.i.d. standard normals placed
/// on a square lattice (default 50 m pitch), scaled by a per-class σ. Values
/// are a pure function of `(seed, tower_id, position)` so any component —
/// the handoff engine, the trace generator, the power campaign — observes
/// the same radio environment.
///
/// Lattice nodes are memoized in a per-field tile cache: deriving a node's
/// normal burns a string format plus an RNG stream construction, and the
/// hot paths (handoff reselection, walking traces) re-touch the same four
/// tiles for hundreds of consecutive samples. Because a node is a pure
/// function of `(seed, tower, ix, iy)`, the cache is invisible —
/// [`ShadowingField::sample_db_uncached`] pins bit-identical results — and
/// each field owns its cache, so cloned fields and parallel campaigns never
/// share mutable state.
#[derive(Debug)]
pub struct ShadowingField {
    seed: u64,
    /// Lattice pitch in metres (decorrelation distance).
    pub corr_m: f64,
    /// Memoized lattice nodes: `(tower, ix, iy) → unit normal`.
    nodes: RefCell<HashMap<(u64, i64, i64), f64>>,
}

impl Clone for ShadowingField {
    /// Clones the field's identity with a fresh, empty node cache. Nodes
    /// are a pure function of that identity, so warm-vs-cold caches are
    /// observationally identical.
    fn clone(&self) -> Self {
        ShadowingField {
            seed: self.seed,
            corr_m: self.corr_m,
            nodes: RefCell::new(HashMap::new()),
        }
    }
}

impl ShadowingField {
    /// Creates a field with the default 50 m correlation length.
    pub fn new(seed: u64) -> Self {
        ShadowingField {
            seed,
            corr_m: 50.0,
            nodes: RefCell::new(HashMap::new()),
        }
    }

    /// Shadowing standard deviation per band class, in dB.
    pub fn sigma_db(class: BandClass) -> f64 {
        match class {
            BandClass::MmWave => 8.0,
            BandClass::LowBand => 6.0,
            BandClass::Lte => 6.0,
        }
    }

    /// A lattice-node unit normal computed from scratch, deterministic in
    /// `(seed, tower, ix, iy)`.
    fn node_uncached(&self, tower: u64, ix: i64, iy: i64) -> f64 {
        let name = format!("shadow/{tower}/{ix}/{iy}");
        RngStream::new(self.seed, &name).std_normal()
    }

    /// A lattice-node unit normal, served from the tile cache.
    fn node(&self, tower: u64, ix: i64, iy: i64) -> f64 {
        let key = (tower, ix, iy);
        if let Some(&v) = self.nodes.borrow().get(&key) {
            telemetry::count("radio/shadow/hit", 1);
            // Coherence guard: on a deterministic 1-in-64 subset of hits
            // (keyed on the lattice index — no randomness drawn, bounded
            // overhead) recompute the node from scratch and require the
            // cached value to be bit-identical.
            if guard::enabled() && (ix ^ iy) & 63 == 0 {
                guard::check(
                    "radio",
                    "shadow-cache-coherent",
                    v.to_bits() == self.node_uncached(tower, ix, iy).to_bits(),
                    0.0,
                    || format!("cached node {key:?} = {v} diverged from recompute"),
                );
            }
            return v;
        }
        telemetry::count("radio/shadow/miss", 1);
        let v = self.node_uncached(tower, ix, iy);
        let mut nodes = self.nodes.borrow_mut();
        if nodes.len() >= NODE_CACHE_CAP {
            nodes.clear();
        }
        nodes.insert(key, v);
        v
    }

    /// Shadowing in dB experienced from tower `tower_id` at position `p`.
    pub fn sample_db(&self, tower_id: u64, class: BandClass, p: Point) -> f64 {
        self.sample_inner(tower_id, class, p, Self::node)
    }

    /// [`ShadowingField::sample_db`] bypassing the node tile cache. The
    /// equivalence suite pins `sample_db == sample_db_uncached` regardless
    /// of cache state or access order.
    pub fn sample_db_uncached(&self, tower_id: u64, class: BandClass, p: Point) -> f64 {
        self.sample_inner(tower_id, class, p, Self::node_uncached)
    }

    fn sample_inner(
        &self,
        tower_id: u64,
        class: BandClass,
        p: Point,
        node: impl Fn(&Self, u64, i64, i64) -> f64,
    ) -> f64 {
        let gx = p.x / self.corr_m;
        let gy = p.y / self.corr_m;
        let ix = gx.floor() as i64;
        let iy = gy.floor() as i64;
        let fx = gx - ix as f64;
        let fy = gy - iy as f64;
        let v00 = node(self, tower_id, ix, iy);
        let v10 = node(self, tower_id, ix + 1, iy);
        let v01 = node(self, tower_id, ix, iy + 1);
        let v11 = node(self, tower_id, ix + 1, iy + 1);
        let interp = v00 * (1.0 - fx) * (1.0 - fy)
            + v10 * fx * (1.0 - fy)
            + v01 * (1.0 - fx) * fy
            + v11 * fx * fy;
        interp * Self::sigma_db(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_grows_with_distance() {
        for band in [Band::LteMidBand, Band::N71, Band::N261] {
            let near = path_loss_db(band, 50.0, false);
            let far = path_loss_db(band, 500.0, false);
            assert!(far > near + 20.0, "{band:?}: {near} -> {far}");
        }
    }

    #[test]
    fn mmwave_blockage_is_catastrophic() {
        let open = rsrp_dbm(Band::N261, 150.0, false);
        let blocked = rsrp_dbm(Band::N261, 150.0, true);
        assert!((open - blocked - 30.0).abs() < 1e-9);
        assert!(open > BandClass::MmWave.rsrp_floor_dbm(), "usable when LoS");
        assert!(
            blocked < BandClass::MmWave.rsrp_floor_dbm(),
            "dead when blocked"
        );
    }

    #[test]
    fn blockage_does_not_affect_sub6() {
        assert_eq!(
            rsrp_dbm(Band::N71, 1000.0, false),
            rsrp_dbm(Band::N71, 1000.0, true)
        );
    }

    #[test]
    fn low_band_covers_kilometres() {
        // "low-band 5G connectivity was omnipresent" on the walking loop.
        let rsrp = rsrp_dbm(Band::N71, 3000.0, false);
        assert!(
            rsrp > BandClass::LowBand.rsrp_floor_dbm() + 10.0,
            "n71 at 3 km: {rsrp} dBm"
        );
    }

    #[test]
    fn mmwave_range_is_hundreds_of_metres() {
        let at_200 = rsrp_dbm(Band::N261, 200.0, false);
        assert!(at_200 > -95.0, "usable at 200 m: {at_200}");
        let at_3000 = rsrp_dbm(Band::N261, 3000.0, false);
        assert!(
            at_3000 < BandClass::MmWave.rsrp_floor_dbm(),
            "dead at 3 km: {at_3000}"
        );
    }

    #[test]
    fn rsrp_is_clamped_near_the_tower() {
        assert_eq!(rsrp_dbm(Band::N71, 0.0, false), -44.0);
    }

    #[test]
    fn shadowing_is_deterministic_and_continuous() {
        let f = ShadowingField::new(11);
        let p = Point::new(123.0, 456.0);
        assert_eq!(
            f.sample_db(3, BandClass::LowBand, p),
            f.sample_db(3, BandClass::LowBand, p)
        );
        let nearby = Point::new(124.0, 456.0);
        let dv = (f.sample_db(3, BandClass::LowBand, p)
            - f.sample_db(3, BandClass::LowBand, nearby))
        .abs();
        assert!(dv < 2.0, "1 m apart must be correlated, delta {dv}");
    }

    #[test]
    fn shadowing_decorrelates_across_towers_and_space() {
        let f = ShadowingField::new(11);
        let mut distinct = 0;
        for i in 0..20 {
            let p = Point::new(i as f64 * 500.0, 0.0);
            let a = f.sample_db(1, BandClass::Lte, p);
            let b = f.sample_db(2, BandClass::Lte, p);
            if (a - b).abs() > 0.5 {
                distinct += 1;
            }
        }
        assert!(distinct > 10, "towers see independent fields");
    }

    #[test]
    fn lut_matches_direct_computation() {
        for band in Band::ALL {
            assert_eq!(
                band_tables().fspl_1m_db[band.index()].to_bits(),
                fspl_1m_db(band.frequency_ghz()).to_bits(),
                "{band:?} FSPL LUT drifted"
            );
            assert_eq!(
                band_tables().eirp_dbm[band.index()].to_bits(),
                effective_eirp_dbm(band).to_bits(),
                "{band:?} EIRP LUT drifted"
            );
        }
    }

    #[test]
    fn cached_path_loss_is_bit_identical_to_uncached() {
        for band in Band::ALL {
            for blocked in [false, true] {
                let mut d = 0.5;
                while d < 20_000.0 {
                    assert_eq!(
                        path_loss_db(band, d, blocked).to_bits(),
                        path_loss_db_uncached(band, d, blocked).to_bits(),
                        "{band:?} at {d} m (blocked={blocked})"
                    );
                    d *= 1.07;
                }
            }
        }
    }

    #[test]
    fn cached_shadowing_is_bit_identical_regardless_of_access_order() {
        let warm = ShadowingField::new(2021);
        let cold = ShadowingField::new(2021);
        let points: Vec<Point> = (0..400)
            .map(|i| Point::new((i % 23) as f64 * 17.0 - 60.0, (i / 23) as f64 * 31.0 - 45.0))
            .collect();
        // Warm the first field forward, then check both in reverse order:
        // hits and misses must agree with the uncached reference exactly.
        for &p in &points {
            let _ = warm.sample_db(3, BandClass::MmWave, p);
        }
        for &p in points.iter().rev() {
            let reference = warm.sample_db_uncached(3, BandClass::MmWave, p);
            assert_eq!(
                warm.sample_db(3, BandClass::MmWave, p).to_bits(),
                reference.to_bits()
            );
            assert_eq!(
                cold.sample_db(3, BandClass::MmWave, p).to_bits(),
                reference.to_bits()
            );
        }
    }

    #[test]
    fn node_cache_eviction_does_not_change_values() {
        let f = ShadowingField::new(7);
        let p = Point::new(10.0, 10.0);
        let first = f.sample_db(1, BandClass::Lte, p);
        // Flood the cache far past its capacity to force wholesale
        // eviction, then re-sample the original point.
        for i in 0..(NODE_CACHE_CAP as i64 / 4 + 8) {
            let q = Point::new(i as f64 * 50.0 + 25.0, -9_999.0);
            let _ = f.sample_db(1, BandClass::Lte, q);
        }
        assert_eq!(f.sample_db(1, BandClass::Lte, p).to_bits(), first.to_bits());
    }

    #[test]
    fn cloned_field_observes_the_same_world() {
        let f = ShadowingField::new(13);
        let p = Point::new(77.0, -31.0);
        let _ = f.sample_db(5, BandClass::LowBand, p); // warm the original
        let g = f.clone();
        assert_eq!(
            f.sample_db(5, BandClass::LowBand, p).to_bits(),
            g.sample_db(5, BandClass::LowBand, p).to_bits()
        );
    }

    #[test]
    fn shadowing_marginal_std_is_plausible() {
        let f = ShadowingField::new(5);
        let samples: Vec<f64> = (0..500)
            .map(|i| {
                // Sample at lattice-aligned points for exact marginal σ.
                let p = Point::new((i as f64) * 50.0, (i as f64 % 7.0) * 350.0);
                f.sample_db(9, BandClass::MmWave, p)
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let std =
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt();
        assert!((std - 8.0).abs() < 1.5, "σ ≈ 8 dB for mmWave, got {std}");
    }
}
