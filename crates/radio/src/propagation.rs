//! Path loss, shadowing, and RSRP.
//!
//! We use a close-in (CI) reference path-loss model per band class with
//! calibrated effective transmit powers, plus a spatially correlated
//! log-normal shadowing field. The constants are calibrated so that:
//!
//! * mmWave is strong only within a few hundred metres of a panel and
//!   collapses entirely when blocked (≈30 dB penetration penalty),
//! * low-band (600–850 MHz) covers kilometres ("omnipresent" in the paper's
//!   walking loops),
//! * LTE mid-band sits in between.

use crate::band::{Band, BandClass};
use fiveg_geo::route::Point;
use fiveg_simcore::RngStream;

/// Free-space path loss at the 1 m reference distance, in dB.
fn fspl_1m_db(freq_ghz: f64) -> f64 {
    32.4 + 20.0 * freq_ghz.log10()
}

/// Path-loss exponent for a band class (line-of-sight conditions).
fn path_loss_exponent(class: BandClass) -> f64 {
    match class {
        BandClass::MmWave => 2.9,
        BandClass::LowBand => 3.0,
        BandClass::Lte => 3.2,
    }
}

/// Additional loss when a mmWave link is blocked (body/foliage/building),
/// in dB. Sub-6 bands diffract around obstacles and take no such penalty.
pub fn blockage_loss_db(class: BandClass) -> f64 {
    match class {
        BandClass::MmWave => 30.0,
        BandClass::LowBand | BandClass::Lte => 0.0,
    }
}

/// Calibrated effective EIRP (transmit power + antenna gains, folded into a
/// single constant) per band, in dBm.
fn effective_eirp_dbm(band: Band) -> f64 {
    match band.class() {
        BandClass::MmWave => 35.0,
        BandClass::LowBand => 33.0,
        BandClass::Lte => 49.0,
    }
}

/// Close-in path loss at `distance_m` metres, in dB.
///
/// Distances below 1 m clamp to the reference distance.
pub fn path_loss_db(band: Band, distance_m: f64, blocked: bool) -> f64 {
    let d = distance_m.max(1.0);
    let class = band.class();
    fspl_1m_db(band.frequency_ghz())
        + 10.0 * path_loss_exponent(class) * d.log10()
        + if blocked { blockage_loss_db(class) } else { 0.0 }
}

/// RSRP in dBm at `distance_m` from the tower, before shadowing, clamped to
/// a physical ceiling of −44 dBm (the strongest value UEs report).
pub fn rsrp_dbm(band: Band, distance_m: f64, blocked: bool) -> f64 {
    (effective_eirp_dbm(band) - path_loss_db(band, distance_m, blocked)).min(-44.0)
}

/// A deterministic, spatially correlated log-normal shadowing field.
///
/// The field is a bilinear interpolation of i.i.d. standard normals placed
/// on a square lattice (default 50 m pitch), scaled by a per-class σ. Values
/// are a pure function of `(seed, tower_id, position)` so any component —
/// the handoff engine, the trace generator, the power campaign — observes
/// the same radio environment.
#[derive(Debug, Clone)]
pub struct ShadowingField {
    seed: u64,
    /// Lattice pitch in metres (decorrelation distance).
    pub corr_m: f64,
}

impl ShadowingField {
    /// Creates a field with the default 50 m correlation length.
    pub fn new(seed: u64) -> Self {
        ShadowingField { seed, corr_m: 50.0 }
    }

    /// Shadowing standard deviation per band class, in dB.
    pub fn sigma_db(class: BandClass) -> f64 {
        match class {
            BandClass::MmWave => 8.0,
            BandClass::LowBand => 6.0,
            BandClass::Lte => 6.0,
        }
    }

    /// A lattice-node unit normal, deterministic in `(seed, tower, ix, iy)`.
    fn node(&self, tower: u64, ix: i64, iy: i64) -> f64 {
        let name = format!("shadow/{tower}/{ix}/{iy}");
        RngStream::new(self.seed, &name).std_normal()
    }

    /// Shadowing in dB experienced from tower `tower_id` at position `p`.
    pub fn sample_db(&self, tower_id: u64, class: BandClass, p: Point) -> f64 {
        let gx = p.x / self.corr_m;
        let gy = p.y / self.corr_m;
        let ix = gx.floor() as i64;
        let iy = gy.floor() as i64;
        let fx = gx - ix as f64;
        let fy = gy - iy as f64;
        let v00 = self.node(tower_id, ix, iy);
        let v10 = self.node(tower_id, ix + 1, iy);
        let v01 = self.node(tower_id, ix, iy + 1);
        let v11 = self.node(tower_id, ix + 1, iy + 1);
        let interp = v00 * (1.0 - fx) * (1.0 - fy)
            + v10 * fx * (1.0 - fy)
            + v01 * (1.0 - fx) * fy
            + v11 * fx * fy;
        interp * Self::sigma_db(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_grows_with_distance() {
        for band in [Band::LteMidBand, Band::N71, Band::N261] {
            let near = path_loss_db(band, 50.0, false);
            let far = path_loss_db(band, 500.0, false);
            assert!(far > near + 20.0, "{band:?}: {near} -> {far}");
        }
    }

    #[test]
    fn mmwave_blockage_is_catastrophic() {
        let open = rsrp_dbm(Band::N261, 150.0, false);
        let blocked = rsrp_dbm(Band::N261, 150.0, true);
        assert!((open - blocked - 30.0).abs() < 1e-9);
        assert!(open > BandClass::MmWave.rsrp_floor_dbm(), "usable when LoS");
        assert!(blocked < BandClass::MmWave.rsrp_floor_dbm(), "dead when blocked");
    }

    #[test]
    fn blockage_does_not_affect_sub6() {
        assert_eq!(
            rsrp_dbm(Band::N71, 1000.0, false),
            rsrp_dbm(Band::N71, 1000.0, true)
        );
    }

    #[test]
    fn low_band_covers_kilometres() {
        // "low-band 5G connectivity was omnipresent" on the walking loop.
        let rsrp = rsrp_dbm(Band::N71, 3000.0, false);
        assert!(
            rsrp > BandClass::LowBand.rsrp_floor_dbm() + 10.0,
            "n71 at 3 km: {rsrp} dBm"
        );
    }

    #[test]
    fn mmwave_range_is_hundreds_of_metres() {
        let at_200 = rsrp_dbm(Band::N261, 200.0, false);
        assert!(at_200 > -95.0, "usable at 200 m: {at_200}");
        let at_3000 = rsrp_dbm(Band::N261, 3000.0, false);
        assert!(
            at_3000 < BandClass::MmWave.rsrp_floor_dbm(),
            "dead at 3 km: {at_3000}"
        );
    }

    #[test]
    fn rsrp_is_clamped_near_the_tower() {
        assert_eq!(rsrp_dbm(Band::N71, 0.0, false), -44.0);
    }

    #[test]
    fn shadowing_is_deterministic_and_continuous() {
        let f = ShadowingField::new(11);
        let p = Point::new(123.0, 456.0);
        assert_eq!(
            f.sample_db(3, BandClass::LowBand, p),
            f.sample_db(3, BandClass::LowBand, p)
        );
        let nearby = Point::new(124.0, 456.0);
        let dv = (f.sample_db(3, BandClass::LowBand, p) - f.sample_db(3, BandClass::LowBand, nearby)).abs();
        assert!(dv < 2.0, "1 m apart must be correlated, delta {dv}");
    }

    #[test]
    fn shadowing_decorrelates_across_towers_and_space() {
        let f = ShadowingField::new(11);
        let mut distinct = 0;
        for i in 0..20 {
            let p = Point::new(i as f64 * 500.0, 0.0);
            let a = f.sample_db(1, BandClass::Lte, p);
            let b = f.sample_db(2, BandClass::Lte, p);
            if (a - b).abs() > 0.5 {
                distinct += 1;
            }
        }
        assert!(distinct > 10, "towers see independent fields");
    }

    #[test]
    fn shadowing_marginal_std_is_plausible() {
        let f = ShadowingField::new(5);
        let samples: Vec<f64> = (0..500)
            .map(|i| {
                // Sample at lattice-aligned points for exact marginal σ.
                let p = Point::new((i as f64) * 50.0, (i as f64 % 7.0) * 350.0);
                f.sample_db(9, BandClass::MmWave, p)
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let std = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / samples.len() as f64)
            .sqrt();
        assert!((std - 8.0).abs() < 1.5, "σ ≈ 8 dB for mmWave, got {std}");
    }
}
