//! The handoff engine and Fig 9's drive-test simulation.
//!
//! The UE drives the 10 km route with one of five band configurations
//! enabled (the paper toggles them with Samsung's `*#2263#` service code).
//! We track the serving cell per technology with hysteresis-based
//! reselection, the NSA secondary-cell-group (NR leg) lifecycle, and SA↔LTE
//! fallback, and log every **horizontal** (tower change on the active data
//! radio) and **vertical** (radio technology change) handoff.
//!
//! NSA's notorious vertical-handoff churn comes from two modelled causes:
//! every LTE anchor handoff tears the NR leg down and re-establishes it, and
//! secondary-cell-group (SCG) failures drop the leg sporadically while
//! moving. Both are parameters of [`HandoffConfig`].

use crate::cell::{NetworkLayout, RadioTech, Tower};
use fiveg_geo::mobility::MobilityModel;
use fiveg_simcore::faults::{self, FaultKind};
use fiveg_simcore::recovery::{self, RecoveryKind};
use fiveg_simcore::{budget, guard, telemetry, RngStream};

/// The five band-enable settings of Fig 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandSetting {
    /// (i) SA n71 only.
    SaOnly,
    /// (ii) NSA n71 + LTE.
    NsaPlusLte,
    /// (iii) LTE bands only.
    LteOnly,
    /// (iv) SA n71 + LTE.
    SaPlusLte,
    /// (v) All bands (default).
    AllBands,
}

impl BandSetting {
    /// Display label matching Fig 9's y-axis.
    pub fn label(self) -> &'static str {
        match self {
            BandSetting::SaOnly => "SA-5G only",
            BandSetting::NsaPlusLte => "NSA-5G + LTE",
            BandSetting::LteOnly => "LTE only",
            BandSetting::SaPlusLte => "SA-5G + LTE",
            BandSetting::AllBands => "All Bands",
        }
    }

    /// All five settings in Fig 9 order.
    pub fn all() -> [BandSetting; 5] {
        [
            BandSetting::SaOnly,
            BandSetting::NsaPlusLte,
            BandSetting::LteOnly,
            BandSetting::SaPlusLte,
            BandSetting::AllBands,
        ]
    }
}

/// Which radio carries user data right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveRadio {
    /// 4G LTE.
    Lte,
    /// NSA 5G (NR data leg over an LTE anchor).
    NsaNr,
    /// SA 5G.
    SaNr,
}

/// Horizontal (tower) vs vertical (technology) handoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffKind {
    /// Serving-cell change on the active data radio.
    Horizontal,
    /// Active-radio technology change.
    Vertical,
}

/// One logged handoff.
#[derive(Debug, Clone, Copy)]
pub struct HandoffEvent {
    /// Simulation time in seconds.
    pub t_s: f64,
    /// Horizontal or vertical.
    pub kind: HandoffKind,
    /// The radio active *after* the handoff (`None` = outage).
    pub to: Option<ActiveRadio>,
}

/// Tunables of the handoff engine.
#[derive(Debug, Clone, Copy)]
pub struct HandoffConfig {
    /// Reselection hysteresis in dB (A3 offset).
    pub hysteresis_db: f64,
    /// RSRP needed to add the NSA NR leg (B1-like threshold), dBm.
    pub nr_add_dbm: f64,
    /// RSRP below which the NR leg is dropped (A2-like), dBm.
    pub nr_drop_dbm: f64,
    /// SA: prefer LTE (in SA+LTE / AllBands modes) when the SA cell is
    /// weaker than this, dBm.
    pub sa_prefer_dbm: f64,
    /// Seconds the NR leg stays down after an anchor handoff tears it down.
    pub leg_reestablish_s: f64,
    /// SCG-failure rate while on the NSA leg, events per metre travelled.
    pub scg_failure_per_m: f64,
    /// Probability that an LTE anchor handoff tears the NR leg down when
    /// the network can coordinate the change (AllBands mode).
    pub coordinated_anchor_keep_prob: f64,
    /// Time-to-trigger: a reselection candidate must stay better than the
    /// serving cell (by the hysteresis) for this long, in seconds.
    pub time_to_trigger_s: f64,
    /// RRC re-establishment cost after a radio link failure, seconds: once
    /// coverage returns the UE pays this promotion delay before carrying
    /// data again. Only exercised under an installed fault plane.
    pub reestablish_promo_s: f64,
    /// Simulation step in seconds.
    pub step_s: f64,
}

impl Default for HandoffConfig {
    fn default() -> Self {
        HandoffConfig {
            hysteresis_db: 3.0,
            nr_add_dbm: -112.0,
            nr_drop_dbm: -116.0,
            sa_prefer_dbm: -82.0,
            leg_reestablish_s: 2.0,
            scg_failure_per_m: 1.0 / 520.0,
            coordinated_anchor_keep_prob: 0.85,
            time_to_trigger_s: 2.0,
            reestablish_promo_s: 1.5,
            step_s: 0.5,
        }
    }
}

/// Outcome of one drive.
#[derive(Debug, Clone)]
pub struct DriveResult {
    /// The band setting driven.
    pub setting: BandSetting,
    /// Sampled active radio over time, one entry per step.
    pub timeline: Vec<(f64, Option<ActiveRadio>)>,
    /// All handoffs in time order.
    pub events: Vec<HandoffEvent>,
}

impl DriveResult {
    /// Total handoff count (Fig 9's headline numbers).
    pub fn total_handoffs(&self) -> usize {
        self.events.len()
    }

    /// Number of vertical handoffs.
    pub fn vertical_handoffs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == HandoffKind::Vertical)
            .count()
    }

    /// Number of horizontal handoffs.
    pub fn horizontal_handoffs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == HandoffKind::Horizontal)
            .count()
    }

    /// Fraction of drive time spent on each radio `(lte, nsa, sa, outage)`.
    pub fn radio_share(&self) -> (f64, f64, f64, f64) {
        let n = self.timeline.len().max(1) as f64;
        let count = |r: Option<ActiveRadio>| {
            self.timeline.iter().filter(|(_, a)| *a == r).count() as f64 / n
        };
        (
            count(Some(ActiveRadio::Lte)),
            count(Some(ActiveRadio::NsaNr)),
            count(Some(ActiveRadio::SaNr)),
            count(None),
        )
    }
}

/// Internal mutable state of the drive.
struct DriveState {
    lte: ReselState,
    nr: ReselState,
    active: Option<ActiveRadio>,
    /// NR leg unavailable until this time (post anchor-handoff blackout).
    leg_down_until_s: f64,
    events: Vec<HandoffEvent>,
}

impl DriveState {
    fn set_active(&mut self, t: f64, radio: Option<ActiveRadio>) {
        if self.active != radio {
            telemetry::count("radio/handoff/vertical", 1);
            self.check_order(t);
            self.events.push(HandoffEvent {
                t_s: t,
                kind: HandoffKind::Vertical,
                to: radio,
            });
            self.active = radio;
        }
    }

    fn horizontal(&mut self, t: f64) {
        telemetry::count("radio/handoff/horizontal", 1);
        self.check_order(t);
        self.events.push(HandoffEvent {
            t_s: t,
            kind: HandoffKind::Horizontal,
            to: self.active,
        });
    }

    /// Guard: the handoff log is append-only in sim-time order.
    fn check_order(&self, t: f64) {
        if guard::enabled() {
            let last = self.events.last().map_or(0.0, |e| e.t_s);
            guard::check(
                "radio",
                "handoff-order",
                t.is_finite() && t >= last,
                t,
                || format!("handoff at t={t} precedes the last logged event at t={last}"),
            );
        }
    }
}

/// Hysteresis + time-to-trigger reselection state for one radio.
#[derive(Debug, Clone, Copy, Default)]
struct ReselState {
    serving: Option<usize>,
    /// The serving cell's RSRP as of the last `step` call — every `step`
    /// branch already evaluates it, so callers reuse this instead of paying
    /// a second shadowing/path-loss evaluation per simulation step. Only
    /// meaningful while `serving.is_some()`.
    serving_rsrp: f64,
    /// A candidate that has been better than serving since the given time.
    pending: Option<(usize, f64)>,
}

impl ReselState {
    /// Advances reselection at time `t`; returns true if the serving cell
    /// changed.
    fn step<F>(
        &mut self,
        layout: &NetworkLayout,
        p: fiveg_geo::route::Point,
        t: f64,
        cfg: &HandoffConfig,
        filter: F,
    ) -> bool
    where
        F: Fn(&Tower) -> bool,
    {
        let best = layout.best_cell_at(p, false, t, &filter);
        match (self.serving, best) {
            (None, None) => false,
            (None, Some((idx, rsrp))) => {
                guard::in_range("radio", "rsrp-range", rsrp, -220.0, 0.0, 1e-9, t);
                // Initial attach is immediate.
                self.serving = Some(idx);
                self.serving_rsrp = rsrp;
                self.pending = None;
                true
            }
            (Some(cur), None) => {
                let tower = &layout.towers[cur];
                let rsrp = layout.rsrp_at(tower, p, false);
                if rsrp < tower.band.class().rsrp_floor_dbm() || layout.tower_out(tower, t) {
                    self.serving = None;
                    self.pending = None;
                    true
                } else {
                    self.serving_rsrp = rsrp;
                    false
                }
            }
            (Some(cur), Some((idx, best_rsrp))) => {
                if idx == cur {
                    self.serving_rsrp = best_rsrp;
                    self.pending = None;
                    return false;
                }
                let cur_tower = &layout.towers[cur];
                let cur_rsrp = layout.rsrp_at(cur_tower, p, false);
                if guard::enabled() {
                    guard::in_range("radio", "rsrp-range", cur_rsrp, -220.0, 0.0, 1e-9, t);
                    guard::in_range("radio", "rsrp-range", best_rsrp, -220.0, 0.0, 1e-9, t);
                }
                // Radio-link failure: switch immediately when the serving
                // cell falls through the floor — or its site goes dark under
                // a cell-outage fault window.
                if cur_rsrp < cur_tower.band.class().rsrp_floor_dbm()
                    || layout.tower_out(cur_tower, t)
                {
                    if layout.tower_out(cur_tower, t) {
                        let (start, _) =
                            faults::window_of(FaultKind::CellOutage, t).unwrap_or((t, 0.0));
                        recovery::record(
                            RecoveryKind::CellReselect,
                            t,
                            (t - start).max(0.0),
                            0.0,
                            || format!("tower {cur} dark, reselected to {idx}"),
                        );
                    }
                    self.serving = Some(idx);
                    self.serving_rsrp = best_rsrp;
                    self.pending = None;
                    return true;
                }
                self.serving_rsrp = cur_rsrp;
                if best_rsrp > cur_rsrp + cfg.hysteresis_db {
                    match self.pending {
                        Some((pidx, since)) if pidx == idx => {
                            if t - since >= cfg.time_to_trigger_s {
                                // Reselection legality: a hysteresis-path
                                // commit requires the candidate to beat the
                                // serving cell by the A3 offset AND to have
                                // dwelled the full time-to-trigger.
                                guard::check(
                                    "radio",
                                    "hysteresis-legal",
                                    best_rsrp > cur_rsrp + cfg.hysteresis_db
                                        && t - since >= cfg.time_to_trigger_s,
                                    t,
                                    || {
                                        format!(
                                            "commit {cur}->{idx} with margin \
                                             {:.3} dB after {:.3}s dwell",
                                            best_rsrp - cur_rsrp,
                                            t - since
                                        )
                                    },
                                );
                                self.serving = Some(idx);
                                self.serving_rsrp = best_rsrp;
                                self.pending = None;
                                true
                            } else {
                                false
                            }
                        }
                        _ => {
                            self.pending = Some((idx, t));
                            false
                        }
                    }
                } else {
                    self.pending = None;
                    false
                }
            }
        }
    }
}

/// Simulates one drive of the 10 km route under `setting`.
pub fn simulate_drive(
    layout: &NetworkLayout,
    mobility: &MobilityModel,
    setting: BandSetting,
    cfg: &HandoffConfig,
    seed: u64,
) -> DriveResult {
    let mut rng = RngStream::new(seed, "drive/scg");
    let mut st = DriveState {
        lte: ReselState::default(),
        nr: ReselState::default(),
        active: None,
        leg_down_until_s: 0.0,
        events: Vec::new(),
    };
    let mut timeline = Vec::new();
    let duration = mobility.duration_s();
    let mut t = 0.0;
    let mut last_dist = 0.0;
    // Suppress the initial attach events: the drive starts connected.
    let mut booted = false;
    // Radio-link-failure recovery state (fault plane only): when every
    // radio is lost the UE declares RLF, and once coverage returns it pays
    // the RRC re-establishment promotion before carrying data again.
    let mut rlf_since: Option<f64> = None;
    let mut reestablish_until: Option<f64> = None;

    telemetry::clock(0.0);
    let _drive_span = telemetry::span("radio/drive");
    while t <= duration {
        budget::charge(1);
        telemetry::clock(t);
        let p = mobility.position_at(t);
        let dist = mobility.distance_at(t);
        let moved_m = (dist - last_dist).max(0.0);
        last_dist = dist;

        let lte_enabled = matches!(
            setting,
            BandSetting::NsaPlusLte
                | BandSetting::LteOnly
                | BandSetting::SaPlusLte
                | BandSetting::AllBands
        );
        let nsa_enabled = matches!(setting, BandSetting::NsaPlusLte | BandSetting::AllBands);
        let sa_enabled = matches!(
            setting,
            BandSetting::SaOnly | BandSetting::SaPlusLte | BandSetting::AllBands
        );

        // --- LTE anchor / fallback reselection ---
        let mut anchor_changed = false;
        if lte_enabled {
            let had = st.lte.serving;
            let changed = st
                .lte
                .step(layout, p, t, cfg, |tw| tw.tech() == RadioTech::Lte);
            if changed && booted {
                anchor_changed = st.lte.serving.is_some() && had.is_some();
                if st.active == Some(ActiveRadio::Lte) && anchor_changed {
                    st.horizontal(t);
                }
            }
        } else {
            st.lte = ReselState::default();
        }

        // --- NR serving cell reselection (NSA and/or SA capable) ---
        let nr_filter = |tw: &Tower| {
            tw.tech() == RadioTech::Nr
                && ((nsa_enabled && tw.supports_nsa) || (sa_enabled && tw.supports_sa))
        };
        let had_nr = st.nr.serving;
        let nr_changed = st.nr.step(layout, p, t, cfg, nr_filter);
        if nr_changed
            && booted
            && matches!(
                st.active,
                Some(ActiveRadio::NsaNr) | Some(ActiveRadio::SaNr)
            )
            && st.nr.serving.is_some()
            && had_nr.is_some()
        {
            st.horizontal(t);
        }

        // Reuse the RSRP the reselection pass just computed for the serving
        // NR cell (same pure function of `(tower, p)`, so bit-identical)
        // instead of paying another shadowing evaluation.
        let nr_rsrp = st.nr.serving.map(|_| st.nr.serving_rsrp);
        let nr_supports_sa = st.nr.serving.map(|i| layout.towers[i].supports_sa);
        if let Some(r) = nr_rsrp {
            telemetry::series("radio/rsrp_dbm_t", t, r);
        }

        // --- NSA leg lifecycle ---
        if nsa_enabled && booted {
            // Anchor handoffs tear the leg down (probabilistically, when the
            // network can coordinate — AllBands only).
            if anchor_changed && st.active == Some(ActiveRadio::NsaNr) {
                let keep = setting == BandSetting::AllBands
                    && rng.chance(cfg.coordinated_anchor_keep_prob);
                if !keep {
                    st.leg_down_until_s = t + cfg.leg_reestablish_s;
                }
            }
            // SCG failures while moving on the leg.
            if st.active == Some(ActiveRadio::NsaNr)
                && moved_m > 0.0
                && rng.chance(moved_m * cfg.scg_failure_per_m)
            {
                st.leg_down_until_s = t + cfg.leg_reestablish_s;
            }
        }

        // Fault plane: during an NSA anchor-loss window the LTE anchor is
        // gone, so the NR leg stays torn down for the window plus the normal
        // re-establish blackout. No randomness is drawn, so with no plane
        // installed the drive is bit-identical.
        if nsa_enabled && faults::is_active(FaultKind::AnchorLoss, t) {
            st.leg_down_until_s = st.leg_down_until_s.max(t + cfg.leg_reestablish_s);
        }

        // --- Active radio selection ---
        let leg_ok = t >= st.leg_down_until_s;
        let nsa_available = nsa_enabled
            && st.lte.serving.is_some()
            && leg_ok
            && nr_rsrp.is_some_and(|r| {
                if st.active == Some(ActiveRadio::NsaNr) {
                    r > cfg.nr_drop_dbm
                } else {
                    r > cfg.nr_add_dbm
                }
            });
        let sa_available = sa_enabled && nr_supports_sa == Some(true) && nr_rsrp.is_some();
        let sa_preferred =
            sa_available && (!lte_enabled || nr_rsrp.is_some_and(|r| r > cfg.sa_prefer_dbm));

        let mut desired = if nsa_available {
            Some(ActiveRadio::NsaNr)
        } else if sa_preferred {
            Some(ActiveRadio::SaNr)
        } else if lte_enabled && st.lte.serving.is_some() {
            Some(ActiveRadio::Lte)
        } else if sa_available {
            Some(ActiveRadio::SaNr)
        } else {
            None
        };

        // --- Radio-link-failure detection & RRC re-establishment ---
        // Only under an installed fault plane, so the default drive stays
        // bit-identical: losing every radio declares RLF, and the first
        // step with coverage back starts the re-establishment promotion
        // (`reestablish_promo_s`) during which the UE still carries no data.
        if faults::enabled() && booted {
            if let Some(since) = rlf_since {
                if let Some(target) = desired {
                    let until = *reestablish_until.get_or_insert(t + cfg.reestablish_promo_s);
                    if t < until {
                        desired = None;
                    } else {
                        recovery::record(
                            RecoveryKind::RrcReestablish,
                            t,
                            cfg.reestablish_promo_s,
                            t - since,
                            || format!("re-established on {target:?}"),
                        );
                        rlf_since = None;
                        reestablish_until = None;
                    }
                } else {
                    // Coverage dipped again mid-promotion: restart it when
                    // the next window of coverage opens.
                    reestablish_until = None;
                }
            } else if st.active.is_some()
                && desired.is_none()
                && (faults::is_active(FaultKind::CellOutage, t)
                    || faults::is_active(FaultKind::BlockageStorm, t)
                    || faults::is_active(FaultKind::AnchorLoss, t))
            {
                // RLF is only declared when a radio-affecting fault window
                // is open — a natural coverage gap behaves exactly as it
                // does with no plane installed, so windowless scenarios
                // stay bit-identical.
                let lost = st.active;
                telemetry::count("radio/rlf", 1);
                recovery::record(RecoveryKind::RadioLinkFailure, t, cfg.step_s, 0.0, || {
                    format!("lost {lost:?}")
                });
                rlf_since = Some(t);
            }

            // NSA anchor loss: the UE rides the outage out on the LTE leg
            // instead of going dark.
            if st.active == Some(ActiveRadio::NsaNr)
                && desired == Some(ActiveRadio::Lte)
                && faults::is_active(FaultKind::AnchorLoss, t)
            {
                let (start, dur) = faults::window_of(FaultKind::AnchorLoss, t).unwrap_or((t, 0.0));
                recovery::record(
                    RecoveryKind::NsaFallback,
                    t,
                    (t - start).max(0.0),
                    dur,
                    || "anchor lost, fell back to LTE leg".to_string(),
                );
            }
        }

        if booted {
            st.set_active(t, desired);
        } else {
            st.active = desired;
            booted = true;
        }

        timeline.push((t, st.active));
        t += cfg.step_s;
    }

    DriveResult {
        setting,
        timeline,
        events: st.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(setting: BandSetting, seed: u64) -> DriveResult {
        let layout = NetworkLayout::tmobile_drive_corridor(seed);
        let mobility = MobilityModel::driving_10km();
        simulate_drive(&layout, &mobility, setting, &HandoffConfig::default(), seed)
    }

    #[test]
    fn sa_only_has_the_fewest_handoffs() {
        let sa = drive(BandSetting::SaOnly, 42).total_handoffs();
        let nsa = drive(BandSetting::NsaPlusLte, 42).total_handoffs();
        let lte = drive(BandSetting::LteOnly, 42).total_handoffs();
        assert!(sa < lte, "SA ({sa}) < LTE ({lte})");
        assert!(lte < nsa, "LTE ({lte}) < NSA ({nsa})");
    }

    #[test]
    fn nsa_handoffs_are_mostly_vertical() {
        let r = drive(BandSetting::NsaPlusLte, 7);
        assert!(
            r.vertical_handoffs() > 3 * r.horizontal_handoffs(),
            "vertical {} vs horizontal {}",
            r.vertical_handoffs(),
            r.horizontal_handoffs()
        );
    }

    #[test]
    fn handoff_counts_are_in_paper_range() {
        // Paper: SA 13, NSA+LTE 110, LTE 30, SA+LTE 38, All 64.
        let sa = drive(BandSetting::SaOnly, 1).total_handoffs();
        let nsa = drive(BandSetting::NsaPlusLte, 1).total_handoffs();
        let lte = drive(BandSetting::LteOnly, 1).total_handoffs();
        assert!((8..=25).contains(&sa), "SA {sa}");
        assert!((70..=150).contains(&nsa), "NSA {nsa}");
        assert!((20..=45).contains(&lte), "LTE {lte}");
    }

    #[test]
    fn sa_only_spends_all_time_on_sa() {
        let r = drive(BandSetting::SaOnly, 3);
        let (_, _, sa_share, outage) = r.radio_share();
        assert!(sa_share > 0.95, "SA share {sa_share}");
        assert!(outage < 0.05);
    }

    #[test]
    fn lte_only_never_touches_nr() {
        let r = drive(BandSetting::LteOnly, 4);
        let (lte, nsa, sa, _) = r.radio_share();
        assert!(lte > 0.95, "LTE share {lte}");
        assert_eq!(nsa, 0.0);
        assert_eq!(sa, 0.0);
    }

    #[test]
    fn nsa_spends_most_time_on_nr_despite_churn() {
        let r = drive(BandSetting::NsaPlusLte, 5);
        let (_, nsa_share, _, _) = r.radio_share();
        assert!(nsa_share > 0.5, "NSA share {nsa_share}");
    }

    #[test]
    fn events_are_time_ordered() {
        let r = drive(BandSetting::AllBands, 6);
        for w in r.events.windows(2) {
            assert!(w[0].t_s <= w[1].t_s);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = drive(BandSetting::NsaPlusLte, 99);
        let b = drive(BandSetting::NsaPlusLte, 99);
        assert_eq!(a.total_handoffs(), b.total_handoffs());
        assert_eq!(a.vertical_handoffs(), b.vertical_handoffs());
    }
}
