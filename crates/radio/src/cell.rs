//! Towers, deployments, and campaign layouts.
//!
//! A [`NetworkLayout`] is the set of towers visible to a campaign plus the
//! shared shadowing field. Two concrete layouts reproduce the paper's
//! environments:
//!
//! * [`NetworkLayout::tmobile_drive_corridor`] — the 10 km drive of Fig 9:
//!   dense LTE macros (≈350 m spacing) and sparser n71 NR sites (≈800 m),
//!   a subset of which are SA-capable.
//! * [`NetworkLayout::walking_loop_deployment`] — the 1.6 km walking loop of
//!   §4: three mmWave sites on the loop plus low-band/LTE macro coverage.

use crate::band::{Band, BandClass};
use crate::propagation::{rsrp_dbm, ShadowingField};
use fiveg_geo::route::{Point, Route};
use fiveg_simcore::faults::{self, FaultKind};

/// The radio technology of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioTech {
    /// 4G LTE.
    Lte,
    /// 5G New Radio.
    Nr,
}

/// One cell site.
#[derive(Debug, Clone)]
pub struct Tower {
    /// Unique id within the layout (indexes the shadowing field).
    pub id: u64,
    /// Position in the local metric frame.
    pub pos: Point,
    /// Operating band.
    pub band: Band,
    /// NR only: the cell serves NSA (LTE-anchored) connections.
    pub supports_nsa: bool,
    /// NR only: the cell serves SA connections.
    pub supports_sa: bool,
}

impl Tower {
    /// The technology implied by the band.
    pub fn tech(&self) -> RadioTech {
        match self.band.class() {
            BandClass::Lte => RadioTech::Lte,
            _ => RadioTech::Nr,
        }
    }
}

/// A set of towers plus the environment's shadowing field.
#[derive(Debug, Clone)]
pub struct NetworkLayout {
    /// All towers in the campaign area.
    pub towers: Vec<Tower>,
    /// Spatially correlated shadowing shared by every observer.
    pub shadowing: ShadowingField,
}

impl NetworkLayout {
    /// Creates a layout from explicit towers.
    pub fn new(towers: Vec<Tower>, seed: u64) -> Self {
        NetworkLayout {
            towers,
            shadowing: ShadowingField::new(seed),
        }
    }

    /// RSRP (including shadowing) from `tower` observed at `p`.
    /// `mmwave_blocked` applies the blockage penalty to mmWave cells only.
    pub fn rsrp_at(&self, tower: &Tower, p: Point, mmwave_blocked: bool) -> f64 {
        let d = tower.pos.distance_m(p);
        let blocked = mmwave_blocked && tower.band.class() == BandClass::MmWave;
        rsrp_dbm(tower.band, d, blocked) + self.shadowing.sample_db(tower.id, tower.band.class(), p)
    }

    /// Whether `tower` is dark at simulated time `t_s` under the ambient
    /// fault plane's cell-outage windows. Always false when no plane is
    /// installed, so the default path costs one thread-local load.
    pub fn tower_out(&self, tower: &Tower, t_s: f64) -> bool {
        faults::targets(
            FaultKind::CellOutage,
            t_s,
            tower.id,
            self.towers.len() as u64,
        )
    }

    /// The strongest tower satisfying `filter`, with its RSRP, or `None` if
    /// no candidate is above its band's floor.
    pub fn best_cell<F>(&self, p: Point, mmwave_blocked: bool, filter: F) -> Option<(usize, f64)>
    where
        F: Fn(&Tower) -> bool,
    {
        self.best_cell_inner(p, mmwave_blocked, None, filter)
    }

    /// [`Self::best_cell`] at simulated time `t_s`: towers darkened by a
    /// cell-outage fault window covering `t_s` are invisible to selection.
    /// Identical to `best_cell` when no fault plane is installed.
    pub fn best_cell_at<F>(
        &self,
        p: Point,
        mmwave_blocked: bool,
        t_s: f64,
        filter: F,
    ) -> Option<(usize, f64)>
    where
        F: Fn(&Tower) -> bool,
    {
        self.best_cell_inner(p, mmwave_blocked, Some(t_s), filter)
    }

    fn best_cell_inner<F>(
        &self,
        p: Point,
        mmwave_blocked: bool,
        t_s: Option<f64>,
        filter: F,
    ) -> Option<(usize, f64)>
    where
        F: Fn(&Tower) -> bool,
    {
        // Consult the plane once per call, not once per tower.
        let outages = t_s.filter(|_| faults::enabled());
        let mut best: Option<(usize, f64)> = None;
        for (i, t) in self.towers.iter().enumerate() {
            if !filter(t) {
                continue;
            }
            if let Some(t_s) = outages {
                if self.tower_out(t, t_s) {
                    continue;
                }
            }
            let rsrp = self.rsrp_at(t, p, mmwave_blocked);
            if rsrp < t.band.class().rsrp_floor_dbm() {
                continue;
            }
            if best.is_none_or(|(_, r)| rsrp > r) {
                best = Some((i, rsrp));
            }
        }
        best
    }

    /// Places towers every `spacing_m` along `route`, offset laterally by
    /// `offset_m` on alternating sides.
    fn place_along_route(
        route: &Route,
        spacing_m: f64,
        offset_m: f64,
        mut make: impl FnMut(u64, Point) -> Tower,
        next_id: &mut u64,
        out: &mut Vec<Tower>,
    ) {
        let mut s = spacing_m / 2.0;
        let mut side = 1.0;
        while s < route.length_m() {
            let p = route.position_at(s);
            // Perpendicular offset approximated by the local segment normal.
            let ahead = route.position_at((s + 10.0).min(route.length_m()));
            let (dx, dy) = (ahead.x - p.x, ahead.y - p.y);
            let len = (dx * dx + dy * dy).sqrt().max(1e-9);
            let pos = Point::new(
                p.x - dy / len * offset_m * side,
                p.y + dx / len * offset_m * side,
            );
            out.push(make(*next_id, pos));
            *next_id += 1;
            side = -side;
            s += spacing_m;
        }
    }

    /// The T-Mobile drive corridor of Fig 9: LTE macros every ~350 m and
    /// n71 NR sites every ~800 m along the 10 km route; roughly 3 in 4 NR
    /// sites are SA-capable (SA was freshly deployed).
    pub fn tmobile_drive_corridor(seed: u64) -> Self {
        let route = Route::driving_route_10km();
        let mut towers = Vec::new();
        let mut id = 0u64;
        Self::place_along_route(
            &route,
            350.0,
            90.0,
            |id, pos| Tower {
                id,
                pos,
                band: Band::LteMidBand,
                supports_nsa: false,
                supports_sa: false,
            },
            &mut id,
            &mut towers,
        );
        let mut nr_index = 0usize;
        Self::place_along_route(
            &route,
            800.0,
            120.0,
            |id, pos| {
                let sa = nr_index % 4 != 3;
                nr_index += 1;
                Tower {
                    id,
                    pos,
                    band: Band::N71,
                    supports_nsa: true,
                    supports_sa: sa,
                }
            },
            &mut id,
            &mut towers,
        );
        NetworkLayout::new(towers, seed)
    }

    /// The walking-loop deployment of §4.1: three mmWave sites on the loop,
    /// plus one low-band NR site and one LTE macro several hundred metres
    /// off-loop ("low-band connectivity was omnipresent, mmWave limited").
    ///
    /// `mmwave_band` selects n260/n261 (Verizon) and `low_band` n5/n71.
    pub fn walking_loop_deployment(seed: u64, mmwave_band: Band, low_band: Band) -> Self {
        assert_eq!(mmwave_band.class(), BandClass::MmWave, "need a mmWave band");
        assert_eq!(low_band.class(), BandClass::LowBand, "need a low band");
        let towers = vec![
            Tower {
                id: 0,
                pos: Point::new(60.0, -40.0),
                band: mmwave_band,
                supports_nsa: true,
                supports_sa: false,
            },
            Tower {
                id: 1,
                pos: Point::new(520.0, 160.0),
                band: mmwave_band,
                supports_nsa: true,
                supports_sa: false,
            },
            Tower {
                id: 2,
                pos: Point::new(180.0, 340.0),
                band: mmwave_band,
                supports_nsa: true,
                supports_sa: false,
            },
            Tower {
                id: 3,
                pos: Point::new(-400.0, 600.0),
                band: low_band,
                supports_nsa: true,
                supports_sa: true,
            },
            Tower {
                id: 4,
                pos: Point::new(900.0, -500.0),
                band: Band::LteMidBand,
                supports_nsa: false,
                supports_sa: false,
            },
        ];
        NetworkLayout::new(towers, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_geo::mobility::MobilityModel;

    #[test]
    fn drive_corridor_has_expected_densities() {
        let layout = NetworkLayout::tmobile_drive_corridor(1);
        let lte = layout
            .towers
            .iter()
            .filter(|t| t.tech() == RadioTech::Lte)
            .count();
        let nr = layout
            .towers
            .iter()
            .filter(|t| t.tech() == RadioTech::Nr)
            .count();
        assert!((26..=32).contains(&lte), "LTE towers: {lte}");
        assert!((11..=14).contains(&nr), "n71 towers: {nr}");
        let sa = layout.towers.iter().filter(|t| t.supports_sa).count();
        assert!(
            sa < nr && sa > nr / 2,
            "a strict subset is SA-capable: {sa}/{nr}"
        );
    }

    #[test]
    fn drive_corridor_has_continuous_lte_and_n71_coverage() {
        let layout = NetworkLayout::tmobile_drive_corridor(2);
        let m = MobilityModel::driving_10km();
        let mut t = 0.0;
        while t < m.duration_s() {
            let p = m.position_at(t);
            assert!(
                layout
                    .best_cell(p, false, |tw| tw.tech() == RadioTech::Lte)
                    .is_some(),
                "LTE hole at t={t}"
            );
            assert!(
                layout.best_cell(p, false, |tw| tw.supports_nsa).is_some(),
                "n71 hole at t={t}"
            );
            t += 10.0;
        }
    }

    #[test]
    fn walking_loop_mmwave_is_spotty_under_blockage() {
        let layout = NetworkLayout::walking_loop_deployment(3, Band::N261, Band::N5Dss);
        let m = MobilityModel::walking_loop();
        let mut covered = 0;
        let mut total = 0;
        let mut t = 0.0;
        while t < m.duration_s() {
            let p = m.position_at(t);
            // Blocked mmWave should frequently lose coverage...
            if layout
                .best_cell(p, true, |tw| tw.band.class() == BandClass::MmWave)
                .is_some()
            {
                covered += 1;
            }
            // ...while low-band never does.
            assert!(
                layout
                    .best_cell(p, false, |tw| tw.band.class() == BandClass::LowBand)
                    .is_some(),
                "low band must be omnipresent"
            );
            total += 1;
            t += 10.0;
        }
        let frac = covered as f64 / total as f64;
        assert!(
            frac < 0.8,
            "blocked mmWave coverage should be spotty: {frac}"
        );
    }

    #[test]
    fn best_cell_prefers_the_nearest_tower() {
        let layout = NetworkLayout::walking_loop_deployment(4, Band::N261, Band::N71);
        // Right next to tower 1.
        let p = Point::new(520.0, 150.0);
        let (idx, rsrp) = layout
            .best_cell(p, false, |t| t.band.class() == BandClass::MmWave)
            .expect("coverage next to a panel");
        assert_eq!(layout.towers[idx].id, 1);
        assert!(rsrp > -75.0, "strong signal at 10 m: {rsrp}");
    }

    #[test]
    fn best_cell_respects_filter() {
        let layout = NetworkLayout::tmobile_drive_corridor(5);
        let p = Point::new(500.0, 0.0);
        let (idx, _) = layout
            .best_cell(p, false, |t| t.supports_sa)
            .expect("SA coverage");
        assert!(layout.towers[idx].supports_sa);
    }
}
