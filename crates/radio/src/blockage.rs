//! mmWave line-of-sight blockage as a two-state semi-Markov process.
//!
//! mmWave links flip between LoS and NLoS as the user's body, pedestrians,
//! vehicles, and buildings intervene. Transition pressure has two parts: an
//! ambient (time-driven) rate — things move around a stationary user — and a
//! mobility (distance-driven) rate — a moving user walks behind obstacles.
//! This process drives both the Lumos5G-style trace generator (deep
//! throughput fades) and the walking power campaigns.

use fiveg_simcore::faults::{self, FaultKind};
use fiveg_simcore::RngStream;

/// Transition-rate configuration for the blockage process.
#[derive(Debug, Clone, Copy)]
pub struct BlockageConfig {
    /// Ambient LoS→NLoS rate, events per second (stationary blockers).
    pub block_rate_per_s: f64,
    /// Mobility LoS→NLoS rate, events per metre travelled.
    pub block_rate_per_m: f64,
    /// Ambient NLoS→LoS rate, events per second.
    pub clear_rate_per_s: f64,
    /// Mobility NLoS→LoS rate, events per metre travelled.
    pub clear_rate_per_m: f64,
}

impl Default for BlockageConfig {
    fn default() -> Self {
        // Walking at 1.33 m/s: mean LoS dwell ≈ 26 s, mean NLoS dwell ≈ 6 s
        // → ≈81% LoS, matching the paper's walking loop with three towers.
        BlockageConfig {
            block_rate_per_s: 0.025,
            block_rate_per_m: 1.0 / 100.0,
            clear_rate_per_s: 0.125,
            clear_rate_per_m: 1.0 / 30.0,
        }
    }
}

/// The evolving LoS/NLoS state of one mmWave link.
#[derive(Debug, Clone)]
pub struct BlockageProcess {
    cfg: BlockageConfig,
    rng: RngStream,
    blocked: bool,
    /// Remaining "hazard" until the next toggle; we draw Exp(1) and burn it
    /// down at the instantaneous rate, which makes the process correct under
    /// time-varying speed.
    hazard_remaining: f64,
    /// Cumulative simulated time, so the ambient fault plane's
    /// blockage-storm windows can be matched without changing `advance`'s
    /// signature.
    elapsed_s: f64,
}

impl BlockageProcess {
    /// Creates a process starting in LoS.
    pub fn new(cfg: BlockageConfig, mut rng: RngStream) -> Self {
        let hazard = rng.exponential(1.0);
        BlockageProcess {
            cfg,
            rng,
            blocked: false,
            hazard_remaining: hazard,
            elapsed_s: 0.0,
        }
    }

    /// Whether the link is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Cumulative time this process has been advanced, seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Advances the process by `dt_s` seconds while moving at `speed_mps`,
    /// returning the state at the end of the step.
    ///
    /// During an ambient blockage-storm fault window the LoS→NLoS rates
    /// multiply by the storm magnitude and the NLoS→LoS rates divide by it:
    /// blockers arrive in swarms and linger. The storm only rescales the
    /// hazard clock — no extra randomness is drawn — so with no plane
    /// installed the trajectory is bit-identical to a plane-free build.
    ///
    /// # Panics
    /// Panics if `dt_s` is negative.
    pub fn advance(&mut self, dt_s: f64, speed_mps: f64) -> bool {
        assert!(dt_s >= 0.0, "dt must be non-negative");
        let storm = faults::magnitude(FaultKind::BlockageStorm, self.elapsed_s)
            .map(|m| m.max(1.0))
            .unwrap_or(1.0);
        self.elapsed_s += dt_s;
        let mut remaining_dt = dt_s;
        let speed = speed_mps.max(0.0);
        while remaining_dt > 0.0 {
            let rate = if self.blocked {
                (self.cfg.clear_rate_per_s + speed * self.cfg.clear_rate_per_m) / storm
            } else {
                (self.cfg.block_rate_per_s + speed * self.cfg.block_rate_per_m) * storm
            };
            if rate <= 0.0 {
                break;
            }
            let time_to_toggle = self.hazard_remaining / rate;
            if time_to_toggle > remaining_dt {
                self.hazard_remaining -= remaining_dt * rate;
                break;
            }
            remaining_dt -= time_to_toggle;
            self.blocked = !self.blocked;
            self.hazard_remaining = self.rng.exponential(1.0);
        }
        self.blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_fraction_blocked(speed: f64, seed: u64) -> f64 {
        let mut p = BlockageProcess::new(BlockageConfig::default(), RngStream::new(seed, "blk"));
        let dt = 0.5;
        let steps = 40_000;
        let blocked_steps = (0..steps).filter(|_| p.advance(dt, speed)).count();
        blocked_steps as f64 / steps as f64
    }

    #[test]
    fn walking_is_mostly_los() {
        let frac = run_fraction_blocked(1.33, 1);
        assert!((0.10..0.30).contains(&frac), "blocked fraction {frac}");
    }

    #[test]
    fn stationary_is_even_more_los() {
        let frac = run_fraction_blocked(0.0, 2);
        assert!(
            frac < run_fraction_blocked(1.33, 2),
            "mobility increases blockage"
        );
        assert!(frac < 0.22, "stationary blocked fraction {frac}");
    }

    #[test]
    fn starts_in_los() {
        let p = BlockageProcess::new(BlockageConfig::default(), RngStream::new(3, "blk"));
        assert!(!p.is_blocked());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = BlockageProcess::new(BlockageConfig::default(), RngStream::new(7, "blk"));
        let mut b = BlockageProcess::new(BlockageConfig::default(), RngStream::new(7, "blk"));
        for i in 0..1000 {
            let speed = (i % 5) as f64;
            assert_eq!(a.advance(0.3, speed), b.advance(0.3, speed));
        }
    }

    #[test]
    fn zero_dt_does_not_toggle() {
        let mut p = BlockageProcess::new(BlockageConfig::default(), RngStream::new(9, "blk"));
        let before = p.is_blocked();
        assert_eq!(p.advance(0.0, 10.0), before);
    }

    #[test]
    fn toggles_happen_at_high_speed() {
        let mut p = BlockageProcess::new(BlockageConfig::default(), RngStream::new(11, "blk"));
        let mut toggles = 0;
        let mut last = p.is_blocked();
        for _ in 0..2000 {
            let s = p.advance(1.0, 10.0);
            if s != last {
                toggles += 1;
                last = s;
            }
        }
        assert!(toggles > 50, "expected frequent toggling, got {toggles}");
    }
}
