//! Radio substrate: bands, propagation, blockage, cells, link budget, and
//! the NSA/SA handoff engine.
//!
//! This crate models everything between the UE's modem and the carrier's
//! packet core, calibrated to the behaviours the paper measures:
//!
//! * [`band`] — LTE / low-band 5G / mmWave 5G characteristics (capacity,
//!   radio latency, RSRP operating windows),
//! * [`ue`] — the three phones and their carrier-aggregation ceilings,
//! * [`propagation`] — path loss + correlated shadowing; mmWave's 30 dB
//!   blockage penalty,
//! * [`blockage`] — the LoS/NLoS semi-Markov process,
//! * [`cell`] — towers and the two campaign layouts (drive corridor,
//!   walking loop),
//! * [`link`] — RSRP → achievable throughput,
//! * [`handoff`] — the Fig 9 drive-test simulation across five band
//!   configurations.

pub mod band;
pub mod blockage;
pub mod cell;
pub mod handoff;
pub mod link;
pub mod propagation;
pub mod ue;

pub use band::{Band, BandClass, Direction};
pub use cell::{NetworkLayout, RadioTech, Tower};
pub use handoff::{ActiveRadio, BandSetting, DriveResult, HandoffConfig};
pub use link::{link_capacity_mbps, LinkBudget, LinkState};
pub use ue::UeModel;

/// Re-export of the carrier enum (defined with the server pools in
/// `fiveg-geo` but used pervasively alongside radio types).
pub use fiveg_geo::servers::Carrier;

/// A 5G deployment mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Deployment {
    /// Non-Standalone: 5G data plane over the 4G control plane.
    Nsa,
    /// Standalone: native 5G core.
    Sa,
}

impl Deployment {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Deployment::Nsa => "NSA",
            Deployment::Sa => "SA",
        }
    }
}
