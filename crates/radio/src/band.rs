//! Radio bands and their first-order performance characteristics.
//!
//! The study covers three band classes:
//!
//! * **4G/LTE** — the legacy anchor (and the control plane of NSA 5G),
//! * **low-band 5G** — T-Mobile n71 @ 600 MHz, Verizon n5 via DSS: wide
//!   coverage, modest capacity,
//! * **mmWave 5G** — Verizon n260/n261 @ 39/28 GHz: enormous capacity, tiny
//!   cells, fragile propagation.
//!
//! Capacities and radio latencies here are the calibrated constants that
//! drive the §3 reproductions; see `EXPERIMENTS.md` for paper-vs-measured.

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Server → UE.
    Downlink,
    /// UE → server.
    Uplink,
}

/// A specific radio band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// 4G/LTE mid-band (AWS/PCS, ~1.7–2.1 GHz).
    LteMidBand,
    /// Verizon low-band 5G via dynamic spectrum sharing on n5 (850 MHz).
    N5Dss,
    /// T-Mobile low-band 5G on n71 (600 MHz).
    N71,
    /// Verizon mmWave on n260 (39 GHz).
    N260,
    /// Verizon mmWave on n261 (28 GHz).
    N261,
}

/// Coarse class of a band; most models depend only on the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandClass {
    /// 4G/LTE.
    Lte,
    /// Sub-6 GHz low-band 5G.
    LowBand,
    /// High-band mmWave 5G.
    MmWave,
}

impl Band {
    /// Every band, in [`Band::index`] order — the index space of the
    /// per-band lookup tables in `propagation`.
    pub const ALL: [Band; 5] = [
        Band::LteMidBand,
        Band::N5Dss,
        Band::N71,
        Band::N260,
        Band::N261,
    ];

    /// This band's position in [`Band::ALL`]; a dense index for per-band
    /// lookup tables.
    pub fn index(self) -> usize {
        match self {
            Band::LteMidBand => 0,
            Band::N5Dss => 1,
            Band::N71 => 2,
            Band::N260 => 3,
            Band::N261 => 4,
        }
    }

    /// The class of this band.
    pub fn class(self) -> BandClass {
        match self {
            Band::LteMidBand => BandClass::Lte,
            Band::N5Dss | Band::N71 => BandClass::LowBand,
            Band::N260 | Band::N261 => BandClass::MmWave,
        }
    }

    /// Carrier frequency in GHz (drives path loss).
    pub fn frequency_ghz(self) -> f64 {
        match self {
            Band::LteMidBand => 1.9,
            Band::N5Dss => 0.85,
            Band::N71 => 0.6,
            Band::N260 => 39.0,
            Band::N261 => 28.0,
        }
    }

    /// 3GPP band label.
    pub fn label(self) -> &'static str {
        match self {
            Band::LteMidBand => "LTE",
            Band::N5Dss => "n5 (DSS)",
            Band::N71 => "n71",
            Band::N260 => "n260",
            Band::N261 => "n261",
        }
    }
}

impl BandClass {
    /// One-way radio-access latency contribution in milliseconds, i.e. the
    /// part of RTT spent between the UE and the carrier's packet core.
    ///
    /// Calibration (Fig 2): the minimum mmWave RTT to a ~3 km server is
    /// ≈6 ms; low-band adds 6–8 ms over mmWave (larger OFDM symbol duration
    /// at narrow sub-carrier spacing); LTE adds a further 6–15 ms
    /// (coarser TTI than 5G-NR's flexible frame).
    pub fn radio_rtt_ms(self) -> f64 {
        match self {
            BandClass::MmWave => 5.0,
            BandClass::LowBand => 12.0,
            BandClass::Lte => 19.0,
        }
    }

    /// Peak *cell-side* capacity in Mbps for a UE with unconstrained CA
    /// support, before UE modem caps are applied.
    ///
    /// `sa` selects standalone mode, which (per §3.2) delivers about half of
    /// NSA low-band throughput because carrier aggregation is not yet
    /// supported on the SA core.
    pub fn cell_capacity_mbps(self, dir: Direction, sa: bool) -> f64 {
        match (self, dir) {
            (BandClass::MmWave, Direction::Downlink) => 3500.0,
            (BandClass::MmWave, Direction::Uplink) => 240.0,
            (BandClass::LowBand, Direction::Downlink) => {
                if sa {
                    110.0
                } else {
                    220.0
                }
            }
            (BandClass::LowBand, Direction::Uplink) => {
                if sa {
                    55.0
                } else {
                    110.0
                }
            }
            (BandClass::Lte, Direction::Downlink) => 210.0,
            (BandClass::Lte, Direction::Uplink) => 105.0,
        }
    }

    /// RSRP below which the link is unusable (cell-edge), in dBm.
    pub fn rsrp_floor_dbm(self) -> f64 {
        match self {
            BandClass::MmWave => -110.0,
            BandClass::LowBand => -124.0,
            BandClass::Lte => -122.0,
        }
    }

    /// RSRP at and above which the link achieves full capacity, in dBm.
    pub fn rsrp_saturation_dbm(self) -> f64 {
        match self {
            BandClass::MmWave => -78.0,
            BandClass::LowBand => -92.0,
            BandClass::Lte => -90.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_bands() {
        assert_eq!(Band::LteMidBand.class(), BandClass::Lte);
        assert_eq!(Band::N5Dss.class(), BandClass::LowBand);
        assert_eq!(Band::N71.class(), BandClass::LowBand);
        assert_eq!(Band::N260.class(), BandClass::MmWave);
        assert_eq!(Band::N261.class(), BandClass::MmWave);
    }

    #[test]
    fn latency_ordering_matches_fig2() {
        // mmWave < low-band < LTE (Fig 2).
        assert!(BandClass::MmWave.radio_rtt_ms() < BandClass::LowBand.radio_rtt_ms());
        assert!(BandClass::LowBand.radio_rtt_ms() < BandClass::Lte.radio_rtt_ms());
        let lb_extra = BandClass::LowBand.radio_rtt_ms() - BandClass::MmWave.radio_rtt_ms();
        assert!((6.0..=8.0).contains(&lb_extra), "low-band adds 6-8 ms");
    }

    #[test]
    fn sa_low_band_is_half_of_nsa() {
        for dir in [Direction::Downlink, Direction::Uplink] {
            let nsa = BandClass::LowBand.cell_capacity_mbps(dir, false);
            let sa = BandClass::LowBand.cell_capacity_mbps(dir, true);
            assert!((sa / nsa - 0.5).abs() < 0.05, "SA ≈ half NSA (§3.2)");
        }
    }

    #[test]
    fn mmwave_dominates_downlink_capacity() {
        let mm = BandClass::MmWave.cell_capacity_mbps(Direction::Downlink, false);
        let lte = BandClass::Lte.cell_capacity_mbps(Direction::Downlink, false);
        assert!(mm / lte > 10.0, "mmWave ≈ 10×+ LTE mean throughput");
    }

    #[test]
    fn rsrp_window_is_sane() {
        for class in [BandClass::Lte, BandClass::LowBand, BandClass::MmWave] {
            assert!(class.rsrp_floor_dbm() < class.rsrp_saturation_dbm());
        }
    }

    #[test]
    fn low_band_propagates_farther_than_mmwave() {
        assert!(Band::N71.frequency_ghz() < Band::N261.frequency_ghz());
        // Lower floor (more negative) ⇒ usable at weaker signal.
        assert!(BandClass::LowBand.rsrp_floor_dbm() < BandClass::MmWave.rsrp_floor_dbm());
    }
}
