//! Energy-per-bit and power-curve crossovers.

use crate::datamodel::PowerCurve;

/// Energy efficiency in µJ/bit at `throughput_mbps` for a power curve.
///
/// Returns `+inf` at zero throughput.
pub fn energy_efficiency_uj_per_bit(curve: &PowerCurve, throughput_mbps: f64) -> f64 {
    fiveg_simcore::units::energy_per_bit_uj(curve.power_mw(throughput_mbps), throughput_mbps)
}

/// The throughput (Mbps) at which `b` becomes cheaper than `a`, i.e. where
/// the two linear power curves intersect. `None` if they never cross at a
/// positive throughput (parallel, or crossed at/below zero).
pub fn crossover_mbps(a: &PowerCurve, b: &PowerCurve) -> Option<f64> {
    let slope_delta = a.slope_mw_per_mbps - b.slope_mw_per_mbps;
    if slope_delta == 0.0 {
        return None;
    }
    let x = (b.intercept_mw - a.intercept_mw) / slope_delta;
    (x > 0.0).then_some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(slope: f64, intercept: f64) -> PowerCurve {
        PowerCurve {
            slope_mw_per_mbps: slope,
            intercept_mw: intercept,
        }
    }

    #[test]
    fn crossover_simple() {
        // a: 10x + 0; b: 2x + 80 → cross at x = 10.
        let x = crossover_mbps(&curve(10.0, 0.0), &curve(2.0, 80.0)).expect("crosses");
        assert!((x - 10.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_curves_never_cross() {
        assert_eq!(crossover_mbps(&curve(5.0, 0.0), &curve(5.0, 10.0)), None);
    }

    #[test]
    fn negative_crossings_are_rejected() {
        // b cheaper everywhere: intersection at negative throughput.
        assert_eq!(crossover_mbps(&curve(10.0, 100.0), &curve(2.0, 50.0)), None);
    }

    #[test]
    fn efficiency_is_hyperbolic_plus_constant() {
        let c = curve(2.0, 1000.0);
        // 1000 mW / 1 Mbps = 1 µJ/bit plus slope 2 mW/Mbps = 0.002 µJ/bit.
        let e1 = energy_efficiency_uj_per_bit(&c, 1.0);
        assert!((e1 - 1.002).abs() < 1e-9, "{e1}");
        let e1000 = energy_efficiency_uj_per_bit(&c, 1000.0);
        assert!((e1000 - 0.003).abs() < 1e-9, "{e1000}");
        assert!(energy_efficiency_uj_per_bit(&c, 0.0).is_infinite());
    }

    #[test]
    fn log_log_efficiency_is_roughly_linear() {
        // §4.3: log E ≈ c₃·log T + c₄ when the intercept dominates.
        let c = curve(2.0, 3000.0);
        let points: Vec<(f64, f64)> = [1.0f64, 10.0, 100.0]
            .iter()
            .map(|&t| (t.ln(), energy_efficiency_uj_per_bit(&c, t).ln()))
            .collect();
        let slope01 = (points[1].1 - points[0].1) / (points[1].0 - points[0].0);
        let slope12 = (points[2].1 - points[1].1) / (points[2].0 - points[1].0);
        assert!((slope01 - slope12).abs() < 0.1, "{slope01} vs {slope12}");
    }
}
