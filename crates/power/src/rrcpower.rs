//! RRC life-cycle power: tails, promotions, and the 4G→5G switch (Table 2).
//!
//! After data activity stops, the radio lingers in CONNECTED for the tail
//! period, waking every Long-DRX cycle — expensive, especially on mmWave
//! (1092 mW avg). Promotions from IDLE burn a signaling burst, and NSA pays
//! an extra "4G→5G switch" burst each time the NR leg is (re)established —
//! which Fig 9 shows happens *constantly* while driving.

use fiveg_rrc::profile::{RrcConfigId, RrcProfile, RrcState};
use fiveg_simcore::{guard, telemetry, SimDuration, SimTime, TimeSeries};

/// Radio power parameters of one carrier configuration (Table 2 ground
/// truth plus supporting states).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RrcPowerParams {
    /// Configuration these parameters belong to.
    pub config: RrcConfigId,
    /// Mean radio power over the CONNECTED tail (DRX on + off), mW.
    pub tail_mw: f64,
    /// Mean power during the 4G→5G switch burst, mW (NSA/SA 5G only).
    pub switch_4g_to_5g_mw: Option<f64>,
    /// RRC_IDLE radio power (periodic paging wake-ups), mW.
    pub idle_mw: f64,
    /// SA RRC_INACTIVE mean power, mW.
    pub inactive_mw: Option<f64>,
    /// Power during IDLE→CONNECTED promotion signaling, mW.
    pub promo_mw: f64,
}

impl RrcPowerParams {
    /// The calibrated parameters for a configuration (Table 2).
    pub fn for_config(config: RrcConfigId) -> RrcPowerParams {
        let (tail_mw, switch, inactive) = match config {
            RrcConfigId::Vz4g => (178.0, None, None),
            RrcConfigId::Tm4g => (66.0, None, None),
            RrcConfigId::VzNsaLowBand => (249.0, Some(799.0), None),
            RrcConfigId::VzNsaMmWave => (1092.0, Some(1494.0), None),
            RrcConfigId::TmNsaLowBand => (260.0, Some(699.0), None),
            RrcConfigId::TmSaLowBand => (593.0, Some(245.0), Some(160.0)),
        };
        RrcPowerParams {
            config,
            tail_mw,
            switch_4g_to_5g_mw: switch,
            idle_mw: 18.0,
            inactive_mw: inactive,
            promo_mw: 1250.0,
        }
    }

    /// Mean radio power while in `state` during the tail, mW.
    pub fn state_power_mw(&self, state: RrcState) -> f64 {
        match state {
            RrcState::Connected | RrcState::ConnectedLte => self.tail_mw,
            RrcState::Inactive => self.inactive_mw.unwrap_or(self.tail_mw),
            RrcState::Idle => self.idle_mw,
        }
    }

    /// Radio energy of one full tail (last packet → RRC_IDLE), in mJ.
    pub fn tail_energy_mj(&self, profile: &RrcProfile) -> f64 {
        let mut energy = self.tail_mw * profile.tail_ms / 1e3;
        if let Some(lte_tail) = profile.lte_tail_ms {
            energy += self.tail_mw * (lte_tail - profile.tail_ms) / 1e3;
        }
        if let (Some(dur), Some(p)) = (profile.inactive_duration_ms, self.inactive_mw) {
            energy += p * dur / 1e3;
        }
        energy
    }
}

/// Radio energy (mJ) of a periodic traffic pattern: one small transfer
/// every `period_s` seconds for `duration_s` seconds total.
///
/// This quantifies §4.2's advice — "traffic patterns like periodical data
/// transmission or intermittent waking up should be avoided under 5G":
/// every period shorter than the tail keeps the radio parked in the
/// expensive CONNECTED tail; every period longer than it pays a promotion
/// (and, on NSA, the 4G→5G switch) each cycle.
pub fn periodic_traffic_energy_mj(
    profile: &RrcProfile,
    params: &RrcPowerParams,
    period_s: f64,
    duration_s: f64,
) -> f64 {
    assert!(
        period_s > 0.0 && duration_s > 0.0,
        "positive times required"
    );
    const BURST_S: f64 = 0.1;
    const ACTIVE_BURST_MW: f64 = 1_600.0;
    let tti_s = profile.time_to_idle_ms() / 1e3;
    // Energy of one inter-packet cycle of length `period_s`, starting right
    // after a transfer completes.
    let gap = (period_s - BURST_S).max(0.0);
    let mut cycle = ACTIVE_BURST_MW * BURST_S;
    if gap <= tti_s {
        // Never leaves the tail: the whole gap is spent at per-state tail
        // power (integrated through CONNECTED → [INACTIVE] windows).
        let mut t = 0.0;
        let step = 0.05f64;
        while t < gap {
            let state = profile.state_after_idle((t * 1e3).max(1.0));
            cycle += params.state_power_mw(state) * step.min(gap - t);
            t += step;
        }
    } else {
        // Full tail, an idle stretch, then a fresh promotion.
        cycle += params.tail_energy_mj(profile);
        // This branch means the gap outlived the tail, so the idle dwell
        // (gap − time-to-idle) must be a non-negative duration.
        guard::non_negative("power", "idle-dwell", gap - tti_s, 1e-9, period_s);
        cycle += params.idle_mw * (gap - tti_s);
        let promo_s = if profile.standalone {
            profile.promo_5g_ms.expect("SA") / 1e3
        } else {
            profile.promo_4g_ms.expect("defined") / 1e3
        };
        let promo_mw = if profile.standalone {
            params.switch_4g_to_5g_mw.unwrap_or(params.promo_mw)
        } else {
            params.promo_mw
        };
        cycle += promo_mw * promo_s;
        if let (Some((from, to)), Some(sw)) = (switch_window_ms(profile), params.switch_4g_to_5g_mw)
        {
            if !profile.standalone {
                cycle += sw * (to - from) / 1e3;
            }
        }
    }
    guard::non_negative("power", "cycle-energy", cycle, 1e-9, period_s);
    cycle * (duration_s / period_s)
}

/// The 4G→5G switch window of a profile, in milliseconds relative to the
/// start of the promotion, or `None` for plain 4G.
///
/// * SA: the direct NR promotion *is* the switch (cheap, Table 2's 245 mW).
/// * NSA with a distinct NR promotion: from the end of the LTE promotion
///   to the end of the full 5G promotion.
/// * NSA over DSS (no separately measurable NR promotion, Table 7's N/A):
///   a nominal 500 ms spectrum-sharing switch after the LTE promotion.
pub fn switch_window_ms(profile: &RrcProfile) -> Option<(f64, f64)> {
    if profile.standalone {
        return Some((0.0, profile.promo_5g_ms.expect("SA defines promo_5g")));
    }
    if !profile.is_5g() {
        return None;
    }
    let p4 = profile.promo_4g_ms.expect("NSA defines promo_4g");
    match profile.promo_5g_ms {
        Some(p5) => Some((p4, p5)),
        None => Some((p4, p4 + 500.0)),
    }
}

/// The absolute switch window inside a [`promotion_scenario_trace`], ms.
pub fn switch_window_abs_ms(profile: &RrcProfile) -> Option<(f64, f64)> {
    switch_window_ms(profile).map(|(a, b)| (IDLE_LEAD_MS + a, IDLE_LEAD_MS + b))
}

/// The wall-clock offset (ms) at which the data burst starts in the
/// promotion scenario: idle lead + promotion (+ switch window).
fn burst_start_ms(profile: &RrcProfile) -> f64 {
    let end = match switch_window_ms(profile) {
        Some((_, to)) => to,
        None => profile.promo_4g_ms.expect("4G defines promo_4g"),
    };
    IDLE_LEAD_MS + end
}

const IDLE_LEAD_MS: f64 = 20_000.0;
const BURST_MS: f64 = 1_000.0;
const BURST_MW: f64 = 1_600.0;

/// The §4.1 measurement scenario: 20 s of idle, one downlink packet that
/// promotes the UE, a brief activity burst, then the full tail back to
/// IDLE. Returns the radio power trace at 1 ms resolution (the hardware
/// monitor downsamples/integrates it).
///
/// The tail is rendered as a Long-DRX square wave whose *mean* equals
/// `tail_mw`, so monitor integration recovers Table 2.
pub fn promotion_scenario_trace(profile: &RrcProfile, params: &RrcPowerParams) -> TimeSeries {
    let mut ts = TimeSeries::new();
    let mut push = |t_ms: f64, mw: f64| {
        ts.push(SimTime::from_micros((t_ms * 1e3) as u64), mw);
    };

    // Idle lead-in (sampled coarsely).
    let mut t = 0.0;
    while t < IDLE_LEAD_MS {
        push(t, params.idle_mw);
        t += 100.0;
    }
    // Promotion burst, then (for 5G) the 4G→5G switch window.
    let window = switch_window_ms(profile);
    let promo_end = IDLE_LEAD_MS
        + match window {
            Some((from, _)) if from > 0.0 => from, // NSA: LTE promo first
            Some((_, to)) if profile.standalone => to, // SA: direct NR promo
            Some(_) => 0.0,
            None => profile.promo_4g_ms.expect("4G defines promo_4g"),
        };
    let promo_power = if profile.standalone {
        // SA's direct promotion is the cheap "switch" of Table 2.
        params.switch_4g_to_5g_mw.unwrap_or(params.promo_mw)
    } else {
        params.promo_mw
    };
    while t < promo_end {
        push(t, promo_power);
        t += 10.0;
    }
    // NSA 4G→5G switch burst.
    let switch_end = match window {
        Some((_, to)) if !profile.standalone => IDLE_LEAD_MS + to,
        _ => promo_end,
    };
    while t < switch_end {
        push(t, params.switch_4g_to_5g_mw.unwrap_or(params.promo_mw));
        t += 10.0;
    }
    // Data burst.
    let burst_end = switch_end + BURST_MS;
    while t < burst_end {
        push(t, BURST_MW);
        t += 10.0;
    }
    // Tail: DRX square wave at the per-state mean.
    let tail_end = burst_end + profile.time_to_idle_ms();
    if guard::enabled() {
        // Scenario phases are contiguous, ordered dwells: idle lead →
        // promotion → (switch) → burst → tail. Any inversion would make a
        // phase's dwell negative.
        guard::check(
            "power",
            "phase-order",
            IDLE_LEAD_MS <= promo_end
                && promo_end <= switch_end
                && switch_end < burst_end
                && burst_end < tail_end,
            tail_end / 1e3,
            || {
                format!(
                    "phase boundaries disordered: promo {promo_end} switch {switch_end} \
                     burst {burst_end} tail {tail_end} ms"
                )
            },
        );
    }
    let drx = profile.long_drx_ms.max(1.0);
    while t < tail_end {
        let idle_for = t - burst_end;
        let state = profile.state_after_idle(idle_for.max(1.0));
        let mean = params.state_power_mw(state);
        let phase = (idle_for / drx).fract();
        let wave = if phase < 0.5 { 1.8 } else { 0.2 };
        let mw = if state == RrcState::Idle {
            mean
        } else {
            mean * wave
        };
        push(t, mw);
        t += 1.0;
    }
    // The scenario phases, as RRC-layer spans: this trace *is* the §4.1
    // promotion scenario, so the phase boundaries are per-state dwell.
    telemetry::clock(0.0);
    telemetry::span_closed("rrc/promotion", IDLE_LEAD_MS / 1e3, promo_end / 1e3);
    if switch_end > promo_end {
        telemetry::span_closed("rrc/switch", promo_end / 1e3, switch_end / 1e3);
    }
    telemetry::span_closed("rrc/tail", burst_end / 1e3, tail_end / 1e3);
    telemetry::clock(tail_end / 1e3);
    telemetry::observe("rrc/tail_s", (tail_end - burst_end) / 1e3);
    // Post-tail idle.
    let end = tail_end + 5_000.0;
    while t < end {
        push(t, params.idle_mw);
        t += 100.0;
    }
    ts
}

/// Measures the mean tail power from a scenario trace the way the paper
/// does: average over the whole tail window (from end of activity to
/// demotion to IDLE).
pub fn measure_tail_power_mw(profile: &RrcProfile, trace: &TimeSeries) -> f64 {
    let burst_end_ms = burst_start_ms(profile) + BURST_MS;
    // Table 2 reports the CONNECTED tail; SA's subsequent RRC_INACTIVE
    // window is not part of it.
    let tail_end_ms = burst_end_ms + profile.tail_ms.max(profile.lte_tail_ms.unwrap_or(0.0));
    let from = SimTime::from_micros((burst_end_ms * 1e3) as u64) + SimDuration::from_millis(1);
    let to = SimTime::from_micros((tail_end_ms * 1e3) as u64);
    trace.integrate_between(from, to) / to.since(from).as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_are_wired() {
        let p = RrcPowerParams::for_config(RrcConfigId::VzNsaMmWave);
        assert_eq!(p.tail_mw, 1092.0);
        assert_eq!(p.switch_4g_to_5g_mw, Some(1494.0));
        let p = RrcPowerParams::for_config(RrcConfigId::Tm4g);
        assert_eq!(p.tail_mw, 66.0);
        assert_eq!(p.switch_4g_to_5g_mw, None);
    }

    #[test]
    fn five_g_tails_cost_more_than_4g() {
        // §4.2: "5G consumes more energy than 4G during the tail period and
        // for mmWave 5G the tail power is especially higher."
        let vz4g = RrcPowerParams::for_config(RrcConfigId::Vz4g).tail_mw;
        let vz_lb = RrcPowerParams::for_config(RrcConfigId::VzNsaLowBand).tail_mw;
        let vz_mm = RrcPowerParams::for_config(RrcConfigId::VzNsaMmWave).tail_mw;
        assert!(vz_lb > vz4g);
        assert!(vz_mm > 4.0 * vz_lb);
    }

    #[test]
    fn sa_switch_is_cheap() {
        // Table 2: SA's "switch" (direct NR promotion) costs 245 mW vs
        // 699–1494 mW for NSA's LTE-anchored switch.
        let sa = RrcPowerParams::for_config(RrcConfigId::TmSaLowBand)
            .switch_4g_to_5g_mw
            .expect("SA defined");
        for nsa in [
            RrcConfigId::VzNsaLowBand,
            RrcConfigId::VzNsaMmWave,
            RrcConfigId::TmNsaLowBand,
        ] {
            let p = RrcPowerParams::for_config(nsa)
                .switch_4g_to_5g_mw
                .expect("NSA defined");
            assert!(sa < p / 2.0, "SA {sa} vs NSA {p}");
        }
    }

    #[test]
    fn scenario_trace_recovers_tail_power() {
        for config in RrcConfigId::all() {
            let profile = RrcProfile::for_config(config);
            let params = RrcPowerParams::for_config(config);
            let trace = promotion_scenario_trace(&profile, &params);
            let measured = measure_tail_power_mw(&profile, &trace);
            let expected = params.tail_mw;
            let rel = (measured - expected).abs() / expected;
            assert!(
                rel < 0.08,
                "{config:?}: measured {measured:.0} vs expected {expected:.0}"
            );
        }
    }

    #[test]
    fn tail_energy_accounts_for_bracket_and_inactive() {
        let nsa = RrcProfile::for_config(RrcConfigId::VzNsaLowBand);
        let nsa_p = RrcPowerParams::for_config(RrcConfigId::VzNsaLowBand);
        // 18.8 s at 249 mW.
        assert!((nsa_p.tail_energy_mj(&nsa) - 249.0 * 18.8).abs() < 1.0);

        let sa = RrcProfile::for_config(RrcConfigId::TmSaLowBand);
        let sa_p = RrcPowerParams::for_config(RrcConfigId::TmSaLowBand);
        // 10.4 s at 593 mW + 5 s at 160 mW.
        assert!((sa_p.tail_energy_mj(&sa) - (593.0 * 10.4 + 160.0 * 5.0)).abs() < 1.0);
    }

    #[test]
    fn trace_is_time_ordered_and_returns_to_idle() {
        let profile = RrcProfile::for_config(RrcConfigId::TmSaLowBand);
        let params = RrcPowerParams::for_config(RrcConfigId::TmSaLowBand);
        let trace = promotion_scenario_trace(&profile, &params);
        let last = trace.values().last().copied().expect("non-empty");
        assert_eq!(last, params.idle_mw);
    }
}

#[cfg(test)]
mod periodic_tests {
    use super::*;

    fn energy(config: RrcConfigId, period_s: f64) -> f64 {
        let profile = RrcProfile::for_config(config);
        let params = RrcPowerParams::for_config(config);
        periodic_traffic_energy_mj(&profile, &params, period_s, 600.0)
    }

    #[test]
    fn five_g_periodic_traffic_costs_more_than_4g() {
        // §4.2: intermittent waking up should be avoided under 5G.
        for period in [5.0, 15.0, 30.0, 60.0] {
            let mm = energy(RrcConfigId::VzNsaMmWave, period);
            let lte = energy(RrcConfigId::Vz4g, period);
            assert!(mm > 2.0 * lte, "period {period}: {mm:.0} vs {lte:.0} mJ");
        }
    }

    #[test]
    fn short_periods_pin_the_radio_in_the_tail() {
        // Below the tail timer, energy per 10 min is nearly flat (always
        // in CONNECTED); above it, promotions + idle change the slope.
        let a = energy(RrcConfigId::VzNsaMmWave, 2.0);
        let b = energy(RrcConfigId::VzNsaMmWave, 8.0);
        let rel = (a - b).abs() / a;
        assert!(rel < 0.25, "near-flat below the tail: {a:.0} vs {b:.0}");
    }

    #[test]
    fn long_periods_amortize_toward_idle() {
        // Very sparse traffic approaches pure idle cost.
        let sparse = energy(RrcConfigId::Vz4g, 300.0);
        let idle_floor = RrcPowerParams::for_config(RrcConfigId::Vz4g).idle_mw * 600.0;
        assert!(
            sparse < 4.0 * idle_floor,
            "sparse {sparse:.0} vs idle {idle_floor:.0}"
        );
    }

    #[test]
    fn sa_beats_nsa_for_intermittent_traffic() {
        // SA's cheap resume is exactly the §4.2 promise of RRC_INACTIVE.
        let sa = energy(RrcConfigId::TmSaLowBand, 30.0);
        let nsa_mm = energy(RrcConfigId::VzNsaMmWave, 30.0);
        assert!(sa < nsa_mm, "SA {sa:.0} vs NSA mmWave {nsa_mm:.0}");
    }

    #[test]
    #[should_panic(expected = "positive times")]
    fn rejects_zero_period() {
        let profile = RrcProfile::for_config(RrcConfigId::Vz4g);
        let params = RrcPowerParams::for_config(RrcConfigId::Vz4g);
        periodic_traffic_energy_mj(&profile, &params, 0.0, 10.0);
    }
}
