//! Power-measurement instruments.
//!
//! * [`HardwareMonitor`] — the Monsoon-style external monitor: it *powers*
//!   the phone (battery removed), samples at 5 kHz, and is accurate to a
//!   fraction of a percent. Ground truth, at the cost of a bench rig.
//! * [`SoftwareMonitor`] — the Android battery API
//!   (`current_now`/`voltage_now`): convenient, but it systematically
//!   under-reports (Table 9: 81–92% of true power at 1 Hz, 90–95% at
//!   10 Hz) and its sampling loop itself burns power (Table 3: +654 mW at
//!   1 Hz, +1111 mW at 10 Hz). §4.6 shows a DTR can calibrate it back to
//!   a few percent MAPE; `fiveg-bench` reproduces that experiment.

use fiveg_simcore::faults::{self, FaultKind};
use fiveg_simcore::recovery::{self, RecoveryKind};
use fiveg_simcore::{budget, guard, telemetry, RngStream, SimTime, TimeSeries};

/// The benchmark activities of Table 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Random screen taps, app opens/closes.
    RandomInteraction,
    /// Idle, screen on.
    IdleScreenOn,
    /// Idle, screen off.
    IdleScreenOff,
    /// UDP downlink at 50 Mbps.
    UdpDl50,
    /// UDP downlink at 400 Mbps.
    UdpDl400,
    /// UDP downlink at 800 Mbps.
    UdpDl800,
    /// UDP downlink at 1200 Mbps.
    UdpDl1200,
    /// Video playback.
    VideoStreaming,
}

impl Activity {
    /// All Table 9 activities in row order.
    pub fn all() -> [Activity; 8] {
        [
            Activity::RandomInteraction,
            Activity::IdleScreenOn,
            Activity::IdleScreenOff,
            Activity::UdpDl50,
            Activity::UdpDl400,
            Activity::UdpDl800,
            Activity::UdpDl1200,
            Activity::VideoStreaming,
        ]
    }

    /// Table 9 row label.
    pub fn label(self) -> &'static str {
        match self {
            Activity::RandomInteraction => "Random activities",
            Activity::IdleScreenOn => "Idle (screen on)",
            Activity::IdleScreenOff => "Idle (screen off)",
            Activity::UdpDl50 => "UDP DL 50Mbps",
            Activity::UdpDl400 => "UDP DL 400Mbps",
            Activity::UdpDl800 => "UDP DL 800Mbps",
            Activity::UdpDl1200 => "UDP DL 1200Mbps",
            Activity::VideoStreaming => "Video streaming",
        }
    }

    /// Ground-truth SW/HW ratio at 1 Hz sampling (Table 9 column 1).
    pub fn sw_hw_ratio_1hz(self) -> f64 {
        match self {
            Activity::RandomInteraction => 0.842,
            Activity::IdleScreenOn => 0.879,
            Activity::IdleScreenOff => 0.809,
            Activity::UdpDl50 => 0.871,
            Activity::UdpDl400 => 0.874,
            Activity::UdpDl800 => 0.875,
            Activity::UdpDl1200 => 0.868,
            Activity::VideoStreaming => 0.922,
        }
    }

    /// Ground-truth SW/HW ratio at 10 Hz sampling (Table 9 column 2).
    pub fn sw_hw_ratio_10hz(self) -> f64 {
        match self {
            Activity::RandomInteraction => 0.943,
            Activity::IdleScreenOn => 0.937,
            Activity::IdleScreenOff => 0.949,
            Activity::UdpDl50 => 0.915,
            Activity::UdpDl400 => 0.897,
            Activity::UdpDl800 => 0.913,
            Activity::UdpDl1200 => 0.912,
            Activity::VideoStreaming => 0.929,
        }
    }
}

/// The Monsoon-like hardware monitor.
#[derive(Debug, Clone, Copy)]
pub struct HardwareMonitor {
    /// Sampling rate; the paper runs 5000 Hz.
    pub rate_hz: f64,
    /// Multiplicative measurement noise (σ, fraction of reading).
    pub noise_frac: f64,
}

impl Default for HardwareMonitor {
    fn default() -> Self {
        HardwareMonitor {
            rate_hz: 5000.0,
            noise_frac: 0.003,
        }
    }
}

impl HardwareMonitor {
    /// Samples the ground-truth power function `truth(t_s) -> mW` for
    /// `duration_s` seconds.
    ///
    /// Under an ambient fault plane, samples inside a power-dropout window
    /// are skipped entirely — the instrument simply records nothing, leaving
    /// a gap in the trace, as a wedged sampling loop would.
    pub fn record<F: Fn(f64) -> f64>(
        &self,
        truth: F,
        duration_s: f64,
        rng: &mut RngStream,
    ) -> TimeSeries {
        assert!(self.rate_hz > 0.0, "rate must be positive");
        let n = (duration_s * self.rate_hz).round() as usize;
        let mut ts = TimeSeries::new();
        let mut dropped_since: Option<f64> = None;
        telemetry::clock(0.0);
        let _record_span = telemetry::span("power/record");
        for i in 0..n {
            budget::charge(1);
            let t = i as f64 / self.rate_hz;
            telemetry::clock(t);
            if faults::is_active(FaultKind::PowerDropout, t) {
                dropped_since.get_or_insert(t);
                continue;
            }
            if let Some(since) = dropped_since.take() {
                // The sampling loop comes back after the dropout window:
                // note the resync and the gap it leaves in the trace.
                recovery::record(
                    RecoveryKind::MonitorResync,
                    t,
                    1.0 / self.rate_hz,
                    t - since,
                    || format!("hw monitor gap of {:.3}s", t - since),
                );
            }
            let v = (truth(t) * (1.0 + rng.normal(0.0, self.noise_frac))).max(0.0);
            guard::non_negative("power", "rail", v, 0.0, t);
            telemetry::count("power/sample", 1);
            telemetry::observe("power/rail_mw", v);
            telemetry::series("power/rail_mw_t", t, v);
            ts.push(SimTime::from_secs_f64(t), v);
        }
        ts
    }

    /// Energy of a recorded trace in mJ.
    pub fn energy_mj(trace: &TimeSeries) -> f64 {
        trace.integrate()
    }
}

/// The Android battery-API software monitor.
#[derive(Debug, Clone, Copy)]
pub struct SoftwareMonitor {
    /// Sampling rate in Hz (the paper evaluates 1 and 10).
    pub rate_hz: f64,
}

impl SoftwareMonitor {
    /// Creates a monitor at `rate_hz`.
    ///
    /// # Panics
    /// Panics on a non-positive rate.
    pub fn new(rate_hz: f64) -> Self {
        assert!(rate_hz > 0.0, "rate must be positive");
        SoftwareMonitor { rate_hz }
    }

    /// The power the monitoring loop itself adds to the UE, mW
    /// (Table 3: +654 mW at 1 Hz, +1111 mW at 10 Hz; log-interpolated
    /// between).
    pub fn overhead_mw(&self) -> f64 {
        let lo = (1.0f64, 654.2);
        let hi = (10.0f64, 1111.4);
        if self.rate_hz <= lo.0 {
            return lo.1 * self.rate_hz; // scales toward 0 below 1 Hz
        }
        if self.rate_hz >= hi.0 {
            return hi.1;
        }
        let frac = (self.rate_hz.log10() - lo.0.log10()) / (hi.0.log10() - lo.0.log10());
        lo.1 + (hi.1 - lo.1) * frac
    }

    /// The systematic under-reporting factor for `activity`.
    pub fn ratio(&self, activity: Activity) -> f64 {
        if self.rate_hz >= 10.0 {
            activity.sw_hw_ratio_10hz()
        } else {
            activity.sw_hw_ratio_1hz()
        }
    }

    /// Per-sample reading noise (σ, fraction) — coarser ADC paths and
    /// aliasing make low-rate readings noisier.
    pub fn noise_frac(&self) -> f64 {
        if self.rate_hz >= 10.0 {
            0.03
        } else {
            0.05
        }
    }

    /// Samples `truth(t_s) -> mW` for `duration_s` while the UE runs
    /// `activity`. Readings are scaled by the under-reporting ratio and
    /// perturbed by reading noise. (The *overhead* affects the UE's true
    /// power, not the reading; callers add [`SoftwareMonitor::overhead_mw`]
    /// to the truth function when the monitor is on.)
    pub fn record<F: Fn(f64) -> f64>(
        &self,
        truth: F,
        activity: Activity,
        duration_s: f64,
        rng: &mut RngStream,
    ) -> TimeSeries {
        let ratio = self.ratio(activity);
        let noise = self.noise_frac();
        let n = (duration_s * self.rate_hz).round() as usize;
        let mut ts = TimeSeries::new();
        let mut dropped_since: Option<f64> = None;
        telemetry::clock(0.0);
        let _record_span = telemetry::span("power/record");
        for i in 0..n {
            budget::charge(1);
            let t = i as f64 / self.rate_hz;
            telemetry::clock(t);
            // Power-dropout fault windows swallow readings (see
            // `HardwareMonitor::record`).
            if faults::is_active(FaultKind::PowerDropout, t) {
                dropped_since.get_or_insert(t);
                continue;
            }
            if let Some(since) = dropped_since.take() {
                recovery::record(
                    RecoveryKind::MonitorResync,
                    t,
                    1.0 / self.rate_hz,
                    t - since,
                    || format!("sw monitor gap of {:.3}s", t - since),
                );
            }
            let v = (truth(t) * ratio * (1.0 + rng.normal(0.0, noise))).max(0.0);
            guard::non_negative("power", "rail", v, 0.0, t);
            telemetry::count("power/sample", 1);
            telemetry::observe("power/rail_mw", v);
            telemetry::series("power/rail_mw_t", t, v);
            ts.push(SimTime::from_secs_f64(t), v);
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_monitor_is_nearly_exact() {
        let hw = HardwareMonitor::default();
        let mut rng = RngStream::new(1, "hw");
        let trace = hw.record(|_| 1000.0, 2.0, &mut rng);
        assert_eq!(trace.len(), 10_000, "5 kHz × 2 s");
        let mean = trace.time_weighted_mean();
        assert!((mean - 1000.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn software_monitor_underestimates() {
        let sw = SoftwareMonitor::new(1.0);
        let mut rng = RngStream::new(2, "sw");
        let trace = sw.record(|_| 1000.0, Activity::IdleScreenOff, 600.0, &mut rng);
        let mean = trace.time_weighted_mean();
        assert!(
            (mean / 1000.0 - 0.809).abs() < 0.02,
            "Table 9: idle-screen-off @1 Hz ≈ 80.9%, got {mean}"
        );
    }

    #[test]
    fn higher_rate_reads_closer_to_truth() {
        for a in Activity::all() {
            assert!(
                a.sw_hw_ratio_10hz() > a.sw_hw_ratio_1hz(),
                "{a:?}: 10 Hz must beat 1 Hz"
            );
        }
    }

    #[test]
    fn overhead_grows_with_rate() {
        let low = SoftwareMonitor::new(1.0).overhead_mw();
        let high = SoftwareMonitor::new(10.0).overhead_mw();
        assert!((low - 654.2).abs() < 1.0);
        assert!((high - 1111.4).abs() < 1.0);
        let mid = SoftwareMonitor::new(3.0).overhead_mw();
        assert!(low < mid && mid < high);
    }

    #[test]
    fn table3_totals_reproduce() {
        // Idle UE at 2014.3 mW; monitor on: 2668.5 (1 Hz), 3125.7 (10 Hz).
        let idle = 2014.3;
        assert!((idle + SoftwareMonitor::new(1.0).overhead_mw() - 2668.5).abs() < 1.0);
        assert!((idle + SoftwareMonitor::new(10.0).overhead_mw() - 3125.7).abs() < 1.0);
    }

    #[test]
    fn sampling_rate_controls_trace_density() {
        let mut rng = RngStream::new(3, "sw");
        let t1 =
            SoftwareMonitor::new(1.0).record(|_| 100.0, Activity::IdleScreenOn, 10.0, &mut rng);
        let t10 =
            SoftwareMonitor::new(10.0).record(|_| 100.0, Activity::IdleScreenOn, 10.0, &mut rng);
        assert_eq!(t1.len(), 10);
        assert_eq!(t10.len(), 100);
    }
}
