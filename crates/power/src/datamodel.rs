//! Ground-truth data-transfer power: linear in throughput, penalized by
//! weak signal.
//!
//! Slopes come straight from Table 8 (mW per Mbps); intercepts are derived
//! from the paper's crossover points (Fig 11: S20U mmWave crosses 4G at
//! 187 Mbps DL / 40 Mbps UL and low-band at 189 / 123 Mbps; S10 crosses 4G
//! at 213 DL / 44 UL) together with the §4.3 statement that 5G is 79% (DL) /
//! 74% (UL) less energy-efficient than 4G at low throughput — which fixes
//! the intercept *ratio*. See `EXPERIMENTS.md` for the derivation.

use fiveg_radio::band::{BandClass, Direction};
use fiveg_radio::ue::UeModel;

/// The network kinds with distinct power curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// 4G/LTE.
    Lte,
    /// NSA low-band 5G (n71 / n5-DSS).
    LowBandNsa,
    /// SA low-band 5G (n71).
    LowBandSa,
    /// NSA mmWave 5G (n260/n261).
    MmWave,
}

impl NetworkKind {
    /// The band class this network uses for data.
    pub fn band_class(self) -> BandClass {
        match self {
            NetworkKind::Lte => BandClass::Lte,
            NetworkKind::LowBandNsa | NetworkKind::LowBandSa => BandClass::LowBand,
            NetworkKind::MmWave => BandClass::MmWave,
        }
    }

    /// Display label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::Lte => "4G/LTE",
            NetworkKind::LowBandNsa => "5G NSA Low-Band",
            NetworkKind::LowBandSa => "5G SA Low-Band",
            NetworkKind::MmWave => "5G NSA mmWave",
        }
    }
}

/// A linear throughput→power curve for one direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCurve {
    /// mW per Mbps (Table 8).
    pub slope_mw_per_mbps: f64,
    /// Radio power at zero throughput in CONNECTED, mW.
    pub intercept_mw: f64,
}

impl PowerCurve {
    /// Radio power at `throughput_mbps`, mW (signal-strength-neutral).
    pub fn power_mw(&self, throughput_mbps: f64) -> f64 {
        self.intercept_mw + self.slope_mw_per_mbps * throughput_mbps.max(0.0)
    }
}

/// The ground-truth radio power model for one device × network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataPowerModel {
    /// Device.
    pub ue: UeModel,
    /// Network kind.
    pub network: NetworkKind,
    /// Downlink curve.
    pub downlink: PowerCurve,
    /// Uplink curve.
    pub uplink: PowerCurve,
}

fn curve(slope: f64, intercept: f64) -> PowerCurve {
    PowerCurve {
        slope_mw_per_mbps: slope,
        intercept_mw: intercept,
    }
}

impl DataPowerModel {
    /// The calibrated model for `(ue, network)`.
    ///
    /// PX5 was not part of the paper's power study; it borrows the S10
    /// parameters (same modem generation), as documented in DESIGN.md.
    pub fn lookup(ue: UeModel, network: NetworkKind) -> DataPowerModel {
        let (downlink, uplink) = match (ue, network) {
            (UeModel::GalaxyS20Ultra, NetworkKind::Lte) => {
                (curve(14.55, 633.3), curve(80.21, 994.9))
            }
            (UeModel::GalaxyS20Ultra, NetworkKind::LowBandNsa) => {
                (curve(13.52, 802.5), curve(29.15, 1399.7))
            }
            (UeModel::GalaxyS20Ultra, NetworkKind::LowBandSa) => {
                (curve(13.52, 750.0), curve(29.15, 1300.0))
            }
            (UeModel::GalaxyS20Ultra, NetworkKind::MmWave) => {
                (curve(1.81, 3015.7), curve(9.42, 3826.5))
            }
            (UeModel::GalaxyS10 | UeModel::Pixel5, NetworkKind::Lte) => {
                (curve(13.38, 640.9), curve(57.99, 815.0))
            }
            (UeModel::GalaxyS10 | UeModel::Pixel5, NetworkKind::LowBandNsa) => {
                (curve(13.0, 780.0), curve(30.0, 1250.0))
            }
            (UeModel::GalaxyS10 | UeModel::Pixel5, NetworkKind::LowBandSa) => {
                (curve(13.0, 730.0), curve(30.0, 1180.0))
            }
            (UeModel::GalaxyS10 | UeModel::Pixel5, NetworkKind::MmWave) => {
                (curve(2.06, 3052.1), curve(5.27, 3134.7))
            }
        };
        DataPowerModel {
            ue,
            network,
            downlink,
            uplink,
        }
    }

    /// The curve for a direction.
    pub fn curve(&self, dir: Direction) -> PowerCurve {
        match dir {
            Direction::Downlink => self.downlink,
            Direction::Uplink => self.uplink,
        }
    }

    /// Radio power at `throughput_mbps` under good signal, mW.
    pub fn power_mw(&self, dir: Direction, throughput_mbps: f64) -> f64 {
        self.curve(dir).power_mw(throughput_mbps)
    }

    /// Radio power including the signal-strength penalty, mW.
    ///
    /// Weak RSRP costs energy two ways (§4.4): the transmit chain runs at
    /// higher power (additive, up to ~900 mW at the cell edge) and lower
    /// MCS stretches radio-active time per bit (multiplicative on the
    /// throughput-proportional part, up to +60%).
    pub fn power_mw_with_rsrp(&self, dir: Direction, throughput_mbps: f64, rsrp_dbm: f64) -> f64 {
        let class = self.network.band_class();
        let sat = class.rsrp_saturation_dbm();
        let floor = class.rsrp_floor_dbm();
        let weakness = ((sat - rsrp_dbm) / (sat - floor)).clamp(0.0, 1.0);
        let c = self.curve(dir);
        c.intercept_mw
            + c.slope_mw_per_mbps * throughput_mbps.max(0.0) * (1.0 + 0.6 * weakness)
            + 900.0 * weakness * weakness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_radio::band::Direction::{Downlink, Uplink};

    #[test]
    fn table8_slopes_are_wired() {
        let m = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::MmWave);
        assert_eq!(m.downlink.slope_mw_per_mbps, 1.81);
        assert_eq!(m.uplink.slope_mw_per_mbps, 9.42);
        let m = DataPowerModel::lookup(UeModel::GalaxyS10, NetworkKind::Lte);
        assert_eq!(m.downlink.slope_mw_per_mbps, 13.38);
        assert_eq!(m.uplink.slope_mw_per_mbps, 57.99);
    }

    #[test]
    fn s20u_crossovers_match_fig11() {
        let mm = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::MmWave);
        let lte = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::Lte);
        let lb = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::LowBandNsa);
        let x = crate::efficiency::crossover_mbps(&lte.downlink, &mm.downlink).expect("crosses");
        assert!((x - 187.0).abs() < 2.0, "mmWave/4G DL crossover {x}");
        let x = crate::efficiency::crossover_mbps(&lb.downlink, &mm.downlink).expect("crosses");
        assert!((x - 189.0).abs() < 2.0, "mmWave/LB DL crossover {x}");
        let x = crate::efficiency::crossover_mbps(&lte.uplink, &mm.uplink).expect("crosses");
        assert!((x - 40.0).abs() < 1.0, "mmWave/4G UL crossover {x}");
        let x = crate::efficiency::crossover_mbps(&lb.uplink, &mm.uplink).expect("crosses");
        assert!((x - 123.0).abs() < 2.0, "mmWave/LB UL crossover {x}");
    }

    #[test]
    fn s10_crossovers_match_fig26() {
        let mm = DataPowerModel::lookup(UeModel::GalaxyS10, NetworkKind::MmWave);
        let lte = DataPowerModel::lookup(UeModel::GalaxyS10, NetworkKind::Lte);
        let x = crate::efficiency::crossover_mbps(&lte.downlink, &mm.downlink).expect("crosses");
        assert!((x - 213.0).abs() < 2.0, "S10 DL crossover {x}");
        let x = crate::efficiency::crossover_mbps(&lte.uplink, &mm.uplink).expect("crosses");
        assert!((x - 44.0).abs() < 1.0, "S10 UL crossover {x}");
    }

    #[test]
    fn uplink_slopes_exceed_downlink_2x_to_6x() {
        // Appendix A.4: uplink power rises 2.2–5.9× faster than downlink.
        for (ue, nk) in [
            (UeModel::GalaxyS10, NetworkKind::Lte),
            (UeModel::GalaxyS10, NetworkKind::MmWave),
            (UeModel::GalaxyS20Ultra, NetworkKind::Lte),
            (UeModel::GalaxyS20Ultra, NetworkKind::LowBandNsa),
            (UeModel::GalaxyS20Ultra, NetworkKind::MmWave),
        ] {
            let m = DataPowerModel::lookup(ue, nk);
            let ratio = m.uplink.slope_mw_per_mbps / m.downlink.slope_mw_per_mbps;
            assert!((2.0..=6.0).contains(&ratio), "{ue:?}/{nk:?} ratio {ratio}");
        }
    }

    #[test]
    fn five_g_is_much_less_efficient_at_low_throughput() {
        // §4.3: 5G is ~79% (DL) / ~74% (UL) less energy-efficient than 4G
        // at low throughput.
        let mm = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::MmWave);
        let lte = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::Lte);
        let dl = 1.0 - lte.power_mw(Downlink, 1.0) / mm.power_mw(Downlink, 1.0);
        assert!((dl - 0.79).abs() < 0.03, "DL deficit {dl}");
        let ul = 1.0 - lte.power_mw(Uplink, 1.0) / mm.power_mw(Uplink, 1.0);
        assert!((ul - 0.74).abs() < 0.03, "UL deficit {ul}");
    }

    #[test]
    fn five_g_wins_big_at_high_throughput() {
        // §4.3: up to ~5× more efficient on downlink at high throughput.
        let mm = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::MmWave);
        let lte = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::Lte);
        let e_5g = mm.power_mw(Downlink, 2000.0) / 2000.0;
        let e_4g = lte.power_mw(Downlink, 210.0) / 210.0;
        let ratio = e_4g / e_5g;
        assert!((4.0..=6.5).contains(&ratio), "high-throughput gain {ratio}");
    }

    #[test]
    fn weak_signal_costs_power() {
        let m = DataPowerModel::lookup(UeModel::GalaxyS10, NetworkKind::MmWave);
        let good = m.power_mw_with_rsrp(Downlink, 1000.0, -70.0);
        let bad = m.power_mw_with_rsrp(Downlink, 1000.0, -105.0);
        assert!(bad > good + 800.0, "weak-signal penalty: {good} vs {bad}");
        // At saturation RSRP the penalized model equals the plain one.
        assert!((good - m.power_mw(Downlink, 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn px5_borrows_s10_parameters() {
        assert_eq!(
            DataPowerModel::lookup(UeModel::Pixel5, NetworkKind::MmWave).downlink,
            DataPowerModel::lookup(UeModel::GalaxyS10, NetworkKind::MmWave).downlink
        );
    }

    #[test]
    fn negative_throughput_clamps() {
        let m = DataPowerModel::lookup(UeModel::GalaxyS10, NetworkKind::Lte);
        assert_eq!(m.power_mw(Downlink, -5.0), m.power_mw(Downlink, 0.0));
    }
}
