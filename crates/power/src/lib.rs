//! UE power substrate.
//!
//! Everything §4 of the paper measures, as simulatable models:
//!
//! * [`datamodel`] — the ground-truth data-transfer power law per device ×
//!   network × direction. Linear in throughput (Fig 11) with the Table 8
//!   slopes, plus a signal-strength penalty (Fig 13/14): weak RSRP raises
//!   transmit power and stretches radio-active time.
//! * [`rrcpower`] — power of the RRC life cycle: connected base, the DRX
//!   tail (Table 2), promotions, and the costly 4G→5G switch.
//! * [`monitor`] — the two measurement instruments: a Monsoon-like hardware
//!   monitor sampling at 5 kHz, and the Android battery-API software
//!   monitor, which under-reports (Table 9) and burns extra power at higher
//!   sampling rates (Table 3).
//! * [`efficiency`] — energy-per-bit and the 4G/5G crossover points.
//!
//! The *models* here are ground truth for the simulated world; the paper's
//! modelling exercise (fit a DTR on walking data, Fig 15) is reproduced on
//! top of them by `fiveg-traces` + `fiveg-mlkit`.

pub mod datamodel;
pub mod efficiency;
pub mod monitor;
pub mod rrcpower;

pub use datamodel::{DataPowerModel, NetworkKind};
pub use efficiency::{crossover_mbps, energy_efficiency_uj_per_bit};
pub use monitor::{Activity, HardwareMonitor, SoftwareMonitor};
pub use rrcpower::RrcPowerParams;

/// Screen power at maximum brightness, mW. The paper pins brightness to max
/// and subtracts this from every measurement; so do we.
pub const SCREEN_POWER_MW: f64 = 1150.0;

/// Device base power: CPU/RAM/sensors with the screen off and the radio
/// idle, mW.
pub const DEVICE_BASE_MW: f64 = 850.0;
