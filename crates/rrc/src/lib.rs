//! Radio Resource Control (RRC) state machines for 4G, NSA 5G, and SA 5G.
//!
//! Cellular radios save power by demoting through RRC states when idle:
//!
//! * `RRC_CONNECTED` — data flows; after a short gap the radio sleeps
//!   between Long-DRX wake-ups,
//! * `RRC_INACTIVE` — **SA 5G only** (TS 38.331): the radio sleeps but the
//!   core keeps the UE context, so resuming is cheap and fast,
//! * `RRC_IDLE` — full release; waking requires a promotion through the
//!   control plane (hundreds of ms to seconds).
//!
//! NSA 5G anchors its control plane on LTE, which makes its machine 4G-like
//! and adds a quirk the paper observes (Appendix A.3): after the NR
//! inactivity timer fires, traffic falls back to the **LTE leg** of the dual
//! connection for a further window before the UE finally drops to IDLE — the
//! bracketed second tail timer of Table 7.
//!
//! [`RrcProfile`] carries the per-carrier parameters (Table 7);
//! [`RrcMachine`] simulates packet arrivals against the machine, producing
//! the access delays and radio choices that `fiveg-probes::rrcprobe` infers
//! parameters from and `fiveg-power` turns into power traces.

pub mod machine;
pub mod profile;

pub use machine::{AccessDelay, RrcMachine};
pub use profile::{RrcConfigId, RrcProfile, RrcState};
