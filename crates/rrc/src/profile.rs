//! Per-carrier RRC parameter profiles (ground truth for Table 7).
//!
//! These are the values the paper inferred with RRC-Probe; in this
//! reproduction they are the *ground truth* that our simulated UEs obey, and
//! the probe tool must recover them from observed behaviour.

use fiveg_radio::band::BandClass;
use fiveg_radio::Carrier;

/// RRC protocol states (union over 4G and 5G SA/NSA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrcState {
    /// Data radio up on the profile's primary radio (NR for 5G, LTE for 4G).
    Connected,
    /// NSA only: NR inactivity timer fired; traffic rides the LTE leg.
    ConnectedLte,
    /// SA only: context retained, radio asleep (TS 38.331 RRC_INACTIVE).
    Inactive,
    /// Fully released.
    Idle,
}

/// The six carrier/radio configurations of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrcConfigId {
    /// T-Mobile SA low-band 5G.
    TmSaLowBand,
    /// T-Mobile NSA low-band 5G.
    TmNsaLowBand,
    /// Verizon NSA mmWave 5G.
    VzNsaMmWave,
    /// Verizon NSA low-band 5G (DSS).
    VzNsaLowBand,
    /// T-Mobile 4G/LTE.
    Tm4g,
    /// Verizon 4G/LTE.
    Vz4g,
}

impl RrcConfigId {
    /// All six configurations, in Table 7 row order.
    pub fn all() -> [RrcConfigId; 6] {
        [
            RrcConfigId::TmSaLowBand,
            RrcConfigId::TmNsaLowBand,
            RrcConfigId::VzNsaMmWave,
            RrcConfigId::VzNsaLowBand,
            RrcConfigId::Tm4g,
            RrcConfigId::Vz4g,
        ]
    }

    /// Display label matching Table 7.
    pub fn label(self) -> &'static str {
        match self {
            RrcConfigId::TmSaLowBand => "T-Mobile SA low-band",
            RrcConfigId::TmNsaLowBand => "T-Mobile NSA low-band",
            RrcConfigId::VzNsaMmWave => "Verizon NSA mmWave",
            RrcConfigId::VzNsaLowBand => "Verizon NSA low-band (DSS)",
            RrcConfigId::Tm4g => "T-Mobile 4G",
            RrcConfigId::Vz4g => "Verizon 4G",
        }
    }
}

/// RRC timer/delay parameters for one carrier configuration. Times in ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RrcProfile {
    /// Which configuration this is.
    pub id: RrcConfigId,
    /// Operating carrier.
    pub carrier: Carrier,
    /// Band class of the primary data radio.
    pub primary_class: BandClass,
    /// Whether the 5G deployment is standalone.
    pub standalone: bool,
    /// UE-inactivity (tail) timer: time in CONNECTED after the last packet.
    pub tail_ms: f64,
    /// NSA only: the bracketed second tail — after `tail_ms`, traffic rides
    /// the LTE leg until this (measured from the last packet).
    pub lte_tail_ms: Option<f64>,
    /// Long-DRX cycle in CONNECTED.
    pub long_drx_ms: f64,
    /// Paging DRX cycle in IDLE (and INACTIVE).
    pub idle_drx_ms: f64,
    /// IDLE → LTE_CONNECTED promotion delay (4G and NSA profiles).
    pub promo_4g_ms: Option<f64>,
    /// IDLE → NR_CONNECTED total promotion delay (5G profiles; for NSA this
    /// runs *through* the 4G promotion: LTE_IDLE → LTE_CONNECTED →
    /// NR_CONNECTED).
    pub promo_5g_ms: Option<f64>,
    /// SA only: how long the UE lingers in RRC_INACTIVE after the tail.
    pub inactive_duration_ms: Option<f64>,
    /// SA only: resume delay from RRC_INACTIVE (lightweight resume).
    pub inactive_resume_ms: Option<f64>,
    /// Connected-mode DRX starts after this much inactivity.
    pub drx_onset_ms: f64,
}

impl RrcProfile {
    /// The ground-truth profile for a configuration (Table 7 values).
    pub fn for_config(id: RrcConfigId) -> RrcProfile {
        let base = RrcProfile {
            id,
            carrier: Carrier::TMobile,
            primary_class: BandClass::LowBand,
            standalone: false,
            tail_ms: 0.0,
            lte_tail_ms: None,
            long_drx_ms: 0.0,
            idle_drx_ms: 0.0,
            promo_4g_ms: None,
            promo_5g_ms: None,
            inactive_duration_ms: None,
            inactive_resume_ms: None,
            drx_onset_ms: 100.0,
        };
        match id {
            RrcConfigId::TmSaLowBand => RrcProfile {
                standalone: true,
                tail_ms: 10_400.0,
                long_drx_ms: 40.0,
                idle_drx_ms: 1_250.0,
                promo_5g_ms: Some(341.0),
                inactive_duration_ms: Some(5_000.0),
                inactive_resume_ms: Some(120.0),
                ..base
            },
            RrcConfigId::TmNsaLowBand => RrcProfile {
                tail_ms: 10_400.0,
                lte_tail_ms: Some(12_120.0),
                long_drx_ms: 320.0,
                idle_drx_ms: 1_200.0,
                promo_4g_ms: Some(210.0),
                promo_5g_ms: Some(1_440.0),
                ..base
            },
            RrcConfigId::VzNsaMmWave => RrcProfile {
                carrier: Carrier::Verizon,
                primary_class: BandClass::MmWave,
                tail_ms: 10_500.0,
                long_drx_ms: 320.0,
                idle_drx_ms: 1_280.0,
                promo_4g_ms: Some(396.0),
                promo_5g_ms: Some(1_907.0),
                ..base
            },
            RrcConfigId::VzNsaLowBand => RrcProfile {
                carrier: Carrier::Verizon,
                tail_ms: 10_200.0,
                lte_tail_ms: Some(18_800.0),
                long_drx_ms: 400.0,
                idle_drx_ms: 1_100.0,
                promo_4g_ms: Some(288.0),
                // DSS shares the LTE carrier: no separately measurable NR
                // promotion (Table 7 lists N/A).
                promo_5g_ms: None,
                ..base
            },
            RrcConfigId::Tm4g => RrcProfile {
                primary_class: BandClass::Lte,
                tail_ms: 5_000.0,
                long_drx_ms: 400.0,
                idle_drx_ms: 1_300.0,
                promo_4g_ms: Some(190.0),
                ..base
            },
            RrcConfigId::Vz4g => RrcProfile {
                carrier: Carrier::Verizon,
                primary_class: BandClass::Lte,
                tail_ms: 10_200.0,
                long_drx_ms: 300.0,
                idle_drx_ms: 1_280.0,
                promo_4g_ms: Some(265.0),
                ..base
            },
        }
    }

    /// Whether this is a 5G profile (NSA or SA).
    pub fn is_5g(self) -> bool {
        self.primary_class != BandClass::Lte
    }

    /// The RRC state a UE is in after `idle_ms` of data inactivity.
    pub fn state_after_idle(self, idle_ms: f64) -> RrcState {
        if idle_ms <= self.tail_ms {
            return RrcState::Connected;
        }
        if let Some(lte_tail) = self.lte_tail_ms {
            if idle_ms <= lte_tail {
                return RrcState::ConnectedLte;
            }
        }
        if self.standalone {
            let inactive_until =
                self.tail_ms + self.inactive_duration_ms.expect("SA profiles define this");
            if idle_ms <= inactive_until {
                return RrcState::Inactive;
            }
        }
        RrcState::Idle
    }

    /// The time after the last packet at which the UE reaches RRC_IDLE —
    /// the end of the energy "tail".
    pub fn time_to_idle_ms(self) -> f64 {
        let mut t = self.tail_ms;
        if let Some(lte_tail) = self.lte_tail_ms {
            t = t.max(lte_tail);
        }
        if let Some(d) = self.inactive_duration_ms {
            t = self.tail_ms + d.max(t - self.tail_ms);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_values_are_wired() {
        let p = RrcProfile::for_config(RrcConfigId::VzNsaMmWave);
        assert_eq!(p.tail_ms, 10_500.0);
        assert_eq!(p.long_drx_ms, 320.0);
        assert_eq!(p.idle_drx_ms, 1_280.0);
        assert_eq!(p.promo_4g_ms, Some(396.0));
        assert_eq!(p.promo_5g_ms, Some(1_907.0));
        assert_eq!(p.carrier, Carrier::Verizon);
    }

    #[test]
    fn nsa_timers_mirror_4g() {
        // "the timers of NSA 5G and 4G LTE are very similar" (§4.2):
        // same order of magnitude for tail, DRX cycles.
        let nsa = RrcProfile::for_config(RrcConfigId::VzNsaLowBand);
        let lte = RrcProfile::for_config(RrcConfigId::Vz4g);
        assert_eq!(nsa.tail_ms, lte.tail_ms);
        assert!((nsa.idle_drx_ms - lte.idle_drx_ms).abs() < 300.0);
    }

    #[test]
    fn sa_walks_through_inactive() {
        let p = RrcProfile::for_config(RrcConfigId::TmSaLowBand);
        assert_eq!(p.state_after_idle(5_000.0), RrcState::Connected);
        assert_eq!(p.state_after_idle(10_400.0), RrcState::Connected);
        // "the UE remains in this state for about 5s (10s to 15s of interval)"
        assert_eq!(p.state_after_idle(12_000.0), RrcState::Inactive);
        assert_eq!(p.state_after_idle(15_300.0), RrcState::Inactive);
        assert_eq!(p.state_after_idle(16_000.0), RrcState::Idle);
    }

    #[test]
    fn nsa_falls_back_to_lte_before_idle() {
        let p = RrcProfile::for_config(RrcConfigId::VzNsaLowBand);
        assert_eq!(p.state_after_idle(10_000.0), RrcState::Connected);
        assert_eq!(p.state_after_idle(11_000.0), RrcState::ConnectedLte);
        assert_eq!(p.state_after_idle(18_000.0), RrcState::ConnectedLte);
        assert_eq!(p.state_after_idle(19_000.0), RrcState::Idle);
    }

    #[test]
    fn plain_4g_has_no_intermediate_states() {
        let p = RrcProfile::for_config(RrcConfigId::Tm4g);
        assert_eq!(p.state_after_idle(4_999.0), RrcState::Connected);
        assert_eq!(p.state_after_idle(5_001.0), RrcState::Idle);
    }

    #[test]
    fn time_to_idle_spans_the_full_tail() {
        assert_eq!(
            RrcProfile::for_config(RrcConfigId::TmSaLowBand).time_to_idle_ms(),
            15_400.0
        );
        assert_eq!(
            RrcProfile::for_config(RrcConfigId::VzNsaLowBand).time_to_idle_ms(),
            18_800.0
        );
        assert_eq!(
            RrcProfile::for_config(RrcConfigId::Tm4g).time_to_idle_ms(),
            5_000.0
        );
    }

    #[test]
    fn tmobile_sa_tail_is_10s_not_20s() {
        // Key finding vs Xu et al. [59]: the SA tail is ~10 s (like 4G),
        // not a stacked 20 s of 5G+4G tails.
        let p = RrcProfile::for_config(RrcConfigId::TmSaLowBand);
        assert!(p.tail_ms < 11_000.0);
        assert!(p.lte_tail_ms.is_none());
    }

    #[test]
    fn is_5g_classification() {
        assert!(RrcProfile::for_config(RrcConfigId::TmSaLowBand).is_5g());
        assert!(RrcProfile::for_config(RrcConfigId::VzNsaMmWave).is_5g());
        assert!(!RrcProfile::for_config(RrcConfigId::Vz4g).is_5g());
    }
}
