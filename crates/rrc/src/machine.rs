//! The stateful RRC machine: packet arrivals → access delays.
//!
//! [`RrcMachine::on_packet`] is the contract the probing tools measure
//! against: given the machine's state when a downlink packet arrives, how
//! long until the UE's ACK leaves, and over which radio?
//!
//! Delay composition per state:
//!
//! * `Connected` (gap < DRX onset): essentially immediate.
//! * `Connected` (DRX): wait for the next Long-DRX wake-up — uniform over
//!   the cycle.
//! * `ConnectedLte` (NSA fallback window): LTE Long-DRX wait; the ACK rides
//!   the LTE leg (observably higher base RTT).
//! * `Inactive` (SA): paging wait (idle-DRX cycle) + lightweight resume.
//! * `Idle`: paging wait + full promotion. For NSA, the first reply leaves
//!   over LTE after the 4G promotion; NR becomes active only after the full
//!   5G promotion delay, which subsequent packets observe.

use crate::profile::{RrcProfile, RrcState};
use fiveg_radio::band::BandClass;
use fiveg_simcore::faults::{self, FaultKind};
use fiveg_simcore::recovery::{self, RecoveryKind};
use fiveg_simcore::{guard, telemetry, RngStream};

/// Result of a packet arrival at the UE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessDelay {
    /// RRC-induced delay before the UE's reply leaves, in ms (excludes the
    /// network path RTT, which the caller adds per radio).
    pub delay_ms: f64,
    /// The state the packet found the UE in.
    pub state: RrcState,
    /// The band class of the radio carrying the reply.
    pub radio: BandClass,
}

/// A UE's RRC machine evolving over (millisecond) time.
#[derive(Debug, Clone)]
pub struct RrcMachine {
    profile: RrcProfile,
    rng: RngStream,
    /// Time of the last data activity (ms since epoch), or `None` before
    /// any traffic.
    last_activity_ms: Option<f64>,
    /// For NSA: NR is not yet active until this time after an idle
    /// promotion (LTE carries traffic meanwhile).
    nr_ready_at_ms: f64,
}

impl RrcMachine {
    /// Creates a machine in RRC_IDLE.
    pub fn new(profile: RrcProfile, rng: RngStream) -> Self {
        RrcMachine {
            profile,
            rng,
            last_activity_ms: None,
            nr_ready_at_ms: 0.0,
        }
    }

    /// The profile this machine obeys.
    pub fn profile(&self) -> RrcProfile {
        self.profile
    }

    /// The state at `now_ms`, before any packet processing.
    ///
    /// During an ambient RRC-reset fault window the connection is torn down:
    /// the machine reports RRC_IDLE regardless of recent activity, so the
    /// next packet pays the full paging + promotion cost.
    pub fn state_at(&self, now_ms: f64) -> RrcState {
        if faults::is_active(FaultKind::RrcReset, now_ms / 1_000.0) {
            return RrcState::Idle;
        }
        match self.last_activity_ms {
            None => RrcState::Idle,
            Some(last) => self.profile.state_after_idle(now_ms - last),
        }
    }

    /// Processes a downlink packet arriving at `now_ms` and returns the
    /// access delay of the UE's reply. Updates activity timers.
    ///
    /// # Panics
    /// Panics if time goes backwards relative to the previous packet.
    pub fn on_packet(&mut self, now_ms: f64) -> AccessDelay {
        if let Some(last) = self.last_activity_ms {
            assert!(now_ms >= last, "time went backwards: {now_ms} < {last}");
        }
        let p = self.profile;
        let state = self.state_at(now_ms);
        let idle_ms = self.last_activity_ms.map_or(f64::INFINITY, |l| now_ms - l);

        let (delay, radio) = match state {
            RrcState::Connected => {
                let delay = if idle_ms < p.drx_onset_ms {
                    0.5
                } else {
                    self.rng.gen_range(0.0..p.long_drx_ms.max(1.0))
                };
                // NSA: if the NR leg is still being promoted, the reply
                // rides LTE.
                let radio = if p.is_5g() && !p.standalone && now_ms < self.nr_ready_at_ms {
                    BandClass::Lte
                } else {
                    p.primary_class
                };
                (delay, radio)
            }
            RrcState::ConnectedLte => {
                let delay = self.rng.gen_range(0.0..p.long_drx_ms.max(1.0));
                (delay, BandClass::Lte)
            }
            RrcState::Inactive => {
                let paging = self.rng.gen_range(0.0..p.idle_drx_ms);
                let resume = p.inactive_resume_ms.expect("SA profiles define this");
                (paging + resume, p.primary_class)
            }
            RrcState::Idle => {
                let paging = self.rng.gen_range(0.0..p.idle_drx_ms);
                if p.standalone {
                    // SA promotes straight to NR_CONNECTED.
                    let promo = p.promo_5g_ms.expect("SA profiles define this");
                    (paging + promo, p.primary_class)
                } else if p.is_5g() {
                    // NSA: LTE comes up first and carries the reply; NR
                    // activates after the full 5G promotion (if the band
                    // has a distinct NR promotion at all — DSS does not).
                    let promo4 = p.promo_4g_ms.expect("NSA profiles define this");
                    if let Some(promo5) = p.promo_5g_ms {
                        self.nr_ready_at_ms = now_ms + paging + promo5;
                        (paging + promo4, BandClass::Lte)
                    } else {
                        (paging + promo4, p.primary_class)
                    }
                } else {
                    let promo4 = p.promo_4g_ms.expect("4G profiles define this");
                    (paging + promo4, BandClass::Lte)
                }
            }
        };

        // Fault plane: a stuck RRC timer stretches every paging/promotion/DRX
        // wait by the window's magnitude. Applied after the state logic so
        // that, with no plane installed, delays are bit-identical.
        let delay = match faults::magnitude(FaultKind::RrcStuckTimer, now_ms / 1_000.0) {
            Some(m) => delay * m.max(1.0),
            None => delay,
        };

        if guard::enabled() {
            // Transition legality: the state a packet finds must follow
            // from the dwell since the last activity — unless an RRC-reset
            // fault window tore the connection down underneath the timers.
            let natural = self
                .last_activity_ms
                .map_or(RrcState::Idle, |l| p.state_after_idle(now_ms - l));
            guard::check(
                "rrc",
                "state-legal",
                state == natural || faults::is_active(FaultKind::RrcReset, now_ms / 1_000.0),
                now_ms / 1_000.0,
                || format!("packet found {state:?} but dwell {idle_ms:.1} ms implies {natural:?}"),
            );
            // Access delays are waits; a negative or non-finite one would
            // silently rewind the activity clock below.
            guard::non_negative("rrc", "delay", delay, 0.0, now_ms / 1_000.0);
        }

        // An Idle found only because an RRC-reset window tore the connection
        // down (the natural timers would not have idled yet) means this
        // promotion is a re-establishment.
        if state == RrcState::Idle
            && self
                .last_activity_ms
                .is_some_and(|l| p.state_after_idle(now_ms - l) != RrcState::Idle)
        {
            if let Some((start, dur)) = faults::window_of(FaultKind::RrcReset, now_ms / 1_000.0) {
                recovery::record(
                    RecoveryKind::RrcReestablish,
                    now_ms / 1_000.0,
                    (now_ms / 1_000.0 - start).max(0.0),
                    dur,
                    || format!("rrc reset window, paid {delay:.0} ms promotion"),
                );
            }
        }

        // Telemetry: the packet's access interval in sim time, the state
        // the machine was found in, and the dwell since the last packet.
        telemetry::clock(now_ms / 1_000.0);
        telemetry::span_closed("rrc/packet", now_ms / 1_000.0, (now_ms + delay) / 1_000.0);
        telemetry::observe("rrc/delay_ms", delay);
        // One literal call per state so the catalog lint can see every
        // emitted name at the call site.
        match state {
            RrcState::Connected => telemetry::count("rrc/state/connected", 1),
            RrcState::ConnectedLte => telemetry::count("rrc/state/connected-lte", 1),
            RrcState::Inactive => telemetry::count("rrc/state/inactive", 1),
            RrcState::Idle => telemetry::count("rrc/state/idle", 1),
        }
        if idle_ms.is_finite() {
            telemetry::observe("rrc/dwell_s", idle_ms / 1_000.0);
        }

        self.last_activity_ms = Some(now_ms + delay);
        AccessDelay {
            delay_ms: delay,
            state,
            radio,
        }
    }

    /// Marks continuous data activity at `now_ms` without measuring a delay
    /// (e.g. a bulk transfer keeping the radio in CONNECTED).
    pub fn touch(&mut self, now_ms: f64) {
        self.last_activity_ms = Some(match self.last_activity_ms {
            Some(last) => now_ms.max(last),
            None => now_ms,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::RrcConfigId;

    fn machine(id: RrcConfigId, seed: u64) -> RrcMachine {
        RrcMachine::new(RrcProfile::for_config(id), RngStream::new(seed, "rrc"))
    }

    #[test]
    fn back_to_back_packets_see_no_delay() {
        let mut m = machine(RrcConfigId::Vz4g, 1);
        m.touch(0.0);
        let d = m.on_packet(50.0);
        assert_eq!(d.state, RrcState::Connected);
        assert!(d.delay_ms < 1.0);
    }

    #[test]
    fn connected_drx_wait_is_bounded_by_cycle() {
        let mut m = machine(RrcConfigId::VzNsaMmWave, 2);
        for i in 0..200 {
            m.touch(i as f64 * 20_000.0);
            let d = m.on_packet(i as f64 * 20_000.0 + 5_000.0);
            assert_eq!(d.state, RrcState::Connected);
            assert!(d.delay_ms <= 320.0, "DRX wait {}", d.delay_ms);
        }
    }

    #[test]
    fn idle_access_pays_promotion() {
        let mut m = machine(RrcConfigId::Tm4g, 3);
        m.touch(0.0);
        let d = m.on_packet(20_000.0);
        assert_eq!(d.state, RrcState::Idle);
        assert!(d.delay_ms >= 190.0, "at least the 4G promotion");
        assert!(
            d.delay_ms <= 190.0 + 1_300.0,
            "plus at most one paging cycle"
        );
        assert_eq!(d.radio, BandClass::Lte);
    }

    #[test]
    fn sa_inactive_is_cheap_and_fast() {
        let mut m = machine(RrcConfigId::TmSaLowBand, 4);
        m.touch(0.0);
        // 12 s idle: inside the INACTIVE window (10.4 .. 15.4 s).
        let d = m.on_packet(12_000.0);
        assert_eq!(d.state, RrcState::Inactive);
        assert!(d.delay_ms >= 120.0 && d.delay_ms <= 120.0 + 1_250.0);
        assert_eq!(d.radio, BandClass::LowBand);

        // 20 s idle: IDLE; pays the full 341 ms promotion.
        let mut m = machine(RrcConfigId::TmSaLowBand, 5);
        m.touch(0.0);
        let d = m.on_packet(20_000.0);
        assert_eq!(d.state, RrcState::Idle);
        assert!(d.delay_ms >= 341.0);
    }

    #[test]
    fn nsa_idle_reply_rides_lte_until_nr_promotes() {
        let mut m = machine(RrcConfigId::VzNsaMmWave, 6);
        m.touch(0.0);
        let first = m.on_packet(30_000.0);
        assert_eq!(first.state, RrcState::Idle);
        assert_eq!(first.radio, BandClass::Lte, "first reply over LTE");
        // At 31.9 s: after the first reply (≤ 31.68 s) but before the NR
        // promotion completes (≥ 31.91 s) — still on LTE.
        let second = m.on_packet(31_900.0);
        assert_eq!(second.radio, BandClass::Lte);
        // At 36 s: NR promotion (≤ 33.19 s) done.
        let third = m.on_packet(36_000.0);
        assert_eq!(third.radio, BandClass::MmWave);
    }

    #[test]
    fn nsa_fallback_window_uses_lte() {
        let mut m = machine(RrcConfigId::VzNsaLowBand, 7);
        m.touch(0.0);
        let d = m.on_packet(15_000.0); // between 10.2 s and 18.8 s
        assert_eq!(d.state, RrcState::ConnectedLte);
        assert_eq!(d.radio, BandClass::Lte);
    }

    #[test]
    fn dss_idle_promotion_has_no_separate_nr_delay() {
        let mut m = machine(RrcConfigId::VzNsaLowBand, 8);
        m.touch(0.0);
        let d = m.on_packet(40_000.0);
        assert_eq!(d.state, RrcState::Idle);
        // DSS: data continues on the shared carrier right after 4G promo.
        assert_eq!(d.radio, BandClass::LowBand);
    }

    #[test]
    fn activity_resets_the_tail() {
        let mut m = machine(RrcConfigId::Vz4g, 9);
        m.touch(0.0);
        // Keep touching every 5 s: never idles (tail is 10.2 s).
        for i in 1..20 {
            m.touch(i as f64 * 5_000.0);
        }
        assert_eq!(m.state_at(99_000.0), RrcState::Connected);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_regression() {
        let mut m = machine(RrcConfigId::Vz4g, 10);
        m.on_packet(1_000.0);
        m.on_packet(0.0);
    }
}
