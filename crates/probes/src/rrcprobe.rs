//! RRC-Probe: inferring RRC parameters from packet-pair RTTs.
//!
//! The method (§4.1, improving on Huang et al. / Rosen et al.): a server
//! sends UDP packets to the UE at a controlled inter-packet interval Δ and
//! the UE ACKs each one. The reply latency of a packet depends on the RRC
//! state the UE had demoted to after Δ of inactivity — connected replies
//! are fast (at most one Long-DRX cycle), RRC_INACTIVE replies pay a light
//! resume, IDLE replies pay paging plus a full promotion. Sweeping and
//! bisecting over Δ recovers every timer in Table 7 *without rooting the
//! phone*.
//!
//! The prober knows its own path baselines (it pings while forced onto
//! each radio before the sweep), so subtracting the network RTT from a
//! reply isolates the RRC-induced delay.

use fiveg_radio::band::BandClass;
use fiveg_rrc::machine::RrcMachine;
use fiveg_rrc::profile::{RrcProfile, RrcState};
use fiveg_simcore::RngStream;

/// One probe observation (a Fig 10 scatter point).
#[derive(Debug, Clone, Copy)]
pub struct ProbeSample {
    /// Idle interval between packets, ms.
    pub interval_ms: f64,
    /// Observed reply RTT, ms.
    pub rtt_ms: f64,
    /// Radio class that carried the reply.
    pub radio: BandClass,
    /// The state the packet found the UE in (ground truth, for plotting
    /// Fig 10's colour classes; the inference below never reads it).
    pub state: RrcState,
}

/// Parameters recovered by the probe (the Table 7 row).
#[derive(Debug, Clone, Copy)]
pub struct InferredRrcParams {
    /// UE-inactivity (tail) timer, ms.
    pub tail_ms: f64,
    /// NSA second (LTE-leg) tail, ms, if present.
    pub lte_tail_ms: Option<f64>,
    /// Long-DRX cycle in CONNECTED, ms.
    pub long_drx_ms: f64,
    /// IDLE paging DRX cycle, ms.
    pub idle_drx_ms: f64,
    /// 4G promotion delay, ms (4G and NSA profiles).
    pub promo_4g_ms: Option<f64>,
    /// 5G promotion delay, ms (5G profiles with a distinct NR promotion).
    pub promo_5g_ms: Option<f64>,
    /// SA: inferred end of the RRC_INACTIVE window (ms after last packet).
    pub inactive_until_ms: Option<f64>,
}

/// The probing tool bound to one UE configuration.
#[derive(Debug, Clone)]
pub struct RrcProbe {
    profile: RrcProfile,
    /// Path RTT baseline when the reply rides LTE, ms.
    base_lte_ms: f64,
    /// Path RTT baseline when the reply rides the 5G data radio, ms.
    base_5g_ms: f64,
    seed: u64,
}

/// Probe replies per measured interval.
const SAMPLES_PER_POINT: usize = 24;
/// Extra samples for the IDLE sweep (min-statistics need more data).
const IDLE_SAMPLES: usize = 64;

impl RrcProbe {
    /// Creates a probe against a UE obeying `profile`, with a probing
    /// server `server_rtt_ms` of network path away.
    pub fn new(profile: RrcProfile, server_rtt_ms: f64, seed: u64) -> Self {
        RrcProbe {
            profile,
            base_lte_ms: BandClass::Lte.radio_rtt_ms() + server_rtt_ms,
            base_5g_ms: profile.primary_class.radio_rtt_ms() + server_rtt_ms,
            seed,
        }
    }

    fn base_for(&self, radio: BandClass) -> f64 {
        if radio == BandClass::Lte {
            self.base_lte_ms
        } else {
            self.base_5g_ms
        }
    }

    /// Sends a train of packets at interval Δ against a fresh UE and
    /// collects `count` post-warmup samples.
    pub fn sample_interval(&self, interval_ms: f64, count: usize, rep: u64) -> Vec<ProbeSample> {
        let rng = RngStream::new(self.seed, &format!("probe/{interval_ms}/{rep}"));
        let mut machine = RrcMachine::new(self.profile, rng);
        machine.touch(0.0);
        let mut out = Vec::new();
        let mut t = 0.0;
        let warmup = 1;
        for i in 0..count + warmup {
            t += interval_ms;
            let reply = machine.on_packet(t);
            if i >= warmup {
                out.push(ProbeSample {
                    interval_ms,
                    rtt_ms: reply.delay_ms + self.base_for(reply.radio),
                    radio: reply.radio,
                    state: reply.state,
                });
            }
            // Next interval counts from the reply (the UE is active until
            // then).
            t += reply.delay_ms;
        }
        out
    }

    fn mean_rtt(&self, interval_ms: f64, rep: u64) -> f64 {
        let s = self.sample_interval(interval_ms, SAMPLES_PER_POINT, rep);
        fiveg_simcore::stats::mean(&s.iter().map(|x| x.rtt_ms).collect::<Vec<_>>())
    }

    fn majority_radio(&self, interval_ms: f64, rep: u64) -> BandClass {
        let s = self.sample_interval(interval_ms, SAMPLES_PER_POINT, rep);
        let lte = s.iter().filter(|x| x.radio == BandClass::Lte).count();
        if lte * 2 > s.len() {
            BandClass::Lte
        } else {
            self.profile.primary_class
        }
    }

    /// The full Fig 10 staircase: samples at every interval in `grid_s`.
    pub fn staircase(&self, grid_s: &[f64]) -> Vec<ProbeSample> {
        grid_s
            .iter()
            .enumerate()
            .flat_map(|(i, &s)| self.sample_interval(s * 1e3, 10, i as u64))
            .collect()
    }

    /// Bisects for the smallest Δ in `(lo_ms, hi_ms)` where `demoted`
    /// returns true. Assumes monotonicity (true of RRC timers).
    fn bisect<F: Fn(&Self, f64) -> bool>(&self, mut lo: f64, mut hi: f64, demoted: F) -> f64 {
        for _ in 0..16 {
            let mid = (lo + hi) / 2.0;
            if demoted(self, mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        (lo + hi) / 2.0
    }

    /// Runs the full inference and returns the recovered Table 7 row.
    pub fn infer(&self) -> InferredRrcParams {
        let is_5g = self.profile.is_5g();
        let primary = self.profile.primary_class;

        // --- Connected-mode statistics at a short interval (1 s). ---
        let connected = self.sample_interval(1_000.0, IDLE_SAMPLES, 1001);
        let conn_rtts: Vec<f64> = connected.iter().map(|s| s.rtt_ms).collect();
        let conn_mean = fiveg_simcore::stats::mean(&conn_rtts);
        let conn_min = conn_rtts.iter().cloned().fold(f64::INFINITY, f64::min);
        let conn_max = conn_rtts.iter().cloned().fold(0.0, f64::max);
        // Range of U(0, c) from n samples underestimates c by (n-1)/(n+1).
        let n = conn_rtts.len() as f64;
        let long_drx_ms = (conn_max - conn_min) * (n + 1.0) / (n - 1.0);

        // --- IDLE-level statistics at a long interval. ---
        let idle_probe_ms = 45_000.0;
        let idle = self.sample_interval(idle_probe_ms, IDLE_SAMPLES, 2001);
        let idle_rtts: Vec<f64> = idle.iter().map(|s| s.rtt_ms).collect();
        let idle_mean = fiveg_simcore::stats::mean(&idle_rtts);
        let idle_min = idle_rtts.iter().cloned().fold(f64::INFINITY, f64::min);
        let idle_max = idle_rtts.iter().cloned().fold(0.0, f64::max);
        let m = idle_rtts.len() as f64;
        let idle_drx_ms = (idle_max - idle_min) * (m + 1.0) / (m - 1.0);

        // --- Tail: first Δ that no longer behaves like CONNECTED. ---
        let rtt_jump = conn_mean + 250.0;
        let tail_ms = self.bisect(1_000.0, idle_probe_ms, |p, mid| {
            p.mean_rtt(mid, 3001) > rtt_jump || p.majority_radio(mid, 3002) != primary
        });

        // --- NSA bracket: a window above the tail where replies ride LTE
        // at connected-class latency. ---
        let just_after = self.sample_interval(tail_ms + 250.0, SAMPLES_PER_POINT, 4001);
        let after_rtts: Vec<f64> = just_after.iter().map(|s| s.rtt_ms).collect();
        let after_mean = fiveg_simcore::stats::mean(&after_rtts);
        let after_is_lte = just_after
            .iter()
            .filter(|s| s.radio == BandClass::Lte)
            .count()
            * 2
            > just_after.len();
        let lte_tail_ms = if is_5g
            && !self.profile.standalone
            && after_is_lte
            && after_mean < idle_mean - 300.0
        {
            Some(self.bisect(tail_ms + 250.0, idle_probe_ms, |p, mid| {
                p.mean_rtt(mid, 4002) > idle_mean - 300.0
            }))
        } else {
            None
        };

        // --- SA RRC_INACTIVE window: a mid-latency plateau after the tail.
        let inactive_until_ms = if self.profile.standalone && after_mean < idle_mean - 150.0 {
            let split = (after_mean + idle_mean) / 2.0;
            Some(self.bisect(tail_ms + 250.0, idle_probe_ms, |p, mid| {
                p.mean_rtt(mid, 5001) > split
            }))
        } else {
            None
        };

        // --- Promotion delays. ---
        // The minimum IDLE reply caught the paging window nearly open:
        // promo ≈ min RTT − path base.
        let promo_4g_ms;
        let mut promo_5g_ms = None;
        if self.profile.standalone {
            promo_4g_ms = None;
            promo_5g_ms = Some(idle_min - self.base_5g_ms);
        } else if is_5g {
            promo_4g_ms = Some(idle_min - self.base_lte_ms);
            promo_5g_ms = self.infer_nsa_5g_promotion(promo_4g_ms.expect("set above"));
        } else {
            promo_4g_ms = Some(idle_min - self.base_lte_ms);
        }

        InferredRrcParams {
            tail_ms,
            lte_tail_ms,
            long_drx_ms,
            idle_drx_ms,
            promo_4g_ms,
            promo_5g_ms,
            inactive_until_ms,
        }
    }

    /// NSA: after an idle-triggering packet, follow-up packets reveal when
    /// the reply radio flips from LTE to NR — the end of the full 5G
    /// promotion. Returns `None` when the flip is immediate (DSS: no
    /// separately measurable NR promotion).
    fn infer_nsa_5g_promotion(&self, promo_4g_ms: f64) -> Option<f64> {
        let mut estimates = Vec::new();
        for rep in 0..24u64 {
            let rng = RngStream::new(self.seed, &format!("probe/nsa5g/{rep}"));
            let mut machine = RrcMachine::new(self.profile, rng);
            machine.touch(0.0);
            let t0 = 60_000.0; // deep idle
            let trigger = machine.on_packet(t0);
            // paging = trigger delay − 4G promotion.
            let paging = (trigger.delay_ms - promo_4g_ms).max(0.0);
            let mut t = t0 + trigger.delay_ms;
            loop {
                t += 50.0;
                let r = machine.on_packet(t);
                if r.radio == self.profile.primary_class {
                    estimates.push(t - t0 - paging);
                    break;
                }
                if t - t0 > 20_000.0 {
                    break;
                }
            }
        }
        if estimates.is_empty() {
            return None;
        }
        let est = fiveg_simcore::stats::mean(&estimates);
        // The flip happening within ~one follow-up of the 4G promotion
        // means there is no distinct NR promotion (DSS).
        if est <= promo_4g_ms + 150.0 {
            None
        } else {
            Some(est)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_rrc::profile::RrcConfigId;

    fn probe(id: RrcConfigId) -> (RrcProfile, InferredRrcParams) {
        let profile = RrcProfile::for_config(id);
        let p = RrcProbe::new(profile, 3.0, 77);
        (profile, p.infer())
    }

    #[track_caller]
    fn assert_close(actual: f64, expected: f64, tol_frac: f64, what: &str) {
        let rel = (actual - expected).abs() / expected;
        assert!(
            rel <= tol_frac,
            "{what}: inferred {actual:.0} vs truth {expected:.0} (rel {rel:.3})"
        );
    }

    #[test]
    fn infers_4g_parameters() {
        for id in [RrcConfigId::Tm4g, RrcConfigId::Vz4g] {
            let (truth, got) = probe(id);
            assert_close(got.tail_ms, truth.tail_ms, 0.03, "tail");
            assert_close(got.long_drx_ms, truth.long_drx_ms, 0.15, "long DRX");
            assert_close(got.idle_drx_ms, truth.idle_drx_ms, 0.15, "idle DRX");
            assert_close(
                got.promo_4g_ms.expect("4G promo"),
                truth.promo_4g_ms.expect("truth"),
                0.20,
                "4G promotion",
            );
            assert!(got.lte_tail_ms.is_none());
            assert!(got.inactive_until_ms.is_none());
        }
    }

    #[test]
    fn infers_sa_inactive_window() {
        let (truth, got) = probe(RrcConfigId::TmSaLowBand);
        assert_close(got.tail_ms, truth.tail_ms, 0.03, "SA tail");
        let inactive_until = got.inactive_until_ms.expect("SA has RRC_INACTIVE");
        let truth_until = truth.tail_ms + truth.inactive_duration_ms.expect("truth");
        assert_close(inactive_until, truth_until, 0.08, "inactive end");
        assert_close(
            got.promo_5g_ms.expect("SA promo"),
            truth.promo_5g_ms.expect("truth"),
            0.25,
            "SA 5G promotion",
        );
    }

    #[test]
    fn infers_nsa_bracket_tail() {
        let (truth, got) = probe(RrcConfigId::VzNsaLowBand);
        assert_close(got.tail_ms, truth.tail_ms, 0.03, "NSA tail");
        let bracket = got.lte_tail_ms.expect("VZ LB has an LTE-leg window");
        assert_close(bracket, truth.lte_tail_ms.expect("truth"), 0.05, "LTE tail");
        // DSS: no separately measurable NR promotion.
        assert!(got.promo_5g_ms.is_none(), "got {:?}", got.promo_5g_ms);
    }

    #[test]
    fn infers_nsa_mmwave_5g_promotion() {
        let (truth, got) = probe(RrcConfigId::VzNsaMmWave);
        assert_close(got.tail_ms, truth.tail_ms, 0.03, "tail");
        assert!(got.lte_tail_ms.is_none(), "mmWave profile has no bracket");
        assert_close(
            got.promo_4g_ms.expect("promo4"),
            truth.promo_4g_ms.expect("truth"),
            0.20,
            "4G promotion",
        );
        assert_close(
            got.promo_5g_ms.expect("promo5"),
            truth.promo_5g_ms.expect("truth"),
            0.10,
            "5G promotion",
        );
    }

    #[test]
    fn staircase_shows_the_rtt_jump() {
        let profile = RrcProfile::for_config(RrcConfigId::Tm4g);
        let p = RrcProbe::new(profile, 3.0, 7);
        let samples = p.staircase(&[1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0]);
        let below: Vec<f64> = samples
            .iter()
            .filter(|s| s.interval_ms < 5_000.0)
            .map(|s| s.rtt_ms)
            .collect();
        let above: Vec<f64> = samples
            .iter()
            .filter(|s| s.interval_ms > 5_000.0)
            .map(|s| s.rtt_ms)
            .collect();
        let (b, a) = (
            fiveg_simcore::stats::mean(&below),
            fiveg_simcore::stats::mean(&above),
        );
        assert!(a > b + 300.0, "idle RTTs jump: {b:.0} -> {a:.0}");
    }

    #[test]
    fn nsa_timers_mirror_4g_finding() {
        // §4.2's headline: NSA 5G timers are 4G-like. The *inferred* values
        // must reproduce that conclusion.
        let (_, nsa) = probe(RrcConfigId::VzNsaLowBand);
        let (_, lte) = probe(RrcConfigId::Vz4g);
        let rel = (nsa.tail_ms - lte.tail_ms).abs() / lte.tail_ms;
        assert!(
            rel < 0.05,
            "NSA tail {} vs 4G tail {}",
            nsa.tail_ms,
            lte.tail_ms
        );
    }
}
