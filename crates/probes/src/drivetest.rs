//! The 5G-Tracker-style drive-test logger.
//!
//! Condenses a [`DriveResult`] timeline into the coloured segments of
//! Fig 9's horizontal bars and computes the per-configuration summary row.

use fiveg_radio::handoff::{ActiveRadio, BandSetting, DriveResult};

/// A maximal run of constant active radio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioSegment {
    /// Segment start, seconds.
    pub from_s: f64,
    /// Segment end, seconds.
    pub to_s: f64,
    /// The radio active throughout (`None` = outage).
    pub radio: Option<ActiveRadio>,
}

/// The Fig 9 row for one band setting.
#[derive(Debug, Clone)]
pub struct DriveSummary {
    /// Band configuration driven.
    pub setting: BandSetting,
    /// Total handoffs (the paper's headline counts).
    pub total: usize,
    /// Vertical (technology-change) handoffs.
    pub vertical: usize,
    /// Horizontal (tower-change) handoffs.
    pub horizontal: usize,
    /// Fraction of time on (LTE, NSA-NR, SA-NR, outage).
    pub share: (f64, f64, f64, f64),
    /// The coloured bar segments.
    pub segments: Vec<RadioSegment>,
}

/// Collapses a drive timeline into maximal constant-radio segments.
pub fn segments(result: &DriveResult) -> Vec<RadioSegment> {
    let mut out: Vec<RadioSegment> = Vec::new();
    for &(t, radio) in &result.timeline {
        match out.last_mut() {
            Some(seg) if seg.radio == radio => seg.to_s = t,
            _ => out.push(RadioSegment {
                from_s: t,
                to_s: t,
                radio,
            }),
        }
    }
    out
}

/// Builds the full Fig 9 row from a drive result.
pub fn summarize(result: &DriveResult) -> DriveSummary {
    DriveSummary {
        setting: result.setting,
        total: result.total_handoffs(),
        vertical: result.vertical_handoffs(),
        horizontal: result.horizontal_handoffs(),
        share: result.radio_share(),
        segments: segments(result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_geo::mobility::MobilityModel;
    use fiveg_radio::cell::NetworkLayout;
    use fiveg_radio::handoff::{simulate_drive, HandoffConfig};

    fn drive(setting: BandSetting) -> DriveResult {
        let layout = NetworkLayout::tmobile_drive_corridor(42);
        let mobility = MobilityModel::driving_10km();
        simulate_drive(&layout, &mobility, setting, &HandoffConfig::default(), 42)
    }

    #[test]
    fn segments_tile_the_timeline() {
        let r = drive(BandSetting::NsaPlusLte);
        let segs = segments(&r);
        assert!(!segs.is_empty());
        for w in segs.windows(2) {
            assert!(w[0].to_s <= w[1].from_s);
            assert_ne!(w[0].radio, w[1].radio, "adjacent segments must differ");
        }
        let first = r.timeline.first().expect("non-empty").0;
        let last = r.timeline.last().expect("non-empty").0;
        assert_eq!(segs.first().expect("non-empty").from_s, first);
        assert_eq!(segs.last().expect("non-empty").to_s, last);
    }

    #[test]
    fn nsa_produces_many_segments() {
        // Fig 9's NSA bar is a barcode of 4G/5G flips.
        let nsa_segs = segments(&drive(BandSetting::NsaPlusLte)).len();
        let sa_segs = segments(&drive(BandSetting::SaOnly)).len();
        assert!(nsa_segs > 10 * sa_segs.max(1), "{nsa_segs} vs {sa_segs}");
    }

    #[test]
    fn summary_is_consistent() {
        let r = drive(BandSetting::AllBands);
        let s = summarize(&r);
        assert_eq!(s.total, s.vertical + s.horizontal);
        let (a, b, c, d) = s.share;
        assert!((a + b + c + d - 1.0).abs() < 1e-9);
    }
}
