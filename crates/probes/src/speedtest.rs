//! The Ookla-Speedtest-style measurement harness (§3.1).
//!
//! Methodology reproduced from the paper: tests run against chosen servers
//! (carrier-hosted, in-state third-party, or Azure VMs); latency is the
//! best of repeated pings; throughput is the **95th percentile** over at
//! least 10 repeated 15-second transfers per setting — "our approach
//! measures the peak network performance".

use fiveg_geo::servers::ServerInfo;
use fiveg_geo::LatLon;
use fiveg_radio::band::Direction;
use fiveg_radio::link::LinkState;
use fiveg_radio::ue::UeModel;
use fiveg_simcore::{stats, RngStream};
use fiveg_transport::path::PathModel;
use fiveg_transport::tcp::{measure_throughput, TcpSimConfig};
use fiveg_transport::udp::UdpFlow;

/// Connection mode of a throughput test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnMode {
    /// One TCP connection, default kernel buffers (Fig 8 "1-TCP Default").
    SingleDefault,
    /// One TCP connection, tuned `tcp_wmem` (Ookla single-connection tests
    /// against carrier servers behave like this; Fig 8 "1-TCP Tuned").
    SingleTuned,
    /// Speedtest multi-connection mode (15–25 parallel connections).
    Multi,
    /// A fixed number of parallel TCP connections (Fig 8 "TCP-8").
    TcpN(usize),
    /// UDP at line rate (Fig 8 baseline).
    Udp,
}

/// One aggregated test result.
#[derive(Debug, Clone)]
pub struct TestResult {
    /// Server display name.
    pub server: String,
    /// UE–server distance, km.
    pub distance_km: f64,
    /// p95 throughput over the repeats, Mbps.
    pub p95_mbps: f64,
    /// Best-of-pings RTT, ms.
    pub rtt_ms: f64,
}

/// A harness bound to one UE + radio link + location.
#[derive(Debug, Clone)]
pub struct SpeedtestHarness {
    /// Device under test.
    pub ue: UeModel,
    /// Radio link state during the test (stationary, LoS).
    pub link: LinkState,
    /// UE coordinates.
    pub ue_location: LatLon,
    /// Campaign seed.
    pub seed: u64,
}

impl SpeedtestHarness {
    /// Ping RTT against `server`: best of `n` pings (tiny jitter above the
    /// path base, as the radio is held in CONNECTED during the test).
    pub fn latency_ms(&self, server: &ServerInfo, n: usize) -> f64 {
        assert!(n > 0, "need at least one ping");
        let path = PathModel::build(
            self.ue,
            &self.link,
            server,
            self.ue_location,
            Direction::Downlink,
        );
        let mut rng = RngStream::new(self.seed, &format!("ping/{}", server.name));
        (0..n)
            .map(|_| path.rtt_ms + rng.exponential(2.0)) // scheduler jitter
            .fold(f64::INFINITY, f64::min)
    }

    /// Runs `repeats` transfers in `mode`/`dir` against `server` and
    /// aggregates per the paper (p95 + best-ping RTT).
    pub fn run(
        &self,
        server: &ServerInfo,
        dir: Direction,
        mode: ConnMode,
        repeats: usize,
    ) -> TestResult {
        assert!(repeats > 0, "need at least one repeat");
        let path = PathModel::build(self.ue, &self.link, server, self.ue_location, dir);
        let mut rng = RngStream::new(self.seed, &format!("st/{}/{dir:?}/{mode:?}", server.name));
        let samples: Vec<f64> = (0..repeats)
            .map(|rep| {
                let seed = self.seed ^ (rep as u64 * 0x9e37) ^ path.rtt_ms.to_bits();
                match mode {
                    ConnMode::SingleDefault => {
                        measure_throughput(path, TcpSimConfig::single_default(), seed)
                    }
                    ConnMode::SingleTuned => {
                        measure_throughput(path, TcpSimConfig::single_tuned(), seed)
                    }
                    ConnMode::Multi => {
                        let n = rng.gen_range(15..=25);
                        measure_throughput(path, TcpSimConfig::multi(n), seed)
                    }
                    ConnMode::TcpN(n) => measure_throughput(path, TcpSimConfig::multi(n), seed),
                    ConnMode::Udp => UdpFlow::new(f64::INFINITY).run(&path).achieved_mbps,
                }
            })
            .collect();
        TestResult {
            server: server.name.clone(),
            distance_km: server.distance_km(self.ue_location),
            p95_mbps: stats::percentile(&samples, 95.0),
            rtt_ms: self.latency_ms(server, 10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_geo::servers::{azure_regions, carrier_pool, default_ue_location, Carrier};
    use fiveg_radio::band::Band;

    fn harness(ue: UeModel) -> SpeedtestHarness {
        SpeedtestHarness {
            ue,
            link: LinkState {
                band: Band::N261,
                rsrp_dbm: -70.0,
                sa: false,
            },
            ue_location: default_ue_location(),
            seed: 42,
        }
    }

    fn local_and_far() -> (ServerInfo, ServerInfo) {
        let pool = carrier_pool(Carrier::Verizon);
        let ue = default_ue_location();
        let local = pool
            .iter()
            .min_by(|a, b| {
                a.distance_km(ue)
                    .partial_cmp(&b.distance_km(ue))
                    .expect("finite")
            })
            .expect("non-empty")
            .clone();
        let far = pool
            .iter()
            .max_by(|a, b| {
                a.distance_km(ue)
                    .partial_cmp(&b.distance_km(ue))
                    .expect("finite")
            })
            .expect("non-empty")
            .clone();
        (local, far)
    }

    #[test]
    fn local_latency_is_about_6ms() {
        let h = harness(UeModel::GalaxyS20Ultra);
        let (local, far) = local_and_far();
        let near = h.latency_ms(&local, 10);
        let far_rtt = h.latency_ms(&far, 10);
        assert!((5.0..8.5).contains(&near), "Fig 1: {near}");
        assert!(far_rtt > 2.0 * near, "distance dominates RTT: {far_rtt}");
    }

    #[test]
    fn multi_conn_hits_3gbps_everywhere() {
        let h = harness(UeModel::GalaxyS20Ultra);
        let (local, far) = local_and_far();
        for server in [local, far] {
            let r = h.run(&server, Direction::Downlink, ConnMode::Multi, 5);
            assert!(
                r.p95_mbps > 3_000.0,
                "Fig 3: multi-conn > 3 Gbps at {}: {}",
                server.name,
                r.p95_mbps
            );
        }
    }

    #[test]
    fn single_conn_decays_with_distance() {
        let h = harness(UeModel::GalaxyS20Ultra);
        let (local, far) = local_and_far();
        let near = h.run(&local, Direction::Downlink, ConnMode::SingleTuned, 5);
        let far = h.run(&far, Direction::Downlink, ConnMode::SingleTuned, 5);
        assert!(
            near.p95_mbps > 1.5 * far.p95_mbps,
            "{} vs {}",
            near.p95_mbps,
            far.p95_mbps
        );
    }

    #[test]
    fn uplink_is_about_220mbps() {
        let h = harness(UeModel::GalaxyS20Ultra);
        let (local, _) = local_and_far();
        let r = h.run(&local, Direction::Uplink, ConnMode::Multi, 5);
        assert!(
            (180.0..240.0).contains(&r.p95_mbps),
            "Fig 4: {}",
            r.p95_mbps
        );
    }

    #[test]
    fn px5_caps_at_2_2gbps() {
        let h = harness(UeModel::Pixel5);
        let (local, _) = local_and_far();
        let r = h.run(&local, Direction::Downlink, ConnMode::Udp, 3);
        assert!(
            (2_100.0..2_250.0).contains(&r.p95_mbps),
            "Fig 23: {}",
            r.p95_mbps
        );
    }

    #[test]
    fn azure_default_single_conn_is_buffer_bound() {
        let h = harness(UeModel::Pixel5);
        for server in azure_regions().iter().skip(2) {
            let r = h.run(server, Direction::Downlink, ConnMode::SingleDefault, 4);
            assert!(
                r.p95_mbps < 550.0,
                "Fig 8: default 1-TCP ≤ ~500 Mbps at {}: {}",
                server.name,
                r.p95_mbps
            );
        }
    }

    #[test]
    fn results_are_deterministic() {
        let h = harness(UeModel::GalaxyS20Ultra);
        let (local, _) = local_and_far();
        let a = h.run(&local, Direction::Downlink, ConnMode::Multi, 3);
        let b = h.run(&local, Direction::Downlink, ConnMode::Multi, 3);
        assert_eq!(a.p95_mbps, b.p95_mbps);
    }
}
