//! Measurement tools, re-implemented against the simulated field.
//!
//! * [`rrcprobe`] — RRC-Probe (§4.1): a server sends UDP packets at varying
//!   inter-packet intervals; the RTT of each reply betrays the RRC state
//!   the packet found the UE in. Bisection over the interval axis recovers
//!   the Table 7 timers without root access — exactly the paper's method.
//! * [`speedtest`] — the Ookla-style harness (§3.1): latency = best of
//!   repeated pings; throughput = p95 over ≥10 repeated 15-second
//!   single-/multi-connection transfers against a chosen server.
//! * [`drivetest`] — the 5G-Tracker-style logger for the Fig 9 drive,
//!   condensing the handoff engine's timeline into radio segments.

pub mod drivetest;
pub mod rrcprobe;
pub mod speedtest;

pub use rrcprobe::{InferredRrcParams, RrcProbe};
pub use speedtest::{ConnMode, SpeedtestHarness};
