//! Timestamped sample series: power traces, throughput traces, RSRP logs.
//!
//! A [`TimeSeries`] holds `(SimTime, f64)` samples in non-decreasing time
//! order. It supports trapezoidal integration (energy from power), uniform
//! resampling (the paper logs network state at 10 Hz but power at 5 kHz and
//! must align them), and windowed averaging (per-second throughput).

use crate::time::{SimDuration, SimTime};

/// A time-ordered series of scalar samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the last appended sample.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "samples must be time-ordered: {t} < {last}");
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterates `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The raw timestamps.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// First timestamp, if any.
    pub fn start(&self) -> Option<SimTime> {
        self.times.first().copied()
    }

    /// Last timestamp, if any.
    pub fn end(&self) -> Option<SimTime> {
        self.times.last().copied()
    }

    /// Zero-order-hold value at time `t`: the most recent sample at or before
    /// `t`, or `None` before the first sample.
    pub fn sample_at(&self, t: SimTime) -> Option<f64> {
        let idx = self.times.partition_point(|&ts| ts <= t);
        if idx == 0 {
            None
        } else {
            Some(self.values[idx - 1])
        }
    }

    /// Trapezoidal integral of the series over its full span, in
    /// value·seconds (power in mW integrates to energy in mW·s = mJ).
    pub fn integrate(&self) -> f64 {
        self.integrate_between(
            self.start().unwrap_or(SimTime::ZERO),
            self.end().unwrap_or(SimTime::ZERO),
        )
    }

    /// Trapezoidal integral over `[from, to]`, treating the series as
    /// piecewise-linear between samples and constant beyond the ends.
    pub fn integrate_between(&self, from: SimTime, to: SimTime) -> f64 {
        if self.times.is_empty() || to <= from {
            return 0.0;
        }
        let mut total = 0.0;
        let mut prev_t = from;
        let mut prev_v = self.interp_or_hold(from);
        for (t, v) in self.iter() {
            if t <= from {
                continue;
            }
            let seg_end = t.min(to);
            let seg_v = if t <= to { v } else { self.interp_or_hold(to) };
            total += 0.5 * (prev_v + seg_v) * seg_end.since(prev_t).as_secs_f64();
            prev_t = seg_end;
            prev_v = seg_v;
            if t >= to {
                break;
            }
        }
        if prev_t < to {
            total += prev_v * to.since(prev_t).as_secs_f64();
        }
        total
    }

    /// Linear interpolation at `t`, holding the boundary values outside the
    /// sampled span.
    fn interp_or_hold(&self, t: SimTime) -> f64 {
        debug_assert!(!self.times.is_empty());
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().expect("non-empty") {
            return *self.values.last().expect("non-empty");
        }
        let idx = self.times.partition_point(|&ts| ts <= t);
        let (t0, v0) = (self.times[idx - 1], self.values[idx - 1]);
        let (t1, v1) = (self.times[idx], self.values[idx]);
        let span = t1.since(t0).as_secs_f64();
        if span == 0.0 {
            return v1;
        }
        let frac = t.since(t0).as_secs_f64() / span;
        v0 + (v1 - v0) * frac
    }

    /// Mean of the series weighted by time (the integral divided by the
    /// span); `NaN` for fewer than two samples.
    pub fn time_weighted_mean(&self) -> f64 {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) if e > s => self.integrate() / e.since(s).as_secs_f64(),
            _ => f64::NAN,
        }
    }

    /// Resamples to a uniform grid with spacing `step` using zero-order hold,
    /// starting at the first sample. Used to downsample 5 kHz power traces to
    /// the 10 Hz network-log rate.
    pub fn resample(&self, step: SimDuration) -> TimeSeries {
        let mut out = TimeSeries::new();
        let (Some(start), Some(end)) = (self.start(), self.end()) else {
            return out;
        };
        assert!(!step.is_zero(), "resample step must be positive");
        let mut t = start;
        while t <= end {
            out.push(t, self.sample_at(t).expect("t >= start"));
            t += step;
        }
        out
    }

    /// Averages samples into consecutive windows of width `window`, returning
    /// one `(window_start, mean)` sample per non-empty window — e.g. the
    /// per-second throughput traces fed to the power model.
    pub fn window_mean(&self, window: SimDuration) -> TimeSeries {
        assert!(!window.is_zero(), "window must be positive");
        let mut out = TimeSeries::new();
        let Some(start) = self.start() else {
            return out;
        };
        let mut w_start = start;
        let mut sum = 0.0;
        let mut n = 0u32;
        for (t, v) in self.iter() {
            while t >= w_start + window {
                if n > 0 {
                    out.push(w_start, sum / n as f64);
                }
                w_start += window;
                sum = 0.0;
                n = 0;
            }
            sum += v;
            n += 1;
        }
        if n > 0 {
            out.push(w_start, sum / n as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn push_enforces_order() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        s.push(t(0), 2.0); // equal timestamps allowed
        s.push(t(5), 3.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn push_rejects_regression() {
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(5), 2.0);
    }

    #[test]
    fn sample_at_is_zero_order_hold() {
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(20), 2.0);
        assert_eq!(s.sample_at(t(5)), None);
        assert_eq!(s.sample_at(t(10)), Some(1.0));
        assert_eq!(s.sample_at(t(15)), Some(1.0));
        assert_eq!(s.sample_at(t(25)), Some(2.0));
    }

    #[test]
    fn integrate_constant_power() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(0), 100.0);
        s.push(SimTime::from_secs(10), 100.0);
        // 100 mW over 10 s = 1000 mJ
        assert!((s.integrate() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_ramp() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(0), 0.0);
        s.push(SimTime::from_secs(2), 2.0);
        assert!((s.integrate() - 2.0).abs() < 1e-12);
        // Sub-interval [0.5, 1.5]: ∫t dt = ((1.5² - 0.5²)/2) = 1.0
        assert!(
            (s.integrate_between(SimTime::from_secs_f64(0.5), SimTime::from_secs_f64(1.5)) - 1.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn integrate_extends_past_last_sample() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(0), 5.0);
        s.push(SimTime::from_secs(1), 5.0);
        let e = s.integrate_between(SimTime::from_secs(0), SimTime::from_secs(3));
        assert!((e - 15.0).abs() < 1e-9, "holds the last value: {e}");
    }

    #[test]
    fn time_weighted_mean_of_ramp() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(0), 0.0);
        s.push(SimTime::from_secs(4), 8.0);
        assert!((s.time_weighted_mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn resample_downsamples() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push(SimTime::from_millis(i * 10), i as f64);
        }
        let r = s.resample(SimDuration::from_millis(100));
        assert_eq!(r.len(), 10);
        assert_eq!(r.values()[1], 10.0);
    }

    #[test]
    fn window_mean_handles_gaps() {
        let mut s = TimeSeries::new();
        s.push(t(0), 2.0);
        s.push(t(100), 4.0);
        // gap: nothing in [1s, 2s)
        s.push(t(2500), 10.0);
        let w = s.window_mean(SimDuration::from_secs(1));
        assert_eq!(w.len(), 2);
        assert_eq!(w.values()[0], 3.0);
        assert_eq!(w.values()[1], 10.0);
        assert_eq!(w.times()[1], SimTime::from_secs(2));
    }
}
