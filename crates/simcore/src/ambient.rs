//! One-call installation of the per-attempt ambient planes.
//!
//! A supervised experiment attempt needs its thread-local planes installed
//! on its (fresh) thread before the experiment body runs: the
//! deterministic fault plane, the recovery-event collector, the telemetry
//! collector, the invariant guard collector, and the event budget. The
//! serial runner has always installed them inline; with the parallel
//! campaign scheduler many worker threads spawn attempt threads
//! concurrently, so the install sequence lives here — one helper both
//! paths call, keeping "what an attempt's ambient world looks like"
//! defined in exactly one place.
//!
//! Invariants the helper preserves:
//!
//! * the fault plane is generated from `(attempt_seed, scenario)` only — no
//!   shared RNG, so attempt N of experiment E sees the same schedule no
//!   matter which worker runs it, or in what order;
//! * the recovery collector is installed only alongside a fault schedule,
//!   so fault-free campaigns report zero recovery events by construction;
//! * the telemetry collector is installed only when asked for, so
//!   unobserved campaigns stay byte-identical by construction;
//! * the guard collector is installed only when a policy is given (the
//!   supervised runner's default is `Record`); its checks never mutate
//!   simulation state, so guarded and unguarded campaigns are
//!   byte-identical either way;
//! * everything uninstalls when the returned guard drops, even on panic,
//!   so a pooled worker can never leak one attempt's planes into the next.

use std::sync::Arc;

use crate::budget::{self, BudgetGuard};
use crate::cancel::{self, CancelGuard, CancelToken};
use crate::faults::{self, FaultScenario, FaultSchedule, PlaneGuard};
use crate::guard::{self, GuardPolicy, GuardsGuard};
use crate::recovery::{self, CollectorGuard};
use crate::telemetry::{self, TelemetryGuard};

/// Guards for one attempt's ambient planes; dropping uninstalls all of
/// them (cancel token, guards, budget, telemetry collector, recovery
/// collector, fault plane) in reverse install order. The cancel token
/// disarms first, so no later teardown step can observe a kill.
#[must_use = "the ambient planes uninstall when this guard drops"]
pub struct AmbientGuard {
    _cancel: Option<CancelGuard>,
    _guards: Option<GuardsGuard>,
    _budget: BudgetGuard,
    _telemetry: Option<TelemetryGuard>,
    _collector: Option<CollectorGuard>,
    _plane: Option<PlaneGuard>,
}

/// Installs the ambient planes for one supervised attempt on the current
/// thread: the fault plane generated from `(seed, scenario)` (skipped when
/// `scenario` is `None`), the recovery collector (only alongside a
/// scenario), the telemetry collector (only when `telemetry` — off by
/// default, so uninstrumented campaigns stay byte-identical by
/// construction), the invariant guard collector (when `guards` names a
/// policy — the supervised runner defaults to [`GuardPolicy::Record`]),
/// an armed event budget, and the cooperative cancellation token (when
/// `cancel` carries the supervisor's end — `None` leaves the plane
/// disarmed and free).
pub fn install_attempt(
    scenario: Option<&FaultScenario>,
    seed: u64,
    event_budget: u64,
    telemetry: bool,
    guards: Option<GuardPolicy>,
    cancel: Option<Arc<CancelToken>>,
) -> AmbientGuard {
    install_schedule(
        scenario.map(|sc| FaultSchedule::generate(seed, sc)),
        event_budget,
        telemetry,
        guards,
        cancel,
    )
}

/// Like [`install_attempt`], but with an explicit, possibly hand-edited
/// fault schedule. The stress harness uses this to replay shrunk
/// reproducers: a minimized schedule (events dropped, horizon truncated)
/// installs exactly as the generated one would, so a reproducer's world is
/// bit-identical on every replay.
pub fn install_schedule(
    schedule: Option<FaultSchedule>,
    event_budget: u64,
    telemetry: bool,
    guards: Option<GuardPolicy>,
    cancel: Option<Arc<CancelToken>>,
) -> AmbientGuard {
    let has_schedule = schedule.is_some();
    AmbientGuard {
        _plane: schedule.map(faults::install),
        _collector: has_schedule.then(recovery::collect),
        _telemetry: telemetry.then(telemetry::collect),
        _budget: budget::arm(event_budget),
        _guards: guards.map(guard::collect),
        _cancel: cancel.map(cancel::arm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scenario_installs_budget_only() {
        {
            let _g = install_attempt(None, 7, 100, false, None, None);
            assert!(!faults::enabled());
            assert!(!recovery::enabled());
            assert!(!telemetry::enabled());
            assert!(!guard::enabled());
            assert_eq!(budget::remaining(), Some(100));
        }
        assert_eq!(budget::remaining(), None);
    }

    #[test]
    fn scenario_installs_all_three_and_uninstalls_on_drop() {
        {
            let _g = install_attempt(Some(&FaultScenario::chaos()), 7, 100, false, None, None);
            assert!(faults::enabled());
            assert!(recovery::enabled());
            assert!(!telemetry::enabled(), "telemetry stays opt-in");
            assert_eq!(budget::remaining(), Some(100));
        }
        assert!(!faults::enabled());
        assert!(!recovery::enabled());
        assert_eq!(budget::remaining(), None);
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn telemetry_flag_installs_the_collector() {
        {
            let _g = install_attempt(None, 7, 100, true, None, None);
            assert!(telemetry::enabled());
            assert!(!faults::enabled(), "telemetry does not drag faults in");
        }
        assert!(!telemetry::enabled());
    }

    #[test]
    #[cfg(feature = "guards")]
    fn guard_policy_installs_the_collector() {
        {
            let _g = install_attempt(None, 7, 100, false, Some(GuardPolicy::Record), None);
            assert!(guard::enabled());
            assert!(!faults::enabled(), "guards do not drag faults in");
            assert!(!telemetry::enabled());
        }
        assert!(!guard::enabled());
    }

    #[test]
    fn explicit_schedule_installs_like_the_generated_one() {
        let sc = FaultScenario::chaos();
        let schedule = FaultSchedule::generate(11, &sc);
        {
            let _g = install_schedule(Some(schedule), 100, false, None, None);
            assert!(faults::enabled());
            assert!(
                recovery::enabled(),
                "a schedule brings the recovery collector"
            );
        }
        assert!(!faults::enabled());
        assert!(!recovery::enabled());
    }

    #[test]
    fn plane_is_a_pure_function_of_seed_and_scenario() {
        let sc = FaultScenario::chaos();
        let a = FaultSchedule::generate(11, &sc);
        let b = FaultSchedule::generate(11, &sc);
        assert_eq!(a.events().len(), b.events().len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.start_s, y.start_s);
            assert_eq!(x.duration_s, y.duration_s);
        }
    }
}
