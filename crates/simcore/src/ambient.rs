//! One-call installation of the per-attempt ambient planes.
//!
//! A supervised experiment attempt needs its thread-local planes installed
//! on its (fresh) thread before the experiment body runs: the
//! deterministic fault plane, the recovery-event collector, the telemetry
//! collector, and the event budget. The serial runner has always installed
//! them inline; with the parallel campaign scheduler many worker threads
//! spawn attempt threads concurrently, so the install sequence lives here
//! — one helper both paths call, keeping "what an attempt's ambient world
//! looks like" defined in exactly one place.
//!
//! Invariants the helper preserves:
//!
//! * the fault plane is generated from `(attempt_seed, scenario)` only — no
//!   shared RNG, so attempt N of experiment E sees the same schedule no
//!   matter which worker runs it, or in what order;
//! * the recovery collector is installed only alongside a scenario, so
//!   fault-free campaigns report zero recovery events by construction;
//! * the telemetry collector is installed only when asked for, so
//!   unobserved campaigns stay byte-identical by construction;
//! * everything uninstalls when the returned guard drops, even on panic,
//!   so a pooled worker can never leak one attempt's planes into the next.

use crate::budget::{self, BudgetGuard};
use crate::faults::{self, FaultScenario, FaultSchedule, PlaneGuard};
use crate::recovery::{self, CollectorGuard};
use crate::telemetry::{self, TelemetryGuard};

/// Guards for one attempt's ambient planes; dropping uninstalls all of
/// them (plane, recovery collector, telemetry collector, budget) in
/// reverse install order.
#[must_use = "the ambient planes uninstall when this guard drops"]
pub struct AmbientGuard {
    _budget: BudgetGuard,
    _telemetry: Option<TelemetryGuard>,
    _collector: Option<CollectorGuard>,
    _plane: Option<PlaneGuard>,
}

/// Installs the ambient planes for one supervised attempt on the current
/// thread: the fault plane generated from `(seed, scenario)` (skipped when
/// `scenario` is `None`), the recovery collector (only alongside a
/// scenario), the telemetry collector (only when `telemetry` — off by
/// default, so uninstrumented campaigns stay byte-identical by
/// construction), and an armed event budget.
pub fn install_attempt(
    scenario: Option<&FaultScenario>,
    seed: u64,
    event_budget: u64,
    telemetry: bool,
) -> AmbientGuard {
    AmbientGuard {
        _plane: scenario.map(|sc| faults::install(FaultSchedule::generate(seed, sc))),
        _collector: scenario.map(|_| recovery::collect()),
        _telemetry: telemetry.then(telemetry::collect),
        _budget: budget::arm(event_budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scenario_installs_budget_only() {
        {
            let _g = install_attempt(None, 7, 100, false);
            assert!(!faults::enabled());
            assert!(!recovery::enabled());
            assert!(!telemetry::enabled());
            assert_eq!(budget::remaining(), Some(100));
        }
        assert_eq!(budget::remaining(), None);
    }

    #[test]
    fn scenario_installs_all_three_and_uninstalls_on_drop() {
        {
            let _g = install_attempt(Some(&FaultScenario::chaos()), 7, 100, false);
            assert!(faults::enabled());
            assert!(recovery::enabled());
            assert!(!telemetry::enabled(), "telemetry stays opt-in");
            assert_eq!(budget::remaining(), Some(100));
        }
        assert!(!faults::enabled());
        assert!(!recovery::enabled());
        assert_eq!(budget::remaining(), None);
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn telemetry_flag_installs_the_collector() {
        {
            let _g = install_attempt(None, 7, 100, true);
            assert!(telemetry::enabled());
            assert!(!faults::enabled(), "telemetry does not drag faults in");
        }
        assert!(!telemetry::enabled());
    }

    #[test]
    fn plane_is_a_pure_function_of_seed_and_scenario() {
        let sc = FaultScenario::chaos();
        let a = FaultSchedule::generate(11, &sc);
        let b = FaultSchedule::generate(11, &sc);
        assert_eq!(a.events().len(), b.events().len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.start_s, y.start_s);
            assert_eq!(x.duration_s, y.duration_s);
        }
    }
}
