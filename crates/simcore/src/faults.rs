//! Deterministic fault injection: seeded, named disruption events.
//!
//! The paper's headline finding is that commercial 5G is *wildly* unreliable
//! — mmWave throughput collapses under hand/body blockage, NSA anchors drop,
//! handoffs stall TCP, dead zones appear mid-drive. The smooth stochastic
//! processes of the substrate underrepresent that; this module injects the
//! discrete catastrophes on top, deterministically.
//!
//! A [`FaultSchedule`] is a pure function of `(seed, scenario)`: every fault
//! event is drawn from [`RngStream`]s forked per fault kind, so the same
//! seed and scenario always yield the same storms, outages, and resets —
//! and so generating the schedule never perturbs the RNG streams of the
//! simulation components themselves.
//!
//! Components consult the schedule through the *ambient plane* — a
//! thread-local slot installed by [`install`] (usually via the supervised
//! experiment runner) and cleared when the returned [`PlaneGuard`] drops.
//! When nothing is installed, every query short-circuits on one thread-local
//! boolean load: the zero-cost default path. Hook points never draw
//! randomness of their own, so a disabled plane leaves simulation output
//! bit-identical to a build without the plane.

use crate::rng::RngStream;
use std::cell::{Cell, RefCell};

/// The kinds of disruption the plane can inject, one per failure mode the
/// paper observed in the wild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A cell site goes dark; its tower is invisible to reselection
    /// (`radio::cell`). The event's `target` selects the tower id (modulo
    /// the layout's tower count).
    CellOutage,
    /// NSA anchor loss: the LTE anchor drops, tearing down the NR leg
    /// (`radio::handoff`).
    AnchorLoss,
    /// A blockage storm: LoS→NLoS transition pressure multiplies and mmWave
    /// capacity collapses (`radio::blockage`, `radio::link`).
    BlockageStorm,
    /// RRC connection reset: the state machine falls back to RRC_IDLE and
    /// pays the full promotion again (`rrc::machine`).
    RrcReset,
    /// A stuck RRC timer: paging/promotion waits stretch by the event's
    /// magnitude (`rrc::machine`).
    RrcStuckTimer,
    /// A loss burst on the transport path (`transport::tcp`, `transport::udp`).
    LossBurst,
    /// An RTT spike: path RTT multiplies by `1 + magnitude`
    /// (`transport::tcp`).
    RttSpike,
    /// A stall window: the link carries nothing (`transport::shaper`,
    /// `transport::tcp`).
    StallWindow,
    /// The power monitor's sampling loop drops readings (`power::monitor`).
    PowerDropout,
}

impl FaultKind {
    /// All fault kinds, in a stable order (stream names derive from this).
    pub const ALL: [FaultKind; 9] = [
        FaultKind::CellOutage,
        FaultKind::AnchorLoss,
        FaultKind::BlockageStorm,
        FaultKind::RrcReset,
        FaultKind::RrcStuckTimer,
        FaultKind::LossBurst,
        FaultKind::RttSpike,
        FaultKind::StallWindow,
        FaultKind::PowerDropout,
    ];

    /// Stable name, used both for RNG stream derivation and event names.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::CellOutage => "cell-outage",
            FaultKind::AnchorLoss => "anchor-loss",
            FaultKind::BlockageStorm => "blockage-storm",
            FaultKind::RrcReset => "rrc-reset",
            FaultKind::RrcStuckTimer => "rrc-stuck-timer",
            FaultKind::LossBurst => "loss-burst",
            FaultKind::RttSpike => "rtt-spike",
            FaultKind::StallWindow => "stall-window",
            FaultKind::PowerDropout => "power-dropout",
        }
    }
}

/// Arrival/shape parameters for one fault kind within a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProcess {
    /// Mean arrivals per simulated hour (Poisson).
    pub rate_per_hour: f64,
    /// Event duration bounds in seconds (uniform draw).
    pub duration_s: (f64, f64),
    /// Event magnitude bounds (uniform draw); semantics per kind.
    pub magnitude: (f64, f64),
}

impl FaultProcess {
    /// A process that never fires.
    pub const OFF: FaultProcess = FaultProcess {
        rate_per_hour: 0.0,
        duration_s: (0.0, 0.0),
        magnitude: (0.0, 0.0),
    };
}

/// A named, reproducible mix of fault processes over a time horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Scenario name; part of the schedule's identity.
    pub name: String,
    /// Horizon over which events are drawn, seconds of simulated time.
    pub horizon_s: f64,
    /// One process per fault kind (indexed by position in [`FaultKind::ALL`]).
    pub processes: [FaultProcess; 9],
}

impl FaultScenario {
    /// A scenario with every process off (the explicit no-fault baseline).
    pub fn quiet() -> FaultScenario {
        FaultScenario {
            name: "quiet".into(),
            horizon_s: 3_600.0,
            processes: [FaultProcess::OFF; 9],
        }
    }

    /// Looks up `kind`'s process.
    pub fn process(&self, kind: FaultKind) -> &FaultProcess {
        let idx = FaultKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL");
        &self.processes[idx]
    }

    fn with(mut self, kind: FaultKind, p: FaultProcess) -> FaultScenario {
        let idx = FaultKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL");
        self.processes[idx] = p;
        self
    }

    /// mmWave blockage storms plus the resulting link collapse (§4's
    /// hand/body-blockage walking campaigns, turned hostile).
    pub fn blockage_storm() -> FaultScenario {
        let mut s = Self::quiet();
        s.name = "blockage-storm".into();
        s = s.with(
            FaultKind::BlockageStorm,
            FaultProcess {
                rate_per_hour: 40.0,
                duration_s: (5.0, 45.0),
                magnitude: (4.0, 12.0),
            },
        );
        s
    }

    /// Mid-drive dead zones: cell outages and NSA anchor losses (Fig 9's
    /// corridor with towers going dark).
    pub fn dead_zone_drive() -> FaultScenario {
        let mut s = Self::quiet();
        s.name = "dead-zone-drive".into();
        s = s.with(
            FaultKind::CellOutage,
            FaultProcess {
                rate_per_hour: 30.0,
                duration_s: (20.0, 120.0),
                magnitude: (0.0, 1.0),
            },
        );
        s = s.with(
            FaultKind::AnchorLoss,
            FaultProcess {
                rate_per_hour: 25.0,
                duration_s: (3.0, 20.0),
                magnitude: (0.0, 1.0),
            },
        );
        s
    }

    /// Flaky RRC plane: connection resets and stuck timers.
    pub fn rrc_flaky() -> FaultScenario {
        let mut s = Self::quiet();
        s.name = "rrc-flaky".into();
        s = s.with(
            FaultKind::RrcReset,
            FaultProcess {
                rate_per_hour: 60.0,
                duration_s: (0.5, 3.0),
                magnitude: (0.0, 1.0),
            },
        );
        s = s.with(
            FaultKind::RrcStuckTimer,
            FaultProcess {
                rate_per_hour: 30.0,
                duration_s: (10.0, 60.0),
                magnitude: (1.0, 5.0),
            },
        );
        s
    }

    /// Transport turbulence: loss bursts, RTT spikes, and stall windows
    /// (the handoff-stalls-TCP pathology of §3.3).
    pub fn transport_turbulence() -> FaultScenario {
        let mut s = Self::quiet();
        s.name = "transport-turbulence".into();
        s = s.with(
            FaultKind::LossBurst,
            FaultProcess {
                rate_per_hour: 80.0,
                duration_s: (0.5, 5.0),
                magnitude: (2.0, 20.0),
            },
        );
        s = s.with(
            FaultKind::RttSpike,
            FaultProcess {
                rate_per_hour: 60.0,
                duration_s: (1.0, 10.0),
                magnitude: (1.0, 8.0),
            },
        );
        s = s.with(
            FaultKind::StallWindow,
            FaultProcess {
                rate_per_hour: 30.0,
                duration_s: (0.5, 4.0),
                magnitude: (1.0, 1.0),
            },
        );
        s
    }

    /// Power-monitor glitches: sampling dropouts.
    pub fn power_glitch() -> FaultScenario {
        let mut s = Self::quiet();
        s.name = "power-glitch".into();
        s = s.with(
            FaultKind::PowerDropout,
            FaultProcess {
                rate_per_hour: 120.0,
                duration_s: (0.2, 5.0),
                magnitude: (1.0, 1.0),
            },
        );
        s
    }

    /// Everything at once, aggressively. The chaos-invariant test scenario.
    pub fn chaos() -> FaultScenario {
        let mut s = Self::quiet();
        s.name = "chaos".into();
        for kind in FaultKind::ALL {
            s = s.with(
                kind,
                FaultProcess {
                    rate_per_hour: 90.0,
                    duration_s: (1.0, 30.0),
                    magnitude: (2.0, 10.0),
                },
            );
        }
        s
    }

    /// Scenario registry: maps CLI names to presets. `None` for unknown
    /// names; `"quiet"` is accepted and yields the empty scenario.
    pub fn by_name(name: &str) -> Option<FaultScenario> {
        match name {
            "quiet" => Some(Self::quiet()),
            "blockage-storm" => Some(Self::blockage_storm()),
            "dead-zone-drive" => Some(Self::dead_zone_drive()),
            "rrc-flaky" => Some(Self::rrc_flaky()),
            "transport-turbulence" => Some(Self::transport_turbulence()),
            "power-glitch" => Some(Self::power_glitch()),
            "chaos" => Some(Self::chaos()),
            _ => None,
        }
    }

    /// All preset names, for CLI listings.
    pub fn names() -> [&'static str; 7] {
        [
            "quiet",
            "blockage-storm",
            "dead-zone-drive",
            "rrc-flaky",
            "transport-turbulence",
            "power-glitch",
            "chaos",
        ]
    }
}

/// One scheduled fault event.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Stable name, e.g. `"blockage-storm/2"`.
    pub name: String,
    /// What breaks.
    pub kind: FaultKind,
    /// Start of the window, seconds of simulated time.
    pub start_s: f64,
    /// Window length, seconds.
    pub duration_s: f64,
    /// Kind-specific intensity (rate multiplier, extra loss ×1e-3, …).
    pub magnitude: f64,
    /// Kind-specific target selector (e.g. folded into a tower id);
    /// uniform over `u64` so any modulus stays uniform.
    pub target: u64,
}

impl FaultEvent {
    /// Whether the window covers time `t_s`.
    pub fn covers(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.start_s + self.duration_s
    }
}

/// The full set of fault events for one `(seed, scenario)` pair, sorted by
/// start time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    scenario: String,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Generates the schedule — a pure function of `(seed, scenario)`.
    ///
    /// Each kind's events come from an independent stream forked off
    /// `faults/<scenario>` under `kind.name()`, so adding a kind never
    /// reshuffles another kind's arrivals.
    pub fn generate(seed: u64, scenario: &FaultScenario) -> FaultSchedule {
        let root = RngStream::new(seed, &format!("faults/{}", scenario.name));
        let mut events = Vec::new();
        for kind in FaultKind::ALL {
            let p = scenario.process(kind);
            if p.rate_per_hour <= 0.0 {
                continue;
            }
            let mut rng = root.fork(kind.name());
            let rate_per_s = p.rate_per_hour / 3_600.0;
            let mut t = rng.exponential(rate_per_s);
            let mut i = 0usize;
            while t < scenario.horizon_s {
                let duration = if p.duration_s.1 > p.duration_s.0 {
                    rng.gen_range(p.duration_s.0..p.duration_s.1)
                } else {
                    p.duration_s.0
                };
                let magnitude = if p.magnitude.1 > p.magnitude.0 {
                    rng.gen_range(p.magnitude.0..p.magnitude.1)
                } else {
                    p.magnitude.0
                };
                events.push(FaultEvent {
                    name: format!("{}/{}", kind.name(), i),
                    kind,
                    start_s: t,
                    duration_s: duration,
                    magnitude,
                    target: rng.next_u64(),
                });
                i += 1;
                t += rng.exponential(rate_per_s);
            }
        }
        events.sort_by(|a, b| a.start_s.total_cmp(&b.start_s).then(a.name.cmp(&b.name)));
        FaultSchedule {
            seed,
            scenario: scenario.name.clone(),
            events,
        }
    }

    /// The campaign seed the schedule was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scenario name the schedule was derived from.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// All events, sorted by start time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events of one kind, in time order.
    pub fn events_of(&self, kind: FaultKind) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Whether any `kind` window covers `t_s`.
    pub fn is_active(&self, kind: FaultKind, t_s: f64) -> bool {
        self.events_of(kind).any(|e| e.covers(t_s))
    }

    /// The strongest magnitude among `kind` windows covering `t_s`.
    pub fn magnitude(&self, kind: FaultKind, t_s: f64) -> Option<f64> {
        self.events_of(kind)
            .filter(|e| e.covers(t_s))
            .map(|e| e.magnitude)
            .max_by(f64::total_cmp)
    }

    /// Whether a `kind` window covering `t_s` selects `id` out of `n_targets`
    /// (the event's target folded modulo `n_targets`). Used for per-tower
    /// cell outages.
    pub fn targets(&self, kind: FaultKind, t_s: f64, id: u64, n_targets: u64) -> bool {
        n_targets > 0
            && self
                .events_of(kind)
                .any(|e| e.covers(t_s) && e.target % n_targets == id % n_targets)
    }

    /// The schedule restricted to the events whose (time-sorted) indices
    /// appear in `keep`. Identity (seed, scenario) is preserved, so a
    /// restricted schedule installs and replays exactly like the original
    /// minus the dropped windows. The stress shrinker's "drop fault
    /// events" dimension; out-of-range indices are ignored.
    pub fn restricted(&self, keep: &[usize]) -> FaultSchedule {
        FaultSchedule {
            seed: self.seed,
            scenario: self.scenario.clone(),
            events: self
                .events
                .iter()
                .enumerate()
                .filter(|(i, _)| keep.contains(i))
                .map(|(_, e)| e.clone())
                .collect(),
        }
    }

    /// The schedule truncated to events *starting* before `horizon_s` —
    /// the stress shrinker's "shorten duration" dimension. A window that
    /// starts before the horizon keeps its full duration (truncating
    /// mid-window would create a schedule no generator could produce).
    pub fn truncated(&self, horizon_s: f64) -> FaultSchedule {
        FaultSchedule {
            seed: self.seed,
            scenario: self.scenario.clone(),
            events: self
                .events
                .iter()
                .filter(|e| e.start_s < horizon_s)
                .cloned()
                .collect(),
        }
    }

    /// The `(start_s, duration_s)` of the `kind` window covering `t_s`, if
    /// any; with overlapping windows, the earliest-starting one. Recovery
    /// hooks use this to compute detection latency (`t_s - start_s`) and the
    /// outage duration they rode out.
    pub fn window_of(&self, kind: FaultKind, t_s: f64) -> Option<(f64, f64)> {
        self.events_of(kind)
            .filter(|e| e.covers(t_s))
            .map(|e| (e.start_s, e.duration_s))
            .min_by(|a, b| a.0.total_cmp(&b.0))
    }
}

thread_local! {
    /// Fast flag: true iff a schedule is installed on this thread.
    static PLANE_ON: Cell<bool> = const { Cell::new(false) };
    /// The installed schedule.
    static PLANE: RefCell<Option<FaultSchedule>> = const { RefCell::new(None) };
}

/// Clears the ambient plane when dropped.
#[must_use = "the plane uninstalls when this guard drops"]
pub struct PlaneGuard {
    _private: (),
}

impl Drop for PlaneGuard {
    fn drop(&mut self) {
        PLANE.with(|p| *p.borrow_mut() = None);
        PLANE_ON.with(|f| f.set(false));
    }
}

/// Installs `schedule` as this thread's ambient fault plane. The previous
/// plane (if any) is replaced. Uninstalls when the guard drops.
pub fn install(schedule: FaultSchedule) -> PlaneGuard {
    PLANE.with(|p| *p.borrow_mut() = Some(schedule));
    PLANE_ON.with(|f| f.set(true));
    PlaneGuard { _private: () }
}

/// True iff a plane is installed on this thread — one thread-local load,
/// the cost of every hook point on the default path.
#[inline]
pub fn enabled() -> bool {
    PLANE_ON.with(|f| f.get())
}

/// Ambient [`FaultSchedule::is_active`]; false when no plane is installed.
#[inline]
pub fn is_active(kind: FaultKind, t_s: f64) -> bool {
    enabled() && PLANE.with(|p| p.borrow().as_ref().is_some_and(|s| s.is_active(kind, t_s)))
}

/// Ambient [`FaultSchedule::magnitude`]; `None` when no plane is installed.
#[inline]
pub fn magnitude(kind: FaultKind, t_s: f64) -> Option<f64> {
    if !enabled() {
        return None;
    }
    PLANE.with(|p| p.borrow().as_ref().and_then(|s| s.magnitude(kind, t_s)))
}

/// Ambient [`FaultSchedule::targets`]; false when no plane is installed.
#[inline]
pub fn targets(kind: FaultKind, t_s: f64, id: u64, n_targets: u64) -> bool {
    enabled()
        && PLANE.with(|p| {
            p.borrow()
                .as_ref()
                .is_some_and(|s| s.targets(kind, t_s, id, n_targets))
        })
}

/// Ambient [`FaultSchedule::window_of`]; `None` when no plane is installed.
#[inline]
pub fn window_of(kind: FaultKind, t_s: f64) -> Option<(f64, f64)> {
    if !enabled() {
        return None;
    }
    PLANE.with(|p| p.borrow().as_ref().and_then(|s| s.window_of(kind, t_s)))
}

/// Runs `f` with the ambient schedule, if one is installed.
pub fn with_plane<R>(f: impl FnOnce(&FaultSchedule) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    PLANE.with(|p| p.borrow().as_ref().map(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_pure_function_of_seed_and_scenario() {
        let a = FaultSchedule::generate(2021, &FaultScenario::chaos());
        let b = FaultSchedule::generate(2021, &FaultScenario::chaos());
        assert_eq!(a, b);
        assert!(!a.events().is_empty(), "chaos draws events");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultSchedule::generate(1, &FaultScenario::chaos());
        let b = FaultSchedule::generate(2, &FaultScenario::chaos());
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn different_scenarios_differ() {
        let a = FaultSchedule::generate(1, &FaultScenario::blockage_storm());
        let b = FaultSchedule::generate(1, &FaultScenario::transport_turbulence());
        assert_ne!(a.events(), b.events());
        assert!(a.events_of(FaultKind::BlockageStorm).count() > 0);
        assert_eq!(a.events_of(FaultKind::LossBurst).count(), 0);
    }

    #[test]
    fn quiet_scenario_is_empty() {
        let s = FaultSchedule::generate(2021, &FaultScenario::quiet());
        assert!(s.events().is_empty());
    }

    #[test]
    fn events_are_sorted_and_within_horizon() {
        let scenario = FaultScenario::chaos();
        let s = FaultSchedule::generate(7, &scenario);
        for w in s.events().windows(2) {
            assert!(w[0].start_s <= w[1].start_s);
        }
        for e in s.events() {
            assert!((0.0..scenario.horizon_s).contains(&e.start_s));
            assert!(e.duration_s > 0.0);
        }
    }

    #[test]
    fn window_queries_match_events() {
        let s = FaultSchedule::generate(3, &FaultScenario::blockage_storm());
        let e = s
            .events_of(FaultKind::BlockageStorm)
            .next()
            .expect("at least one storm")
            .clone();
        let mid = e.start_s + e.duration_s / 2.0;
        assert!(s.is_active(FaultKind::BlockageStorm, mid));
        assert!(s.magnitude(FaultKind::BlockageStorm, mid).is_some());
        assert!(!s.is_active(FaultKind::CellOutage, mid));
        let (start, dur) = s.window_of(FaultKind::BlockageStorm, mid).expect("covered");
        assert!(start <= mid && mid < start + dur);
        assert!(s.window_of(FaultKind::CellOutage, mid).is_none());
    }

    #[test]
    fn rate_scales_event_count() {
        let lo = FaultSchedule::generate(5, &FaultScenario::blockage_storm());
        // Double the storm rate and expect materially more events.
        let mut hot = FaultScenario::blockage_storm();
        for p in hot.processes.iter_mut() {
            p.rate_per_hour *= 2.0;
        }
        let hi = FaultSchedule::generate(5, &hot);
        assert!(hi.events().len() > lo.events().len());
    }

    #[test]
    fn ambient_plane_installs_and_clears() {
        assert!(!enabled());
        assert!(!is_active(FaultKind::StallWindow, 10.0));
        {
            let _guard = install(FaultSchedule::generate(11, &FaultScenario::chaos()));
            assert!(enabled());
            let any_active = (0..3600).any(|t| is_active(FaultKind::StallWindow, t as f64));
            assert!(any_active, "an aggressive schedule has stall windows");
        }
        assert!(!enabled());
        assert!(magnitude(FaultKind::StallWindow, 10.0).is_none());
    }

    #[test]
    fn by_name_round_trips() {
        for name in FaultScenario::names() {
            let s = FaultScenario::by_name(name).expect(name);
            assert_eq!(s.name, name);
        }
        assert!(FaultScenario::by_name("nope").is_none());
    }

    #[test]
    fn restricted_and_truncated_preserve_identity() {
        let s = FaultSchedule::generate(17, &FaultScenario::chaos());
        assert!(s.events().len() >= 4, "chaos schedules are busy");
        let keep: Vec<usize> = (0..s.events().len()).step_by(2).collect();
        let r = s.restricted(&keep);
        assert_eq!(r.seed(), s.seed());
        assert_eq!(r.scenario(), s.scenario());
        assert_eq!(r.events().len(), keep.len());
        assert_eq!(r.events()[0], s.events()[0]);
        let horizon = s.events()[2].start_s;
        let t = s.truncated(horizon);
        assert!(t.events().iter().all(|e| e.start_s < horizon));
        assert!(t.events().len() < s.events().len());
        assert_eq!(s.restricted(&[]).events().len(), 0);
        // Restricting to everything is the identity.
        let all: Vec<usize> = (0..s.events().len()).collect();
        assert_eq!(s.restricted(&all), s);
    }

    #[test]
    fn targets_is_uniform_modulo() {
        let s = FaultSchedule::generate(13, &FaultScenario::dead_zone_drive());
        let e = s
            .events_of(FaultKind::CellOutage)
            .next()
            .expect("outages scheduled")
            .clone();
        let mid = e.start_s + e.duration_s / 2.0;
        let n = 40u64;
        let hit = (0..n)
            .filter(|&id| s.targets(FaultKind::CellOutage, mid, id, n))
            .count();
        assert!(hit >= 1, "exactly the selected tower(s) are down");
        assert!(
            !s.targets(FaultKind::CellOutage, mid, 0, 0),
            "n=0 never targets"
        );
    }
}
