//! The cooperative cancellation plane: a shared per-attempt token that the
//! budget hot path observes, so a supervised experiment can be *asked* to
//! die — and actually unwind, drain its ambient planes, and exit — instead
//! of being abandoned to spin on a leaked thread.
//!
//! The contract mirrors the fault/telemetry/guard planes:
//!
//! * a [`CancelToken`] is shared between the supervising thread (which
//!   holds an `Arc` and may call [`CancelToken::kill`]) and the attempt
//!   thread (which arms it thread-locally via [`arm`], usually through
//!   `ambient::install_attempt`);
//! * [`observe`] sits on the existing `budget::charge` thread-local hot
//!   path. Disarmed — the default everywhere outside the supervised
//!   runner — it is one thread-local load and a branch, and it **never
//!   mutates simulation state or draws randomness**, so armed and
//!   disarmed runs render bit-identical artifacts;
//! * armed, it counts events down to the next *poll* (every
//!   [`POLL_INTERVAL`] charged events): the poll publishes the events
//!   charged so far into the token (the supervisor's watchdog samples
//!   this to tell *slow-but-progressing* from *wedged*), checks the kill
//!   flag, and checks the token's optional deadline;
//! * when the token is killed (or its deadline has passed), the next poll
//!   panics with [`CANCELLED_MSG`]. The attempt's `catch_unwind` converts
//!   that into a failed attempt whose thread runs every destructor —
//!   ambient planes uninstall, collectors drain — and then exits.
//!
//! A thread that never charges the budget can never observe a kill; the
//! supervisor's escalation ladder (cancel → grace period → abandon with a
//! leak report) exists precisely for that case.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Panic message prefix raised by a poll that observes a kill; the
/// supervised runner and the stress classifier both match on it.
pub const CANCELLED_MSG: &str = "simcore::cancel cancelled";

/// Charged events between polls of the shared token. Small enough that a
/// hot loop notices a kill within milliseconds, large enough that
/// `Instant::now()` and the atomic progress store stay off the per-event
/// path.
pub const POLL_INTERVAL: u64 = 2048;

/// The shared cancellation state of one supervised attempt.
///
/// The supervisor keeps one `Arc` end and kills/reads it; the attempt
/// thread arms the other end and observes it from the budget hot path.
#[derive(Debug)]
pub struct CancelToken {
    killed: AtomicBool,
    /// Why the token was killed; written once by the first [`kill`] call
    /// (cold path only).
    reason: Mutex<String>,
    /// Self-serve deadline: a poll past this instant cancels the attempt
    /// even if no supervisor ever calls [`kill`].
    deadline: Option<Instant>,
    /// Events charged by the armed thread, published at poll granularity.
    progress: AtomicU64,
}

impl CancelToken {
    /// A live token with no deadline (kill-only).
    pub fn new() -> CancelToken {
        CancelToken {
            killed: AtomicBool::new(false),
            reason: Mutex::new(String::new()),
            deadline: None,
            progress: AtomicU64::new(0),
        }
    }

    /// A live token that self-cancels at the next poll past `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            deadline: Some(deadline),
            ..CancelToken::new()
        }
    }

    /// Requests cancellation. The first caller's `reason` sticks; the
    /// armed thread dies with it at its next poll. Idempotent.
    pub fn kill(&self, reason: &str) {
        let mut slot = self.reason.lock().unwrap_or_else(|p| p.into_inner());
        if !self.killed.load(Ordering::Relaxed) {
            *slot = reason.to_string();
        }
        drop(slot);
        self.killed.store(true, Ordering::Release);
    }

    /// True once [`kill`] has been called (or a poll tripped the deadline).
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }

    /// The kill reason (empty while the token is live).
    pub fn reason(&self) -> String {
        self.reason
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Events the armed thread has charged so far, at poll granularity
    /// (a lower bound that advances every [`POLL_INTERVAL`] events). The
    /// watchdog's progress signal.
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Acquire)
    }

    /// The token's self-cancel deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

thread_local! {
    /// Events until the next poll; `u64::MAX` means "no token armed" (the
    /// single load-and-branch the disarmed hot path pays).
    static UNTIL_POLL: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Exact events charged since the token was armed.
    static CHARGED: Cell<u64> = const { Cell::new(0) };
    /// The armed token; touched only at poll boundaries and (un)install.
    static TOKEN: RefCell<Option<Arc<CancelToken>>> = const { RefCell::new(None) };
}

/// Disarms the thread's cancellation token when dropped.
#[must_use = "the cancellation token disarms when this guard drops"]
pub struct CancelGuard {
    _private: (),
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        TOKEN.with(|t| *t.borrow_mut() = None);
        UNTIL_POLL.with(|u| u.set(u64::MAX));
        CHARGED.with(|c| c.set(0));
    }
}

/// Arms `token` on this thread; the previous token (if any) is replaced.
/// Disarms when the guard drops.
pub fn arm(token: Arc<CancelToken>) -> CancelGuard {
    TOKEN.with(|t| *t.borrow_mut() = Some(token));
    UNTIL_POLL.with(|u| u.set(POLL_INTERVAL));
    CHARGED.with(|c| c.set(0));
    CancelGuard { _private: () }
}

/// True iff a token is armed on this thread.
pub fn armed() -> bool {
    UNTIL_POLL.with(Cell::get) != u64::MAX
}

/// Exact events charged against the armed token so far (0 when disarmed).
pub fn charged() -> u64 {
    CHARGED.with(Cell::get)
}

/// Observes `n` charged events against the armed token. Called by
/// `budget::charge`; disarmed it is one thread-local load and a branch.
///
/// # Panics
///
/// Panics with [`CANCELLED_MSG`] at the first poll after the token was
/// killed or its deadline passed.
#[inline]
pub fn observe(n: u64) {
    UNTIL_POLL.with(|u| {
        let left = u.get();
        if left == u64::MAX {
            return;
        }
        CHARGED.with(|c| c.set(c.get().saturating_add(n)));
        if left > n {
            u.set(left - n);
        } else {
            u.set(POLL_INTERVAL);
            poll();
        }
    });
}

/// Polls the armed token now (also called every [`POLL_INTERVAL`] charged
/// events by [`observe`]): publishes progress, then panics with
/// [`CANCELLED_MSG`] if the token was killed or its deadline has passed.
/// No-op when disarmed.
#[cold]
pub fn poll() {
    let charged = CHARGED.with(Cell::get);
    // Decide inside the borrow, panic outside it: the unwind must never
    // tear through a live RefCell borrow of the thread-local slot.
    let cancelled: Option<String> = TOKEN.with(|t| {
        let slot = t.borrow();
        let token = slot.as_ref()?;
        token.progress.store(charged, Ordering::Release);
        if token.killed() {
            return Some(token.reason());
        }
        if let Some(d) = token.deadline {
            if Instant::now() >= d {
                token.kill("deadline");
                return Some("deadline".to_string());
            }
        }
        None
    });
    if let Some(reason) = cancelled {
        panic!("{CANCELLED_MSG}: {reason}");
    }
}

/// True when `note` is (or wraps) a cancellation panic; the supervised
/// runner and the stress classifier use it to tell a cooperative exit
/// from a genuine experiment failure.
pub fn is_cancel_panic(note: &str) -> bool {
    note.contains(CANCELLED_MSG)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disarmed_observe_is_free() {
        assert!(!armed());
        observe(1_000_000);
        poll();
        assert!(!armed());
        assert_eq!(charged(), 0);
    }

    #[test]
    fn arm_counts_and_disarms_on_drop() {
        let token = Arc::new(CancelToken::new());
        {
            let _g = arm(Arc::clone(&token));
            assert!(armed());
            observe(10);
            assert_eq!(charged(), 10);
        }
        assert!(!armed());
        assert_eq!(charged(), 0);
    }

    #[test]
    fn progress_publishes_at_poll_granularity() {
        let token = Arc::new(CancelToken::new());
        let _g = arm(Arc::clone(&token));
        observe(POLL_INTERVAL - 1);
        assert_eq!(token.progress(), 0, "no poll yet");
        observe(1);
        assert_eq!(token.progress(), POLL_INTERVAL, "poll published progress");
        observe(POLL_INTERVAL);
        assert_eq!(token.progress(), 2 * POLL_INTERVAL);
    }

    #[test]
    fn killed_token_panics_at_the_next_poll() {
        let token = Arc::new(CancelToken::new());
        let result = std::panic::catch_unwind(|| {
            let _g = arm(Arc::clone(&token));
            observe(POLL_INTERVAL); // first poll: still live
            token.kill("test kill");
            observe(POLL_INTERVAL); // second poll: dies
            unreachable!("the poll must panic");
        });
        let err = result.expect_err("kill must cancel");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(is_cancel_panic(&msg), "got: {msg}");
        assert!(msg.contains("test kill"), "got: {msg}");
        // The guard dropped during unwinding: the thread is disarmed and
        // re-armable.
        assert!(!armed());
        let token2 = Arc::new(CancelToken::new());
        let _g = arm(token2);
        observe(1);
        assert_eq!(charged(), 1);
    }

    #[test]
    fn first_kill_reason_sticks() {
        let token = CancelToken::new();
        token.kill("first");
        token.kill("second");
        assert!(token.killed());
        assert_eq!(token.reason(), "first");
    }

    #[test]
    fn past_deadline_cancels_and_marks_the_token() {
        let token = Arc::new(CancelToken::with_deadline(
            Instant::now() - Duration::from_millis(1),
        ));
        let outer = Arc::clone(&token);
        let result = std::panic::catch_unwind(move || {
            let _g = arm(token);
            observe(POLL_INTERVAL);
        });
        let err = result.expect_err("deadline must cancel");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadline"), "got: {msg}");
        assert!(
            outer.killed(),
            "self-cancel marks the token for the supervisor"
        );
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let token = Arc::new(CancelToken::with_deadline(
            Instant::now() + Duration::from_secs(3600),
        ));
        let _g = arm(Arc::clone(&token));
        observe(4 * POLL_INTERVAL);
        assert!(!token.killed());
        assert_eq!(token.progress(), 4 * POLL_INTERVAL);
    }
}
