//! Named, seeded random-number streams.
//!
//! Field measurement campaigns are inherently stochastic; the simulated field
//! must be *reproducibly* stochastic. Each component (propagation shadowing,
//! blockage, loss processes, website corpus, ...) derives its own independent
//! [`RngStream`] from a campaign seed plus a stable component name, so that
//! adding a new consumer of randomness never perturbs existing experiments.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream derived from `(seed, name)`.
///
/// Cloning yields an identical stream state; use [`RngStream::fork`] to
/// derive an independent child stream.
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: SmallRng,
    seed: u64,
}

/// FNV-1a hash of a byte string, used to fold stream names into seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl RngStream {
    /// Creates the stream identified by `name` under the campaign `seed`.
    pub fn new(seed: u64, name: &str) -> Self {
        let mixed = seed ^ fnv1a(name.as_bytes()).rotate_left(17);
        // SplitMix64 finalizer to decorrelate nearby seeds.
        let mut z = mixed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        RngStream {
            rng: SmallRng::seed_from_u64(z),
            seed: z,
        }
    }

    /// Derives an independent child stream; the child is a pure function of
    /// this stream's identity and `name`, not of how much this stream has
    /// been consumed.
    pub fn fork(&self, name: &str) -> RngStream {
        RngStream::new(self.seed, name)
    }

    /// Uniform sample from `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.rng.gen_range(range)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample (Box–Muller).
    pub fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Exponential sample with the given rate (events per unit).
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }

    /// Log-normal sample parameterized by the mean/std of the underlying
    /// normal distribution.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto sample with scale `xm > 0` and shape `alpha > 0` (heavy-tailed
    /// sizes, e.g. web object sizes).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0, "pareto parameters must be positive");
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        xm / u.powf(1.0 / alpha)
    }

    /// Chooses one element of `slice` uniformly.
    ///
    /// # Panics
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.rng.gen_range(0..slice.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_and_name_reproduce() {
        let mut a = RngStream::new(42, "shadowing");
        let mut b = RngStream::new(42, "shadowing");
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_names_decorrelate() {
        let mut a = RngStream::new(42, "shadowing");
        let mut b = RngStream::new(42, "blockage");
        let matches = (0..64).filter(|_| a.uniform().to_bits() == b.uniform().to_bits()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn fork_is_insensitive_to_consumption() {
        let mut a = RngStream::new(7, "root");
        let fork_before = a.fork("child");
        for _ in 0..10 {
            a.uniform();
        }
        let fork_after = a.fork("child");
        let mut x = fork_before;
        let mut y = fork_after;
        assert_eq!(x.uniform().to_bits(), y.uniform().to_bits());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = RngStream::new(1, "normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = RngStream::new(1, "exp");
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = RngStream::new(1, "chance");
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0), "p clamps to 1");
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = RngStream::new(9, "shuffle");
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = RngStream::new(3, "pareto");
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }
}
