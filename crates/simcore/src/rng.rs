//! Named, seeded random-number streams.
//!
//! Field measurement campaigns are inherently stochastic; the simulated field
//! must be *reproducibly* stochastic. Each component (propagation shadowing,
//! blockage, loss processes, website corpus, ...) derives its own independent
//! [`RngStream`] from a campaign seed plus a stable component name, so that
//! adding a new consumer of randomness never perturbs existing experiments.
//!
//! The generator is an in-tree xoshiro256++ seeded through SplitMix64 — no
//! external crates, so the workspace builds with zero network access. The
//! [`SampleRange`] trait is a thin compat shim keeping the familiar
//! `gen_range(lo..hi)` / `gen_range(lo..=hi)` call-site syntax.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output. Used both
/// to fold seeds and to expand a 64-bit seed into xoshiro's 256-bit state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string, used to fold stream names into seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A deterministic random stream derived from `(seed, name)`.
///
/// Cloning yields an identical stream state; use [`RngStream::fork`] to
/// derive an independent child stream.
#[derive(Debug, Clone)]
pub struct RngStream {
    /// xoshiro256++ state.
    s: [u64; 4],
    seed: u64,
}

impl RngStream {
    /// Creates the stream identified by `name` under the campaign `seed`.
    pub fn new(seed: u64, name: &str) -> Self {
        let mixed = seed ^ fnv1a(name.as_bytes()).rotate_left(17);
        let mut sm = mixed;
        // Finalize once to decorrelate nearby seeds, then expand to 256 bits.
        let z = splitmix64(&mut sm);
        let mut expand = z;
        let s = [
            splitmix64(&mut expand),
            splitmix64(&mut expand),
            splitmix64(&mut expand),
            splitmix64(&mut expand),
        ];
        RngStream { s, seed: z }
    }

    /// Derives an independent child stream; the child is a pure function of
    /// this stream's identity and `name`, not of how much this stream has
    /// been consumed.
    pub fn fork(&self, name: &str) -> RngStream {
        RngStream::new(self.seed, name)
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `(0, 1]` — never zero, safe to `ln()`.
    fn uniform_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample (Box–Muller).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.uniform_open();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Exponential sample with the given rate (events per unit).
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        -self.uniform_open().ln() / rate
    }

    /// Log-normal sample parameterized by the mean/std of the underlying
    /// normal distribution.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto sample with scale `xm > 0` and shape `alpha > 0` (heavy-tailed
    /// sizes, e.g. web object sizes).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        xm / self.uniform_open().powf(1.0 / alpha)
    }

    /// Chooses one element of `slice` uniformly.
    ///
    /// # Panics
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        let i = self.gen_range(0..slice.len());
        &slice[i]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Uniform integer in `[0, span)` via multiply-shift.
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0, "empty range");
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Ranges [`RngStream::gen_range`] can sample from — the compat shim that
/// keeps `gen_range(lo..hi)` call sites working without the `rand` crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut RngStream) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut RngStream) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + rng.uniform() * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut RngStream) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut RngStream) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.bounded(span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_and_name_reproduce() {
        let mut a = RngStream::new(42, "shadowing");
        let mut b = RngStream::new(42, "shadowing");
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_names_decorrelate() {
        let mut a = RngStream::new(42, "shadowing");
        let mut b = RngStream::new(42, "blockage");
        let matches = (0..64)
            .filter(|_| a.uniform().to_bits() == b.uniform().to_bits())
            .count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn fork_is_insensitive_to_consumption() {
        let mut a = RngStream::new(7, "root");
        let fork_before = a.fork("child");
        for _ in 0..10 {
            a.uniform();
        }
        let fork_after = a.fork("child");
        let mut x = fork_before;
        let mut y = fork_after;
        assert_eq!(x.uniform().to_bits(), y.uniform().to_bits());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = RngStream::new(1, "normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = RngStream::new(1, "exp");
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = RngStream::new(1, "chance");
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0), "p clamps to 1");
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = RngStream::new(9, "shuffle");
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = RngStream::new(3, "pareto");
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = RngStream::new(5, "ranges");
        for _ in 0..2000 {
            let x: f64 = rng.gen_range(2.5..7.5);
            assert!((2.5..7.5).contains(&x));
            let i: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&i));
            let j: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn gen_range_covers_inclusive_endpoints() {
        let mut rng = RngStream::new(6, "inclusive");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..=2 reachable: {seen:?}");
    }

    #[test]
    fn uniform_is_half_open() {
        let mut rng = RngStream::new(8, "u");
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
