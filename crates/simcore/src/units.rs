//! Unit conventions and conversion helpers.
//!
//! The workspace uses plain `f64` quantities with documented units rather
//! than newtypes for every physical dimension (the smoltcp philosophy:
//! simplicity over type tricks). The conventions are:
//!
//! * throughput — **Mbps** (megabits per second),
//! * latency — **milliseconds**,
//! * power — **milliwatts**,
//! * energy — **millijoules** (mW × s),
//! * signal strength (RSRP) — **dBm**,
//! * distance — **kilometres**,
//! * data volume — **bytes** unless suffixed `_bits` / `_mb`.
//!
//! This module collects the handful of conversions that are easy to get
//! wrong, with tests pinning them down.

/// Bits per megabit.
pub const BITS_PER_MEGABIT: f64 = 1_000_000.0;

/// Bytes transferred in `seconds` at `mbps`.
pub fn mbps_to_bytes(mbps: f64, seconds: f64) -> f64 {
    mbps * BITS_PER_MEGABIT * seconds / 8.0
}

/// Throughput in Mbps given `bytes` transferred over `seconds`.
///
/// Returns 0 for a non-positive duration.
pub fn bytes_to_mbps(bytes: f64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    bytes * 8.0 / BITS_PER_MEGABIT / seconds
}

/// Energy-per-bit in µJ/bit given power in mW and throughput in Mbps.
///
/// `P [mW] / T [Mbps] = (10⁻³ J/s) / (10⁶ b/s) = 10⁻⁹ J/b = 10⁻³ µJ/b`.
/// Returns `+inf` at zero throughput (radio burns power, moves no bits).
pub fn energy_per_bit_uj(power_mw: f64, throughput_mbps: f64) -> f64 {
    if throughput_mbps <= 0.0 {
        return f64::INFINITY;
    }
    power_mw / throughput_mbps * 1e-3
}

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm.
///
/// Returns `-inf` for non-positive power.
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw <= 0.0 {
        return f64::NEG_INFINITY;
    }
    10.0 * mw.log10()
}

/// Milliseconds of round-trip propagation for a one-way fiber path of
/// `km` kilometres (speed of light in fiber ≈ 2×10⁵ km/s), multiplied by a
/// routing-inflation factor (real Internet paths are not great circles).
pub fn fiber_rtt_ms(km: f64, inflation: f64) -> f64 {
    const FIBER_KM_PER_MS: f64 = 200.0; // 2e5 km/s = 200 km/ms
    2.0 * km * inflation / FIBER_KM_PER_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_byte_round_trip() {
        let bytes = mbps_to_bytes(100.0, 2.0);
        assert_eq!(bytes, 25_000_000.0);
        assert!((bytes_to_mbps(bytes, 2.0) - 100.0).abs() < 1e-12);
        assert_eq!(bytes_to_mbps(1000.0, 0.0), 0.0);
    }

    #[test]
    fn energy_per_bit_units() {
        // 1000 mW at 1 Mbps = 1 W / 1e6 bps = 1 µJ/bit.
        assert!((energy_per_bit_uj(1000.0, 1.0) - 1.0).abs() < 1e-12);
        // 5 W at 1000 Mbps = 5e-3 µJ/bit.
        assert!((energy_per_bit_uj(5000.0, 1000.0) - 0.005).abs() < 1e-12);
        assert!(energy_per_bit_uj(100.0, 0.0).is_infinite());
    }

    #[test]
    fn dbm_round_trip() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(-30.0) - 0.001).abs() < 1e-15);
        assert!((mw_to_dbm(dbm_to_mw(-95.5)) - -95.5).abs() < 1e-9);
        assert!(mw_to_dbm(0.0).is_infinite());
    }

    #[test]
    fn fiber_rtt_scale() {
        // 1000 km one-way, no inflation: 2000 km / 200 km/ms = 10 ms RTT.
        assert!((fiber_rtt_ms(1000.0, 1.0) - 10.0).abs() < 1e-12);
        assert!((fiber_rtt_ms(1000.0, 1.5) - 15.0).abs() < 1e-12);
    }
}
