//! Simulated time with microsecond resolution.
//!
//! All simulators in the workspace share this clock representation. A
//! microsecond tick is fine enough for the fastest process we model (the
//! 5 kHz hardware power monitor samples every 200 µs) while keeping a `u64`
//! range of ~584k years.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant in simulated time, measured in microseconds since the start of
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds since the epoch (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e3).round() as u64)
    }

    /// Whole microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn negative_fractional_inputs_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis_f64(), 500.0);
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(2)),
            SimDuration::ZERO,
            "since() saturates"
        );
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(1.5).as_micros(),
            3_000_000
        );
        assert_eq!(SimDuration::from_secs(2).mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
