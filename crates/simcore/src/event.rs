//! A deterministic discrete-event queue.
//!
//! Events carry an arbitrary payload `E`. Ties at the same timestamp are
//! broken by insertion order (FIFO), which keeps multi-component simulations
//! deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// ```
/// use fiveg_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "b");
/// q.schedule(SimTime::from_millis(5), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Each schedule charges one event against the thread's
    /// [`crate::budget`], so a supervised run with a runaway event loop
    /// dies deterministically instead of hanging.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock — the past is immutable —
    /// or if an armed event budget is exhausted.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        crate::budget::charge(1);
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.payload)
        })
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDuration::from_secs(1), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
