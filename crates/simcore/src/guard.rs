//! The runtime invariant guard plane: structural checks that run *inside*
//! the simulators, not just over their final artifacts.
//!
//! The validation gate (`bench::expect`) grades finished figures against
//! the paper; this plane catches the step where a simulator first went
//! wrong — an RSRP that left the physical range, a congestion window past
//! the socket cap, a playback buffer above its cap, a stall ledger that no
//! longer sums. Every layer calls [`check`]-family hooks at its hot
//! points, following the same ambient-plane discipline as
//! [`crate::telemetry`]:
//!
//! * a thread-local collector, installed per experiment attempt (by
//!   `simcore::ambient::install_attempt`) and uninstalled when the guard
//!   drops, so parallel campaign workers never share state;
//! * hooks that cost one thread-local boolean load when no collector is
//!   installed, that **never mutate simulation state**, and that **never
//!   draw randomness** — a guarded run's artifacts are byte-identical to
//!   an unguarded one;
//! * violation records carry *simulated* time plus layer and invariant
//!   names, with the human detail built lazily (only when the check
//!   actually fails), so a passing check costs one branch.
//!
//! The collector runs under a [`GuardPolicy`]: `Record` (the campaign
//! default) buffers violations for the supervisor to drain, `Warn` also
//! prints each one to stderr as it happens, and `FailFast` panics on the
//! first violation (which the supervised runner converts into a degraded
//! attempt — the mode for debugging a reproducer).
//!
//! The whole module is additionally gated behind the `guards` cargo
//! feature (on by default): built without it, every hook compiles to a
//! no-op and [`compiled`] reports `false`, which CI uses to pin the
//! off-path determinism guarantee at the build level too.

#[cfg(feature = "guards")]
use std::cell::{Cell, RefCell};

/// Cap on buffered violations per attempt: a systematically broken
/// invariant in a hot loop would otherwise buffer millions of identical
/// records. Violations past the cap are counted, not stored.
pub const MAX_VIOLATIONS: usize = 1 << 12;

/// Prefix of the panic message a [`GuardPolicy::FailFast`] collector
/// raises; the stress harness keys on it to classify failures.
pub const VIOLATION_MSG: &str = "simcore::guard violation";

/// What the collector does when a check fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardPolicy {
    /// Buffer the violation for [`drain`]; the campaign default.
    #[default]
    Record,
    /// Buffer it and print it to stderr as it happens.
    Warn,
    /// Panic on the first violation (the supervised runner turns the
    /// panic into a degraded attempt).
    FailFast,
}

impl GuardPolicy {
    /// Stable name, for CLI flags and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            GuardPolicy::Record => "record",
            GuardPolicy::Warn => "warn",
            GuardPolicy::FailFast => "fail-fast",
        }
    }

    /// Parses a policy name.
    pub fn parse(s: &str) -> Option<GuardPolicy> {
        match s {
            "record" => Some(GuardPolicy::Record),
            "warn" => Some(GuardPolicy::Warn),
            "fail-fast" => Some(GuardPolicy::FailFast),
            _ => None,
        }
    }
}

/// One failed invariant check.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulated time of the check, seconds (component-local clock).
    pub t_s: f64,
    /// Layer that checked, e.g. `"radio"`, `"transport"`.
    pub layer: &'static str,
    /// Invariant name, e.g. `"rsrp-range"`, `"cwnd-bounds"`.
    pub invariant: &'static str,
    /// Human context, built lazily when the check failed.
    pub detail: String,
}

impl Violation {
    /// Deterministic one-line rendering (stress reproducers compare these).
    pub fn signature(&self) -> String {
        format!(
            "{}/{} @ t={:.6}s: {}",
            self.layer, self.invariant, self.t_s, self.detail
        )
    }
}

/// Everything one attempt's guard collector saw. Produced by [`drain`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttemptGuards {
    /// Buffered violations, in emission order (bounded by
    /// [`MAX_VIOLATIONS`]).
    pub violations: Vec<Violation>,
    /// Violations past the buffer cap (still counted, not stored).
    pub dropped: u64,
    /// Total checks evaluated, passes included.
    pub checks: u64,
}

impl AttemptGuards {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// Total violations, buffered or dropped.
    pub fn violation_count(&self) -> u64 {
        self.violations.len() as u64 + self.dropped
    }
}

/// True when the crate was built with the `guards` feature; when false,
/// every hook below is a compiled no-op and [`collect`] installs nothing.
pub const fn compiled() -> bool {
    cfg!(feature = "guards")
}

#[cfg(feature = "guards")]
struct Collector {
    policy: GuardPolicy,
    violations: Vec<Violation>,
    dropped: u64,
    checks: u64,
}

#[cfg(feature = "guards")]
thread_local! {
    /// Fast flag: true iff a collector is installed on this thread.
    static ON: Cell<bool> = const { Cell::new(false) };
    /// The installed collector.
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Uninstalls the thread's guard collector when dropped.
#[must_use = "the guard collector uninstalls when this guard drops"]
pub struct GuardsGuard {
    _private: (),
}

impl Drop for GuardsGuard {
    fn drop(&mut self) {
        #[cfg(feature = "guards")]
        {
            COLLECTOR.with(|c| *c.borrow_mut() = None);
            ON.with(|f| f.set(false));
        }
    }
}

/// Installs a fresh guard collector on this thread under `policy`,
/// replacing any previous one. Uninstalls when the guard drops. With the
/// `guards` feature compiled out this is a no-op guard.
pub fn collect(policy: GuardPolicy) -> GuardsGuard {
    #[cfg(feature = "guards")]
    {
        COLLECTOR.with(|c| {
            *c.borrow_mut() = Some(Collector {
                policy,
                violations: Vec::new(),
                dropped: 0,
                checks: 0,
            })
        });
        ON.with(|f| f.set(true));
    }
    #[cfg(not(feature = "guards"))]
    let _ = policy;
    GuardsGuard { _private: () }
}

/// True iff a collector is installed on this thread. The single load every
/// hook pays when the plane is off.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "guards")]
    {
        ON.with(|f| f.get())
    }
    #[cfg(not(feature = "guards"))]
    {
        false
    }
}

/// Checks one invariant: records a [`Violation`] at sim-time `t_s` when
/// `ok` is false. `detail` is only evaluated on failure. No-op without a
/// collector; never mutates simulation state, never draws randomness.
#[inline]
pub fn check(
    layer: &'static str,
    invariant: &'static str,
    ok: bool,
    t_s: f64,
    detail: impl FnOnce() -> String,
) {
    #[cfg(feature = "guards")]
    {
        if !enabled() {
            return;
        }
        // The failing branch may panic (FailFast); build the violation
        // outside the RefCell borrow so an unwinding check can never leave
        // the collector poisoned for a later reinstall.
        let violation = COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            let col = slot.as_mut()?;
            col.checks += 1;
            if ok {
                return None;
            }
            let v = Violation {
                t_s,
                layer,
                invariant,
                detail: detail(),
            };
            if col.violations.len() < MAX_VIOLATIONS {
                col.violations.push(v.clone());
            } else {
                col.dropped += 1;
            }
            Some((v, col.policy))
        });
        if let Some((v, policy)) = violation {
            match policy {
                GuardPolicy::Record => {}
                GuardPolicy::Warn => eprintln!("{VIOLATION_MSG}: {}", v.signature()),
                GuardPolicy::FailFast => panic!("{VIOLATION_MSG}: {}", v.signature()),
            }
        }
    }
    #[cfg(not(feature = "guards"))]
    {
        let _ = (layer, invariant, ok, t_s, detail);
    }
}

/// Checks that `v` is a finite number.
#[inline]
pub fn finite(layer: &'static str, invariant: &'static str, v: f64, t_s: f64) {
    if enabled() {
        check(layer, invariant, v.is_finite(), t_s, || {
            format!("non-finite value {v}")
        });
    }
}

/// Checks that `v` is finite and inside `[lo, hi]` (a small `slack`
/// absorbs floating-point accumulation at the edges).
#[inline]
pub fn in_range(
    layer: &'static str,
    invariant: &'static str,
    v: f64,
    lo: f64,
    hi: f64,
    slack: f64,
    t_s: f64,
) {
    if enabled() {
        check(
            layer,
            invariant,
            v.is_finite() && v >= lo - slack && v <= hi + slack,
            t_s,
            || format!("value {v} outside [{lo}, {hi}]"),
        );
    }
}

/// Checks that `v` is finite and non-negative (within `slack`).
#[inline]
pub fn non_negative(layer: &'static str, invariant: &'static str, v: f64, slack: f64, t_s: f64) {
    if enabled() {
        check(layer, invariant, v.is_finite() && v >= -slack, t_s, || {
            format!("negative value {v}")
        });
    }
}

/// Total violations recorded so far by this thread's collector (0 when
/// none is installed). Cheap enough for mid-run queries.
pub fn violation_count() -> u64 {
    #[cfg(feature = "guards")]
    {
        if !enabled() {
            return 0;
        }
        COLLECTOR.with(|c| {
            c.borrow()
                .as_ref()
                .map_or(0, |col| col.violations.len() as u64 + col.dropped)
        })
    }
    #[cfg(not(feature = "guards"))]
    {
        0
    }
}

/// Snapshots and clears this thread's guard records. Returns an empty
/// [`AttemptGuards`] when no collector is installed (or the feature is
/// compiled out).
pub fn drain() -> AttemptGuards {
    #[cfg(feature = "guards")]
    {
        COLLECTOR
            .with(|c| {
                c.borrow_mut().as_mut().map(|col| AttemptGuards {
                    violations: std::mem::take(&mut col.violations),
                    dropped: std::mem::take(&mut col.dropped),
                    checks: std::mem::take(&mut col.checks),
                })
            })
            .unwrap_or_default()
    }
    #[cfg(not(feature = "guards"))]
    {
        AttemptGuards::default()
    }
}

#[cfg(all(test, feature = "guards"))]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_without_a_collector() {
        assert!(!enabled());
        check("l", "i", false, 1.0, || unreachable!("detail built inert"));
        finite("l", "f", f64::NAN, 1.0);
        assert_eq!(violation_count(), 0);
        assert!(drain().is_clean());
        assert_eq!(drain().checks, 0);
    }

    #[test]
    fn collector_guard_installs_and_uninstalls() {
        {
            let _g = collect(GuardPolicy::Record);
            assert!(enabled());
        }
        assert!(!enabled());
    }

    #[test]
    fn passing_checks_never_build_detail() {
        let _g = collect(GuardPolicy::Record);
        check("l", "i", true, 1.0, || unreachable!("detail on a pass"));
        let g = drain();
        assert!(g.is_clean());
        assert_eq!(g.checks, 1);
    }

    #[test]
    fn violations_carry_time_layer_and_detail() {
        let _g = collect(GuardPolicy::Record);
        in_range("radio", "rsrp-range", 5.0, -200.0, 0.0, 0.0, 12.5);
        non_negative("power", "rail", -1.0, 1e-9, 3.0);
        finite("video", "buffer", f64::INFINITY, 7.0);
        let g = drain();
        assert_eq!(g.violations.len(), 3);
        assert_eq!(g.checks, 3);
        let v = &g.violations[0];
        assert_eq!((v.layer, v.invariant, v.t_s), ("radio", "rsrp-range", 12.5));
        assert!(
            v.signature().contains("outside [-200, 0]"),
            "{}",
            v.signature()
        );
    }

    #[test]
    fn buffer_is_bounded_but_counts_continue() {
        let _g = collect(GuardPolicy::Record);
        for _ in 0..(MAX_VIOLATIONS + 7) {
            check("l", "i", false, 0.0, || "x".into());
        }
        let g = drain();
        assert_eq!(g.violations.len(), MAX_VIOLATIONS);
        assert_eq!(g.dropped, 7);
        assert_eq!(g.violation_count(), MAX_VIOLATIONS as u64 + 7);
    }

    #[test]
    fn fail_fast_panics_with_the_signature() {
        let _g = collect(GuardPolicy::FailFast);
        let err = std::panic::catch_unwind(|| {
            check("rrc", "dwell", false, 2.0, || "negative dwell".into());
        })
        .expect_err("fail-fast must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(VIOLATION_MSG), "{msg}");
        assert!(msg.contains("rrc/dwell"), "{msg}");
        // The violation was recorded before the panic, and the collector
        // survives the unwind intact.
        assert_eq!(drain().violations.len(), 1);
    }

    #[test]
    fn drain_resets_the_collector() {
        let _g = collect(GuardPolicy::Record);
        check("l", "i", false, 0.0, || "x".into());
        assert_eq!(drain().violations.len(), 1);
        assert!(drain().is_clean());
        assert_eq!(violation_count(), 0);
    }

    #[test]
    fn policy_round_trips_names() {
        for p in [
            GuardPolicy::Record,
            GuardPolicy::Warn,
            GuardPolicy::FailFast,
        ] {
            assert_eq!(GuardPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(GuardPolicy::parse("nope"), None);
    }

    #[test]
    fn compiled_reports_the_feature() {
        assert!(compiled());
    }
}
