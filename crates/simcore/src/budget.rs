//! Event-count budgets for supervised experiment runs.
//!
//! The supervised runner in `fiveg-bench` arms a per-thread budget before an
//! experiment starts; hot simulation loops [`charge`] it once per step or
//! scheduled event. An experiment that spins (a stuck clock, a fault schedule
//! that wedges a loop) exhausts the budget and panics with a recognizable
//! message, which the runner's `catch_unwind` converts into a `degraded`
//! report instead of a hung campaign.
//!
//! With no budget armed — the default everywhere outside the supervised
//! runner — [`charge`] is a thread-local load and a branch.

use std::cell::Cell;

thread_local! {
    /// Remaining events; `u64::MAX` means "no budget armed".
    static REMAINING: Cell<u64> = const { Cell::new(u64::MAX) };
    /// The amount armed, so [`consumed`] can report events charged so far;
    /// `u64::MAX` means "no budget armed". Never read on the `charge` hot
    /// path.
    static ARMED: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// Panic message prefix on budget exhaustion; the supervised runner matches
/// on it to label the failure.
pub const EXHAUSTED_MSG: &str = "simcore::budget exhausted";

/// Disarms the budget when dropped.
#[must_use = "the budget disarms when this guard drops"]
pub struct BudgetGuard {
    _private: (),
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        REMAINING.with(|r| r.set(u64::MAX));
        ARMED.with(|a| a.set(u64::MAX));
    }
}

/// Arms a budget of `events` on this thread; the previous budget (if any)
/// is replaced. Disarms when the guard drops.
pub fn arm(events: u64) -> BudgetGuard {
    REMAINING.with(|r| r.set(events));
    ARMED.with(|a| a.set(events));
    BudgetGuard { _private: () }
}

/// Charges `n` events against the armed budget, then lets the
/// cancellation plane observe the charge (`crate::cancel::observe` — one
/// extra thread-local load and branch when no token is armed).
///
/// # Panics
///
/// Panics with [`EXHAUSTED_MSG`] when the budget runs out, or with
/// [`crate::cancel::CANCELLED_MSG`] when an armed cancellation token was
/// killed or passed its deadline. Never panics when neither plane is
/// armed.
#[inline]
pub fn charge(n: u64) {
    REMAINING.with(|r| {
        let left = r.get();
        if left == u64::MAX {
            return;
        }
        if left < n {
            r.set(0);
            panic!("{EXHAUSTED_MSG}: experiment exceeded its event budget");
        }
        r.set(left - n);
    });
    crate::cancel::observe(n);
}

/// Events charged against the armed budget so far, or `None` when no
/// budget is armed. The supervised runner reads this after an experiment
/// finishes to report event throughput (events/sec) for the campaign's
/// perf baseline.
pub fn consumed() -> Option<u64> {
    let armed = ARMED.with(Cell::get);
    if armed == u64::MAX {
        return None;
    }
    let left = REMAINING.with(Cell::get);
    Some(armed.saturating_sub(left))
}

/// Remaining events, or `None` when no budget is armed.
pub fn remaining() -> Option<u64> {
    REMAINING.with(|r| {
        let left = r.get();
        if left == u64::MAX {
            None
        } else {
            Some(left)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_charge_is_free() {
        assert_eq!(remaining(), None);
        charge(1_000_000);
        assert_eq!(remaining(), None);
    }

    #[test]
    fn armed_budget_counts_down_and_disarms() {
        {
            let _guard = arm(10);
            assert_eq!(remaining(), Some(10));
            charge(4);
            assert_eq!(remaining(), Some(6));
            assert_eq!(consumed(), Some(4));
        }
        assert_eq!(remaining(), None);
        assert_eq!(consumed(), None);
    }

    #[test]
    fn exhaustion_panics_with_marker() {
        let result = std::panic::catch_unwind(|| {
            let _guard = arm(3);
            charge(2);
            charge(2);
        });
        let err = result.expect_err("budget must blow");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains(EXHAUSTED_MSG), "got: {msg}");
        // The guard dropped during unwinding, so the thread is disarmed.
        assert_eq!(remaining(), None);
    }
}
