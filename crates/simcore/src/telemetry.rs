//! The deterministic telemetry plane: sim-time spans, counters, gauges,
//! and fixed-bucket histograms.
//!
//! The paper's contributions are measurements, and so are this
//! reproduction's debugging needs: when a figure drifts or a chaos run
//! degrades, the question is always *where the simulated time went* —
//! which handoffs fired, how long the RRC machine dwelt in each state,
//! when the congestion window collapsed, which segment stalled playback.
//! This module records exactly that, following the same ambient-plane
//! discipline as [`crate::faults`] and [`crate::recovery`]:
//!
//! * a thread-local collector, installed per experiment attempt (by
//!   `simcore::ambient::install_attempt`) and uninstalled when the guard
//!   drops, so parallel campaign workers never share state;
//! * hooks that cost one thread-local boolean load when no collector is
//!   installed, and that **never draw randomness**, so instrumentation can
//!   not perturb simulation output — with the plane off, every manifest,
//!   report, and figure byte matches an uninstrumented build;
//! * timestamps in *simulated* seconds (each component advances the
//!   thread's clock with [`clock`]), so two runs of the same experiment
//!   produce byte-identical event streams regardless of host speed.
//!
//! The whole module is additionally gated behind the `telemetry` cargo
//! feature (on by default): built without it, every hook compiles to a
//! no-op and [`compiled`] reports `false`, which CI uses to pin the
//! off-path determinism guarantee at the build level too.
//!
//! Span events stream into a bounded buffer ([`MAX_EVENTS`]); counters,
//! gauges, and histograms aggregate in place, so even 5 kHz power-rail
//! sampling instruments cheaply. [`drain`] snapshots everything into an
//! [`AttemptTelemetry`] with name-sorted aggregates for stable rendering.

#[cfg(feature = "telemetry")]
use std::cell::{Cell, RefCell};

/// Cap on buffered span events per attempt: enough for every figure's
/// span volume, bounded so a pathological loop cannot eat the heap. Spans
/// past the cap still aggregate into [`SpanStat`]s; only their stream
/// events are dropped (and counted in [`AttemptTelemetry::dropped_events`]).
pub const MAX_EVENTS: usize = 1 << 18;

/// Number of fixed histogram buckets. Bucket `i` covers the value range
/// `[2^(i-20), 2^(i-19))` — from about a microsecond to about 10^13, which
/// spans every unit the stack observes (seconds, milliseconds, milliwatts,
/// packets). Underflow and overflow clamp to the end buckets.
pub const HIST_BUCKETS: usize = 64;

/// Number of fixed simulated-time bins in a [`SeriesStat`].
pub const SERIES_BINS: usize = 64;

/// Width of one series bin, simulated seconds. With [`SERIES_BINS`] bins
/// the series covers `[0, 512)` s of simulated time, which brackets every
/// experiment's drive loop; later samples clamp into the last bin.
pub const SERIES_BIN_S: f64 = 8.0;

/// What a metric name denotes. Every name in [`CATALOG`] is registered
/// under exactly one kind per emitting hook; the same name may appear
/// under two kinds only when two hooks deliberately share it (none do
/// today — the lint in `tests/observatory.rs` keeps it that way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A timed region recorded via [`span`] / [`span_closed`].
    Span,
    /// A monotonic total recorded via [`count`].
    Counter,
    /// A last/min/max sample recorded via [`gauge`].
    Gauge,
    /// A log2-bucketed distribution recorded via [`observe`].
    Histogram,
    /// A fixed-bin sim-time series recorded via [`series`].
    Series,
}

impl MetricKind {
    /// Stable lowercase label, used in `metrics.json` and lint output.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Span => "span",
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Series => "series",
        }
    }
}

/// One registered metric: its emitted name, hook kind, owning stack layer,
/// and physical unit. The observatory renders layer/unit next to every
/// rollup, and the catalog lint cross-checks this table against every
/// `telemetry::` call site in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// The exact `&'static str` passed to the emitting hook.
    pub name: &'static str,
    /// Which hook family emits it.
    pub kind: MetricKind,
    /// Owning layer (crate) — `radio`, `rrc`, `transport`, `video`, `web`,
    /// or `power`.
    pub layer: &'static str,
    /// Physical unit of the recorded value (`"1"` for dimensionless counts).
    pub unit: &'static str,
}

/// The complete metric catalog: every span, counter, gauge, histogram, and
/// series name emitted anywhere in the workspace. Kept name-sorted within
/// each kind. Adding an instrumentation site without registering it here
/// fails the catalog lint in `tests/observatory.rs`.
pub const CATALOG: &[MetricDef] = &[
    // Spans.
    def("power/record", MetricKind::Span, "power", "sim-s"),
    def("radio/drive", MetricKind::Span, "radio", "sim-s"),
    def("rrc/packet", MetricKind::Span, "rrc", "sim-s"),
    def("rrc/promotion", MetricKind::Span, "rrc", "sim-s"),
    def("rrc/switch", MetricKind::Span, "rrc", "sim-s"),
    def("rrc/tail", MetricKind::Span, "rrc", "sim-s"),
    def("transport/bond/run", MetricKind::Span, "transport", "sim-s"),
    def("transport/run", MetricKind::Span, "transport", "sim-s"),
    def("video/segment", MetricKind::Span, "video", "sim-s"),
    def("video/session", MetricKind::Span, "video", "sim-s"),
    def("web/object_wave", MetricKind::Span, "web", "sim-s"),
    def("web/page", MetricKind::Span, "web", "sim-s"),
    // Counters.
    def("power/sample", MetricKind::Counter, "power", "1"),
    def(
        "radio/handoff/horizontal",
        MetricKind::Counter,
        "radio",
        "1",
    ),
    def("radio/handoff/vertical", MetricKind::Counter, "radio", "1"),
    def("radio/rlf", MetricKind::Counter, "radio", "1"),
    def("radio/shadow/hit", MetricKind::Counter, "radio", "1"),
    def("radio/shadow/miss", MetricKind::Counter, "radio", "1"),
    def("rrc/state/connected", MetricKind::Counter, "rrc", "1"),
    def("rrc/state/connected-lte", MetricKind::Counter, "rrc", "1"),
    def("rrc/state/idle", MetricKind::Counter, "rrc", "1"),
    def("rrc/state/inactive", MetricKind::Counter, "rrc", "1"),
    def(
        "transport/bbr/state_change",
        MetricKind::Counter,
        "transport",
        "1",
    ),
    def(
        "transport/bond/overflow",
        MetricKind::Counter,
        "transport",
        "1",
    ),
    def(
        "transport/conn_reset",
        MetricKind::Counter,
        "transport",
        "1",
    ),
    def("transport/loss", MetricKind::Counter, "transport", "1"),
    def(
        "transport/nada/rampup",
        MetricKind::Counter,
        "transport",
        "1",
    ),
    def("transport/rto", MetricKind::Counter, "transport", "1"),
    def("video/bitrate_switch", MetricKind::Counter, "video", "1"),
    def("video/stall", MetricKind::Counter, "video", "1"),
    def("web/object", MetricKind::Counter, "web", "1"),
    // Gauges.
    def(
        "transport/bbr/btlbw_mbps",
        MetricKind::Gauge,
        "transport",
        "Mbit/s",
    ),
    def(
        "transport/bbr/rtprop_s",
        MetricKind::Gauge,
        "transport",
        "s",
    ),
    def("transport/bond/groups", MetricKind::Gauge, "transport", "1"),
    def(
        "transport/mean_mbps",
        MetricKind::Gauge,
        "transport",
        "Mbit/s",
    ),
    def(
        "transport/nada/rate_mbps",
        MetricKind::Gauge,
        "transport",
        "Mbit/s",
    ),
    // Histograms.
    def("power/rail_mw", MetricKind::Histogram, "power", "mW"),
    def("rrc/delay_ms", MetricKind::Histogram, "rrc", "ms"),
    def("rrc/dwell_s", MetricKind::Histogram, "rrc", "s"),
    def("rrc/tail_s", MetricKind::Histogram, "rrc", "s"),
    def(
        "transport/cwnd_pkts",
        MetricKind::Histogram,
        "transport",
        "pkts",
    ),
    def(
        "transport/queue_delay_s",
        MetricKind::Histogram,
        "transport",
        "s",
    ),
    def(
        "transport/rto_backoff_s",
        MetricKind::Histogram,
        "transport",
        "s",
    ),
    def("video/stall_s", MetricKind::Histogram, "video", "s"),
    def("web/plt_s", MetricKind::Histogram, "web", "s"),
    // Series.
    def("power/rail_mw_t", MetricKind::Series, "power", "mW"),
    def("radio/rsrp_dbm_t", MetricKind::Series, "radio", "dBm"),
    def(
        "transport/bond/split_mbps_t",
        MetricKind::Series,
        "transport",
        "Mbit/s",
    ),
    def(
        "transport/cwnd_pkts_t",
        MetricKind::Series,
        "transport",
        "pkts",
    ),
    def(
        "transport/rate_mbps_t",
        MetricKind::Series,
        "transport",
        "Mbit/s",
    ),
];

/// Const constructor keeping [`CATALOG`] entries one line each.
const fn def(
    name: &'static str,
    kind: MetricKind,
    layer: &'static str,
    unit: &'static str,
) -> MetricDef {
    MetricDef {
        name,
        kind,
        layer,
        unit,
    }
}

/// Looks up the catalog entry for `name` emitted as `kind`.
pub fn registered(name: &str, kind: MetricKind) -> Option<&'static MetricDef> {
    CATALOG.iter().find(|d| d.name == name && d.kind == kind)
}

/// Enter/exit marker of a span event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Span opened.
    Enter,
    /// Span closed.
    Exit,
}

/// One buffered span event (the JSONL/Chrome-trace stream unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Per-attempt span id; the Enter and Exit of one span share it.
    pub id: u64,
    /// Static span name, e.g. `"radio/drive"`.
    pub name: &'static str,
    /// Enter or exit.
    pub phase: SpanPhase,
    /// Simulated time of the edge, seconds (component-local clock).
    pub t_s: f64,
}

/// Aggregated statistics of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanStat {
    /// Completed spans.
    pub count: u64,
    /// Cumulative simulated time inside the span, seconds.
    pub total_s: f64,
}

/// Aggregated statistics of one gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Most recent value.
    pub last: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
    /// Number of samples.
    pub samples: u64,
}

/// A fixed-bucket (power-of-two edges) histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket counts; bucket `i` covers `[2^(i-20), 2^(i-19))`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

/// The lower edge of histogram bucket `i`.
fn bucket_lo(i: usize) -> f64 {
    2f64.powi(i as i32 - 20)
}

/// The bucket index of value `v` (non-positive and NaN clamp to bucket 0).
fn bucket_of(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    (v.log2().floor() as i64 + 20).clamp(0, HIST_BUCKETS as i64 - 1) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-estimated quantile `q` in `[0, 1]`: the geometric midpoint of
    /// the bucket holding the q-th observation, clamped to the exact
    /// min/max so single-bucket histograms report faithfully.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil()).max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let mid = (bucket_lo(i) * bucket_lo(i + 1)).sqrt();
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-bin simulated-time series: per-bin value sums and sample counts
/// over `[0, SERIES_BINS * SERIES_BIN_S)` seconds of sim time. Fixed bins
/// (rather than raw samples) keep campaign rollups bounded and make merging
/// shards / attempts a per-bin addition, which is order-independent — the
/// property the byte-identity contract needs under `--jobs N`.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStat {
    /// Per-bin sum of observed values.
    pub sums: Vec<f64>,
    /// Per-bin number of samples.
    pub counts: Vec<u64>,
}

/// The bin index of simulated time `t_s` (negative and NaN clamp to bin 0,
/// late samples clamp to the last bin).
fn series_bin(t_s: f64) -> usize {
    if t_s.is_nan() || t_s <= 0.0 {
        return 0;
    }
    ((t_s / SERIES_BIN_S) as usize).min(SERIES_BINS - 1)
}

impl SeriesStat {
    /// An empty series.
    pub fn new() -> Self {
        SeriesStat {
            sums: vec![0.0; SERIES_BINS],
            counts: vec![0; SERIES_BINS],
        }
    }

    /// Records value `v` at simulated time `t_s`.
    pub fn observe(&mut self, t_s: f64, v: f64) {
        let i = series_bin(t_s);
        self.sums[i] += v;
        self.counts[i] += 1;
    }

    /// Mean of bin `i`, or `None` when the bin holds no samples.
    pub fn mean(&self, i: usize) -> Option<f64> {
        if self.counts[i] == 0 {
            None
        } else {
            Some(self.sums[i] / self.counts[i] as f64)
        }
    }

    /// Total samples across all bins.
    pub fn samples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges `other` into `self` bin-wise.
    pub fn merge(&mut self, other: &SeriesStat) {
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl Default for SeriesStat {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything one attempt recorded: the bounded span-event stream plus the
/// name-sorted aggregates. Produced by [`drain`]; rendered by the bench
/// crate into JSONL, Chrome `trace_event` files, and the campaign summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttemptTelemetry {
    /// Span enter/exit events in emission order (bounded by [`MAX_EVENTS`]).
    pub events: Vec<SpanEvent>,
    /// Span events dropped past the buffer cap (aggregates still updated).
    pub dropped_events: u64,
    /// Per-span-name aggregates, sorted by name.
    pub spans: Vec<(&'static str, SpanStat)>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge aggregates, sorted by name.
    pub gauges: Vec<(&'static str, GaugeStat)>,
    /// Histograms, sorted by name.
    pub hists: Vec<(&'static str, Histogram)>,
    /// Fixed-bin sim-time series, sorted by name.
    pub series: Vec<(&'static str, SeriesStat)>,
}

impl AttemptTelemetry {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.series.is_empty()
    }

    /// Merges `other`'s aggregates into `self` (campaign roll-up). The
    /// event streams are per-experiment artifacts and are not merged.
    pub fn merge_aggregates(&mut self, other: &AttemptTelemetry) {
        fn slot<'a, T>(
            v: &'a mut Vec<(&'static str, T)>,
            name: &'static str,
            mk: impl FnOnce() -> T,
        ) -> &'a mut T {
            if let Some(i) = v.iter().position(|(n, _)| *n == name) {
                return &mut v[i].1;
            }
            v.push((name, mk()));
            let i = v.len() - 1;
            &mut v[i].1
        }
        for (name, s) in &other.spans {
            let dst = slot(&mut self.spans, name, SpanStat::default);
            dst.count += s.count;
            dst.total_s += s.total_s;
        }
        for (name, n) in &other.counters {
            *slot(&mut self.counters, name, || 0) += n;
        }
        for (name, g) in &other.gauges {
            let dst = slot(&mut self.gauges, name, || GaugeStat {
                last: g.last,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                samples: 0,
            });
            dst.last = g.last;
            dst.min = dst.min.min(g.min);
            dst.max = dst.max.max(g.max);
            dst.samples += g.samples;
        }
        for (name, h) in &other.hists {
            slot(&mut self.hists, name, Histogram::new).merge(h);
        }
        for (name, s) in &other.series {
            slot(&mut self.series, name, SeriesStat::new).merge(s);
        }
        self.dropped_events += other.dropped_events;
        self.spans.sort_by_key(|(n, _)| *n);
        self.counters.sort_by_key(|(n, _)| *n);
        self.gauges.sort_by_key(|(n, _)| *n);
        self.hists.sort_by_key(|(n, _)| *n);
        self.series.sort_by_key(|(n, _)| *n);
    }
}

/// True when the crate was built with the `telemetry` feature; when false,
/// every hook below is a compiled no-op and [`collect`] installs nothing.
pub const fn compiled() -> bool {
    cfg!(feature = "telemetry")
}

#[cfg(feature = "telemetry")]
struct Collector {
    events: Vec<SpanEvent>,
    dropped: u64,
    next_id: u64,
    clock_s: f64,
    spans: Vec<(&'static str, SpanStat)>,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, GaugeStat)>,
    hists: Vec<(&'static str, Histogram)>,
    series: Vec<(&'static str, SeriesStat)>,
}

#[cfg(feature = "telemetry")]
impl Collector {
    fn new() -> Self {
        Collector {
            events: Vec::new(),
            dropped: 0,
            next_id: 0,
            clock_s: 0.0,
            spans: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            series: Vec::new(),
        }
    }

    fn push_event(&mut self, ev: SpanEvent) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

#[cfg(feature = "telemetry")]
thread_local! {
    /// Fast flag: true iff a collector is installed on this thread.
    static ON: Cell<bool> = const { Cell::new(false) };
    /// The installed collector.
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Uninstalls the thread's telemetry collector when dropped.
#[must_use = "the telemetry collector uninstalls when this guard drops"]
pub struct TelemetryGuard {
    _private: (),
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            COLLECTOR.with(|c| *c.borrow_mut() = None);
            ON.with(|f| f.set(false));
        }
    }
}

/// Installs a fresh telemetry collector on this thread, replacing any
/// previous one. Uninstalls when the guard drops. With the `telemetry`
/// feature compiled out this is a no-op guard.
pub fn collect() -> TelemetryGuard {
    #[cfg(feature = "telemetry")]
    {
        COLLECTOR.with(|c| *c.borrow_mut() = Some(Collector::new()));
        ON.with(|f| f.set(true));
    }
    TelemetryGuard { _private: () }
}

/// True iff a collector is installed on this thread. The single load every
/// hook pays when telemetry is off.
pub fn enabled() -> bool {
    #[cfg(feature = "telemetry")]
    {
        ON.with(|f| f.get())
    }
    #[cfg(not(feature = "telemetry"))]
    {
        false
    }
}

#[cfg(feature = "telemetry")]
fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    COLLECTOR.with(|c| c.borrow_mut().as_mut().map(f))
}

#[cfg(feature = "telemetry")]
fn agg<'a, T>(
    v: &'a mut Vec<(&'static str, T)>,
    name: &'static str,
    mk: impl FnOnce() -> T,
) -> &'a mut T {
    if let Some(i) = v.iter().position(|(n, _)| *n == name) {
        return &mut v[i].1;
    }
    v.push((name, mk()));
    let i = v.len() - 1;
    &mut v[i].1
}

/// Advances this thread's simulated clock to `t_s` (component-local
/// seconds). Spans opened afterwards enter at this time; spans dropped
/// afterwards exit at it.
pub fn clock(t_s: f64) {
    #[cfg(feature = "telemetry")]
    with_collector(|c| c.clock_s = t_s);
    #[cfg(not(feature = "telemetry"))]
    let _ = t_s;
}

/// The thread's current simulated clock (0 when no collector is installed).
pub fn now() -> f64 {
    #[cfg(feature = "telemetry")]
    {
        with_collector(|c| c.clock_s).unwrap_or(0.0)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        0.0
    }
}

/// An open span; records the exit edge (at the thread clock's then-current
/// time) and the cumulative-time aggregate when dropped.
#[must_use = "a span measures nothing unless it lives across the work"]
pub struct SpanGuard {
    #[cfg(feature = "telemetry")]
    open: Option<(u64, &'static str, f64)>,
    #[cfg(not(feature = "telemetry"))]
    _private: (),
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        if let Some((id, name, t0)) = self.open.take() {
            with_collector(|c| {
                let t1 = c.clock_s;
                c.push_event(SpanEvent {
                    id,
                    name,
                    phase: SpanPhase::Exit,
                    t_s: t1,
                });
                let s = agg(&mut c.spans, name, SpanStat::default);
                s.count += 1;
                s.total_s += (t1 - t0).max(0.0);
            });
        }
    }
}

/// Opens a span at the thread clock's current time; the returned RAII
/// guard closes it (see [`SpanGuard`]). Call [`clock`] first to anchor the
/// enter edge, and keep calling it inside the span so the exit edge lands
/// at the simulated end time.
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "telemetry")]
    {
        let open = with_collector(|c| {
            let id = c.next_id;
            c.next_id += 1;
            let t0 = c.clock_s;
            c.push_event(SpanEvent {
                id,
                name,
                phase: SpanPhase::Enter,
                t_s: t0,
            });
            (id, name, t0)
        });
        SpanGuard { open }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = name;
        SpanGuard { _private: () }
    }
}

/// Records a span whose interval `[t0_s, t1_s]` was computed rather than
/// lived through (e.g. a segment download duration): both edges plus the
/// aggregate, without touching the thread clock.
pub fn span_closed(name: &'static str, t0_s: f64, t1_s: f64) {
    #[cfg(feature = "telemetry")]
    with_collector(|c| {
        let id = c.next_id;
        c.next_id += 1;
        c.push_event(SpanEvent {
            id,
            name,
            phase: SpanPhase::Enter,
            t_s: t0_s,
        });
        c.push_event(SpanEvent {
            id,
            name,
            phase: SpanPhase::Exit,
            t_s: t1_s,
        });
        let s = agg(&mut c.spans, name, SpanStat::default);
        s.count += 1;
        s.total_s += (t1_s - t0_s).max(0.0);
    });
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (name, t0_s, t1_s);
    }
}

/// Adds `n` to counter `name`.
pub fn count(name: &'static str, n: u64) {
    #[cfg(feature = "telemetry")]
    with_collector(|c| *agg(&mut c.counters, name, || 0) += n);
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (name, n);
    }
}

/// Sets gauge `name` to `v`, tracking min/max/sample-count.
pub fn gauge(name: &'static str, v: f64) {
    #[cfg(feature = "telemetry")]
    with_collector(|c| {
        let g = agg(&mut c.gauges, name, || GaugeStat {
            last: v,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: 0,
        });
        g.last = v;
        g.min = g.min.min(v);
        g.max = g.max.max(v);
        g.samples += 1;
    });
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (name, v);
    }
}

/// Records `v` into histogram `name`.
pub fn observe(name: &'static str, v: f64) {
    #[cfg(feature = "telemetry")]
    with_collector(|c| agg(&mut c.hists, name, Histogram::new).observe(v));
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (name, v);
    }
}

/// Records `v` at simulated time `t_s` into the fixed-bin series `name`.
/// Unlike [`gauge`], which keeps only last/min/max, a series preserves the
/// *shape* over sim time (bin means), which the observatory renders as a
/// sparkline and ROADMAP item 5 will consume as calibration features.
pub fn series(name: &'static str, t_s: f64, v: f64) {
    #[cfg(feature = "telemetry")]
    with_collector(|c| agg(&mut c.series, name, SeriesStat::new).observe(t_s, v));
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (name, t_s, v);
    }
}

/// Snapshots and clears this thread's collected telemetry. Aggregates come
/// out sorted by name, so rendering the result is deterministic. Returns
/// an empty [`AttemptTelemetry`] when no collector is installed (or the
/// feature is compiled out).
pub fn drain() -> AttemptTelemetry {
    #[cfg(feature = "telemetry")]
    {
        with_collector(|c| {
            let mut t = AttemptTelemetry {
                events: std::mem::take(&mut c.events),
                dropped_events: std::mem::take(&mut c.dropped),
                spans: std::mem::take(&mut c.spans),
                counters: std::mem::take(&mut c.counters),
                gauges: std::mem::take(&mut c.gauges),
                hists: std::mem::take(&mut c.hists),
                series: std::mem::take(&mut c.series),
            };
            c.next_id = 0;
            c.clock_s = 0.0;
            t.spans.sort_by_key(|(n, _)| *n);
            t.counters.sort_by_key(|(n, _)| *n);
            t.gauges.sort_by_key(|(n, _)| *n);
            t.hists.sort_by_key(|(n, _)| *n);
            t.series.sort_by_key(|(n, _)| *n);
            t
        })
        .unwrap_or_default()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        AttemptTelemetry::default()
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_without_a_collector() {
        assert!(!enabled());
        clock(5.0);
        count("x", 3);
        observe("y", 1.0);
        gauge("z", 2.0);
        span_closed("s", 0.0, 1.0);
        {
            let _sp = span("t");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn collector_guard_installs_and_uninstalls() {
        {
            let _g = collect();
            assert!(enabled());
        }
        assert!(!enabled());
    }

    #[test]
    fn spans_record_both_edges_and_cumulative_time() {
        let _g = collect();
        clock(1.0);
        {
            let _sp = span("radio/drive");
            clock(4.0);
        }
        span_closed("video/segment", 10.0, 12.5);
        let t = drain();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.events[0].phase, SpanPhase::Enter);
        assert_eq!(t.events[0].t_s, 1.0);
        assert_eq!(t.events[1].phase, SpanPhase::Exit);
        assert_eq!(t.events[1].t_s, 4.0);
        // Aggregates sorted by name: radio/drive then video/segment.
        assert_eq!(t.spans[0].0, "radio/drive");
        assert!((t.spans[0].1.total_s - 3.0).abs() < 1e-12);
        assert_eq!(t.spans[1].0, "video/segment");
        assert!((t.spans[1].1.total_s - 2.5).abs() < 1e-12);
    }

    #[test]
    fn counters_gauges_histograms_aggregate() {
        let _g = collect();
        count("a", 2);
        count("a", 3);
        gauge("g", 5.0);
        gauge("g", 1.0);
        observe("h", 10.0);
        observe("h", 1000.0);
        let t = drain();
        assert_eq!(t.counters, vec![("a", 5)]);
        assert_eq!(t.gauges[0].1.last, 1.0);
        assert_eq!(t.gauges[0].1.max, 5.0);
        assert_eq!(t.gauges[0].1.samples, 2);
        let h = &t.hists[0].1;
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10.0);
        assert_eq!(h.max, 1000.0);
        assert!((h.mean() - 505.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((250.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50, "p99 {p99} >= p50 {p50}");
        assert!(p99 <= 1000.0);
    }

    #[test]
    fn event_buffer_is_bounded_but_aggregates_continue() {
        let _g = collect();
        for _ in 0..(MAX_EVENTS / 2 + 10) {
            span_closed("s", 0.0, 1.0);
        }
        let t = drain();
        assert_eq!(t.events.len(), MAX_EVENTS);
        assert_eq!(t.dropped_events, 20);
        assert_eq!(t.spans[0].1.count as usize, MAX_EVENTS / 2 + 10);
    }

    #[test]
    fn drain_is_deterministic_across_runs() {
        let run = || {
            let _g = collect();
            clock(0.0);
            {
                let _sp = span("a");
                clock(2.0);
            }
            count("c", 7);
            observe("h", 3.5);
            drain()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn merge_aggregates_rolls_up_without_events() {
        let mk = |n: u64| {
            let _g = collect();
            count("c", n);
            span_closed("s", 0.0, n as f64);
            observe("h", n as f64);
            drain()
        };
        let mut total = AttemptTelemetry::default();
        total.merge_aggregates(&mk(2));
        total.merge_aggregates(&mk(3));
        assert!(total.events.is_empty());
        assert_eq!(total.counters, vec![("c", 5)]);
        assert_eq!(total.spans[0].1.count, 2);
        assert!((total.spans[0].1.total_s - 5.0).abs() < 1e-12);
        assert_eq!(total.hists[0].1.count, 2);
    }

    #[test]
    fn compiled_reports_the_feature() {
        assert!(compiled());
    }

    #[test]
    fn series_bins_by_sim_time_and_clamps_edges() {
        let _g = collect();
        series("s", 0.0, 10.0);
        series("s", SERIES_BIN_S - 0.001, 20.0); // same first bin
        series("s", SERIES_BIN_S, 30.0); // second bin
        series("s", -5.0, 1.0); // clamps to bin 0
        series("s", f64::NAN, 2.0); // clamps to bin 0
        series("s", 1e9, 99.0); // clamps to last bin
        let t = drain();
        let st = &t.series[0].1;
        assert_eq!(st.counts[0], 4);
        assert_eq!(st.counts[1], 1);
        assert_eq!(st.counts[SERIES_BINS - 1], 1);
        assert_eq!(st.mean(1), Some(30.0));
        assert_eq!(st.mean(2), None);
        assert_eq!(st.samples(), 6);
    }

    #[test]
    fn series_merge_is_binwise() {
        let mut a = SeriesStat::new();
        a.observe(1.0, 4.0);
        let mut b = SeriesStat::new();
        b.observe(1.0, 8.0);
        b.observe(100.0, 2.0);
        a.merge(&b);
        assert_eq!(a.counts[0], 2);
        assert_eq!(a.mean(0), Some(6.0));
        assert_eq!(a.counts[series_bin(100.0)], 1);
    }

    #[test]
    fn catalog_names_are_unique_per_kind_and_sorted_within_kind() {
        for (i, d) in CATALOG.iter().enumerate() {
            for other in &CATALOG[i + 1..] {
                assert!(
                    !(d.name == other.name && d.kind == other.kind),
                    "duplicate catalog entry {} ({})",
                    d.name,
                    d.kind.as_str()
                );
            }
        }
        for w in CATALOG.windows(2) {
            if w[0].kind == w[1].kind {
                assert!(
                    w[0].name < w[1].name,
                    "catalog not sorted within kind: {} >= {}",
                    w[0].name,
                    w[1].name
                );
            }
        }
    }

    #[test]
    fn catalog_lookup_matches_name_and_kind() {
        let d = registered("radio/drive", MetricKind::Span).expect("radio/drive");
        assert_eq!(d.layer, "radio");
        assert!(registered("radio/drive", MetricKind::Counter).is_none());
        assert!(registered("no/such/metric", MetricKind::Span).is_none());
    }

    #[test]
    fn histogram_merge_with_empty_side_is_identity() {
        let mut a = Histogram::new();
        a.observe(4.0);
        a.observe(64.0);
        let before = a.clone();
        a.merge(&Histogram::new()); // empty right side
        assert_eq!(a.counts, before.counts);
        assert_eq!(a.count, before.count);
        assert_eq!(a.sum, before.sum);
        assert_eq!(a.min, before.min);
        assert_eq!(a.max, before.max);
        let mut e = Histogram::new(); // empty left side
        e.merge(&before);
        assert_eq!(e.counts, before.counts);
        assert_eq!(e.min, before.min);
        assert_eq!(e.max, before.max);
    }

    #[test]
    fn histogram_quantile_on_single_sample_reports_the_sample() {
        let mut h = Histogram::new();
        h.observe(7.0);
        // min == max == 7.0, so every quantile clamps to exactly 7.0.
        assert_eq!(h.quantile(0.0), 7.0);
        assert_eq!(h.quantile(0.5), 7.0);
        assert_eq!(h.quantile(1.0), 7.0);
    }

    #[test]
    fn histogram_quantile_handles_end_buckets() {
        let mut h = Histogram::new();
        h.observe(0.0); // underflow clamps to bucket 0
        h.observe(-3.0); // non-positive clamps to bucket 0
        h.observe(1e300); // overflow clamps to the last bucket
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[HIST_BUCKETS - 1], 1);
        let p99 = h.quantile(0.99);
        assert!(
            p99.is_finite(),
            "overflow-bucket quantile stays finite: {p99}"
        );
        assert!(p99 <= h.max);
        assert!(h.quantile(0.1) >= h.min);
    }

    #[test]
    fn histogram_merge_is_associative_on_summaries() {
        // Dyadic values make every float sum exact, so the associativity
        // check is on semantics, not float rounding.
        let mk = |vals: &[f64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let a = mk(&[0.25, 2.0, 2.0]);
        let b = mk(&[16.0]);
        let c = mk(&[0.5, 1024.0, 4096.0]);
        let left = {
            let mut ab = a.clone();
            ab.merge(&b);
            ab.merge(&c);
            ab
        };
        let right = {
            let mut bc = b.clone();
            bc.merge(&c);
            let mut abc = a.clone();
            abc.merge(&bc);
            abc
        };
        assert_eq!(left, right);
        assert_eq!(left.quantile(0.5), right.quantile(0.5));
        assert_eq!(left.quantile(0.99), right.quantile(0.99));
        assert_eq!(left.mean(), right.mean());
    }
}
